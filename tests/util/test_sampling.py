"""Tests for the sampling primitives, including uniformity properties."""

import statistics

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.sampling import BottomKSampler, ReservoirSampler, ThresholdSampler


class TestBottomKBasics:
    def test_capacity_respected(self):
        s = BottomKSampler(5, seed=1)
        for i in range(100):
            s.offer(i)
        assert len(s) == 5

    def test_under_capacity_keeps_everything(self):
        s = BottomKSampler(50, seed=1)
        for i in range(10):
            assert s.offer(i)
        assert sorted(s.members()) == list(range(10))

    def test_duplicate_offers_are_idempotent(self):
        s = BottomKSampler(3, seed=2)
        for _ in range(5):
            s.offer("x")
        assert len(s) == 1

    def test_membership(self):
        s = BottomKSampler(100, seed=3)
        s.offer("a")
        assert "a" in s
        assert "b" not in s

    def test_zero_capacity(self):
        s = BottomKSampler(0, seed=4)
        assert not s.offer(1)
        assert len(s) == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            BottomKSampler(-1)

    def test_space_words_counts_slots(self):
        s = BottomKSampler(5, seed=5)
        for i in range(3):
            s.offer(i)
        assert s.space_words() == 6


class TestBottomKPrefixProperty:
    """The property Section 3.3.1 relies on: final members never leave."""

    def test_final_members_present_from_first_offer(self):
        keys = list(range(200))
        s = BottomKSampler(20, seed=7)
        history = []
        for k in keys:
            s.offer(k)
            history.append(set(s.members()))
        final = set(s.members())
        for k in final:
            # From the moment k was offered it stays in every snapshot.
            for snapshot in history[k:]:
                assert k in snapshot

    def test_evict_callback_fires_exactly_for_displaced_members(self):
        evicted = []
        admitted = set()
        s = BottomKSampler(10, seed=8, on_evict=evicted.append)
        for k in range(100):
            if s.offer(k):
                admitted.add(k)
        final = set(s.members())
        # Everything ever admitted either survived or was reported evicted.
        assert final.isdisjoint(evicted)
        assert final | set(evicted) == admitted
        assert len(evicted) == len(admitted) - 10


class TestBottomKUniformity:
    def test_inclusion_frequencies_are_uniform(self):
        universe = list(range(40))
        counts = {k: 0 for k in universe}
        trials = 600
        for seed in range(trials):
            s = BottomKSampler(10, seed=seed)
            for k in universe:
                s.offer(k)
            for k in s.members():
                counts[k] += 1
        expected = trials * 10 / 40
        for k, c in counts.items():
            assert abs(c - expected) < 5 * expected**0.5

    def test_order_of_offers_does_not_change_sample(self):
        keys = list(range(50))
        s1 = BottomKSampler(8, seed=99)
        for k in keys:
            s1.offer(k)
        s2 = BottomKSampler(8, seed=99)
        for k in reversed(keys):
            s2.offer(k)
        assert sorted(s1.members()) == sorted(s2.members())


class TestThresholdSampler:
    def test_rate_zero_samples_nothing(self):
        s = ThresholdSampler(0.0, seed=1)
        assert not any(s.offer(i) for i in range(100))

    def test_rate_one_samples_everything(self):
        s = ThresholdSampler(1.0, seed=1)
        assert all(s.offer(i) for i in range(100))

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            ThresholdSampler(1.5)
        with pytest.raises(ValueError):
            ThresholdSampler(-0.1)

    def test_expected_fraction(self):
        s = ThresholdSampler(0.3, seed=2)
        n = 5000
        hits = sum(1 for i in range(n) if s.offer(i))
        assert abs(hits / n - 0.3) < 0.03

    def test_wants_is_consistent_with_offer(self):
        s = ThresholdSampler(0.5, seed=3)
        for i in range(100):
            assert s.wants(i) == s.offer(i)

    def test_membership_persists(self):
        s = ThresholdSampler(0.5, seed=4)
        sampled = [i for i in range(100) if s.offer(i)]
        for i in sampled:
            assert i in s


class TestReservoirSampler:
    def test_keeps_all_when_under_capacity(self):
        r = ReservoirSampler(10, seed=1)
        for i in range(5):
            r.offer(i)
        assert sorted(r.items()) == list(range(5))
        assert not r.saturated()

    def test_capacity_respected(self):
        r = ReservoirSampler(10, seed=1)
        for i in range(1000):
            r.offer(i)
        assert len(r) == 10
        assert r.saturated()

    def test_uniformity(self):
        counts = [0] * 30
        trials = 900
        for seed in range(trials):
            r = ReservoirSampler(6, seed=seed)
            for i in range(30):
                r.offer(i)
            for i in r.items():
                counts[i] += 1
        expected = trials * 6 / 30
        for c in counts:
            assert abs(c - expected) < 5 * expected**0.5

    def test_discard_removes_matches(self):
        r = ReservoirSampler(10, seed=2)
        for i in range(10):
            r.offer(i)
        removed = r.discard(lambda x: x % 2 == 0)
        assert removed == 5
        assert all(x % 2 == 1 for x in r.items())

    def test_refills_after_discard(self):
        r = ReservoirSampler(4, seed=3)
        for i in range(4):
            r.offer(i)
        r.discard(lambda x: True)
        assert len(r) == 0
        r.offer(100)
        assert 100 in r.items()

    def test_offer_detailed_reports_displacement(self):
        r = ReservoirSampler(2, seed=4)
        assert r.offer_detailed("a") == (True, None)
        assert r.offer_detailed("b") == (True, None)
        admitted_count = 0
        displaced_items = []
        for i in range(200):
            admitted, displaced = r.offer_detailed(i)
            if admitted:
                admitted_count += 1
                assert displaced in ("a", "b") or isinstance(displaced, int)
                displaced_items.append(displaced)
            else:
                assert displaced is None
        assert admitted_count == len(displaced_items)

    def test_zero_capacity(self):
        r = ReservoirSampler(0, seed=5)
        assert r.offer("x") is None
        assert len(r) == 0


@given(
    capacity=st.integers(1, 20),
    n_items=st.integers(0, 200),
    seed=st.integers(0, 10**6),
)
@settings(max_examples=60)
def test_reservoir_size_invariant(capacity, n_items, seed):
    r = ReservoirSampler(capacity, seed=seed)
    for i in range(n_items):
        r.offer(i)
    assert len(r) == min(capacity, n_items)
    assert r.offered == n_items
    assert set(r.items()) <= set(range(n_items))


@given(
    capacity=st.integers(1, 15),
    n_keys=st.integers(0, 120),
    seed=st.integers(0, 10**6),
)
@settings(max_examples=60)
def test_bottom_k_size_and_minimality(capacity, n_keys, seed):
    """The sample always holds the keys with the k smallest priorities."""
    s = BottomKSampler(capacity, seed=seed)
    for k in range(n_keys):
        s.offer(k)
    assert len(s) == min(capacity, n_keys)
    if n_keys:
        expected = sorted(range(n_keys), key=s.priority)[:capacity]
        assert sorted(s.members()) == sorted(expected)
