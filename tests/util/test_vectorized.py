"""Bit-identity of the columnar kernels against their scalar oracles.

The vectorized layer (:mod:`repro.util.vectorized`) is pure acceleration:
every kernel must agree with the scalar implementation in
:mod:`repro.util.hashing` / :mod:`repro.util.sampling` on every input —
not approximately, bit for bit, because sampler admissions hang off exact
integer comparisons of the hash values.  These hypothesis properties pin
that contract over random ints, int-pair tuples and batch boundaries.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.graph import canonical_edge
from repro.util import vectorized
from repro.util.hashing import MixHash64, PairwiseHash, _splitmix64, _to_int_key
from repro.util.sampling import BottomKSampler
from repro.util.vectorized import (
    ColumnMemo,
    PairColumns,
    VertexTable,
    as_vertex_array,
    as_vertex_scalar,
    canonical_pair_columns,
    edge_columns,
    encode_int_keys,
    encode_pair_keys,
    in_sorted,
    mixhash_int_array,
    mixhash_unit_array,
    pairwise_int_array,
    set_columnar_enabled,
    splitmix64_array,
)

uint64s = st.integers(min_value=0, max_value=2**64 - 1)
#: Batch sizes straddle the interesting boundaries: empty, single, odd.
key_batches = st.lists(uint64s, min_size=0, max_size=65)
pair_batches = st.lists(st.tuples(uint64s, uint64s), min_size=0, max_size=65)
seeds = st.integers(min_value=0, max_value=2**32 - 1)


def _as_u64(values):
    return np.array(values, dtype=np.uint64)


class TestHashKernelsBitIdentical:
    @given(keys=key_batches)
    def test_splitmix64(self, keys):
        out = splitmix64_array(_as_u64(keys))
        assert out.tolist() == [_splitmix64(k) for k in keys]

    @given(keys=key_batches)
    def test_encode_int_keys(self, keys):
        out = encode_int_keys(_as_u64(keys))
        assert out.tolist() == [_to_int_key(k) for k in keys]

    @given(pairs=pair_batches)
    def test_encode_pair_keys(self, pairs):
        u = _as_u64([p[0] for p in pairs])
        v = _as_u64([p[1] for p in pairs])
        assert encode_pair_keys(u, v).tolist() == [_to_int_key(p) for p in pairs]

    @given(keys=key_batches, seed=seeds)
    def test_mixhash_int(self, keys, seed):
        h = MixHash64(seed=seed)
        out = mixhash_int_array(encode_int_keys(_as_u64(keys)), h.key)
        assert out.tolist() == [h.hash_int(k) for k in keys]

    @given(keys=key_batches, seed=seeds)
    def test_mixhash_unit(self, keys, seed):
        h = MixHash64(seed=seed)
        out = mixhash_unit_array(encode_int_keys(_as_u64(keys)), h.key)
        # hash_unit is one IEEE-754 division either way: exact equality.
        assert out.tolist() == [h.hash_unit(k) for k in keys]

    @given(pairs=pair_batches, seed=seeds)
    @settings(max_examples=60)
    def test_pairwise_on_pairs(self, pairs, seed):
        h = PairwiseHash(seed=seed)
        u = _as_u64([p[0] for p in pairs])
        v = _as_u64([p[1] for p in pairs])
        out = pairwise_int_array(encode_pair_keys(u, v), h._a, h._b)
        assert out.tolist() == [h.hash_int(p) for p in pairs]

    def test_pairwise_extreme_parameters(self):
        # The limb arithmetic must be exact at the family's corners.
        p = (1 << 89) - 1
        keys = _as_u64([0, 1, 2**63, 2**64 - 1])
        for a, b in [(1, 0), (p - 1, p - 1), (p // 2, p // 3)]:
            expected = [((a * int(x) + b) % p) & (2**64 - 1) for x in keys.tolist()]
            assert pairwise_int_array(keys, a, b).tolist() == expected


class TestInputAdaptation:
    def test_rejects_non_int_labels(self):
        assert as_vertex_array(["a", "b"]) is None
        assert as_vertex_array([(1, 2), (3, 4)]) is None
        assert as_vertex_array([True, False]) is None  # bool is not a vertex id
        assert as_vertex_array([]) is None
        assert as_vertex_scalar("x") is None
        assert as_vertex_scalar(True) is None

    def test_rejects_out_of_range_ints(self):
        assert as_vertex_array([1, -2]) is None
        assert as_vertex_array([1, 2**64]) is None
        assert as_vertex_scalar(-1) is None
        assert as_vertex_scalar(2**64) is None

    @given(values=st.lists(uint64s, min_size=1, max_size=40))
    def test_accepts_plain_ints(self, values):
        out = as_vertex_array(values)
        assert out is not None and out.tolist() == values


class TestMembershipStructures:
    @given(
        members=st.lists(st.integers(0, 500), min_size=0, max_size=40),
        queries=st.lists(st.integers(0, 500), min_size=0, max_size=40),
    )
    def test_in_sorted_matches_python_membership(self, members, queries):
        sorted_members = _as_u64(sorted(set(members)))
        mask = in_sorted(sorted_members, _as_u64(queries))
        assert mask.tolist() == [q in set(members) for q in queries]

    @given(
        members=st.lists(st.integers(0, 500), min_size=1, max_size=40),
        queries=st.lists(st.integers(0, 600), min_size=0, max_size=40),
    )
    def test_vertex_table_matches_in_sorted(self, members, queries):
        table = VertexTable()
        values = _as_u64(sorted(set(members)))
        assert table.mark(values, query_max=600)
        mask = table.lookup(_as_u64(queries)) if queries else []
        assert list(mask) == [q in set(members) for q in queries]
        for q in queries + [0, 599, 10**6]:
            assert table.contains_checked(q) == (q in set(members))
        table.unmark(values)
        if queries:
            assert not table.lookup(_as_u64(queries)).any()

    def test_vertex_table_respects_universe_cap(self):
        table = VertexTable(universe_cap=1000)
        assert not table.mark(_as_u64([2000]), query_max=0)
        assert not table.mark(_as_u64([1]), query_max=5000)
        assert table.mark(_as_u64([1]), query_max=999)


class TestOfferArrayMatchesScalarSampler:
    """``offer_array`` must leave the sampler in the identical state that
    per-key ``offer``/``offer_many`` calls would, on every prefix."""

    def _samplers(self, capacity, seed):
        return BottomKSampler(capacity, seed=seed), BottomKSampler(capacity, seed=seed)

    @given(
        edges=st.lists(
            st.tuples(st.integers(0, 60), st.integers(0, 60)), min_size=0, max_size=80
        ),
        capacity=st.integers(1, 12),
        seed=seeds,
    )
    @settings(max_examples=60)
    def test_state_identical_after_batches(self, edges, capacity, seed):
        edges = [tuple(sorted(e)) for e in edges if e[0] != e[1]]
        vec, scalar = self._samplers(capacity, seed)
        accepted_vec = accepted_scalar = 0
        # Feed in uneven batches to cross batch boundaries mid-stream.
        for start in range(0, len(edges), 7):
            batch = edges[start:start + 7]
            u = _as_u64([e[0] for e in batch])
            v = _as_u64([e[1] for e in batch])
            priorities = vec.priority_array(encode_pair_keys(u, v))
            accepted_vec += vec.offer_array(priorities, batch)
            accepted_scalar += scalar.offer_many(batch)
        assert accepted_vec == accepted_scalar
        assert vec.state_dict() == scalar.state_dict()
        assert vec.members() == scalar.members()
        assert vec.threshold() == scalar.threshold()

    @given(seed=seeds)
    def test_empty_batch_is_a_no_op(self, seed):
        vec, scalar = self._samplers(4, seed)
        before = vec.state_dict()
        assert vec.offer_array(np.empty(0, dtype=np.uint64), []) == 0
        assert vec.state_dict() == before
        assert vec.state_dict() == scalar.state_dict()


class TestAdmissionLog:
    def test_log_covers_membership(self):
        sampler = BottomKSampler(4, seed=3)
        sampler.offer_many([(i, i + 1) for i in range(50)])
        # Superset semantics: every member was admitted since the last
        # compaction (which reseeds the log from the members), so the log
        # always covers the membership; evicted entries may linger.
        assert set(sampler.members()) <= set(sampler.admission_log)

    def test_log_compaction_bumps_epoch(self):
        sampler = BottomKSampler(1, seed=1)
        epoch = sampler.admission_epoch
        # Feed keys in strictly decreasing priority order: every offer
        # displaces the single member, so admissions (and log growth) are
        # deterministic and compaction must trigger.
        keys = sorted(
            [(i, i + 1) for i in range(200)],
            key=sampler.priority,
            reverse=True,
        )
        for key in keys:
            assert sampler.offer(key)
        assert sampler.admission_epoch > epoch
        assert len(sampler.admission_log) <= 4 * 1 + 64
        assert set(sampler.members()) <= set(sampler.admission_log)

    def test_load_state_resets_log(self):
        sampler = BottomKSampler(3, seed=2)
        sampler.offer_many([(i, i + 1) for i in range(30)])
        clone = BottomKSampler(3, seed=99)
        epoch = clone.admission_epoch
        clone.load_state_dict(sampler.state_dict())
        assert clone.admission_epoch > epoch
        assert set(clone.admission_log) == set(clone.members())


class TestColumnMemo:
    def test_identity_hit_and_miss(self):
        memo = ColumnMemo()
        neighbors = [3, 1, 2]
        first = memo(7, neighbors)
        assert first is memo(7, neighbors)  # identity hit: same array back
        assert first.tolist() == neighbors
        reordered = [2, 1, 3]
        second = memo(7, reordered)
        assert second is not first and second.tolist() == reordered

    def test_non_int_labels_memoise_none(self):
        memo = ColumnMemo()
        neighbors = [("a", 1), ("b", 2)]
        assert memo(0, neighbors) is None
        assert memo(0, neighbors) is None


class TestEdgeColumnsMatchCanonicalEdge:
    @given(source=uint64s, neighbors=st.lists(uint64s, min_size=1, max_size=60))
    def test_canonical_pair_columns(self, source, neighbors):
        u, v = canonical_pair_columns(np.uint64(source), _as_u64(neighbors))
        expected = [canonical_edge(source, n) for n in neighbors]
        assert list(zip(u.tolist(), v.tolist())) == expected

    @given(source=uint64s, neighbors=st.lists(uint64s, min_size=1, max_size=60))
    def test_edge_columns_matches_scalar(self, source, neighbors):
        columns = edge_columns(source, neighbors)
        assert columns is not None
        u, v = columns
        assert list(zip(u.tolist(), v.tolist())) == [
            canonical_edge(source, n) for n in neighbors
        ]

    def test_edge_columns_falls_back_on_gadget_labels(self):
        assert edge_columns("a", [1, 2]) is None
        assert edge_columns(1, [("x", 2)]) is None

    def test_edge_columns_disabled_forces_scalar_path(self):
        previous = set_columnar_enabled(False)
        try:
            assert edge_columns(1, [2, 3]) is None
        finally:
            set_columnar_enabled(previous)

    @given(pairs=pair_batches)
    def test_pair_columns_view_is_lazy_tuple_oracle(self, pairs):
        u = _as_u64([min(p) for p in pairs])
        v = _as_u64([max(p) for p in pairs])
        view = PairColumns(u, v)
        assert len(view) == len(pairs)
        materialised = [view[i] for i in range(len(view))]
        assert materialised == [(min(p), max(p)) for p in pairs]
        assert all(
            type(a) is int and type(b) is int for a, b in materialised
        )


class TestColumnarSwitch:
    def test_scalar_oracle_restores_flag(self):
        assert vectorized.columnar_enabled()
        with vectorized.scalar_oracle():
            assert not vectorized.columnar_enabled()
        assert vectorized.columnar_enabled()
        with pytest.raises(RuntimeError):
            with vectorized.scalar_oracle():
                assert not vectorized.columnar_enabled()
                raise RuntimeError("boom")
        assert vectorized.columnar_enabled()
