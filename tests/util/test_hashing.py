"""Tests for the hash families."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.hashing import MixHash64, PairwiseHash, fresh_hash
from repro.util.rng import resolve_rng


@pytest.fixture(params=[MixHash64, PairwiseHash])
def hash_family(request):
    return request.param


class TestDeterminism:
    def test_same_seed_same_values(self, hash_family):
        h1 = hash_family(seed=3)
        h2 = hash_family(seed=3)
        keys = [0, 1, (2, 3), ("a", 5), "edge"]
        assert [h1.hash_int(k) for k in keys] == [h2.hash_int(k) for k in keys]

    def test_different_seeds_decorrelate(self, hash_family):
        h1 = hash_family(seed=1)
        h2 = hash_family(seed=2)
        same = sum(1 for k in range(200) if h1.hash_int(k) == h2.hash_int(k))
        assert same == 0

    def test_repeated_calls_stable(self, hash_family):
        h = hash_family(seed=9)
        assert h.hash_int((1, 2)) == h.hash_int((1, 2))


class TestRange:
    def test_hash_int_in_64_bit_range(self, hash_family):
        h = hash_family(seed=4)
        for k in range(100):
            assert 0 <= h.hash_int(k) < 2**64

    def test_hash_unit_in_unit_interval(self, hash_family):
        h = hash_family(seed=4)
        for k in range(100):
            assert 0.0 <= h.hash_unit(k) < 1.0


class TestUniformity:
    def test_unit_hash_mean_near_half(self, hash_family):
        h = hash_family(seed=5)
        values = [h.hash_unit(i) for i in range(2000)]
        mean = sum(values) / len(values)
        assert abs(mean - 0.5) < 0.03

    def test_no_collisions_on_small_domain(self, hash_family):
        h = hash_family(seed=6)
        values = {h.hash_int(i) for i in range(5000)}
        assert len(values) == 5000


class TestTupleKeys:
    def test_tuple_order_matters(self, hash_family):
        h = hash_family(seed=7)
        assert h.hash_int((1, 2)) != h.hash_int((2, 1))

    def test_nested_tuples_supported(self, hash_family):
        h = hash_family(seed=7)
        assert h.hash_int((("a", 1), 2)) != h.hash_int((("a", 2), 2))

    @given(st.tuples(st.integers(0, 10**6), st.integers(0, 10**6)))
    @settings(max_examples=50)
    def test_edge_key_hash_total(self, key):
        h = MixHash64(seed=11)
        assert 0 <= h.hash_int(key) < 2**64


def test_fresh_hash_uses_rng():
    rng1 = resolve_rng(13)
    rng2 = resolve_rng(13)
    h1 = fresh_hash(rng1)
    h2 = fresh_hash(rng2)
    assert h1.hash_int(5) == h2.hash_int(5)


def test_pairwise_hash_pairwise_property_sample():
    """Empirical check of 2-wise uniformity: joint bucket frequencies."""
    buckets = [[0] * 2 for _ in range(2)]
    trials = 400
    for seed in range(trials):
        h = PairwiseHash(seed=seed)
        a = h.hash_int(17) >> 63  # top bit
        b = h.hash_int(91) >> 63
        buckets[a][b] += 1
    for row in buckets:
        for count in row:
            assert abs(count - trials / 4) < trials / 4  # loose sanity band
