"""Tests for seeded RNG helpers."""

import random

from repro.util.rng import derive_seed, resolve_rng, spawn_rng


class TestResolveRng:
    def test_none_gives_fresh_generator(self):
        rng = resolve_rng(None)
        assert isinstance(rng, random.Random)

    def test_int_seed_is_deterministic(self):
        a = resolve_rng(42)
        b = resolve_rng(42)
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_different_seeds_differ(self):
        assert resolve_rng(1).random() != resolve_rng(2).random()

    def test_existing_rng_passed_through(self):
        rng = random.Random(7)
        assert resolve_rng(rng) is rng


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(123, 4) == derive_seed(123, 4)

    def test_stream_separation(self):
        seeds = {derive_seed(123, s) for s in range(100)}
        assert len(seeds) == 100

    def test_seed_separation(self):
        seeds = {derive_seed(s, 0) for s in range(100)}
        assert len(seeds) == 100

    def test_63_bit_range(self):
        for s in range(50):
            value = derive_seed(s, s + 1)
            assert 0 <= value < 2**63


class TestSpawnRng:
    def test_children_are_independent_objects(self):
        parent = random.Random(5)
        a = spawn_rng(parent)
        b = spawn_rng(parent)
        assert a is not b
        assert a.random() != b.random()

    def test_stream_indexed_children_are_reproducible(self):
        children1 = [spawn_rng(random.Random(9), stream=i).random() for i in range(4)]
        children2 = [spawn_rng(random.Random(9), stream=i).random() for i in range(4)]
        assert children1 == children2

    def test_spawn_does_not_alias_parent_sequence(self):
        parent = random.Random(11)
        child = spawn_rng(parent)
        reference = random.Random(11)
        reference.getrandbits(63)  # parent consumed one draw
        assert parent.random() == reference.random()
        assert child.random() != parent.random()
