"""Tests for the statistics helpers."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.stats import (
    fit_power_law,
    geometric_range,
    mean,
    median,
    quantile,
    relative_error,
    stddev,
    success_rate,
    summarize_errors,
    variance,
)


class TestMedian:
    def test_odd(self):
        assert median([3, 1, 2]) == 2

    def test_even_interpolates(self):
        assert median([1, 2, 3, 4]) == 2.5

    def test_single(self):
        assert median([7]) == 7

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            median([])

    @given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=50))
    @settings(max_examples=60)
    def test_median_between_min_and_max(self, values):
        m = median(values)
        assert min(values) <= m <= max(values)


class TestMoments:
    def test_mean(self):
        assert mean([1, 2, 3]) == 2

    def test_variance_constant_is_zero(self):
        assert variance([5, 5, 5]) == 0

    def test_variance_known_value(self):
        assert variance([1, 3]) == 1

    def test_stddev_is_sqrt_of_variance(self):
        vals = [1.0, 2.0, 4.0, 8.0]
        assert stddev(vals) == pytest.approx(math.sqrt(variance(vals)))

    def test_empty_raise(self):
        with pytest.raises(ValueError):
            mean([])


class TestRelativeError:
    def test_exact(self):
        assert relative_error(10, 10) == 0

    def test_basic(self):
        assert relative_error(12, 10) == pytest.approx(0.2)

    def test_zero_truth_nonzero_estimate(self):
        assert relative_error(1, 0) == math.inf

    def test_zero_truth_zero_estimate(self):
        assert relative_error(0, 0) == 0

    def test_symmetric_around_truth(self):
        assert relative_error(8, 10) == relative_error(12, 10)


class TestSummarize:
    def test_summary_fields(self):
        s = summarize_errors([9, 10, 11], truth=10)
        assert s.truth == 10
        assert s.n_runs == 3
        assert s.mean_estimate == 10
        assert s.median_estimate == 10
        assert s.median_within == 0

    def test_median_relative_error(self):
        s = summarize_errors([5, 10, 20], truth=10)
        assert s.median_relative_error == pytest.approx(0.5)


class TestPowerLawFit:
    def test_recovers_exact_law(self):
        xs = [1, 2, 4, 8, 16]
        ys = [3 * x**-0.66 for x in xs]
        alpha, c = fit_power_law(xs, ys)
        assert alpha == pytest.approx(-0.66, abs=1e-9)
        assert c == pytest.approx(3, rel=1e-9)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            fit_power_law([1, 2], [0, 1])

    def test_rejects_single_point(self):
        with pytest.raises(ValueError):
            fit_power_law([1], [1])

    def test_rejects_constant_x(self):
        with pytest.raises(ValueError):
            fit_power_law([2, 2], [1, 3])

    @given(
        alpha=st.floats(-3, 3),
        c=st.floats(0.1, 100),
    )
    @settings(max_examples=40)
    def test_fit_inverts_generation(self, alpha, c):
        xs = [1.0, 2.0, 5.0, 10.0]
        ys = [c * x**alpha for x in xs]
        got_alpha, got_c = fit_power_law(xs, ys)
        assert got_alpha == pytest.approx(alpha, abs=1e-6)
        assert got_c == pytest.approx(c, rel=1e-6)


class TestGeometricRange:
    def test_endpoints(self):
        vals = geometric_range(1, 100, 5)
        assert vals[0] == pytest.approx(1)
        assert vals[-1] == pytest.approx(100)

    def test_count(self):
        assert len(geometric_range(1, 10, 7)) == 7

    def test_single(self):
        assert geometric_range(5, 10, 1) == [5]

    def test_constant_ratio(self):
        vals = geometric_range(2, 32, 5)
        ratios = [vals[i + 1] / vals[i] for i in range(4)]
        assert all(r == pytest.approx(ratios[0]) for r in ratios)

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            geometric_range(0, 10, 3)
        with pytest.raises(ValueError):
            geometric_range(1, 10, 0)


class TestQuantile:
    def test_median_equivalence(self):
        vals = [1.0, 2.0, 3.0, 4.0, 5.0]
        assert quantile(vals, 0.5) == median(vals)

    def test_extremes(self):
        vals = [3.0, 1.0, 2.0]
        assert quantile(vals, 0.0) == 1.0
        assert quantile(vals, 1.0) == 3.0

    def test_interpolation(self):
        assert quantile([0.0, 10.0], 0.25) == pytest.approx(2.5)

    def test_invalid_q(self):
        with pytest.raises(ValueError):
            quantile([1.0], 1.5)


class TestSuccessRate:
    def test_all_true(self):
        assert success_rate([True, True]) == 1.0

    def test_mixed(self):
        assert success_rate([True, False, False, True]) == 0.5

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            success_rate([])
