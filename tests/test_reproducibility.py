"""Seeded-determinism contract: fixed seeds produce byte-identical results.

Every stochastic component threads explicit seeds, so a (graph seed,
stream seed, algorithm seed) triple fully determines an estimate.  These
golden values pin the current behaviour; a change here means the
samplers, hashing, or estimator arithmetic changed behaviourally — which
must be deliberate (update the goldens in that case) and invalidates
recorded experiment numbers in EXPERIMENTS.md.
"""

import pytest

from repro import (
    OnePassTriangleCounter,
    TwoPassFourCycleCounter,
    TwoPassTriangleCounter,
    run_algorithm,
)
from repro.baselines import WedgeSamplingTriangleCounter
from repro.core import ThreePassTriangleCounter
from repro.graph import planted_four_cycles, planted_triangles
from repro.streaming import AdjacencyListStream


@pytest.fixture(scope="module")
def triangle_stream():
    return AdjacencyListStream(planted_triangles(600, 100, seed=42).graph, seed=7)


@pytest.fixture(scope="module")
def fourcycle_stream():
    return AdjacencyListStream(planted_four_cycles(500, 60, seed=43).graph, seed=8)


GOLDEN = {
    "two_pass": 130.5,
    "three_pass": 112.5,
    "one_pass": 100.0,
    "wedge": 97.955,
    "fourcycle": 57.10184738955823,
}


class TestGoldenEstimates:
    def test_two_pass(self, triangle_stream):
        algo = TwoPassTriangleCounter(200, seed=11)
        assert run_algorithm(algo, triangle_stream).estimate == GOLDEN["two_pass"]

    def test_three_pass(self, triangle_stream):
        algo = ThreePassTriangleCounter(200, seed=12)
        assert run_algorithm(algo, triangle_stream).estimate == GOLDEN["three_pass"]

    def test_one_pass(self, triangle_stream):
        algo = OnePassTriangleCounter(0.3, seed=13)
        assert run_algorithm(algo, triangle_stream).estimate == GOLDEN["one_pass"]

    def test_wedge_sampling(self, triangle_stream):
        algo = WedgeSamplingTriangleCounter(400, seed=14)
        assert run_algorithm(algo, triangle_stream).estimate == GOLDEN["wedge"]

    def test_fourcycle(self, fourcycle_stream):
        algo = TwoPassFourCycleCounter(250, seed=15)
        assert run_algorithm(algo, fourcycle_stream).estimate == GOLDEN["fourcycle"]


class TestRunToRunDeterminism:
    def test_same_triple_same_estimate(self, triangle_stream):
        results = {
            run_algorithm(
                TwoPassTriangleCounter(150, seed=21), triangle_stream
            ).estimate
            for _ in range(3)
        }
        assert len(results) == 1

    def test_different_algo_seeds_differ(self, triangle_stream):
        results = {
            run_algorithm(
                TwoPassTriangleCounter(150, seed=s), triangle_stream
            ).estimate
            for s in range(6)
        }
        assert len(results) > 1

    def test_graph_generation_is_seed_stable(self):
        g1 = planted_triangles(600, 100, seed=42).graph
        g2 = planted_triangles(600, 100, seed=42).graph
        assert sorted(g1.edges()) == sorted(g2.edges())
