"""Cross-cutting property-based and robustness tests.

Hypothesis-driven invariants over random graphs, pickling (which the
protocol simulator's byte accounting relies on), and contract-violation
behaviour (what happens when pass 2 does not replay pass 1's order).
"""

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.distinguisher import TwoPassTriangleDistinguisher
from repro.baselines.naive_sampling import NaiveSamplingTriangleCounter
from repro.baselines.one_pass_triangle import OnePassTriangleCounter
from repro.baselines.wedge_sampling import WedgeSamplingTriangleCounter
from repro.core.fourcycle_two_pass import TwoPassFourCycleCounter
from repro.core.triangle_three_pass import ThreePassTriangleCounter
from repro.core.triangle_two_pass import TwoPassTriangleCounter
from repro.graph.counting import count_four_cycles, count_triangles
from repro.graph.generators import gnm_random_graph
from repro.streaming.runner import run_algorithm
from repro.streaming.stream import AdjacencyListStream


def graphs(min_n=4, max_n=16):
    return st.builds(
        lambda n, frac, seed: gnm_random_graph(n, int(frac * n * (n - 1) // 2), seed=seed),
        n=st.integers(min_n, max_n),
        frac=st.floats(0.2, 0.8),
        seed=st.integers(0, 10**6),
    )


class TestExactRegimeProperties:
    """Every estimator must be exact when nothing is subsampled."""

    @given(graph=graphs(), stream_seed=st.integers(0, 10**6), algo_seed=st.integers(0, 10**6))
    @settings(max_examples=30, deadline=None)
    def test_two_pass_triangles(self, graph, stream_seed, algo_seed):
        truth = count_triangles(graph)
        budget = 2 * graph.m + 3 * truth + 5
        algo = TwoPassTriangleCounter(sample_size=budget, seed=algo_seed)
        stream = AdjacencyListStream(graph, seed=stream_seed)
        assert run_algorithm(algo, stream).estimate == pytest.approx(truth)

    @given(graph=graphs(), stream_seed=st.integers(0, 10**6), algo_seed=st.integers(0, 10**6))
    @settings(max_examples=25, deadline=None)
    def test_three_pass_triangles(self, graph, stream_seed, algo_seed):
        truth = count_triangles(graph)
        budget = 2 * graph.m + 3 * truth + 5
        algo = ThreePassTriangleCounter(sample_size=budget, seed=algo_seed)
        stream = AdjacencyListStream(graph, seed=stream_seed)
        assert run_algorithm(algo, stream).estimate == pytest.approx(truth)

    @given(graph=graphs(), stream_seed=st.integers(0, 10**6), algo_seed=st.integers(0, 10**6))
    @settings(max_examples=25, deadline=None)
    def test_one_pass_triangles(self, graph, stream_seed, algo_seed):
        algo = OnePassTriangleCounter(sample_rate=1.0, seed=algo_seed)
        stream = AdjacencyListStream(graph, seed=stream_seed)
        assert run_algorithm(algo, stream).estimate == count_triangles(graph)

    @given(graph=graphs(), stream_seed=st.integers(0, 10**6), algo_seed=st.integers(0, 10**6))
    @settings(max_examples=25, deadline=None)
    def test_wedge_sampling_triangles(self, graph, stream_seed, algo_seed):
        algo = WedgeSamplingTriangleCounter(sample_size=10**7, seed=algo_seed)
        stream = AdjacencyListStream(graph, seed=stream_seed)
        # approx: the ratio arithmetic (closed/kept * P2/2) rounds in floats
        assert run_algorithm(algo, stream).estimate == pytest.approx(
            count_triangles(graph)
        )

    @given(graph=graphs(), stream_seed=st.integers(0, 10**6), algo_seed=st.integers(0, 10**6))
    @settings(max_examples=25, deadline=None)
    def test_two_pass_four_cycles(self, graph, stream_seed, algo_seed):
        algo = TwoPassFourCycleCounter(sample_size=2 * graph.m + 2, seed=algo_seed)
        stream = AdjacencyListStream(graph, seed=stream_seed)
        assert run_algorithm(algo, stream).estimate == pytest.approx(
            count_four_cycles(graph)
        )


class TestGeneralInvariants:
    @given(
        graph=graphs(),
        budget=st.integers(1, 60),
        seed=st.integers(0, 10**6),
    )
    @settings(max_examples=30, deadline=None)
    def test_estimates_are_finite_and_nonnegative(self, graph, budget, seed):
        for algo in (
            TwoPassTriangleCounter(sample_size=budget, seed=seed),
            TwoPassFourCycleCounter(sample_size=max(budget, 2), seed=seed),
            NaiveSamplingTriangleCounter(sample_size=budget, seed=seed),
        ):
            stream = AdjacencyListStream(graph, seed=seed)
            estimate = run_algorithm(algo, stream).estimate
            assert estimate >= 0
            assert estimate == estimate  # not NaN
            assert estimate != float("inf")

    @given(graph=graphs(), seed=st.integers(0, 10**6))
    @settings(max_examples=20, deadline=None)
    def test_distinguisher_never_false_positive_on_triangle_free(self, graph, seed):
        # Delete triangles by removing one edge per triangle greedily.
        g = graph.copy()
        from repro.graph.counting import enumerate_triangles

        while True:
            tri = next(enumerate_triangles(g), None)
            if tri is None:
                break
            g.remove_edge(tri[0], tri[1])
        algo = TwoPassTriangleDistinguisher(sample_size=max(g.m, 1), seed=seed)
        stream = AdjacencyListStream(g, seed=seed)
        assert run_algorithm(algo, stream).estimate == 0.0

    @given(graph=graphs(), budget=st.integers(2, 50), seed=st.integers(0, 10**6))
    @settings(max_examples=20, deadline=None)
    def test_space_reporting_is_nonnegative_and_bounded(self, graph, budget, seed):
        algo = TwoPassTriangleCounter(sample_size=budget, seed=seed)
        stream = AdjacencyListStream(graph, seed=seed)
        result = run_algorithm(algo, stream)
        assert 0 <= result.peak_space_words
        # Generous sanity ceiling: O(m' + pairs) with small constants.
        assert result.peak_space_words <= 30 * budget + 10


class TestPickling:
    """The protocol simulator measures messages as pickled state."""

    @pytest.mark.parametrize(
        "make",
        [
            lambda: TwoPassTriangleCounter(sample_size=30, seed=1),
            lambda: ThreePassTriangleCounter(sample_size=30, seed=1),
            lambda: TwoPassFourCycleCounter(sample_size=30, seed=1),
            lambda: OnePassTriangleCounter(sample_rate=0.4, seed=1),
            lambda: WedgeSamplingTriangleCounter(sample_size=30, seed=1),
            lambda: NaiveSamplingTriangleCounter(sample_size=30, seed=1),
            lambda: TwoPassTriangleDistinguisher(sample_size=30, seed=1),
        ],
        ids=lambda f: type(f()).__name__,
    )
    def test_algorithms_picklable_mid_run(self, small_random_graph, make):
        algo = make()
        stream = AdjacencyListStream(small_random_graph, seed=2)
        # Feed exactly one pass, then pickle (a protocol message boundary).
        algo.begin_pass(0)
        for vertex, neighbors in stream.iter_lists():
            algo.begin_list(vertex)
            for nbr in neighbors:
                algo.process(vertex, nbr)
            algo.end_list(vertex, neighbors)
        algo.end_pass(0)
        blob = pickle.dumps(algo)
        assert len(blob) > 0
        clone = pickle.loads(blob)
        assert clone.space_words() == algo.space_words()

    def test_pickled_clone_continues_identically(self, small_random_graph):
        stream = AdjacencyListStream(small_random_graph, seed=3)
        algo = TwoPassTriangleCounter(sample_size=60, seed=4)
        algo.begin_pass(0)
        for vertex, neighbors in stream.iter_lists():
            algo.begin_list(vertex)
            for nbr in neighbors:
                algo.process(vertex, nbr)
            algo.end_list(vertex, neighbors)
        algo.end_pass(0)
        clone = pickle.loads(pickle.dumps(algo))

        def finish(a):
            a.begin_pass(1)
            for vertex, neighbors in stream.iter_lists():
                a.begin_list(vertex)
                for nbr in neighbors:
                    a.process(vertex, nbr)
                a.end_list(vertex, neighbors)
            a.end_pass(1)
            return a.result()

        assert finish(clone) == finish(algo)


class TestContractViolations:
    def test_mismatched_pass_orders_do_not_crash(self, small_random_graph):
        """Theorem 3.7 requires pass 2 to replay pass 1's order; violating
        that voids the guarantee but must not corrupt the machinery."""
        algo = TwoPassTriangleCounter(sample_size=50, seed=5)
        stream_a = AdjacencyListStream(small_random_graph, seed=6)
        stream_b = AdjacencyListStream(small_random_graph, seed=7)
        for pass_index, stream in enumerate((stream_a, stream_b)):
            algo.begin_pass(pass_index)
            for vertex, neighbors in stream.iter_lists():
                algo.begin_list(vertex)
                for nbr in neighbors:
                    algo.process(vertex, nbr)
                algo.end_list(vertex, neighbors)
            algo.end_pass(pass_index)
        estimate = algo.result()
        assert estimate >= 0
        assert estimate == estimate

    def test_requires_same_order_flag_documents_the_contract(self):
        assert TwoPassTriangleCounter(sample_size=5).requires_same_order
        assert not TwoPassFourCycleCounter(sample_size=5).requires_same_order
        assert not ThreePassTriangleCounter(sample_size=5).requires_same_order
