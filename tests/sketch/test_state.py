"""Tests for the SketchState container and its codecs."""

import json

import pytest

from repro.sketch.state import (
    SketchState,
    SketchStateError,
    decode_value,
    encode_value,
)


class TestValueCodec:
    @pytest.mark.parametrize(
        "value",
        [
            None,
            True,
            42,
            -7,
            3.25,
            "text",
            [1, 2, 3],
            (1, 2, 3),
            {"a": 1, "b": [2, (3, 4)]},
            {(1, 2): "tuple-key", (3, 4): "other"},
            {1, 2, 3},
            frozenset({(1, 2), (3, 4)}),
            [(1, (2, 3)), {"nested": {5, 6}}],
        ],
    )
    def test_round_trip(self, value):
        encoded = encode_value(value)
        # The encoded form must be pure JSON (serialisable + reparseable).
        rewired = json.loads(json.dumps(encoded))
        assert decode_value(rewired) == value

    def test_tuple_survives_as_tuple(self):
        assert decode_value(json.loads(json.dumps(encode_value((1, 2))))) == (1, 2)
        assert isinstance(decode_value(encode_value((1, 2))), tuple)

    def test_set_type_preserved(self):
        decoded = decode_value(json.loads(json.dumps(encode_value({3, 1, 2}))))
        assert isinstance(decoded, set)
        decoded = decode_value(encode_value(frozenset({1})))
        assert isinstance(decoded, frozenset)

    def test_non_string_dict_keys(self):
        original = {(0, 1): 5, 7: "x"}
        assert decode_value(json.loads(json.dumps(encode_value(original)))) == original


class TestSketchState:
    def make(self):
        return SketchState(
            "test-kind", 1, {"count": 3, "members": [((0, 1), 17)], "seen": {(2, 3)}}
        )

    def test_json_round_trip(self):
        state = self.make()
        again = SketchState.from_json(state.to_json())
        assert again == state

    def test_bytes_round_trip(self):
        state = self.make()
        blob = state.to_bytes()
        assert SketchState.from_bytes(blob) == state

    def test_bytes_magic_rejected(self):
        with pytest.raises(SketchStateError):
            SketchState.from_bytes(b"NOPE" + b"\x00" * 16)

    def test_truncated_rejected(self):
        blob = self.make().to_bytes()
        with pytest.raises(SketchStateError):
            SketchState.from_bytes(blob[: len(blob) - 3])

    def test_require_matches(self):
        state = self.make()
        state.require("test-kind", 1)
        with pytest.raises(SketchStateError):
            state.require("other-kind", 1)
        with pytest.raises(SketchStateError):
            state.require("test-kind", 2)

    def test_save_load(self, tmp_path):
        path = tmp_path / "state.skch"
        state = self.make()
        state.save(path)
        assert SketchState.load(path) == state
        # Atomic write: no stray temp files left behind.
        assert [p.name for p in tmp_path.iterdir()] == ["state.skch"]
