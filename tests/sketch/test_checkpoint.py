"""Tests for checkpoint/resume and the algorithm snapshot round trip."""

import pytest

from repro.core.fourcycle_two_pass import TwoPassFourCycleCounter
from repro.core.triangle_two_pass import TwoPassTriangleCounter
from repro.graph.generators import gnm_random_graph
from repro.sketch.checkpoint import (
    Checkpoint,
    CheckpointConfig,
    fingerprint_stream,
    load_checkpoint,
    load_checkpoint_if_exists,
    require_matching_stream,
)
from repro.sketch.driver import run_sharded
from repro.sketch.state import SketchStateError
from repro.streaming.runner import run_algorithm
from repro.streaming.stream import AdjacencyListStream


@pytest.fixture(scope="module")
def workload():
    graph = gnm_random_graph(40, 200, seed=21)
    return graph, AdjacencyListStream(graph, seed=22)


class CrashingStream:
    """Stream wrapper that dies after yielding ``survive_lists`` lists.

    Emulates a process kill mid-pass; the count applies across all passes
    cumulatively, so the crash lands wherever ``survive_lists`` points.
    """

    def __init__(self, stream, survive_lists):
        self._stream = stream
        self._remaining = survive_lists

    def iter_lists(self):
        for entry in self._stream.iter_lists():
            if self._remaining <= 0:
                raise RuntimeError("simulated crash")
            self._remaining -= 1
            yield entry

    def __len__(self):
        return len(self._stream)


class TestSnapshotRoundTrip:
    @pytest.mark.parametrize(
        "make",
        [
            lambda: TwoPassTriangleCounter(sample_size=32, seed=4),
            lambda: TwoPassTriangleCounter(sample_size=32, seed=4, sharded=True),
            lambda: TwoPassFourCycleCounter(sample_size=32, seed=4),
        ],
        ids=["triangle", "triangle-sharded", "fourcycle"],
    )
    def test_mid_stream_snapshot_resumes_identically(self, workload, make):
        _, stream = workload
        lists = [(v, tuple(nbrs)) for v, nbrs in stream.iter_lists()]
        cut = len(lists) // 3

        reference = make()
        for pass_index in range(reference.n_passes):
            reference.begin_pass(pass_index)
            for vertex, neighbors in lists:
                reference.begin_list(vertex)
                for nbr in neighbors:
                    reference.process(vertex, nbr)
                reference.end_list(vertex, neighbors)
            reference.end_pass(pass_index)

        subject = make()
        subject.begin_pass(0)
        for vertex, neighbors in lists[:cut]:
            subject.begin_list(vertex)
            for nbr in neighbors:
                subject.process(vertex, nbr)
            subject.end_list(vertex, neighbors)

        resumed = make()
        resumed.restore(subject.snapshot())
        for vertex, neighbors in lists[cut:]:
            resumed.begin_list(vertex)
            for nbr in neighbors:
                resumed.process(vertex, nbr)
            resumed.end_list(vertex, neighbors)
        resumed.end_pass(0)
        for pass_index in range(1, resumed.n_passes):
            resumed.begin_pass(pass_index)
            for vertex, neighbors in lists:
                resumed.begin_list(vertex)
                for nbr in neighbors:
                    resumed.process(vertex, nbr)
                resumed.end_list(vertex, neighbors)
            resumed.end_pass(pass_index)

        assert resumed.result() == reference.result()
        assert resumed.snapshot().payload == reference.snapshot().payload

    def test_from_state_classmethods(self, workload):
        _, stream = workload
        for algo in (
            TwoPassTriangleCounter(sample_size=16, seed=1),
            TwoPassFourCycleCounter(sample_size=16, seed=1),
        ):
            run_algorithm(algo, stream)
            clone = type(algo).from_state(algo.snapshot())
            assert clone.result() == algo.result()


class TestCrashAndResume:
    def test_resumed_run_matches_uninterrupted(self, workload, tmp_path):
        _, stream = workload
        path = tmp_path / "run.ckpt"
        uninterrupted = run_algorithm(
            TwoPassTriangleCounter(sample_size=48, seed=6), stream
        ).estimate

        fingerprint = fingerprint_stream(stream)
        config = CheckpointConfig(path, every_lists=7, stream_fingerprint=fingerprint)
        n_lists = sum(1 for _ in stream.iter_lists())
        with pytest.raises(RuntimeError):
            run_algorithm(
                TwoPassTriangleCounter(sample_size=48, seed=6),
                CrashingStream(stream, n_lists + n_lists // 2),  # dies mid-pass 2
                checkpoint=config,
            )

        checkpoint = load_checkpoint(path)
        require_matching_stream(checkpoint, stream)
        # A different-seed instance proves restore() replaces everything.
        resumed = run_algorithm(
            TwoPassTriangleCounter(sample_size=48, seed=999),
            stream,
            checkpoint=CheckpointConfig(path, every_lists=7),
            resume_from=checkpoint,
        )
        assert resumed.estimate == uninterrupted

    def test_sharded_resume_from_pass_boundary(self, workload, tmp_path):
        _, stream = workload
        path = tmp_path / "sharded.ckpt"
        full = run_sharded(
            TwoPassTriangleCounter(sample_size=48, seed=6, sharded=True),
            stream,
            2,
            merge_seed=3,
            checkpoint=CheckpointConfig(path),
        )
        checkpoint = load_checkpoint(path)
        assert (checkpoint.pass_index, checkpoint.lists_done) == (2, 0)

        # Replay only the second pass from the pass-1 boundary: kill the run
        # right after the pass-1 checkpoint lands on disk, then resume.
        crash_path = tmp_path / "crash.ckpt"
        algo = TwoPassTriangleCounter(sample_size=48, seed=6, sharded=True)
        config = _CrashAfterFirstWrite(crash_path)
        with pytest.raises(RuntimeError):
            run_sharded(algo, stream, 2, merge_seed=3, checkpoint=config)
        boundary = load_checkpoint(crash_path)
        assert (boundary.pass_index, boundary.lists_done) == (1, 0)
        resumed = run_sharded(
            TwoPassTriangleCounter(sample_size=48, seed=999, sharded=True),
            stream,
            2,
            merge_seed=3,
            checkpoint=CheckpointConfig(crash_path),
            resume_from=boundary,
        )
        assert resumed.estimate == full.estimate

    def test_sharded_rejects_mid_pass_checkpoint(self, workload, tmp_path):
        _, stream = workload
        algo = TwoPassTriangleCounter(sample_size=16, seed=1, sharded=True)
        bogus = Checkpoint(
            algorithm_state=algo.snapshot(), pass_index=0, lists_done=5
        )
        with pytest.raises(SketchStateError):
            run_sharded(algo, stream, 2, resume_from=bogus)


class _CrashAfterFirstWrite(CheckpointConfig):
    """Dies right after the first checkpoint hits disk (a kill mid-run)."""

    def write(self, *args, **kwargs):
        record = super().write(*args, **kwargs)
        if record.pass_index == 1:
            raise RuntimeError("simulated crash after pass-1 checkpoint")
        return record


class TestCheckpointFiles:
    def test_round_trip(self, workload, tmp_path):
        _, stream = workload
        algo = TwoPassTriangleCounter(sample_size=8, seed=1)
        checkpoint = Checkpoint(
            algorithm_state=algo.snapshot(),
            pass_index=1,
            lists_done=12,
            meter_state={"current_words": 40, "peak_words": 90},
            stream_fingerprint=fingerprint_stream(stream),
        )
        path = tmp_path / "c.ckpt"
        record = checkpoint.save(path)
        assert record.pass_index == 1
        assert record.lists_done == 12
        assert record.algorithm_kind == "triangle-two-pass"
        again = load_checkpoint(path)
        assert again.pass_index == 1
        assert again.lists_done == 12
        assert again.algorithm_state.payload == checkpoint.algorithm_state.payload
        assert again.matches_stream(fingerprint_stream(stream))

    def test_missing_file_returns_none(self, tmp_path):
        assert load_checkpoint_if_exists(tmp_path / "nope.ckpt") is None

    def test_fingerprint_mismatch_refused(self, workload, tmp_path):
        _, stream = workload
        other = AdjacencyListStream(gnm_random_graph(40, 200, seed=99), seed=98)
        algo = TwoPassTriangleCounter(sample_size=8, seed=1)
        checkpoint = Checkpoint(
            algorithm_state=algo.snapshot(),
            pass_index=0,
            lists_done=0,
            stream_fingerprint=fingerprint_stream(other),
        )
        with pytest.raises(SketchStateError):
            require_matching_stream(checkpoint, stream)

    def test_empty_fingerprint_accepts_any_stream(self, workload):
        _, stream = workload
        algo = TwoPassTriangleCounter(sample_size=8, seed=1)
        checkpoint = Checkpoint(
            algorithm_state=algo.snapshot(), pass_index=0, lists_done=0
        )
        require_matching_stream(checkpoint, stream)  # no raise

    def test_config_rejects_nonpositive_interval(self, tmp_path):
        with pytest.raises(ValueError):
            CheckpointConfig(tmp_path / "x.ckpt", every_lists=0)
