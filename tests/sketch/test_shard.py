"""Tests for the vertex-shard stream partitioner."""

import pytest

from repro.graph.generators import gnm_random_graph
from repro.sketch.shard import (
    STRATEGIES,
    StreamShard,
    partition_stream,
    shard_pair_counts,
)
from repro.streaming.stream import AdjacencyListStream


@pytest.fixture(scope="module")
def stream():
    return AdjacencyListStream(gnm_random_graph(60, 240, seed=5), seed=6)


class TestPartitionInvariants:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    @pytest.mark.parametrize("n_shards", [1, 2, 3, 7])
    def test_every_list_exactly_once(self, stream, strategy, n_shards):
        shards = partition_stream(stream, n_shards, strategy)
        assert len(shards) == n_shards
        original = [(v, tuple(nbrs)) for v, nbrs in stream.iter_lists()]
        scattered = [entry for shard in shards for entry in shard.lists]
        assert sorted(scattered) == sorted(original)

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_relative_order_preserved(self, stream, strategy):
        order = {
            vertex: i for i, (vertex, _) in enumerate(stream.iter_lists())
        }
        for shard in partition_stream(stream, 4, strategy):
            positions = [order[vertex] for vertex, _ in shard.iter_lists()]
            assert positions == sorted(positions)

    def test_pair_totals_preserved(self, stream):
        for strategy in STRATEGIES:
            counts = shard_pair_counts(partition_stream(stream, 4, strategy))
            assert sum(counts) == len(stream)

    def test_more_shards_than_lists_gives_empty_shards(self):
        lists = [(0, (1,)), (1, (0,))]
        shards = partition_stream(lists, 5)
        assert len(shards) == 5
        assert sum(shard.n_lists for shard in shards) == 2
        assert any(shard.n_lists == 0 for shard in shards)

    def test_hash_strategy_order_independent(self, stream):
        entries = [(v, tuple(nbrs)) for v, nbrs in stream.iter_lists()]
        forward = partition_stream(entries, 3, "hash")
        backward = partition_stream(list(reversed(entries)), 3, "hash")
        for fwd, bwd in zip(forward, backward):
            assert sorted(fwd.lists) == sorted(bwd.lists)


class TestShardObject:
    def test_iter_pairs_matches_lists(self):
        shard = StreamShard(index=0, lists=((0, (1, 2)), (3, (4,))))
        assert list(shard.iter_pairs()) == [(0, 1), (0, 2), (3, 4)]
        assert len(shard) == 3
        assert shard.n_lists == 2


class TestErrors:
    def test_zero_shards_rejected(self, stream):
        with pytest.raises(ValueError):
            partition_stream(stream, 0)

    def test_unknown_strategy_rejected(self, stream):
        with pytest.raises(ValueError):
            partition_stream(stream, 2, "round-robin")
