"""Tests for sketch-state merging, including the bottom-k identity property."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sketch.merge import (
    MergeError,
    merge_bottom_k_payloads,
    merge_reservoir_payloads,
    merge_states,
)
from repro.sketch.samplers import bottom_k_from_state, bottom_k_state
from repro.sketch.state import SketchState
from repro.util.sampling import BottomKSampler, ReservoirSampler


class TestBottomKMergeProperty:
    """Satellite: merged per-shard samplers == one sampler over everything."""

    @given(
        keys=st.lists(st.integers(min_value=0, max_value=10_000), max_size=120),
        capacity=st.integers(min_value=1, max_value=12),
        n_shards=st.integers(min_value=1, max_value=5),
        hash_seed=st.integers(min_value=0, max_value=2**32),
        partition_seed=st.integers(min_value=0, max_value=2**32),
    )
    @settings(max_examples=60, deadline=None)
    def test_bit_identical_to_concatenated_stream(
        self, keys, capacity, n_shards, hash_seed, partition_seed
    ):
        reference = BottomKSampler(capacity, seed=hash_seed)
        empty = bottom_k_state(reference)
        for key in keys:
            reference.offer(key)

        rng = random.Random(partition_seed)
        shard_keys = [[] for _ in range(n_shards)]
        for key in keys:
            shard_keys[rng.randrange(n_shards)].append(key)

        states = []
        for part_keys in shard_keys:
            part = bottom_k_from_state(empty)
            for key in part_keys:
                part.offer(key)
            states.append(bottom_k_state(part))

        merged = merge_states(states)
        assert merged.payload == bottom_k_state(reference).payload

    def test_merged_state_restores_to_working_sampler(self):
        reference = BottomKSampler(5, seed=3)
        empty = bottom_k_state(reference)
        a = bottom_k_from_state(empty)
        b = bottom_k_from_state(empty)
        for key in range(50):
            (a if key % 2 else b).offer(key)
            reference.offer(key)
        merged = bottom_k_from_state(merge_states([bottom_k_state(a), bottom_k_state(b)]))
        # Restored sampler must continue exactly like the reference.
        for key in range(50, 80):
            merged.offer(key)
            reference.offer(key)
        assert merged.state_dict() == reference.state_dict()


class TestBottomKMergeErrors:
    def test_capacity_mismatch_refused(self):
        a = bottom_k_state(BottomKSampler(3, seed=1)).payload
        b = bottom_k_state(BottomKSampler(4, seed=1)).payload
        with pytest.raises(MergeError):
            merge_bottom_k_payloads([a, b])

    def test_hash_mismatch_refused(self):
        a = bottom_k_state(BottomKSampler(3, seed=1)).payload
        b = bottom_k_state(BottomKSampler(3, seed=2)).payload
        with pytest.raises(MergeError):
            merge_bottom_k_payloads([a, b])

    def test_empty_merge_refused(self):
        with pytest.raises(MergeError):
            merge_states([])

    def test_unknown_kind_refused(self):
        with pytest.raises(MergeError):
            merge_states([SketchState("mystery", 1, {})])

    def test_kind_disagreement_refused(self):
        with pytest.raises(Exception):
            merge_states(
                [SketchState("bottom-k-sampler", 1, {}), SketchState("mystery", 1, {})]
            )


class TestReservoirMerge:
    def _reservoir_payload(self, items, offered, capacity=4, seed=0):
        sampler = ReservoirSampler(capacity, seed=seed)
        state = sampler.state_dict()
        state["items"] = list(items)
        state["offered"] = offered
        return state

    def test_disjoint_union_small_enough_keeps_everything(self):
        a = self._reservoir_payload(["a1", "a2"], offered=2)
        b = self._reservoir_payload(["b1"], offered=1)
        merged = merge_reservoir_payloads([a, b], None, random.Random(0))
        assert sorted(merged["items"]) == ["a1", "a2", "b1"]
        assert merged["offered"] == 3
        assert merged["capacity"] == 4

    def test_disjoint_overflow_draws_capacity_items(self):
        a = self._reservoir_payload(["a1", "a2", "a3", "a4"], offered=40)
        b = self._reservoir_payload(["b1", "b2", "b3", "b4"], offered=40)
        merged = merge_reservoir_payloads([a, b], None, random.Random(1))
        assert len(merged["items"]) == 4
        assert merged["offered"] == 80
        assert set(merged["items"]) <= {"a1", "a2", "a3", "a4", "b1", "b2", "b3", "b4"}

    def test_allocation_tracks_offered_counts(self):
        # Shard a saw 100x the candidates of shard b: nearly all slots
        # should come from a.  (Statistical, but overwhelmingly certain.)
        a = self._reservoir_payload(["a1", "a2", "a3", "a4"], offered=4000)
        b = self._reservoir_payload(["b1", "b2", "b3", "b4"], offered=40)
        counts = {"a": 0, "b": 0}
        for trial in range(50):
            merged = merge_reservoir_payloads([a, b], None, random.Random(trial))
            for item in merged["items"]:
                counts[item[0]] += 1
        assert counts["a"] > counts["b"] * 5

    def test_base_items_kept_only_if_surviving_everywhere(self):
        base = self._reservoir_payload(["x", "y"], offered=2)
        a = self._reservoir_payload(["x", "y", "a1"], offered=5)
        b = self._reservoir_payload(["x", "b1"], offered=5)  # y fell out in b
        merged = merge_reservoir_payloads([a, b], base, random.Random(0))
        assert "x" in merged["items"]
        assert "y" not in merged["items"]


class TestCounterDeltas:
    def test_triangle_counters_delta_sum(self):
        from repro.core.triangle_two_pass import TwoPassTriangleCounter

        base_algo = TwoPassTriangleCounter(sample_size=4, seed=1, sharded=True)
        base = base_algo.snapshot()

        def advanced(pairs):
            algo = TwoPassTriangleCounter(sample_size=4, seed=1, sharded=True)
            algo.restore(base)
            algo.begin_pass(0)
            for src, dst in pairs:
                algo.begin_list(src)
                algo.process(src, dst)
                algo.end_list(src, (dst,))
            return algo.snapshot()

        s1 = advanced([(1, 2), (2, 1)])
        s2 = advanced([(3, 4), (4, 3), (4, 5)])
        merged = merge_states([s1, s2], base=base)
        assert merged.payload["pair_count"] == 5
