"""Tests for the shard-and-merge driver."""

import pytest

from repro.core.fourcycle_two_pass import TwoPassFourCycleCounter
from repro.core.triangle_two_pass import TwoPassTriangleCounter
from repro.graph.counting import count_triangles
from repro.graph.generators import gnm_random_graph
from repro.sketch.driver import restore_algorithm, run_sharded
from repro.sketch.state import SketchState, SketchStateError
from repro.streaming.algorithm import FixedValueAlgorithm
from repro.streaming.runner import run_algorithm
from repro.streaming.stream import AdjacencyListStream


@pytest.fixture(scope="module")
def workload():
    graph = gnm_random_graph(50, 300, seed=11)
    return graph, AdjacencyListStream(graph, seed=12)


class TestExactness:
    def test_fourcycle_sharded_equals_conventional(self, workload):
        graph, stream = workload
        conventional = run_algorithm(
            TwoPassFourCycleCounter(sample_size=2 * graph.m, seed=7), stream
        ).estimate
        for n_shards in (1, 2, 4):
            result = run_sharded(
                TwoPassFourCycleCounter(sample_size=2 * graph.m, seed=7),
                stream,
                n_shards,
            )
            assert result.estimate == conventional
            assert result.n_shards == n_shards

    def test_triangle_full_sample_shard_invariant(self, workload):
        graph, stream = workload
        # Large enough that both the edge sample and the candidate
        # reservoir are unsaturated: the estimate is then the exact
        # triangle count, for every shard count.
        truth = count_triangles(graph)
        size = 2 * graph.m + 3 * truth
        for n_shards in (1, 2, 4):
            estimate = run_sharded(
                TwoPassTriangleCounter(sample_size=size, seed=7, sharded=True),
                stream,
                n_shards,
            ).estimate
            assert estimate == truth

    def test_serial_and_parallel_schedules_bit_identical(self, workload):
        graph, stream = workload
        serial = run_sharded(
            TwoPassTriangleCounter(sample_size=64, seed=3, sharded=True),
            stream,
            4,
            workers=None,
            merge_seed=5,
        )
        pooled = run_sharded(
            TwoPassTriangleCounter(sample_size=64, seed=3, sharded=True),
            stream,
            4,
            workers=4,
            merge_seed=5,
        )
        assert serial.estimate == pooled.estimate
        assert pooled.workers == 4

    def test_final_state_restored_into_caller_instance(self, workload):
        graph, stream = workload
        algo = TwoPassTriangleCounter(sample_size=2 * graph.m, seed=7, sharded=True)
        result = run_sharded(algo, stream, 2)
        assert algo.result() == result.estimate

    def test_shard_pairs_cover_stream(self, workload):
        _, stream = workload
        result = run_sharded(
            TwoPassFourCycleCounter(sample_size=16, seed=1), stream, 3
        )
        assert sum(result.shard_pairs) == len(stream)
        assert result.pairs_per_pass == len(stream)


class TestRestoreRegistry:
    def test_round_trip_through_registry(self, workload):
        graph, stream = workload
        algo = TwoPassTriangleCounter(sample_size=32, seed=2, sharded=True)
        run_algorithm(algo, stream)
        clone = restore_algorithm(algo.snapshot())
        assert isinstance(clone, TwoPassTriangleCounter)
        assert clone.result() == algo.result()

    def test_unknown_kind_rejected(self):
        with pytest.raises(SketchStateError):
            restore_algorithm(SketchState("no-such-algorithm", 1, {}))


class TestErrors:
    def test_snapshotless_algorithm_rejected(self, workload):
        _, stream = workload
        with pytest.raises(SketchStateError):
            run_sharded(FixedValueAlgorithm(1.0), stream, 2)
