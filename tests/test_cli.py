"""Tests for the repro-cycles command-line interface."""

import pytest

from repro.cli import main
from repro.graph.counting import count_triangles
from repro.graph.io import read_adjacency_list, read_edge_list


@pytest.fixture()
def graph_file(tmp_path):
    path = tmp_path / "g.adj"
    assert (
        main(
            [
                "generate",
                "--family",
                "planted-triangles",
                "--m",
                "400",
                "--count",
                "40",
                "--seed",
                "1",
                "--out",
                str(path),
            ]
        )
        == 0
    )
    return path


class TestGenerate:
    def test_adjacency_output(self, graph_file):
        graph = read_adjacency_list(graph_file)
        assert count_triangles(graph) == 40

    def test_edge_list_output(self, tmp_path):
        out = tmp_path / "g.edges"
        main(["generate", "--family", "gnm", "--n", "50", "--m", "120",
              "--out", str(out)])
        graph = read_edge_list(out)
        assert graph.m == 120

    @pytest.mark.parametrize(
        "family,extra",
        [
            ("gnp", ["--n", "30", "--p", "0.2"]),
            ("ba", ["--n", "40", "--attach", "2"]),
            ("powerlaw", ["--n", "40", "--attach", "2", "--p", "0.5"]),
            ("planted-4cycles", ["--m", "100", "--count", "10"]),
        ],
    )
    def test_all_families(self, tmp_path, family, extra):
        out = tmp_path / "fam.edges"
        assert main(["generate", "--family", family, "--out", str(out)] + extra) == 0
        assert read_edge_list(out).m > 0

    def test_unknown_family(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["generate", "--family", "nope", "--out", str(tmp_path / "x.adj")])


class TestCount:
    def test_exact(self, graph_file, capsys):
        assert main(["count", str(graph_file), "--algorithm", "exact"]) == 0
        out = capsys.readouterr().out
        assert "estimated 3-cycles: 40.0" in out

    @pytest.mark.parametrize(
        "algorithm", ["two-pass", "three-pass", "one-pass", "wedge", "naive"]
    )
    def test_triangle_algorithms_run(self, graph_file, algorithm, capsys):
        assert (
            main(
                [
                    "count",
                    str(graph_file),
                    "--algorithm",
                    algorithm,
                    "--sample-size",
                    "2000",
                    "--seed",
                    "3",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        value = float(out.split("estimated 3-cycles: ")[1].split()[0])
        assert 20 <= value <= 80  # generous band around 40

    def test_fourcycle_two_pass(self, graph_file, capsys):
        assert main(["count", str(graph_file), "--length", "4"]) == 0
        assert "estimated 4-cycles" in capsys.readouterr().out

    def test_boosted_copies(self, graph_file, capsys):
        assert main(["count", str(graph_file), "--copies", "3",
                     "--sample-size", "500"]) == 0
        assert "estimated 3-cycles" in capsys.readouterr().out

    def test_long_cycles_need_exact(self, graph_file):
        with pytest.raises(SystemExit, match="Theorem 5.5"):
            main(["count", str(graph_file), "--length", "5"])

    def test_long_cycles_exact_works(self, graph_file, capsys):
        assert main(["count", str(graph_file), "--length", "5",
                     "--algorithm", "exact"]) == 0
        assert "estimated 5-cycles: 0.0" in capsys.readouterr().out

    def test_unknown_algorithm(self, graph_file):
        with pytest.raises(SystemExit):
            main(["count", str(graph_file), "--algorithm", "bogus"])


class TestSharded:
    def test_shards_match_single_shard(self, graph_file, capsys):
        base = ["count", str(graph_file), "--sample-size", "4000", "--seed", "3"]
        assert main(base) == 0
        single = capsys.readouterr().out
        single_estimate = single.split("estimated 3-cycles: ")[1].split()[0]
        assert main(base + ["--shards", "4"]) == 0
        sharded = capsys.readouterr().out
        # Full-sample regime: the hash-designated sharded estimator is
        # exact, so it agrees with the conventional run's exact value.
        assert f"estimated 3-cycles: {single_estimate}" in sharded
        assert "shards=4" in sharded

    def test_sharded_fourcycle(self, graph_file, capsys):
        assert main(["count", str(graph_file), "--length", "4",
                     "--shards", "2", "--sample-size", "200"]) == 0
        out = capsys.readouterr().out
        assert "estimated 4-cycles" in out
        assert "shards=2" in out

    def test_shards_reject_copies(self, graph_file):
        with pytest.raises(SystemExit, match="copies"):
            main(["count", str(graph_file), "--shards", "2", "--copies", "3"])

    def test_shards_reject_unsupported_algorithm(self, graph_file):
        with pytest.raises(SystemExit, match="two-pass"):
            main(["count", str(graph_file), "--shards", "2",
                  "--algorithm", "exact"])


class TestCheckpoint:
    def test_resume_requires_checkpoint(self, graph_file):
        with pytest.raises(SystemExit, match="--checkpoint"):
            main(["count", str(graph_file), "--resume"])

    def test_checkpoint_then_resume(self, graph_file, tmp_path, capsys):
        ckpt = str(tmp_path / "run.ckpt")
        base = ["count", str(graph_file), "--sample-size", "500", "--seed", "3"]
        assert main(base + ["--checkpoint", ckpt, "--checkpoint-every", "50"]) == 0
        first = capsys.readouterr().out
        estimate = first.split("estimated 3-cycles: ")[1].split()[0]
        # Resuming from the completed run's final checkpoint replays
        # nothing and reports the identical estimate.
        assert main(base + ["--checkpoint", ckpt, "--resume"]) == 0
        resumed = capsys.readouterr().out
        assert "resuming from" in resumed
        assert f"estimated 3-cycles: {estimate}" in resumed

    def test_sharded_checkpoint(self, graph_file, tmp_path, capsys):
        ckpt = str(tmp_path / "sharded.ckpt")
        assert main(["count", str(graph_file), "--shards", "2",
                     "--sample-size", "500", "--checkpoint", ckpt]) == 0
        capsys.readouterr()
        from repro.sketch.checkpoint import load_checkpoint

        record = load_checkpoint(ckpt)
        assert (record.pass_index, record.lists_done) == (2, 0)


class TestValidate:
    def test_valid_file(self, graph_file, capsys):
        assert main(["validate", str(graph_file)]) == 0
        out = capsys.readouterr().out
        assert "OK" in out
        assert "pairs:" in out
        assert "lists:" in out
        assert "edges:" in out
        assert "max list length:" in out

    def test_summary_counts_consistent(self, graph_file, capsys):
        from repro.graph.io import read_adjacency_list

        graph = read_adjacency_list(graph_file)
        assert main(["validate", str(graph_file)]) == 0
        out = capsys.readouterr().out
        assert f"edges:           {graph.m}" in out
        assert f"pairs:           {2 * graph.m}" in out

    def test_invalid_file_exits_nonzero(self, tmp_path, capsys):
        bad = tmp_path / "bad.edges"
        bad.write_text("1 1\n")  # self loop violates the model
        assert main(["validate", str(bad)]) == 1
        err = capsys.readouterr().err
        assert "INVALID" in err

    def test_missing_file_exits_nonzero(self, tmp_path, capsys):
        assert main(["validate", str(tmp_path / "nope.edges")]) == 1
        assert "INVALID" in capsys.readouterr().err


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])

    def test_experiment_rejects_unknown(self):
        with pytest.raises(SystemExit):
            main(["experiment", "bogus"])


class TestAdaptiveAndExperiments:
    def test_adaptive_algorithm(self, graph_file, capsys):
        assert (
            main(["count", str(graph_file), "--algorithm", "adaptive",
                  "--sample-size", "400", "--seed", "5"])
            == 0
        )
        out = capsys.readouterr().out
        value = float(out.split("estimated 3-cycles: ")[1].split()[0])
        assert 15 <= value <= 90

    def test_experiment_table1(self, capsys):
        assert main(["experiment", "table1", "--runs", "3"]) == 0
        out = capsys.readouterr().out
        assert "Thm 3.7" in out

    def test_experiment_table1_with_workers(self, capsys):
        """--workers N fans trials out over processes; --workers 2 here
        must print the same rows as the serial run (bit-identical)."""
        assert main(["experiment", "table1", "--runs", "3"]) == 0
        serial_out = capsys.readouterr().out
        assert main(["experiment", "table1", "--runs", "3", "--workers", "2"]) == 0
        assert capsys.readouterr().out == serial_out

    def test_workers_documented_in_help(self, capsys):
        with pytest.raises(SystemExit):
            main(["experiment", "--help"])
        assert "--workers" in capsys.readouterr().out

    def test_experiment_figure1(self, capsys):
        assert main(["experiment", "figure1"]) == 0
        assert "Figure 1e" in capsys.readouterr().out


class TestObservability:
    """count --telemetry/--trace artifacts and the report subcommands."""

    def test_count_trace_writes_loadable_chrome_trace(self, graph_file, tmp_path, capsys):
        from repro.obs.trace import read_chrome_trace

        trace = tmp_path / "run.trace"
        assert main(
            ["count", str(graph_file), "--sample-size", "64", "--trace", str(trace)]
        ) == 0
        capsys.readouterr()
        spans = read_chrome_trace(str(trace))
        paths = {span.path for span in spans}
        assert {"run", "run/pass:0", "run/pass:1"} <= paths

    def test_failing_run_leaves_parseable_jsonl(self, graph_file, tmp_path):
        from repro.obs.events import RunStarted
        from repro.obs.sinks import read_jsonl_events

        log = tmp_path / "fail.jsonl"
        # naive sampling has no snapshot support, so --checkpoint aborts the
        # run after the telemetry sink is already open.
        with pytest.raises(SystemExit, match="snapshot"):
            main(
                [
                    "count", str(graph_file), "--algorithm", "naive",
                    "--telemetry", str(log),
                    "--checkpoint", str(tmp_path / "x.ckpt"),
                ]
            )
        events = read_jsonl_events(str(log))  # parseable despite the abort
        assert not any(isinstance(e, RunStarted) for e in events)

    def test_bench_report_consumes_count_telemetry_log(self, graph_file, tmp_path, capsys):
        logs = []
        for name in ("a.jsonl", "b.jsonl"):
            log = tmp_path / name
            assert main(
                [
                    "count", str(graph_file), "--sample-size", "64",
                    "--telemetry", str(log),
                ]
            ) == 0
            logs.append(str(log))
        capsys.readouterr()
        assert main(
            ["bench-report", logs[1], "--against", logs[0], "--threshold", "0.35"]
        ) == 0
        out = capsys.readouterr().out
        assert "a.jsonl" in out and "b.jsonl" in out

    def test_obs_report_subcommand(self, graph_file, tmp_path, capsys):
        log = tmp_path / "run.jsonl"
        trace = tmp_path / "run.trace"
        assert main(
            [
                "count", str(graph_file), "--sample-size", "64",
                "--telemetry", str(log), "--trace", str(trace),
            ]
        ) == 0
        capsys.readouterr()
        assert main(
            [
                "obs-report", "--log", str(log), "--trace", str(trace),
                "--truth", "40", "--format", "markdown",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "pass:0" in out and "onvergence" in out

    def test_telemetry_unknown_extension_is_an_error(self, graph_file, tmp_path):
        with pytest.raises(SystemExit, match="extension"):
            main(
                [
                    "count", str(graph_file),
                    "--telemetry", str(tmp_path / "log.csv"),
                ]
            )
        assert not (tmp_path / "log.csv").exists()


class TestAlgorithms:
    def test_table_lists_all_specs(self, capsys):
        assert main(["algorithms"]) == 0
        out = capsys.readouterr().out
        assert "triangle-two-pass" in out
        assert "fourcycle-two-pass" in out
        assert "serve" in out  # the serve-compatibility column

    def test_json_listing(self, capsys):
        import json

        assert main(["algorithms", "--json"]) == 0
        listing = json.loads(capsys.readouterr().out)
        assert len(listing) == 13
        by_name = {entry["name"]: entry for entry in listing}
        assert by_name["triangle-two-pass"]["serve_compatible"] is True
        assert by_name["triangle-two-pass"]["passes"] == 2
        assert by_name["triangle-exact"]["serve_compatible"] is False
        for entry in listing:
            assert {"name", "cycle_length", "passes", "budget_kind",
                    "snapshot", "anytime", "serve_compatible"} <= set(entry)
