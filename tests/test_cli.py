"""Tests for the repro-cycles command-line interface."""

import pytest

from repro.cli import main
from repro.graph.counting import count_triangles
from repro.graph.io import read_adjacency_list, read_edge_list


@pytest.fixture()
def graph_file(tmp_path):
    path = tmp_path / "g.adj"
    assert (
        main(
            [
                "generate",
                "--family",
                "planted-triangles",
                "--m",
                "400",
                "--count",
                "40",
                "--seed",
                "1",
                "--out",
                str(path),
            ]
        )
        == 0
    )
    return path


class TestGenerate:
    def test_adjacency_output(self, graph_file):
        graph = read_adjacency_list(graph_file)
        assert count_triangles(graph) == 40

    def test_edge_list_output(self, tmp_path):
        out = tmp_path / "g.edges"
        main(["generate", "--family", "gnm", "--n", "50", "--m", "120",
              "--out", str(out)])
        graph = read_edge_list(out)
        assert graph.m == 120

    @pytest.mark.parametrize(
        "family,extra",
        [
            ("gnp", ["--n", "30", "--p", "0.2"]),
            ("ba", ["--n", "40", "--attach", "2"]),
            ("powerlaw", ["--n", "40", "--attach", "2", "--p", "0.5"]),
            ("planted-4cycles", ["--m", "100", "--count", "10"]),
        ],
    )
    def test_all_families(self, tmp_path, family, extra):
        out = tmp_path / "fam.edges"
        assert main(["generate", "--family", family, "--out", str(out)] + extra) == 0
        assert read_edge_list(out).m > 0

    def test_unknown_family(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["generate", "--family", "nope", "--out", str(tmp_path / "x.adj")])


class TestCount:
    def test_exact(self, graph_file, capsys):
        assert main(["count", str(graph_file), "--algorithm", "exact"]) == 0
        out = capsys.readouterr().out
        assert "estimated 3-cycles: 40.0" in out

    @pytest.mark.parametrize(
        "algorithm", ["two-pass", "three-pass", "one-pass", "wedge", "naive"]
    )
    def test_triangle_algorithms_run(self, graph_file, algorithm, capsys):
        assert (
            main(
                [
                    "count",
                    str(graph_file),
                    "--algorithm",
                    algorithm,
                    "--sample-size",
                    "2000",
                    "--seed",
                    "3",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        value = float(out.split("estimated 3-cycles: ")[1].split()[0])
        assert 20 <= value <= 80  # generous band around 40

    def test_fourcycle_two_pass(self, graph_file, capsys):
        assert main(["count", str(graph_file), "--length", "4"]) == 0
        assert "estimated 4-cycles" in capsys.readouterr().out

    def test_boosted_copies(self, graph_file, capsys):
        assert main(["count", str(graph_file), "--copies", "3",
                     "--sample-size", "500"]) == 0
        assert "estimated 3-cycles" in capsys.readouterr().out

    def test_long_cycles_need_exact(self, graph_file):
        with pytest.raises(SystemExit, match="Theorem 5.5"):
            main(["count", str(graph_file), "--length", "5"])

    def test_long_cycles_exact_works(self, graph_file, capsys):
        assert main(["count", str(graph_file), "--length", "5",
                     "--algorithm", "exact"]) == 0
        assert "estimated 5-cycles: 0.0" in capsys.readouterr().out

    def test_unknown_algorithm(self, graph_file):
        with pytest.raises(SystemExit):
            main(["count", str(graph_file), "--algorithm", "bogus"])


class TestValidate:
    def test_valid_file(self, graph_file, capsys):
        assert main(["validate", str(graph_file)]) == 0
        assert "OK" in capsys.readouterr().out


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])

    def test_experiment_rejects_unknown(self):
        with pytest.raises(SystemExit):
            main(["experiment", "bogus"])


class TestAdaptiveAndExperiments:
    def test_adaptive_algorithm(self, graph_file, capsys):
        assert (
            main(["count", str(graph_file), "--algorithm", "adaptive",
                  "--sample-size", "400", "--seed", "5"])
            == 0
        )
        out = capsys.readouterr().out
        value = float(out.split("estimated 3-cycles: ")[1].split()[0])
        assert 15 <= value <= 90

    def test_experiment_table1(self, capsys):
        assert main(["experiment", "table1", "--runs", "3"]) == 0
        out = capsys.readouterr().out
        assert "Thm 3.7" in out

    def test_experiment_table1_with_workers(self, capsys):
        """--workers N fans trials out over processes; --workers 2 here
        must print the same rows as the serial run (bit-identical)."""
        assert main(["experiment", "table1", "--runs", "3"]) == 0
        serial_out = capsys.readouterr().out
        assert main(["experiment", "table1", "--runs", "3", "--workers", "2"]) == 0
        assert capsys.readouterr().out == serial_out

    def test_workers_documented_in_help(self, capsys):
        with pytest.raises(SystemExit):
            main(["experiment", "--help"])
        assert "--workers" in capsys.readouterr().out

    def test_experiment_figure1(self, capsys):
        assert main(["experiment", "figure1"]) == 0
        assert "Figure 1e" in capsys.readouterr().out
