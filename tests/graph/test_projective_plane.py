"""Tests for projective plane incidence graphs (the girth-6 extremal graphs)."""

import pytest

from repro.graph.counting import count_cycles, count_four_cycles, count_triangles
from repro.graph.gf import GF
from repro.graph.projective_plane import (
    LINE,
    POINT,
    four_cycle_free_bipartite,
    incident,
    plane_order_for_size,
    projective_plane_incidence_graph,
    projective_points,
)

ORDERS = [2, 3, 4, 5, 7]


@pytest.fixture(scope="module", params=ORDERS)
def plane(request):
    q = request.param
    return q, projective_plane_incidence_graph(q)


class TestPointSet:
    @pytest.mark.parametrize("q", ORDERS)
    def test_point_count(self, q):
        points = projective_points(GF(q))
        assert len(points) == q * q + q + 1

    @pytest.mark.parametrize("q", ORDERS)
    def test_points_distinct(self, q):
        points = projective_points(GF(q))
        assert len(set(points)) == len(points)

    @pytest.mark.parametrize("q", ORDERS)
    def test_normalisation(self, q):
        for triple in projective_points(GF(q)):
            first_nonzero = next(x for x in triple if x != 0)
            assert first_nonzero == 1


class TestIncidenceStructure:
    def test_vertex_count(self, plane):
        q, graph = plane
        assert graph.n == 2 * (q * q + q + 1)

    def test_regularity(self, plane):
        q, graph = plane
        assert all(graph.degree(v) == q + 1 for v in graph.vertices())

    def test_edge_count(self, plane):
        q, graph = plane
        assert graph.m == (q * q + q + 1) * (q + 1)

    def test_bipartite_no_triangles(self, plane):
        _, graph = plane
        assert count_triangles(graph) == 0

    def test_no_four_cycles(self, plane):
        _, graph = plane
        assert count_four_cycles(graph) == 0

    def test_girth_exactly_six(self, plane):
        q, graph = plane
        if q > 3:
            pytest.skip("6-cycle counting too slow for larger planes")
        assert count_cycles(graph, 6) > 0

    def test_two_points_share_one_line(self, plane):
        q, graph = plane
        points = [v for v in graph.vertices() if v[0] == POINT]
        # Sample a few point pairs; in a projective plane each pair has
        # exactly one common line.
        for a in points[:6]:
            for b in points[6:12]:
                assert graph.codegree(a, b) == 1


class TestIncidencePredicate:
    def test_dot_product_symmetry_under_duality(self):
        field = GF(3)
        points = projective_points(field)
        for p in points[:5]:
            for l in points[:5]:
                assert incident(field, p, l) == incident(field, l, p)


class TestPlaneOrderSelection:
    @pytest.mark.parametrize(
        "min_side,expected_q",
        [(1, 2), (7, 2), (8, 3), (13, 3), (14, 4), (21, 4), (31, 5), (57, 7)],
    )
    def test_smallest_order(self, min_side, expected_q):
        assert plane_order_for_size(min_side) == expected_q

    def test_four_cycle_free_bipartite_contract(self):
        graph, points, lines = four_cycle_free_bipartite(10)
        assert len(points) >= 10
        assert len(lines) >= 10
        assert count_four_cycles(graph) == 0
        assert all(v[0] == POINT for v in points)
        assert all(v[0] == LINE for v in lines)

    def test_density_is_theta_r_to_three_halves(self):
        # m = r(q+1) with r = q^2+q+1, so m / r^{3/2} is Θ(1): check it
        # stays in a narrow band across orders.
        ratios = []
        for q in (2, 3, 4, 5, 7):
            r = q * q + q + 1
            m = r * (q + 1)
            ratios.append(m / r**1.5)
        assert max(ratios) / min(ratios) < 1.5
