"""Tests for graph serialisation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.generators import gnm_random_graph
from repro.graph.graph import Graph
from repro.graph.io import (
    adjacency_lines,
    read_adjacency_list,
    read_edge_list,
    write_adjacency_list,
    write_edge_list,
)


class TestEdgeListRoundtrip:
    def test_roundtrip(self, tmp_path):
        g = gnm_random_graph(20, 50, seed=1)
        path = tmp_path / "graph.edges"
        write_edge_list(g, path)
        h = read_edge_list(path)
        assert sorted(g.edges()) == sorted(h.edges())

    def test_comments_and_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "with_comments.edges"
        path.write_text("# a comment\n\n0 1\n1 2\n")
        g = read_edge_list(path)
        assert g.m == 2

    def test_malformed_line_rejected(self, tmp_path):
        path = tmp_path / "bad.edges"
        path.write_text("0 1 2\n")
        with pytest.raises(ValueError, match="expected"):
            read_edge_list(path)

    def test_string_labels(self, tmp_path):
        g = Graph.from_edges([("alpha", "beta"), ("beta", "gamma")])
        path = tmp_path / "labels.edges"
        write_edge_list(g, path)
        h = read_edge_list(path)
        assert h.has_edge("alpha", "beta")

    def test_unserialisable_label_rejected(self, tmp_path):
        g = Graph.from_edges([("a b", "c")])
        with pytest.raises(ValueError):
            write_edge_list(g, tmp_path / "bad.edges")


class TestAdjacencyListRoundtrip:
    def test_roundtrip(self, tmp_path):
        g = gnm_random_graph(15, 40, seed=2)
        path = tmp_path / "graph.adj"
        write_adjacency_list(g, path)
        h = read_adjacency_list(path)
        assert sorted(g.edges()) == sorted(h.edges())

    def test_isolated_vertices_preserved(self, tmp_path):
        g = Graph(vertices=[0, 1, 2])
        g.add_edge(0, 1)
        path = tmp_path / "iso.adj"
        write_adjacency_list(g, path)
        h = read_adjacency_list(path)
        assert h.n == 3
        assert h.m == 1

    def test_one_sided_mentions_symmetrised(self, tmp_path):
        path = tmp_path / "oneside.adj"
        path.write_text("0: 1 2\n1:\n2:\n")
        g = read_adjacency_list(path)
        assert g.has_edge(1, 0)
        assert g.m == 2

    def test_missing_colon_rejected(self, tmp_path):
        path = tmp_path / "bad.adj"
        path.write_text("0 1 2\n")
        with pytest.raises(ValueError):
            read_adjacency_list(path)

    def test_adjacency_lines_match_file(self, tmp_path):
        g = gnm_random_graph(8, 12, seed=3)
        path = tmp_path / "cmp.adj"
        write_adjacency_list(g, path)
        assert path.read_text().splitlines() == adjacency_lines(g)


@given(
    edges=st.lists(
        st.tuples(st.integers(0, 25), st.integers(0, 25)).filter(lambda e: e[0] != e[1]),
        max_size=60,
    )
)
@settings(max_examples=30, deadline=None)
def test_both_formats_roundtrip_any_graph(edges, tmp_path_factory):
    g = Graph.from_edges(edges)
    base = tmp_path_factory.mktemp("io")
    write_edge_list(g, base / "g.edges")
    write_adjacency_list(g, base / "g.adj")
    assert sorted(read_edge_list(base / "g.edges").edges()) == sorted(g.edges())
    assert sorted(read_adjacency_list(base / "g.adj").edges()) == sorted(g.edges())
