"""Tests for exact subgraph counting, cross-validated three ways."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.counting import (
    count_cycles,
    count_cycles_by_trace,
    count_four_cycles,
    count_triangles,
    count_wedges,
    enumerate_four_cycles,
    enumerate_triangles,
    four_cycles_per_edge,
    girth_at_least,
    is_cycle_free,
    transitivity,
    triangles_per_edge,
)
from repro.graph.generators import (
    book_graph,
    complete_bipartite,
    complete_graph,
    cycle_graph,
    gnm_random_graph,
    path_graph,
    star_graph,
    theta_graph,
    windmill_graph,
)
from repro.graph.graph import Graph


def random_graph_strategy():
    return st.builds(
        lambda n, m_frac, seed: gnm_random_graph(
            n, int(m_frac * n * (n - 1) // 2), seed=seed
        ),
        n=st.integers(4, 18),
        m_frac=st.floats(0.1, 0.8),
        seed=st.integers(0, 10**6),
    )


class TestTriangles:
    @pytest.mark.parametrize(
        "graph,expected",
        [
            (complete_graph(3), 1),
            (complete_graph(4), 4),
            (complete_graph(5), 10),
            (complete_graph(6), 20),
            (cycle_graph(5), 0),
            (path_graph(10), 0),
            (star_graph(8), 0),
            (complete_bipartite(3, 4), 0),
            (book_graph(7), 7),
            (windmill_graph(5), 5),
        ],
    )
    def test_known_counts(self, graph, expected):
        assert count_triangles(graph) == expected

    def test_enumeration_matches_count(self, small_random_graph):
        tris = list(enumerate_triangles(small_random_graph))
        assert len(tris) == count_triangles(small_random_graph)
        assert len(set(tris)) == len(tris)
        for a, b, c in tris:
            assert a < b < c
            assert small_random_graph.has_edge(a, b)
            assert small_random_graph.has_edge(b, c)
            assert small_random_graph.has_edge(a, c)

    def test_per_edge_sums_to_three_t(self, small_random_graph):
        loads = triangles_per_edge(small_random_graph)
        assert sum(loads.values()) == 3 * count_triangles(small_random_graph)

    def test_book_per_edge_loads(self):
        loads = triangles_per_edge(book_graph(6))
        assert loads[(0, 1)] == 6  # spine edge is in every triangle
        assert sum(1 for load in loads.values() if load == 1) == 12


class TestFourCycles:
    @pytest.mark.parametrize(
        "graph,expected",
        [
            (cycle_graph(4), 1),
            (cycle_graph(5), 0),
            (complete_graph(4), 3),
            (complete_graph(5), 15),
            (complete_bipartite(2, 2), 1),
            (complete_bipartite(3, 3), 9),
            (complete_bipartite(2, 5), 10),
            (theta_graph(6), 15),
            (path_graph(6), 0),
        ],
    )
    def test_known_counts(self, graph, expected):
        assert count_four_cycles(graph) == expected

    def test_enumeration_matches_count(self, small_random_graph):
        cycles = list(enumerate_four_cycles(small_random_graph))
        assert len(cycles) == count_four_cycles(small_random_graph)
        assert len(set(cycles)) == len(cycles)
        for u, x, v, y in cycles:
            assert small_random_graph.has_edge(u, x)
            assert small_random_graph.has_edge(x, v)
            assert small_random_graph.has_edge(v, y)
            assert small_random_graph.has_edge(y, u)
            assert u == min(u, x, v, y)

    def test_per_edge_sums_to_four_t(self, small_random_graph):
        loads = four_cycles_per_edge(small_random_graph)
        assert sum(loads.values()) == 4 * count_four_cycles(small_random_graph)

    def test_theta_per_edge_loads(self):
        loads = four_cycles_per_edge(theta_graph(5))
        # Every edge of K_{2,5} lies in exactly spokes-1 = 4 cycles.
        assert all(load == 4 for load in loads.values())


class TestGenericCycleCounter:
    @pytest.mark.parametrize("length", [3, 4, 5, 6, 7])
    def test_single_cycle_graph(self, length):
        assert count_cycles(cycle_graph(length), length) == 1
        for other in range(3, 8):
            if other != length:
                assert count_cycles(cycle_graph(length), other) == 0

    @pytest.mark.parametrize(
        "length,expected",
        [(3, 10), (4, 15), (5, 12)],
    )
    def test_k5_counts(self, length, expected):
        assert count_cycles(complete_graph(5), length) == expected

    def test_k6_hamiltonian_cycles(self):
        # (6-1)!/2 = 60 Hamiltonian cycles in K6.
        assert count_cycles(complete_graph(6), 6) == 60

    def test_complete_bipartite_six_cycles(self):
        # C6 count in K_{3,3}: 6 (choose 3 and 3 in orders) -> known value 6.
        assert count_cycles(complete_bipartite(3, 3), 6) == 6

    def test_rejects_short_length(self):
        with pytest.raises(ValueError):
            count_cycles(complete_graph(3), 2)


class TestCrossValidation:
    @given(random_graph_strategy())
    @settings(max_examples=25, deadline=None)
    def test_three_triangle_implementations_agree(self, graph):
        specialized = count_triangles(graph)
        generic = count_cycles(graph, 3)
        trace = count_cycles_by_trace(graph, 3)
        assert specialized == generic == trace

    @given(random_graph_strategy())
    @settings(max_examples=25, deadline=None)
    def test_three_fourcycle_implementations_agree(self, graph):
        specialized = count_four_cycles(graph)
        generic = count_cycles(graph, 4)
        trace = count_cycles_by_trace(graph, 4)
        assert specialized == generic == trace

    def test_trace_rejects_other_lengths(self):
        with pytest.raises(ValueError):
            count_cycles_by_trace(complete_graph(4), 5)


class TestDerivedQuantities:
    def test_wedge_count_star(self):
        assert count_wedges(star_graph(5)) == 10

    def test_wedge_count_triangle(self):
        assert count_wedges(complete_graph(3)) == 3

    def test_transitivity_complete(self):
        assert transitivity(complete_graph(6)) == pytest.approx(1.0)

    def test_transitivity_triangle_free(self):
        assert transitivity(complete_bipartite(4, 4)) == 0.0

    def test_transitivity_empty(self):
        assert transitivity(Graph()) == 0.0

    def test_is_cycle_free(self):
        assert is_cycle_free(path_graph(5), 3)
        assert not is_cycle_free(complete_graph(3), 3)

    def test_girth_at_least(self):
        assert girth_at_least(cycle_graph(6), 6)
        assert not girth_at_least(cycle_graph(6), 7)
        assert girth_at_least(path_graph(4), 10)
