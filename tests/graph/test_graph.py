"""Tests for the Graph data structure."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.graph import Graph, canonical_edge


class TestCanonicalEdge:
    def test_orders_ints(self):
        assert canonical_edge(5, 2) == (2, 5)
        assert canonical_edge(2, 5) == (2, 5)

    def test_orders_tuples(self):
        assert canonical_edge(("b", 1), ("a", 2)) == (("a", 2), ("b", 1))

    @given(st.integers(), st.integers())
    @settings(max_examples=50)
    def test_symmetric(self, u, v):
        assert canonical_edge(u, v) == canonical_edge(v, u)


class TestConstruction:
    def test_empty(self):
        g = Graph()
        assert g.n == 0
        assert g.m == 0

    def test_from_edges(self):
        g = Graph.from_edges([(0, 1), (1, 2)])
        assert g.n == 3
        assert g.m == 2

    def test_add_vertex_idempotent(self):
        g = Graph()
        g.add_vertex(1)
        g.add_vertex(1)
        assert g.n == 1

    def test_add_edge_creates_vertices(self):
        g = Graph()
        g.add_edge(4, 7)
        assert g.has_vertex(4)
        assert g.has_vertex(7)

    def test_duplicate_edge_returns_false(self):
        g = Graph()
        assert g.add_edge(0, 1)
        assert not g.add_edge(1, 0)
        assert g.m == 1

    def test_self_loop_rejected(self):
        g = Graph()
        with pytest.raises(ValueError):
            g.add_edge(3, 3)

    def test_add_edges_counts_new(self):
        g = Graph()
        assert g.add_edges([(0, 1), (1, 2), (0, 1)]) == 2

    def test_remove_edge(self):
        g = Graph.from_edges([(0, 1), (1, 2)])
        g.remove_edge(1, 0)
        assert g.m == 1
        assert not g.has_edge(0, 1)

    def test_remove_missing_edge_raises(self):
        g = Graph.from_edges([(0, 1)])
        with pytest.raises(KeyError):
            g.remove_edge(0, 2)


class TestQueries:
    @pytest.fixture()
    def path(self):
        return Graph.from_edges([(0, 1), (1, 2), (2, 3)])

    def test_degree(self, path):
        assert path.degree(0) == 1
        assert path.degree(1) == 2

    def test_neighbors(self, path):
        assert path.neighbors(1) == {0, 2}

    def test_edges_canonical_and_unique(self, path):
        edges = list(path.edges())
        assert len(edges) == 3
        assert all(u <= v for u, v in edges)
        assert len(set(edges)) == 3

    def test_codegree(self):
        g = Graph.from_edges([(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)])
        assert g.codegree(1, 2) == 2  # common: 0 and 3
        assert g.common_neighbors(1, 2) == {0, 3}

    def test_degree_sequence_sorted(self):
        g = Graph.from_edges([(0, 1), (0, 2), (0, 3)])
        assert g.degree_sequence() == [3, 1, 1, 1]

    def test_max_degree_empty(self):
        assert Graph().max_degree() == 0


class TestTransformations:
    def test_copy_is_independent(self):
        g = Graph.from_edges([(0, 1)])
        h = g.copy()
        h.add_edge(1, 2)
        assert g.m == 1
        assert h.m == 2

    def test_copy_equal(self):
        g = Graph.from_edges([(0, 1), (2, 3)])
        assert g.copy() == g

    def test_subgraph_induced(self):
        g = Graph.from_edges([(0, 1), (1, 2), (2, 0), (2, 3)])
        sub = g.subgraph([0, 1, 2])
        assert sub.n == 3
        assert sub.m == 3

    def test_relabeled_preserves_structure(self):
        g = Graph.from_edges([("x", "y"), ("y", "z")])
        relab, mapping = g.relabeled()
        assert relab.n == 3
        assert relab.m == 2
        assert relab.has_edge(mapping["x"], mapping["y"])

    def test_disjoint_union(self):
        g = Graph.from_edges([(0, 1)])
        h = Graph.from_edges([(0, 1), (1, 2)])
        u = g.disjoint_union(h)
        assert u.n == 5
        assert u.m == 3

    def test_adjacency_matrix_symmetric(self):
        g = Graph.from_edges([(0, 1), (1, 2)])
        mat, order = g.adjacency_matrix()
        assert (mat == mat.T).all()
        assert mat.sum() == 2 * g.m

    def test_graphs_unhashable(self):
        with pytest.raises(TypeError):
            hash(Graph())


@given(
    edges=st.lists(
        st.tuples(st.integers(0, 30), st.integers(0, 30)).filter(lambda e: e[0] != e[1]),
        max_size=80,
    )
)
@settings(max_examples=60)
def test_handshake_lemma(edges):
    g = Graph.from_edges(edges)
    assert sum(g.degree(v) for v in g.vertices()) == 2 * g.m
    assert len(list(g.edges())) == g.m


class TestNeighborListCache:
    def test_matches_set_iteration_order(self):
        g = Graph.from_edges([(0, 1), (0, 2), (0, 3), (2, 3)])
        for v in g.vertices():
            assert g.neighbor_list(v) == tuple(g.neighbors(v))

    def test_memoized(self):
        g = Graph.from_edges([(0, 1), (0, 2)])
        assert g.neighbor_list(0) is g.neighbor_list(0)

    def test_invalidated_by_add_edge(self):
        g = Graph.from_edges([(0, 1)])
        before = g.neighbor_list(0)
        g.add_edge(0, 2)
        after = g.neighbor_list(0)
        assert after is not before
        assert set(after) == {1, 2}
        assert after == tuple(g.neighbors(0))

    def test_invalidated_by_remove_edge(self):
        g = Graph.from_edges([(0, 1), (0, 2)])
        g.neighbor_list(0)
        g.remove_edge(0, 1)
        assert g.neighbor_list(0) == tuple(g.neighbors(0))
        assert set(g.neighbor_list(0)) == {2}

    def test_other_vertices_keep_cache(self):
        g = Graph.from_edges([(0, 1), (2, 3)])
        cached = g.neighbor_list(2)
        g.add_edge(0, 4)
        assert g.neighbor_list(2) is cached

    def test_empty_adjacency(self):
        g = Graph(vertices=[7])
        assert g.neighbor_list(7) == ()
