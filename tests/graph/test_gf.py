"""Tests for finite field arithmetic: full field axioms on every element."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.gf import GF, factor_prime_power, is_prime

FIELD_ORDERS = [2, 3, 4, 5, 7, 8, 9, 11, 13, 16, 25, 27]


class TestPrimality:
    def test_small_primes(self):
        assert [p for p in range(2, 30) if is_prime(p)] == [
            2, 3, 5, 7, 11, 13, 17, 19, 23, 29,
        ]

    def test_non_primes(self):
        for n in (0, 1, 4, 9, 15, 21, 25, 27):
            assert not is_prime(n)


class TestFactorPrimePower:
    @pytest.mark.parametrize(
        "q,expected",
        [(2, (2, 1)), (4, (2, 2)), (8, (2, 3)), (9, (3, 2)), (27, (3, 3)), (25, (5, 2)), (7, (7, 1))],
    )
    def test_valid(self, q, expected):
        assert factor_prime_power(q) == expected

    @pytest.mark.parametrize("q", [1, 6, 10, 12, 15, 100])
    def test_invalid(self, q):
        with pytest.raises(ValueError):
            factor_prime_power(q)


@pytest.fixture(scope="module", params=FIELD_ORDERS)
def field(request):
    return GF(request.param)


class TestFieldAxioms:
    def test_additive_identity(self, field):
        for a in field.elements():
            assert field.add(a, 0) == a

    def test_multiplicative_identity(self, field):
        for a in field.elements():
            assert field.mul(a, 1) == a

    def test_additive_inverse(self, field):
        for a in field.elements():
            assert field.add(a, field.neg(a)) == 0

    def test_multiplicative_inverse(self, field):
        for a in range(1, field.q):
            assert field.mul(a, field.inv(a)) == 1

    def test_zero_has_no_inverse(self, field):
        with pytest.raises(ZeroDivisionError):
            field.inv(0)

    def test_commutativity(self, field):
        for a in field.elements():
            for b in field.elements():
                assert field.add(a, b) == field.add(b, a)
                assert field.mul(a, b) == field.mul(b, a)

    def test_distributivity(self, field):
        elements = list(field.elements())
        sample = elements if field.q <= 9 else elements[:6]
        for a in sample:
            for b in sample:
                for c in sample:
                    lhs = field.mul(a, field.add(b, c))
                    rhs = field.add(field.mul(a, b), field.mul(a, c))
                    assert lhs == rhs

    def test_associativity_of_multiplication(self, field):
        elements = list(field.elements())
        sample = elements if field.q <= 9 else elements[:6]
        for a in sample:
            for b in sample:
                for c in sample:
                    assert field.mul(field.mul(a, b), c) == field.mul(a, field.mul(b, c))

    def test_no_zero_divisors(self, field):
        for a in range(1, field.q):
            for b in range(1, field.q):
                assert field.mul(a, b) != 0

    def test_multiplicative_group_is_cyclic_order(self, field):
        # Every nonzero element's multiplicative order divides q - 1.
        for a in range(1, field.q):
            power = a
            order = 1
            while power != 1:
                power = field.mul(power, a)
                order += 1
                assert order <= field.q
            assert (field.q - 1) % order == 0

    def test_sub_and_div_roundtrip(self, field):
        for a in field.elements():
            for b in range(1, field.q):
                assert field.add(field.sub(a, b), b) == a
                assert field.mul(field.div(a, b), b) == a


class TestFrobeniusAndCharacteristic:
    @pytest.mark.parametrize("q", [4, 8, 9, 27])
    def test_characteristic_p_sums_to_zero(self, q):
        field = GF(q)
        for a in field.elements():
            total = 0
            for _ in range(field.p):
                total = field.add(total, a)
            assert total == 0

    @pytest.mark.parametrize("q", [4, 8, 9])
    def test_frobenius_is_additive(self, q):
        field = GF(q)

        def frob(x):
            result = 1
            for _ in range(field.p):
                result = field.mul(result, x)
            return result

        for a in field.elements():
            for b in field.elements():
                assert frob(field.add(a, b)) == field.add(frob(a), frob(b))


@given(q=st.sampled_from([2, 3, 4, 5, 7, 8, 9]), seed=st.integers(0, 1000))
@settings(max_examples=30, deadline=None)
def test_linear_equation_solvable(q, seed):
    """a*x + b = 0 has a unique solution for a != 0."""
    import random

    rng = random.Random(seed)
    field = GF(q)
    a = rng.randrange(1, q)
    b = rng.randrange(q)
    x = field.div(field.neg(b), a)
    assert field.add(field.mul(a, x), b) == 0
