"""Tests for wedge machinery."""

import pytest

from repro.graph.counting import count_four_cycles, count_wedges, enumerate_four_cycles
from repro.graph.generators import (
    complete_bipartite,
    complete_graph,
    cycle_graph,
    gnm_random_graph,
    star_graph,
    theta_graph,
)
from repro.graph.wedges import (
    Wedge,
    count_wedges_on_edges,
    four_cycles_per_wedge,
    four_cycles_through_wedge,
    iter_wedges,
    wedge_exists,
    wedges_of_four_cycle,
)


class TestWedgeType:
    def test_endpoint_normalisation(self):
        assert Wedge.make(5, 9, 2) == Wedge.make(5, 2, 9)

    def test_distinctness_required(self):
        with pytest.raises(ValueError):
            Wedge.make(1, 1, 2)
        with pytest.raises(ValueError):
            Wedge.make(1, 2, 2)

    def test_edges_are_canonical(self):
        w = Wedge.make(5, 9, 2)
        assert w.edges == ((2, 5), (5, 9))
        assert w.endpoints == (2, 9)

    def test_hashable_and_ordered(self):
        wedges = {Wedge.make(0, 1, 2), Wedge.make(0, 2, 1)}
        assert len(wedges) == 1
        assert Wedge.make(0, 1, 2) < Wedge.make(1, 0, 2)


class TestIteration:
    def test_count_matches_formula(self):
        g = gnm_random_graph(25, 60, seed=1)
        wedges = list(iter_wedges(g))
        assert len(wedges) == count_wedges(g)
        assert len(set(wedges)) == len(wedges)

    def test_star_wedges(self):
        g = star_graph(5)
        assert sum(1 for _ in iter_wedges(g)) == 10
        assert all(w.center == 0 for w in iter_wedges(g))

    def test_wedge_exists(self):
        g = cycle_graph(5)
        assert wedge_exists(g, Wedge.make(1, 0, 2))
        assert not wedge_exists(g, Wedge.make(0, 2, 3))


class TestPerWedgeLoads:
    def test_single_cycle(self):
        g = cycle_graph(4)
        for w in iter_wedges(g):
            assert four_cycles_through_wedge(g, w) == 1

    def test_theta_graph_loads(self):
        g = theta_graph(5)
        # Wedge centered at a hub: endpoints are two spokes; they close with
        # the other hub only -> 1 cycle.  Wedge centered at a spoke joins the
        # two hubs and closes with any of the other 4 spokes.
        hub_centered = Wedge.make(0, 2, 3)
        spoke_centered = Wedge.make(2, 0, 1)
        assert four_cycles_through_wedge(g, hub_centered) == 1
        assert four_cycles_through_wedge(g, spoke_centered) == 4

    def test_missing_wedge_raises(self):
        g = cycle_graph(5)
        with pytest.raises(ValueError):
            four_cycles_through_wedge(g, Wedge.make(0, 2, 3))

    def test_load_table_sums_to_4t(self):
        g = gnm_random_graph(20, 60, seed=2)
        loads = four_cycles_per_wedge(g)
        assert sum(loads.values()) == 4 * count_four_cycles(g)

    def test_load_table_matches_single_queries(self):
        g = complete_bipartite(3, 4)
        loads = four_cycles_per_wedge(g)
        for wedge, load in loads.items():
            assert load == four_cycles_through_wedge(g, wedge)


class TestWedgesOfCycle:
    def test_four_distinct_wedges(self):
        g = complete_graph(5)
        for cycle in enumerate_four_cycles(g):
            wedges = wedges_of_four_cycle(cycle)
            assert len(set(wedges)) == 4
            for w in wedges:
                assert wedge_exists(g, w)

    def test_wedge_centers_are_cycle_vertices(self):
        cycle = (0, 1, 2, 3)
        centers = {w.center for w in wedges_of_four_cycle(cycle)}
        assert centers == {0, 1, 2, 3}


class TestWedgesOnEdges:
    def test_star_subset(self):
        g = star_graph(6)
        edges = [(0, 1), (0, 2), (0, 3)]
        assert count_wedges_on_edges(g, edges) == 3

    def test_disjoint_edges_make_no_wedges(self):
        g = gnm_random_graph(20, 30, seed=3)
        assert count_wedges_on_edges(g, [(0, 1), (2, 3)]) == 0

    def test_full_edge_set_matches_wedge_count(self):
        g = gnm_random_graph(15, 40, seed=4)
        assert count_wedges_on_edges(g, g.edges()) == count_wedges(g)
