"""Tests for planted workload generators: the true counts must be exact."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.counting import count_cycles, count_four_cycles, count_triangles
from repro.graph.planted import (
    planted_cycles,
    planted_four_cycle_grid,
    planted_four_cycles,
    planted_four_cycles_theta,
    planted_triangles,
    planted_triangles_book,
    planted_triangles_windmill,
    verify_planted,
)


class TestPlantedTriangles:
    def test_exact_count(self):
        p = planted_triangles(100, 12, seed=1)
        assert count_triangles(p.graph) == 12
        assert p.true_count == 12
        assert verify_planted(p)

    def test_zero_triangles(self):
        p = planted_triangles(100, 0, seed=2)
        assert count_triangles(p.graph) == 0

    def test_edge_count(self):
        p = planted_triangles(100, 10, seed=3)
        assert p.m == 100 + 30

    def test_deterministic(self):
        p1 = planted_triangles(50, 5, seed=4)
        p2 = planted_triangles(50, 5, seed=4)
        assert sorted(p1.graph.edges()) == sorted(p2.graph.edges())

    @given(noise=st.integers(10, 120), t=st.integers(0, 25), seed=st.integers(0, 10**6))
    @settings(max_examples=25, deadline=None)
    def test_count_always_exact(self, noise, t, seed):
        p = planted_triangles(noise, t, seed=seed)
        assert count_triangles(p.graph) == t


class TestHeavyTriangleVariants:
    def test_book_count(self):
        p = planted_triangles_book(80, 15, seed=5)
        assert count_triangles(p.graph) == 15
        assert verify_planted(p)

    def test_windmill_count(self):
        p = planted_triangles_windmill(80, 9, seed=6)
        assert count_triangles(p.graph) == 9
        assert verify_planted(p)


class TestPlantedCycles:
    @pytest.mark.parametrize("length", [3, 4, 5, 6])
    def test_exact_count_any_length(self, length):
        p = planted_cycles(60, 7, length=length, seed=7)
        assert count_cycles(p.graph, length) == 7
        assert verify_planted(p)

    def test_no_spurious_other_lengths(self):
        p = planted_cycles(60, 5, length=5, seed=8)
        assert count_cycles(p.graph, 3) == 0
        assert count_cycles(p.graph, 4) == 0
        assert count_cycles(p.graph, 6) == 0

    def test_rejects_short_length(self):
        with pytest.raises(ValueError):
            planted_cycles(10, 1, length=2)

    def test_four_cycle_alias(self):
        p = planted_four_cycles(60, 8, seed=9)
        assert count_four_cycles(p.graph) == 8
        assert p.cycle_length == 4


class TestHeavyFourCycleVariants:
    def test_theta_count(self):
        p = planted_four_cycles_theta(60, 6, seed=10)
        assert count_four_cycles(p.graph) == 15
        assert p.true_count == 15
        assert verify_planted(p)

    def test_grid_count(self):
        p = planted_four_cycle_grid(40, 4, 5, seed=11)
        assert count_four_cycles(p.graph) == 12
        assert verify_planted(p)

    def test_grid_rejects_degenerate(self):
        with pytest.raises(ValueError):
            planted_four_cycle_grid(10, 1, 5)

    def test_grid_triangle_free(self):
        p = planted_four_cycle_grid(40, 3, 3, seed=12)
        assert count_triangles(p.graph) == 0
