"""Tests for the graph generators."""

import pytest

from repro.graph.counting import count_four_cycles, count_triangles, is_cycle_free
from repro.graph.generators import (
    barabasi_albert_graph,
    book_graph,
    complete_bipartite,
    complete_graph,
    cycle_graph,
    empty_graph,
    gnm_random_graph,
    gnp_random_graph,
    path_graph,
    powerlaw_cluster_graph,
    random_bipartite_graph,
    random_forest,
    star_graph,
    theta_graph,
    windmill_graph,
)


class TestDeterministicFamilies:
    def test_empty(self):
        g = empty_graph(5)
        assert g.n == 5
        assert g.m == 0

    def test_complete(self):
        g = complete_graph(6)
        assert g.m == 15
        assert all(g.degree(v) == 5 for v in g.vertices())

    def test_complete_bipartite(self):
        g = complete_bipartite(3, 4)
        assert g.m == 12
        assert count_triangles(g) == 0

    def test_cycle(self):
        g = cycle_graph(7)
        assert g.m == 7
        assert all(g.degree(v) == 2 for v in g.vertices())

    def test_cycle_too_small(self):
        with pytest.raises(ValueError):
            cycle_graph(2)

    def test_path(self):
        g = path_graph(5)
        assert g.m == 4
        assert g.degree(0) == g.degree(4) == 1

    def test_star(self):
        g = star_graph(6)
        assert g.degree(0) == 6
        assert g.m == 6

    def test_book(self):
        g = book_graph(4)
        assert count_triangles(g) == 4
        assert g.m == 9

    def test_windmill(self):
        g = windmill_graph(3)
        assert count_triangles(g) == 3
        assert g.degree(0) == 6

    def test_theta(self):
        g = theta_graph(4)
        assert count_four_cycles(g) == 6
        assert count_triangles(g) == 0


class TestGnm:
    def test_exact_edge_count(self):
        g = gnm_random_graph(30, 100, seed=1)
        assert g.n == 30
        assert g.m == 100

    def test_dense_regime(self):
        g = gnm_random_graph(10, 40, seed=2)
        assert g.m == 40

    def test_full_graph(self):
        g = gnm_random_graph(8, 28, seed=3)
        assert g.m == 28

    def test_too_many_edges_rejected(self):
        with pytest.raises(ValueError):
            gnm_random_graph(4, 10)

    def test_deterministic_by_seed(self):
        g1 = gnm_random_graph(20, 50, seed=9)
        g2 = gnm_random_graph(20, 50, seed=9)
        assert sorted(g1.edges()) == sorted(g2.edges())

    def test_different_seeds_differ(self):
        g1 = gnm_random_graph(20, 50, seed=1)
        g2 = gnm_random_graph(20, 50, seed=2)
        assert sorted(g1.edges()) != sorted(g2.edges())


class TestGnp:
    def test_p_zero(self):
        assert gnp_random_graph(10, 0.0, seed=1).m == 0

    def test_p_one(self):
        assert gnp_random_graph(10, 1.0, seed=1).m == 45

    def test_expected_density(self):
        g = gnp_random_graph(60, 0.2, seed=4)
        expected = 0.2 * 60 * 59 / 2
        assert abs(g.m - expected) < 4 * expected**0.5

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            gnp_random_graph(5, 1.2)


class TestBipartiteAndForest:
    def test_bipartite_is_triangle_free(self):
        g = random_bipartite_graph(20, 20, 80, seed=5)
        assert g.m == 80
        assert count_triangles(g) == 0

    def test_bipartite_too_many_edges(self):
        with pytest.raises(ValueError):
            random_bipartite_graph(3, 3, 10)

    def test_forest_is_acyclic(self):
        g = random_forest(50, 30, seed=6)
        assert g.m == 30
        for length in (3, 4, 5, 6):
            assert is_cycle_free(g, length)

    def test_forest_edge_bound(self):
        with pytest.raises(ValueError):
            random_forest(5, 5)


class TestPreferentialAttachment:
    def test_ba_edge_count(self):
        n, attach = 40, 3
        g = barabasi_albert_graph(n, attach, seed=7)
        seed_edges = (attach + 1) * attach // 2
        assert g.m == seed_edges + (n - attach - 1) * attach

    def test_ba_skewed_degrees(self):
        g = barabasi_albert_graph(200, 2, seed=8)
        degrees = g.degree_sequence()
        assert degrees[0] > 4 * degrees[len(degrees) // 2]

    def test_ba_invalid_params(self):
        with pytest.raises(ValueError):
            barabasi_albert_graph(3, 3)

    def test_powerlaw_cluster_has_more_triangles(self):
        plain = barabasi_albert_graph(150, 3, seed=9)
        clustered = powerlaw_cluster_graph(150, 3, triangle_prob=0.8, seed=9)
        assert count_triangles(clustered) > count_triangles(plain)

    def test_powerlaw_cluster_invalid_prob(self):
        with pytest.raises(ValueError):
            powerlaw_cluster_graph(10, 2, triangle_prob=1.5)

    def test_powerlaw_deterministic(self):
        g1 = powerlaw_cluster_graph(60, 2, 0.5, seed=10)
        g2 = powerlaw_cluster_graph(60, 2, 0.5, seed=10)
        assert sorted(g1.edges()) == sorted(g2.edges())


class TestRegularAndConfiguration:
    def test_regular_degrees(self):
        from repro.graph.generators import random_regular_graph

        g = random_regular_graph(24, 5, seed=1)
        assert all(g.degree(v) == 5 for v in g.vertices())
        assert g.m == 24 * 5 // 2

    def test_regular_parity_rejected(self):
        from repro.graph.generators import random_regular_graph

        with pytest.raises(ValueError):
            random_regular_graph(5, 3)

    def test_regular_degree_bounds(self):
        from repro.graph.generators import random_regular_graph

        with pytest.raises(ValueError):
            random_regular_graph(4, 4)

    def test_regular_zero_degree(self):
        from repro.graph.generators import random_regular_graph

        g = random_regular_graph(6, 0, seed=2)
        assert g.m == 0

    def test_configuration_respects_degrees_upper_bound(self):
        from repro.graph.generators import configuration_model_graph

        degrees = [4, 3, 3, 2, 2, 2, 1, 1]
        g = configuration_model_graph(degrees, seed=3)
        for v, target in enumerate(degrees):
            assert g.degree(v) <= target

    def test_configuration_parity_rejected(self):
        from repro.graph.generators import configuration_model_graph

        with pytest.raises(ValueError):
            configuration_model_graph([3, 2])

    def test_configuration_negative_rejected(self):
        from repro.graph.generators import configuration_model_graph

        with pytest.raises(ValueError):
            configuration_model_graph([-1, 1])

    def test_configuration_deterministic(self):
        from repro.graph.generators import configuration_model_graph

        degrees = [3, 3, 2, 2, 2, 2]
        g1 = configuration_model_graph(degrees, seed=4)
        g2 = configuration_model_graph(degrees, seed=4)
        assert sorted(g1.edges()) == sorted(g2.edges())
