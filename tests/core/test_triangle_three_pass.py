"""Tests for the three-pass exact-lightest-edge counter (Section 2.1)."""

import statistics

import pytest

from repro.core.triangle_three_pass import ThreePassTriangleCounter
from repro.core.triangle_two_pass import TwoPassTriangleCounter, triangle_edges
from repro.graph.counting import count_triangles, triangles_per_edge
from repro.graph.generators import complete_graph, gnm_random_graph
from repro.graph.planted import planted_triangles_book
from repro.streaming.runner import run_algorithm
from repro.streaming.stream import AdjacencyListStream


class TestExactRegime:
    @pytest.mark.parametrize(
        "graph",
        [complete_graph(7), gnm_random_graph(30, 120, seed=1)],
    )
    def test_exact_when_unsaturated(self, graph):
        truth = count_triangles(graph)
        budget = 2 * graph.m + 3 * truth + 5
        algo = ThreePassTriangleCounter(sample_size=budget, seed=2)
        result = run_algorithm(algo, AdjacencyListStream(graph, seed=3))
        assert result.estimate == pytest.approx(truth)
        assert result.passes == 3

    def test_candidate_total_is_3t_when_all_sampled(self):
        g = gnm_random_graph(25, 90, seed=4)
        t = count_triangles(g)
        algo = ThreePassTriangleCounter(sample_size=2 * g.m + 3 * t + 5, seed=5)
        run_algorithm(algo, AdjacencyListStream(g, seed=6))
        assert algo.candidate_total == 3 * t
        assert algo.counted_pairs() == t

    def test_edge_loads_are_exact(self):
        g = gnm_random_graph(25, 90, seed=7)
        t = count_triangles(g)
        algo = ThreePassTriangleCounter(sample_size=2 * g.m + 3 * t + 5, seed=8)
        run_algorithm(algo, AdjacencyListStream(g, seed=9))
        truth = triangles_per_edge(g)
        for pair in algo._reservoir.items():
            for f in triangle_edges(pair.triangle):
                assert algo.edge_load(f) == truth[f]

    def test_edge_count_measured(self, small_random_graph):
        algo = ThreePassTriangleCounter(sample_size=10, seed=10)
        run_algorithm(algo, AdjacencyListStream(small_random_graph, seed=11))
        assert algo.edge_count == small_random_graph.m


class TestStatisticalBehaviour:
    def test_mean_near_truth(self, triangle_workload):
        g = triangle_workload.graph
        truth = triangle_workload.true_count
        estimates = []
        for i in range(30):
            algo = ThreePassTriangleCounter(sample_size=g.m // 4, seed=100 + i)
            stream = AdjacencyListStream(g, seed=200 + i)
            estimates.append(run_algorithm(algo, stream).estimate)
        assert statistics.mean(estimates) == pytest.approx(truth, rel=0.15)

    def test_heavy_edge_robustness_matches_two_pass(self):
        """The H-based two-pass rule was designed to match this exact-load
        rule; their spreads on the heavy-edge workload should be within a
        small factor of each other."""
        planted = planted_triangles_book(500, 250, seed=12)
        g = planted.graph
        budget = g.m // 6

        def spread(factory):
            ests = []
            for i in range(25):
                stream = AdjacencyListStream(g, seed=300 + i)
                ests.append(run_algorithm(factory(i), stream).estimate)
            return statistics.pstdev(ests)

        three_sd = spread(lambda i: ThreePassTriangleCounter(budget, seed=i))
        two_sd = spread(lambda i: TwoPassTriangleCounter(budget, seed=50 + i))
        assert three_sd < 3 * two_sd
        assert two_sd < 3 * three_sd


class TestConfiguration:
    def test_three_passes_order_free(self):
        algo = ThreePassTriangleCounter(sample_size=5)
        assert algo.n_passes == 3
        assert not algo.requires_same_order

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            ThreePassTriangleCounter(sample_size=0)

    def test_zero_triangles(self):
        from repro.graph.generators import random_bipartite_graph

        g = random_bipartite_graph(20, 20, 80, seed=13)
        algo = ThreePassTriangleCounter(sample_size=40, seed=14)
        assert run_algorithm(algo, AdjacencyListStream(g, seed=15)).estimate == 0.0
