"""Tests for the unknown-T adaptive triangle counter."""

import pytest

from repro.core.adaptive import AdaptiveTriangleCounter
from repro.graph.counting import count_triangles
from repro.graph.generators import random_bipartite_graph
from repro.graph.planted import planted_triangles
from repro.streaming.runner import run_algorithm
from repro.streaming.stream import AdjacencyListStream


class TestConstruction:
    def test_levels_default_geometric(self):
        algo = AdaptiveTriangleCounter(max_sample_size=64, seed=1)
        budgets = [level.sample_size for level in algo.levels]
        assert budgets[0] == 64
        assert all(budgets[i] == 2 * budgets[i + 1] for i in range(len(budgets) - 1))
        assert budgets[-1] >= 8

    def test_explicit_levels(self):
        algo = AdaptiveTriangleCounter(max_sample_size=100, levels=3, seed=2)
        assert [level.sample_size for level in algo.levels] == [100, 50, 25]

    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptiveTriangleCounter(max_sample_size=0)
        with pytest.raises(ValueError):
            AdaptiveTriangleCounter(max_sample_size=10, levels=0)

    def test_metadata(self):
        algo = AdaptiveTriangleCounter(max_sample_size=16)
        assert algo.n_passes == 2
        assert algo.requires_same_order


class TestAccuracyWithoutKnowingT:
    @pytest.mark.parametrize("t", [10, 100, 400])
    def test_accurate_across_t_scales(self, t):
        planted = planted_triangles(1500 - 3 * t, t, seed=t)
        g = planted.graph
        within = 0
        runs = 8
        for i in range(runs):
            algo = AdaptiveTriangleCounter(max_sample_size=g.m, seed=100 * t + i)
            result = run_algorithm(algo, AdjacencyListStream(g, seed=7 * t + i))
            if abs(result.estimate - t) <= 0.5 * t:
                within += 1
        assert within >= runs * 2 // 3

    def test_larger_t_selects_cheaper_level(self):
        chosen_budgets = {}
        for t in (10, 400):
            planted = planted_triangles(1500 - 3 * t, t, seed=t)
            algo = AdaptiveTriangleCounter(max_sample_size=planted.graph.m, seed=1)
            run_algorithm(algo, AdjacencyListStream(planted.graph, seed=2))
            chosen_budgets[t] = algo.chosen_level().sample_size
        assert chosen_budgets[400] < chosen_budgets[10]

    def test_triangle_free_graph(self):
        g = random_bipartite_graph(30, 30, 150, seed=3)
        algo = AdaptiveTriangleCounter(max_sample_size=g.m, seed=4)
        result = run_algorithm(algo, AdjacencyListStream(g, seed=5))
        assert result.estimate == 0.0
        assert count_triangles(g) == 0

    def test_level_report(self):
        planted = planted_triangles(300, 30, seed=6)
        algo = AdaptiveTriangleCounter(max_sample_size=planted.graph.m, seed=7)
        run_algorithm(algo, AdjacencyListStream(planted.graph, seed=8))
        report = algo.level_report()
        assert len(report) == len(algo.levels)
        assert all(
            {"sample_size", "counted_pairs", "estimate"} <= set(row) for row in report
        )
        supports = [row["counted_pairs"] for row in report]
        # Support shrinks (weakly) with the budget.
        assert all(supports[i] >= supports[i + 1] - 2 for i in range(len(supports) - 1))

    def test_space_is_sum_of_levels(self):
        algo = AdaptiveTriangleCounter(max_sample_size=32, levels=2, seed=9)
        assert algo.space_words() == sum(l.space_words() for l in algo.levels)
