"""Tests for the two-pass triangle counter (Theorem 3.7)."""

import statistics

import pytest

from repro.analysis.lightest_edge import h_statistics, rho_assignment
from repro.core.triangle_two_pass import (
    TwoPassTriangleCounter,
    apex,
    recommended_sample_size,
    triangle_edges,
    triangle_key,
)
from repro.graph.counting import count_triangles
from repro.graph.generators import (
    book_graph,
    complete_graph,
    gnm_random_graph,
    random_bipartite_graph,
    windmill_graph,
)
from repro.graph.planted import planted_triangles, planted_triangles_book
from repro.streaming.orderings import ORDERING_FACTORIES
from repro.streaming.runner import run_algorithm
from repro.streaming.stream import AdjacencyListStream


class TestTriangleHelpers:
    def test_triangle_key_sorts(self):
        assert triangle_key(3, 1, 2) == (1, 2, 3)

    def test_triangle_edges(self):
        assert triangle_edges((1, 2, 3)) == ((1, 2), (1, 3), (2, 3))

    def test_apex(self):
        assert apex((1, 2, 3), (1, 2)) == 3
        assert apex((1, 2, 3), (1, 3)) == 2

    def test_apex_invalid(self):
        with pytest.raises(ValueError):
            apex((1, 2, 3), (1, 4))


class TestExactRegime:
    """With m' >= m every candidate is kept: the estimate must be exact."""

    @pytest.mark.parametrize(
        "graph",
        [
            complete_graph(7),
            book_graph(10),
            windmill_graph(6),
            gnm_random_graph(40, 150, seed=1),
        ],
    )
    def test_exact_on_families(self, graph):
        truth = count_triangles(graph)
        # Exactness needs both samples unsaturated: S needs m slots, Q needs
        # one slot per candidate pair (3 per triangle when S is everything).
        budget = 2 * graph.m + 3 * truth + 5
        for seed in range(3):
            algo = TwoPassTriangleCounter(sample_size=budget, seed=seed)
            stream = AdjacencyListStream(graph, seed=100 + seed)
            assert run_algorithm(algo, stream).estimate == pytest.approx(truth)

    def test_exact_under_every_ordering(self, small_random_graph):
        truth = count_triangles(small_random_graph)
        budget = 2 * small_random_graph.m + 3 * truth + 5
        for name, factory in ORDERING_FACTORIES.items():
            stream = factory(small_random_graph, seed=7)
            algo = TwoPassTriangleCounter(sample_size=budget, seed=3)
            estimate = run_algorithm(algo, stream).estimate
            assert estimate == pytest.approx(truth), f"ordering {name}"

    def test_triangle_free_graph_gives_zero(self):
        g = random_bipartite_graph(30, 30, 120, seed=2)
        algo = TwoPassTriangleCounter(sample_size=50, seed=3)
        assert run_algorithm(algo, AdjacencyListStream(g, seed=4)).estimate == 0.0

    def test_counted_pairs_equals_t_in_exact_regime(self):
        g = gnm_random_graph(30, 120, seed=5)
        algo = TwoPassTriangleCounter(
            sample_size=2 * g.m + 3 * count_triangles(g) + 5, seed=6
        )
        run_algorithm(algo, AdjacencyListStream(g, seed=7))
        assert algo.counted_pairs() == count_triangles(g)
        assert algo.candidate_total == 3 * count_triangles(g)

    def test_edge_count_measured(self, small_random_graph):
        algo = TwoPassTriangleCounter(sample_size=10, seed=8)
        run_algorithm(algo, AdjacencyListStream(small_random_graph, seed=9))
        assert algo.edge_count == small_random_graph.m


class TestHCountersMatchOracle:
    """The streaming H counters must equal the offline order statistics."""

    @pytest.mark.parametrize("graph_seed", [1, 2, 3])
    def test_h_values(self, graph_seed):
        g = gnm_random_graph(25, 90, seed=graph_seed)
        stream = AdjacencyListStream(g, seed=graph_seed + 50)
        algo = TwoPassTriangleCounter(
            sample_size=3 * g.m + 3 * count_triangles(g), seed=graph_seed + 99
        )
        run_algorithm(algo, stream)
        oracle = h_statistics(stream)
        pairs = algo._reservoir.items()
        assert pairs, "expected candidates on a dense random graph"
        checked = 0
        for pair in pairs:
            expected = oracle[pair.triangle]
            for watcher in pair.watchers:
                assert watcher.h == expected[watcher.edge], (
                    f"H mismatch for triangle {pair.triangle} edge {watcher.edge}"
                )
                checked += 1
        assert checked == 3 * len(pairs)

    def test_rho_matches_oracle(self):
        g = gnm_random_graph(25, 90, seed=4)
        stream = AdjacencyListStream(g, seed=44)
        algo = TwoPassTriangleCounter(
            sample_size=3 * g.m + 3 * count_triangles(g), seed=55
        )
        run_algorithm(algo, stream)
        oracle_rho = rho_assignment(stream)
        for pair in algo._reservoir.items():
            assert pair.rho_edge() == oracle_rho[pair.triangle]

    def test_h_values_with_subsampling(self):
        """Even at m' < m the retained pairs' H counters must be exact."""
        g = gnm_random_graph(30, 140, seed=6)
        stream = AdjacencyListStream(g, seed=66)
        algo = TwoPassTriangleCounter(sample_size=60, seed=77)
        run_algorithm(algo, stream)
        oracle = h_statistics(stream)
        for pair in algo._reservoir.items():
            expected = oracle[pair.triangle]
            for watcher in pair.watchers:
                assert watcher.h == expected[watcher.edge]


class TestStatisticalBehaviour:
    def test_mean_close_to_truth(self, triangle_workload):
        g = triangle_workload.graph
        truth = triangle_workload.true_count
        estimates = []
        for i in range(40):
            algo = TwoPassTriangleCounter(sample_size=g.m // 4, seed=1000 + i)
            stream = AdjacencyListStream(g, seed=2000 + i)
            estimates.append(run_algorithm(algo, stream).estimate)
        assert statistics.mean(estimates) == pytest.approx(truth, rel=0.12)

    def test_theorem_budget_achieves_epsilon(self, triangle_workload):
        g = triangle_workload.graph
        truth = triangle_workload.true_count
        budget = recommended_sample_size(g.m, truth, epsilon=0.5)
        within = 0
        runs = 20
        for i in range(runs):
            algo = TwoPassTriangleCounter(sample_size=budget, seed=3000 + i)
            stream = AdjacencyListStream(g, seed=4000 + i)
            est = run_algorithm(algo, stream).estimate
            if abs(est - truth) <= 0.5 * truth:
                within += 1
        assert within >= runs * 2 // 3

    def test_variance_shrinks_with_budget(self, triangle_workload):
        g = triangle_workload.graph
        spreads = []
        for budget in (g.m // 16, g.m // 2):
            estimates = []
            for i in range(25):
                algo = TwoPassTriangleCounter(sample_size=budget, seed=5000 + i)
                stream = AdjacencyListStream(g, seed=6000 + i)
                estimates.append(run_algorithm(algo, stream).estimate)
            spreads.append(statistics.pstdev(estimates))
        assert spreads[1] < spreads[0]

    def test_accurate_on_heavy_edge_workload(self):
        planted = planted_triangles_book(600, 200, seed=9)
        g = planted.graph
        estimates = []
        for i in range(30):
            algo = TwoPassTriangleCounter(sample_size=g.m // 3, seed=7000 + i)
            stream = AdjacencyListStream(g, seed=8000 + i)
            estimates.append(run_algorithm(algo, stream).estimate)
        assert statistics.median(estimates) == pytest.approx(200, rel=0.35)


class TestSpaceBehaviour:
    def test_space_tracks_budget_not_m(self, triangle_workload):
        g = triangle_workload.graph
        small = run_algorithm(
            TwoPassTriangleCounter(sample_size=50, seed=1),
            AdjacencyListStream(g, seed=2),
        )
        large = run_algorithm(
            TwoPassTriangleCounter(sample_size=800, seed=1),
            AdjacencyListStream(g, seed=2),
        )
        assert small.peak_space_words < large.peak_space_words
        assert small.peak_space_words < 50 * 25  # O(m') words, generous constant

    def test_metadata(self):
        algo = TwoPassTriangleCounter(sample_size=10)
        assert algo.n_passes == 2
        assert algo.requires_same_order

    def test_invalid_sample_size(self):
        with pytest.raises(ValueError):
            TwoPassTriangleCounter(sample_size=0)


class TestRecommendedSampleSize:
    def test_scaling(self):
        base = recommended_sample_size(10000, 1000, epsilon=0.5)
        assert recommended_sample_size(20000, 1000, epsilon=0.5) == pytest.approx(
            2 * base, rel=0.01
        )

    def test_t_exponent(self):
        small_t = recommended_sample_size(10**6, 10**3)
        big_t = recommended_sample_size(10**6, 10**6)
        assert small_t / big_t == pytest.approx(10 ** (3 * 2 / 3), rel=0.01)

    def test_zero_triangles_means_store_everything(self):
        assert recommended_sample_size(500, 0) == 500

    def test_validation(self):
        with pytest.raises(ValueError):
            recommended_sample_size(-1, 10)
        with pytest.raises(ValueError):
            recommended_sample_size(10, 10, epsilon=0)
