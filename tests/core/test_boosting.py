"""Tests for median-of-copies amplification."""

import pytest

from repro.core.boosting import MedianBoosted, copies_for_confidence
from repro.core.triangle_two_pass import TwoPassTriangleCounter
from repro.graph.counting import count_triangles
from repro.graph.planted import planted_triangles
from repro.streaming.algorithm import FixedValueAlgorithm, StreamingAlgorithm
from repro.streaming.runner import run_algorithm
from repro.streaming.stream import AdjacencyListStream


class TestCopiesForConfidence:
    def test_monotone_in_confidence(self):
        assert copies_for_confidence(0.01) > copies_for_confidence(0.3)

    def test_always_odd(self):
        for delta in (0.3, 0.1, 0.01, 0.001):
            assert copies_for_confidence(delta) % 2 == 1

    def test_invalid_delta(self):
        with pytest.raises(ValueError):
            copies_for_confidence(0.0)
        with pytest.raises(ValueError):
            copies_for_confidence(1.0)


class TestMedianBoosted:
    def test_median_of_fixed_values(self):
        values = iter([1.0, 100.0, 3.0])

        def factory(seed):
            return FixedValueAlgorithm(next(values))

        boosted = MedianBoosted(factory, copies=3, seed=1)
        assert boosted.result() == 3.0
        assert boosted.estimates() == [1.0, 100.0, 3.0]

    def test_copies_get_distinct_seeds(self):
        seeds = []

        def factory(seed):
            seeds.append(seed)
            return FixedValueAlgorithm(0.0)

        MedianBoosted(factory, copies=4, seed=2)
        draws = [s.random() for s in seeds]
        assert len(set(draws)) == 4

    def test_requires_positive_copies(self):
        with pytest.raises(ValueError):
            MedianBoosted(lambda s: FixedValueAlgorithm(0.0), copies=0)

    def test_mixed_pass_counts_rejected(self):
        calls = [0]

        def factory(seed):
            calls[0] += 1
            algo = FixedValueAlgorithm(0.0)
            algo.n_passes = calls[0]  # 1 then 2: inconsistent
            return algo

        with pytest.raises(ValueError):
            MedianBoosted(factory, copies=2, seed=3)

    def test_space_is_sum_of_copies(self):
        boosted = MedianBoosted(lambda s: FixedValueAlgorithm(1.0), copies=5, seed=4)
        assert boosted.space_words() == 5

    def test_inherits_same_order_requirement(self):
        boosted = MedianBoosted(
            lambda s: TwoPassTriangleCounter(sample_size=10, seed=s), copies=2, seed=5
        )
        assert boosted.requires_same_order
        assert boosted.n_passes == 2


class TestEndToEndBoosting:
    def test_boosting_improves_stability(self):
        planted = planted_triangles(600, 120, seed=6)
        g = planted.graph
        truth = planted.true_count
        budget = g.m // 8

        def single_estimates(runs):
            out = []
            for i in range(runs):
                algo = TwoPassTriangleCounter(sample_size=budget, seed=100 + i)
                out.append(
                    run_algorithm(algo, AdjacencyListStream(g, seed=200 + i)).estimate
                )
            return out

        def boosted_estimates(runs):
            out = []
            for i in range(runs):
                boosted = MedianBoosted(
                    lambda s: TwoPassTriangleCounter(sample_size=budget, seed=s),
                    copies=7,
                    seed=300 + i,
                )
                out.append(
                    run_algorithm(boosted, AdjacencyListStream(g, seed=400 + i)).estimate
                )
            return out

        import statistics

        single_sd = statistics.pstdev(single_estimates(20))
        boosted_sd = statistics.pstdev(boosted_estimates(20))
        assert boosted_sd < single_sd

    def test_all_callbacks_fan_out(self):
        events = []

        class Recorder(StreamingAlgorithm):
            n_passes = 1

            def __init__(self, tag):
                self.tag = tag

            def begin_pass(self, i):
                events.append((self.tag, "bp"))

            def process(self, s, n):
                events.append((self.tag, "p"))

            def end_pass(self, i):
                events.append((self.tag, "ep"))

            def result(self):
                return 0.0

            def space_words(self):
                return 0

        tags = iter("ab")
        boosted = MedianBoosted(lambda s: Recorder(next(tags)), copies=2, seed=7)
        g = planted_triangles(20, 2, seed=8).graph
        run_algorithm(boosted, AdjacencyListStream(g, seed=9))
        assert ("a", "bp") in events and ("b", "bp") in events
        assert ("a", "ep") in events and ("b", "ep") in events
        assert count_triangles(g) == 2  # sanity on the fixture
