"""End-to-end columnar-vs-scalar equivalence for the two-pass counters.

The scalar implementations are the correctness oracle for the whole
columnar fast path (vectorized hashing, batched sampler offers, columnar
watcher/detection scans, column providers).  These tests run the same
seeded workload through both paths and require *bit-identical* outcomes —
estimates, space peaks and internal observables — under every dispatch
combination, including the sharded driver whose workers now reuse
per-shard column memos across passes.
"""

import pytest

from repro.core.fourcycle_two_pass import TwoPassFourCycleCounter
from repro.core.triangle_two_pass import TwoPassTriangleCounter
from repro.graph.generators import gnm_random_graph
from repro.sketch.driver import run_sharded
from repro.streaming.runner import run_algorithm
from repro.streaming.stream import AdjacencyListStream
from repro.util.vectorized import ColumnMemo, scalar_oracle

FACTORIES = {
    "triangle": lambda: TwoPassTriangleCounter(sample_size=48, seed=42),
    "fourcycle": lambda: TwoPassFourCycleCounter(sample_size=48, seed=42),
}

# The triangle counter's H-watcher ρ-rule needs whole-stream pass-2 state,
# so sharded runs require its explicit sharded mode (hash-designated ρ).
SHARDED_FACTORIES = {
    "triangle": lambda: TwoPassTriangleCounter(sample_size=48, seed=42, sharded=True),
    "fourcycle": lambda: TwoPassFourCycleCounter(sample_size=48, seed=42),
}


@pytest.fixture(scope="module")
def stream():
    return AdjacencyListStream(gnm_random_graph(120, 1500, seed=7), seed=5)


@pytest.fixture(params=sorted(FACTORIES))
def factory(request):
    return FACTORIES[request.param]


def _run(factory, stream, *, fast, columnar):
    algo = factory()
    if columnar:
        result = run_algorithm(algo, stream, use_fast_path=fast)
    else:
        with scalar_oracle():
            result = run_algorithm(algo, stream, use_fast_path=fast)
    return algo, result


class TestFullRunEquivalence:
    def test_all_dispatch_tiers_bit_identical(self, factory, stream):
        runs = {
            (fast, columnar): _run(factory, stream, fast=fast, columnar=columnar)
            for fast in (False, True)
            for columnar in (False, True)
        }
        base_algo, base_result = runs[(False, False)]
        for (fast, columnar), (algo, result) in runs.items():
            label = f"fast={fast}, columnar={columnar}"
            assert result.estimate == base_result.estimate, label
            assert result.peak_space_words == base_result.peak_space_words, label
            assert algo.observables() == base_algo.observables(), label

    def test_explicit_column_provider_is_transparent(self, factory, stream):
        algo_memo = factory()
        algo_memo.bind_columns(ColumnMemo())
        with_memo = run_algorithm(algo_memo, stream)
        algo_plain = factory()
        plain = run_algorithm(algo_plain, stream)
        assert with_memo.estimate == plain.estimate
        assert with_memo.peak_space_words == plain.peak_space_words
        assert algo_memo.observables() == algo_plain.observables()


class TestShardedEquivalence:
    @pytest.fixture(params=sorted(SHARDED_FACTORIES))
    def sharded_factory(self, request):
        return SHARDED_FACTORIES[request.param]

    def test_sharded_columnar_matches_scalar(self, sharded_factory, stream):
        columnar = run_sharded(sharded_factory(), stream, n_shards=3)
        with scalar_oracle():
            scalar = run_sharded(sharded_factory(), stream, n_shards=3)
        assert columnar.estimate == scalar.estimate
        assert columnar.peak_space_words == scalar.peak_space_words

    def test_effective_parallelism_recorded(self, sharded_factory, stream):
        result = run_sharded(sharded_factory(), stream, n_shards=2, workers=None)
        assert result.effective_parallelism == 1
        import os

        pooled = run_sharded(sharded_factory(), stream, n_shards=2, workers=4)
        assert pooled.workers == 4
        assert pooled.effective_parallelism == min(4, 2, os.cpu_count() or 1)
        assert pooled.estimate == result.estimate
