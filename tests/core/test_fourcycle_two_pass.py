"""Tests for the two-pass 4-cycle counter (Theorem 4.6)."""

import statistics

import pytest

from repro.core.fourcycle_two_pass import (
    TwoPassFourCycleCounter,
    cycle_key,
    recommended_sample_size,
)
from repro.graph.counting import count_four_cycles
from repro.graph.generators import (
    complete_bipartite,
    complete_graph,
    cycle_graph,
    gnm_random_graph,
    random_forest,
    theta_graph,
)
from repro.graph.planted import planted_four_cycles, planted_four_cycles_theta
from repro.streaming.orderings import ORDERING_FACTORIES
from repro.streaming.runner import run_algorithm
from repro.streaming.stream import AdjacencyListStream


class TestCycleKey:
    def test_rotation_invariant(self):
        assert cycle_key(1, 2, 3, 4) == cycle_key(3, 4, 1, 2)

    def test_reflection_invariant(self):
        assert cycle_key(1, 2, 3, 4) == cycle_key(1, 4, 3, 2)

    def test_distinguishes_diagonals(self):
        # Same vertex set, different cycle (different diagonal pairing).
        assert cycle_key(1, 2, 3, 4) != cycle_key(2, 1, 3, 4)


class TestExactRegime:
    @pytest.mark.parametrize(
        "graph",
        [
            cycle_graph(4),
            complete_bipartite(3, 3),
            theta_graph(5),
            complete_graph(6),
            gnm_random_graph(30, 100, seed=1),
        ],
    )
    @pytest.mark.parametrize("mode", ["distinct", "multiplicity"])
    def test_exact_when_everything_sampled(self, graph, mode):
        truth = count_four_cycles(graph)
        algo = TwoPassFourCycleCounter(sample_size=2 * graph.m, mode=mode, seed=3)
        stream = AdjacencyListStream(graph, seed=4)
        assert run_algorithm(algo, stream).estimate == pytest.approx(truth)

    def test_exact_under_every_ordering(self):
        g = gnm_random_graph(25, 80, seed=2)
        truth = count_four_cycles(g)
        for name, factory in ORDERING_FACTORIES.items():
            algo = TwoPassFourCycleCounter(sample_size=2 * g.m, seed=5)
            estimate = run_algorithm(algo, factory(g, seed=6)).estimate
            assert estimate == pytest.approx(truth), f"ordering {name}"

    def test_cycle_free_graph_gives_zero(self):
        g = random_forest(60, 40, seed=7)
        algo = TwoPassFourCycleCounter(sample_size=30, seed=8)
        assert run_algorithm(algo, AdjacencyListStream(g, seed=9)).estimate == 0.0

    def test_edge_count_and_wedge_count(self):
        g = gnm_random_graph(20, 60, seed=10)
        algo = TwoPassFourCycleCounter(sample_size=2 * g.m, seed=11)
        run_algorithm(algo, AdjacencyListStream(g, seed=12))
        assert algo.edge_count == g.m
        from repro.graph.counting import count_wedges

        assert algo.wedge_sample_size == count_wedges(g)


class TestStatisticalBehaviour:
    def test_multiplicity_mode_unbiased(self, fourcycle_workload):
        g = fourcycle_workload.graph
        truth = fourcycle_workload.true_count
        estimates = []
        for i in range(40):
            algo = TwoPassFourCycleCounter(sample_size=g.m // 3, seed=100 + i)
            stream = AdjacencyListStream(g, seed=200 + i)
            estimates.append(run_algorithm(algo, stream).estimate)
        assert statistics.mean(estimates) == pytest.approx(truth, rel=0.2)

    def test_distinct_mode_within_constant_factor(self, fourcycle_workload):
        g = fourcycle_workload.graph
        truth = fourcycle_workload.true_count
        estimates = []
        for i in range(30):
            algo = TwoPassFourCycleCounter(
                sample_size=g.m // 3, mode="distinct", seed=300 + i
            )
            stream = AdjacencyListStream(g, seed=400 + i)
            estimates.append(run_algorithm(algo, stream).estimate)
        med = statistics.median(estimates)
        # A cycle is hit when any of its 4 wedges is sampled: the distinct
        # estimator concentrates in [T, 4T].
        assert truth * 0.5 <= med <= truth * 5

    def test_theorem_budget_constant_factor(self, fourcycle_workload):
        g = fourcycle_workload.graph
        truth = fourcycle_workload.true_count
        budget = recommended_sample_size(g.m, truth)
        within = 0
        runs = 20
        for i in range(runs):
            algo = TwoPassFourCycleCounter(sample_size=budget, seed=500 + i)
            stream = AdjacencyListStream(g, seed=600 + i)
            est = run_algorithm(algo, stream).estimate
            if truth / 4 <= est <= truth * 4:
                within += 1
        assert within >= runs * 2 // 3

    def test_entangled_cycles_theta_workload(self):
        planted = planted_four_cycles_theta(300, 14, seed=13)
        g = planted.graph
        truth = planted.true_count
        estimates = []
        for i in range(30):
            algo = TwoPassFourCycleCounter(sample_size=g.m // 2, seed=700 + i)
            stream = AdjacencyListStream(g, seed=800 + i)
            estimates.append(run_algorithm(algo, stream).estimate)
        assert statistics.median(estimates) == pytest.approx(truth, rel=0.6)


class TestConfiguration:
    def test_metadata(self):
        algo = TwoPassFourCycleCounter(sample_size=5)
        assert algo.n_passes == 2
        assert not algo.requires_same_order

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            TwoPassFourCycleCounter(sample_size=5, mode="bogus")

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            TwoPassFourCycleCounter(sample_size=0)

    def test_inclusion_probability_exact_regime_is_one(self):
        g = cycle_graph(6)
        algo = TwoPassFourCycleCounter(sample_size=2 * g.m, seed=1)
        run_algorithm(algo, AdjacencyListStream(g, seed=2))
        assert algo.inverse_inclusion_probability == 1.0

    def test_inclusion_probability_formula(self):
        p = planted_four_cycles(200, 10, seed=3)
        g = p.graph
        algo = TwoPassFourCycleCounter(sample_size=50, seed=4)
        run_algorithm(algo, AdjacencyListStream(g, seed=5))
        m = g.m
        assert algo.inverse_inclusion_probability == pytest.approx(
            (m * (m - 1)) / (50 * 49)
        )


class TestRecommendedSampleSize:
    def test_t_exponent(self):
        small_t = recommended_sample_size(10**6, 2**8)
        big_t = recommended_sample_size(10**6, 2**16)
        assert small_t / big_t == pytest.approx(2 ** (8 * 0.375), rel=0.01)

    def test_zero_cycles_store_everything(self):
        assert recommended_sample_size(300, 0) == 300

    def test_minimum_two(self):
        assert recommended_sample_size(10, 10**9) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            recommended_sample_size(-5, 3)


class TestWedgeCap:
    """Optional |Q| bound: uniform wedge subsampling with rescaling."""

    def test_cap_respected(self, fourcycle_workload):
        g = fourcycle_workload.graph
        algo = TwoPassFourCycleCounter(sample_size=g.m // 3, wedge_cap=40, seed=1)
        run_algorithm(algo, AdjacencyListStream(g, seed=2))
        assert algo.wedge_sample_size <= 40
        assert algo.wedge_population >= algo.wedge_sample_size
        assert 0 < algo.wedge_keep_fraction <= 1

    def test_no_cap_keeps_everything(self, fourcycle_workload):
        g = fourcycle_workload.graph
        algo = TwoPassFourCycleCounter(sample_size=g.m // 3, seed=3)
        run_algorithm(algo, AdjacencyListStream(g, seed=4))
        assert algo.wedge_keep_fraction == 1.0
        assert algo.wedge_sample_size == algo.wedge_population

    def test_capped_estimator_stays_calibrated(self, fourcycle_workload):
        g = fourcycle_workload.graph
        truth = fourcycle_workload.true_count
        estimates = []
        for i in range(40):
            algo = TwoPassFourCycleCounter(
                sample_size=g.m // 3, wedge_cap=60, seed=900 + i
            )
            stream = AdjacencyListStream(g, seed=950 + i)
            estimates.append(run_algorithm(algo, stream).estimate)
        assert statistics.mean(estimates) == pytest.approx(truth, rel=0.35)

    def test_cap_bounds_space_on_hub_samples(self):
        """A sampled star makes |Q| quadratic without the cap."""
        from repro.graph.generators import star_graph

        g = star_graph(60)
        uncapped = TwoPassFourCycleCounter(sample_size=2 * g.m, seed=5)
        run_algorithm(uncapped, AdjacencyListStream(g, seed=6))
        assert uncapped.wedge_sample_size == 60 * 59 // 2
        capped = TwoPassFourCycleCounter(sample_size=2 * g.m, wedge_cap=30, seed=5)
        result = run_algorithm(capped, AdjacencyListStream(g, seed=6))
        assert capped.wedge_sample_size == 30
        assert result.estimate == 0.0  # stars have no 4-cycles

    def test_invalid_cap(self):
        with pytest.raises(ValueError):
            TwoPassFourCycleCounter(sample_size=5, wedge_cap=0)
