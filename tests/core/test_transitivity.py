"""Tests for transitivity estimation and the exact wedge counter."""

import pytest

from repro.core.transitivity import TransitivityEstimator, WedgeCounter
from repro.graph.counting import count_wedges, transitivity
from repro.graph.generators import (
    complete_bipartite,
    complete_graph,
    gnm_random_graph,
    star_graph,
)
from repro.graph.planted import planted_triangles
from repro.graph.graph import Graph
from repro.streaming.runner import run_algorithm
from repro.streaming.stream import AdjacencyListStream


class TestWedgeCounter:
    @pytest.mark.parametrize(
        "graph",
        [star_graph(7), complete_graph(6), gnm_random_graph(30, 90, seed=1)],
    )
    def test_exact(self, graph):
        algo = WedgeCounter()
        result = run_algorithm(algo, AdjacencyListStream(graph, seed=2))
        assert result.estimate == count_wedges(graph)

    def test_constant_space(self):
        g = gnm_random_graph(50, 200, seed=3)
        result = run_algorithm(WedgeCounter(), AdjacencyListStream(g, seed=4))
        assert result.peak_space_words == 1

    def test_empty_graph(self):
        algo = WedgeCounter()
        result = run_algorithm(algo, AdjacencyListStream(Graph(vertices=[0, 1]), seed=1))
        assert result.estimate == 0


class TestTransitivityEstimator:
    def test_exact_regime_matches_truth(self):
        g = gnm_random_graph(40, 160, seed=5)
        algo = TransitivityEstimator(sample_size=4 * g.m, seed=6)
        result = run_algorithm(algo, AdjacencyListStream(g, seed=7))
        assert result.estimate == pytest.approx(transitivity(g))

    def test_complete_graph_transitivity_one(self):
        g = complete_graph(8)
        # K8 has 56 triangles -> 168 candidate pairs; keep Q unsaturated.
        algo = TransitivityEstimator(sample_size=2 * g.m + 170, seed=8)
        result = run_algorithm(algo, AdjacencyListStream(g, seed=9))
        assert result.estimate == pytest.approx(1.0)

    def test_triangle_free_transitivity_zero(self):
        g = complete_bipartite(5, 5)
        algo = TransitivityEstimator(sample_size=20, seed=10)
        result = run_algorithm(algo, AdjacencyListStream(g, seed=11))
        assert result.estimate == 0.0

    def test_wedgeless_graph(self):
        g = Graph.from_edges([(0, 1), (2, 3)])
        algo = TransitivityEstimator(sample_size=10, seed=12)
        result = run_algorithm(algo, AdjacencyListStream(g, seed=13))
        assert result.estimate == 0.0

    def test_sampled_regime_reasonable(self):
        planted = planted_triangles(700, 150, seed=14)
        g = planted.graph
        truth = transitivity(g)
        estimates = []
        for i in range(15):
            algo = TransitivityEstimator(sample_size=g.m // 4, seed=100 + i)
            result = run_algorithm(algo, AdjacencyListStream(g, seed=200 + i))
            estimates.append(result.estimate)
        import statistics

        assert statistics.median(estimates) == pytest.approx(truth, rel=0.4)

    def test_component_accessors(self):
        g = gnm_random_graph(25, 80, seed=15)
        algo = TransitivityEstimator(sample_size=4 * g.m, seed=16)
        run_algorithm(algo, AdjacencyListStream(g, seed=17))
        assert algo.wedge_count() == count_wedges(g)
        assert algo.result() == pytest.approx(
            3 * algo.triangle_estimate() / algo.wedge_count()
        )

    def test_metadata(self):
        algo = TransitivityEstimator(sample_size=5)
        assert algo.n_passes == 2
        assert algo.requires_same_order
