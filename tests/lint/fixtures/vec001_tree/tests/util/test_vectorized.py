"""Mini parity test for the VEC001 fixture tree (never collected)."""

from repro.util.vectorized import (
    columnar_enabled,
    covered_kernel,
    scalar_oracle,
    set_columnar_enabled,
)


def test_covered_kernel_parity():
    previous = set_columnar_enabled(False)
    assert not columnar_enabled()
    assert scalar_oracle() is None
    assert covered_kernel([1, 2]) == [2, 3]
    set_columnar_enabled(previous)
