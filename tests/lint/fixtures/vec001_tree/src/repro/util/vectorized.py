"""Planted VEC001 violations: a columnar module with registry holes.

The planted-line tags mark each anchor; the mini parity test in
``../../../../tests/util/test_vectorized.py`` exercises only
``covered_kernel`` and the oracle switch trio.
"""

__all__ = [  # PLANT:VEC001 -- anchors the stale-export and unexercised findings
    "ghost_kernel",
    "covered_kernel",
    "uncovered_kernel",
    "scalar_oracle",
    "set_columnar_enabled",
    "columnar_enabled",
]

_ENABLED = True


def columnar_enabled():
    return _ENABLED


def set_columnar_enabled(enabled):
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(enabled)
    return previous


def scalar_oracle():
    return None


def covered_kernel(values):
    return [v + 1 for v in values]


def uncovered_kernel(values):
    return [v * 2 for v in values]


def stray_public_kernel(values):  # PLANT:VEC001
    return list(values)
