"""Planted SKT002 violations: a persistence registry that cannot round-trip.

Parsed by ``tests/lint/test_rules.py``, never imported (``GhostRecord`` is
deliberately undefined).  One planted violation per sub-check:

* ``GoodRow.bits`` nests an unregistered dataclass (loads back as a dict);
* ``TupleRow.items`` is JSON-unsafe (tuple decays to list);
* ``OrphanResult`` is record-shaped but unregistered (save raises);
* ``RECORD_TYPES`` registers ``GhostRecord``, which does not exist.
"""

from dataclasses import dataclass


@dataclass(frozen=True)
class _InnerBits:
    flag: bool


@dataclass(frozen=True)
class GoodRow:
    value: float
    bits: _InnerBits  # PLANT:SKT002


@dataclass(frozen=True)
class TupleRow:
    items: tuple  # PLANT:SKT002


@dataclass(frozen=True)
class OrphanResult:  # PLANT:SKT002
    estimate: float


RECORD_TYPES = {  # PLANT:SKT002
    cls.__name__: cls
    for cls in (GoodRow, TupleRow, GhostRecord)  # noqa: F821
}
