"""Planted DET003 violations: wall clock / OS entropy outside the runner.

Parsed by ``tests/lint/test_rules.py``, never imported.
"""

import time
import uuid


def stamp_run():
    started = time.perf_counter()  # PLANT:DET003
    run_id = uuid.uuid4()  # PLANT:DET003
    return started, run_id
