"""Planted SRV001 violations: a protocol module whose table drifted."""


class ServeError(Exception):
    def __init__(self, code, message):
        super().__init__(message)
        self.code = code


BAD_REQUEST = "BAD_REQUEST"
NO_SUCH_SESSION = "NO_SUCH_SESSION"  # PLANT:SRV001 -- only raised as a literal, so dead
UNLISTED_CODE = "UNLISTED_CODE"  # PLANT:SRV001 -- raised but missing from the table
DEAD_CODE = "DEAD_CODE"  # PLANT:SRV001 -- tabled but never referenced

ERROR_CODES = (  # PLANT:SRV001 -- GHOST_CODE has no constant backing it
    BAD_REQUEST,
    NO_SUCH_SESSION,
    DEAD_CODE,
    GHOST_CODE,
)
