"""Raise sites for the SRV001 fixture tree."""

from .protocol import BAD_REQUEST, UNLISTED_CODE, ServeError


def reject(reason):
    raise ServeError(BAD_REQUEST, reason)


def unlisted(sid):
    raise ServeError(UNLISTED_CODE, sid)


def missing(sid):
    raise ServeError("NO_SUCH_SESSION", sid)  # PLANT:SRV001


def odd(sid):
    raise ServeError(MYSTERY_CODE, sid)  # PLANT:SRV001
