"""Planted ASY001 violations: blocking calls inside coroutines.

Each bad line carries a planted-line tag; everything else is a negative
control (sync functions and nested sync defs may block freely).
"""

import asyncio
import subprocess
import time
from pathlib import Path


async def bad_sleep():
    time.sleep(0.1)  # PLANT:ASY001


async def bad_file_io(directory):
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)  # PLANT:ASY001
    target = directory / "out.json"
    target.write_text("{}")  # PLANT:ASY001
    with open("config.json") as handle:  # PLANT:ASY001
        payload = handle.read()
    subprocess.run(["ls"])  # PLANT:ASY001
    return payload


async def fine_async():
    await asyncio.sleep(0.01)

    def helper():
        time.sleep(1)  # nested sync def: not awaited code, not flagged

    return helper


def sync_blocking_is_fine(directory):
    time.sleep(0.001)
    Path(directory).mkdir(exist_ok=True)
