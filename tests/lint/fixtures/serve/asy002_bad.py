"""Planted ASY002 violations: module-level state mutated by coroutines.

Each bad line carries a planted-line tag; the controls show the allowed
shapes (local shadowing, synchronous mutation).
"""

_CACHE = {}
_LIVE = []
_COUNTER = 0


async def bad_cache_write(key, value):
    _CACHE[key] = value  # PLANT:ASY002


async def bad_cache_delete(key):
    del _CACHE[key]  # PLANT:ASY002


async def bad_list_append(session):
    _LIVE.append(session)  # PLANT:ASY002


async def bad_global_rebind():
    global _COUNTER
    _COUNTER = _COUNTER + 1  # PLANT:ASY002


async def fine_local_shadow():
    _CACHE = {}
    _CACHE["a"] = 1  # shadowed local, not the module dict
    return _CACHE


def sync_mutation_is_fine():
    _LIVE.append("registered at import time")
