"""Planted DET004 violations: RNG-receiving functions minting their own.

Each bad line carries a planted-line tag; the controls cover the two
legitimate shapes (passthrough normalization, seed-only functions).
"""

import random

from repro.util.rng import resolve_rng


def _fresh_stream():
    return resolve_rng(1234)


def _seeded_stream(seed):
    return resolve_rng(seed)


def bad_second_resolve(rng, n):
    extra = resolve_rng(99)  # PLANT:DET004
    return [extra.random() for _ in range(n)]


def bad_raw_construction(rng):
    noise = random.Random(0)  # PLANT:DET004
    return noise.random() + rng.random()


def bad_helper_stream(rng):
    other = _fresh_stream()  # PLANT:DET004
    return other.random()


def fine_passthrough(rng):
    return resolve_rng(rng)


def fine_seed_only(seed):
    return resolve_rng(seed)


def fine_helper_with_explicit_seed(rng, seed):
    return _seeded_stream(seed)
