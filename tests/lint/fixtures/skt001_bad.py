"""Planted SKT001 violation: a restore() that forgets attributes.

Parsed by ``tests/lint/test_rules.py``, never imported.  ``LeakyCounter``
assigns three attributes in ``__init__`` but restores only one, so the
rule must emit one violation per missing attribute (``_budget`` and
``_sample``), both anchored at the ``def restore`` line.
"""


class LeakyCounter:
    def __init__(self, budget):
        self._budget = budget
        self._count = 0
        self._sample = []

    def snapshot(self):
        return {"count": self._count}

    def restore(self, state):  # PLANT:SKT001
        self._count = state["count"]


class FaithfulCounter:
    """Fully covered restore — must not be flagged.

    Coverage counts assignment, subscript stores, and mutation through a
    method call, mirroring how the real counters restore samplers.
    """

    def __init__(self, budget):
        self._budget = budget
        self._items = []
        self._meter = None

    def snapshot(self):
        return {"budget": self._budget, "items": list(self._items)}

    def restore(self, state):
        self._budget = state["budget"]
        self._items[:] = state["items"]
        self._meter.load_state_dict(state)
