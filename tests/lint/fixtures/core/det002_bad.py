"""Planted DET002 violations: unordered iteration under a ``core/`` path.

Parsed by ``tests/lint/test_rules.py``, never imported.  Planted marker
comments pin the lines the rule must flag; the ``ordered`` method shows
the sanctioned (laundered) forms that must stay clean.
"""


class WeightBag:
    def __init__(self):
        self._tags = set()

    def unordered(self, weights):
        total = 0
        for tag in {"a", "b", "c"}:  # PLANT:DET002
            total += len(tag)
        for key in weights.keys():  # PLANT:DET002
            total += weights[key]
        seen = set(weights)
        leaked = [item for item in seen]  # PLANT:DET002
        for tag in self._tags:  # PLANT:DET002
            total += 1
        return total, leaked

    def ordered(self, weights):
        # sorted(...) launders the ordering: none of these are flagged.
        total = sum(weights[key] for key in sorted(weights.keys()))
        laundered = sorted(item for item in set(weights))
        return total, laundered
