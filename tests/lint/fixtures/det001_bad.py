"""Planted DET001 violations: raw randomness outside ``util/rng.py``.

This file is parsed by ``tests/lint/test_rules.py`` but never imported.
Lines carrying a planted marker comment are the exact positions the rule
must flag; everything else must stay clean.
"""

import random

import numpy


def draw_three():
    rng = random.Random(7)  # PLANT:DET001
    x = random.random()  # PLANT:DET001
    y = numpy.random.rand(3)  # PLANT:DET001
    return rng, x, y


def allowed_usage(seed):
    # A non-call reference (isinstance check) must not be flagged.
    if isinstance(seed, random.Random):
        return seed
    return None
