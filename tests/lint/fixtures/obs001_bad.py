"""Planted OBS001 violations: off-registry / malformed metric names.

Parsed by ``tests/lint/test_rules.py``, never imported.
"""


def emit_metrics(telemetry, self_holder):
    telemetry.count("stream_pair_total")  # PLANT:OBS001  (typo: missing 's')
    telemetry.set_gauge("Stream.Space", 3.0)  # PLANT:OBS001  (uppercase)
    self_holder._telemetry.observe_seconds("made.up.metric", 1.0)  # PLANT:OBS001
    # All fine below: registered name, dynamic name, non-telemetry receiver.
    telemetry.count("stream_pairs_total")
    telemetry.count(some_name())
    path.count("/")


def some_name():
    return "whatever"


path = "a/b"
