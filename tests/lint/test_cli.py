"""CLI behaviour: formats, baseline ratchet, suppressions, exit codes."""

import json
from pathlib import Path

import pytest

from repro.lint.cli import DEFAULT_BASELINE, main
from repro.lint.violations import CODE_SUMMARIES

BAD_SOURCE = "import random\n\n\ndef draw():\n    return random.random()\n"


@pytest.fixture
def workdir(tmp_path, monkeypatch):
    """A scratch cwd so the default baseline path stays contained."""
    monkeypatch.chdir(tmp_path)
    (tmp_path / "bad.py").write_text(BAD_SOURCE)
    return tmp_path


def test_text_format(workdir, capsys):
    assert main(["bad.py", "--format=text"]) == 1
    out = capsys.readouterr().out
    assert "bad.py:5:" in out and "DET001" in out
    assert "1 violation" in out


def test_json_format_and_output_file(workdir, capsys):
    assert main(["bad.py", "--format=json", "-o", "report.json"]) == 1
    out = capsys.readouterr().out
    document = json.loads(out)
    assert document["summary"] == {"active": 1, "baselined": 0, "exit_code": 1}
    (violation,) = document["violations"]
    assert violation["code"] == "DET001" and violation["line"] == 5
    assert json.loads(Path("report.json").read_text()) == document


def test_github_format(workdir, capsys):
    assert main(["bad.py", "--format=github"]) == 1
    out = capsys.readouterr().out
    assert out.startswith("::error file=bad.py,line=5,")
    assert "title=repro-lint DET001" in out


def test_clean_file_exits_zero(workdir, capsys):
    Path("clean.py").write_text("def f():\n    return 1\n")
    assert main(["clean.py"]) == 0
    assert "0 violations" in capsys.readouterr().out


def test_baseline_ratchet(workdir, capsys):
    # Grandfather the current finding...
    assert main(["bad.py", "--write-baseline"]) == 0
    assert Path(DEFAULT_BASELINE).exists()
    # ...the default run now auto-loads the baseline and passes...
    assert main(["bad.py"]) == 0
    # ...but --no-baseline still sees the violation...
    assert main(["bad.py", "--no-baseline"]) == 1
    # ...and a *new* violation fails the run while the old one stays quiet.
    Path("bad.py").write_text(
        BAD_SOURCE + "\n\ndef draw_again():\n    return random.randrange(3)\n"
    )
    capsys.readouterr()
    assert main(["bad.py", "--format=json"]) == 1
    document = json.loads(capsys.readouterr().out)
    assert document["summary"] == {"active": 1, "baselined": 1, "exit_code": 1}
    active = [v for v in document["violations"] if not v["baselined"]]
    assert "random.randrange" in active[0]["message"]


def test_justified_suppression_is_honored(workdir):
    Path("bad.py").write_text(
        "import random\n"
        "\n"
        "\n"
        "def draw():\n"
        "    return random.random()  "
        "# repro-lint: disable=DET001 -- fixture exercising suppression\n"
    )
    assert main(["bad.py"]) == 0


def test_unjustified_suppression_emits_lnt001(workdir, capsys):
    Path("bad.py").write_text(
        "import random\n"
        "\n"
        "\n"
        "def draw():\n"
        "    return random.random()  # repro-lint: disable=DET001\n"
    )
    assert main(["bad.py", "--format=json"]) == 1
    document = json.loads(capsys.readouterr().out)
    codes = sorted(v["code"] for v in document["violations"])
    # The bare pragma suppresses nothing AND is itself a finding.
    assert codes == ["DET001", "LNT001"]


def test_unknown_code_suppression_emits_lnt002(workdir, capsys):
    Path("clean.py").write_text(
        "# repro-lint: disable=XYZ999 -- not a real rule\n"
        "def f():\n"
        "    return 1\n"
    )
    assert main(["clean.py", "--format=json"]) == 1
    document = json.loads(capsys.readouterr().out)
    codes = [v["code"] for v in document["violations"]]
    assert codes == ["LNT002"]


def test_list_rules(workdir, capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in CODE_SUMMARIES:
        assert code in out


def test_unknown_select_code_is_usage_error(workdir):
    assert main(["bad.py", "--select=NOPE01"]) == 2


def test_missing_path_is_usage_error(workdir):
    assert main(["does-not-exist/"]) == 2
