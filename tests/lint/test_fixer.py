"""The --fix engine: safe rewrites, and fixing is idempotent.

The contract under test: ``fix(fix(tree)) == fix(tree)`` and the fixed
tree re-lints clean for every auto-fixable finding class (DET002 sorted
wraps, pragma normalization, registry ordering).  Unfixable findings
must survive a fix pass untouched.
"""

from pathlib import Path

from repro.lint.cli import main
from repro.lint.engine import run_lint
from repro.lint.fixer import (
    apply_fixes,
    fix_source,
    normalize_pragmas,
    order_record_types,
)
from repro.lint.rules import build_rules
from repro.lint.violations import Fix

DET002_SOURCE = (
    "class Bag:\n"
    "    def __init__(self):\n"
    "        self.members = set()\n"
    "\n"
    "    def total(self):\n"
    "        out = 0\n"
    "        for item in self.members:\n"
    "            out += item\n"
    "        return out\n"
    "\n"
    "    def spread(self, table):\n"
    "        return [table[k] for k in table.keys()]\n"
)


def _lint_core_file(tmp_path, source, code="DET002"):
    core = tmp_path / "core"
    core.mkdir(exist_ok=True)
    target = core / "bag.py"
    target.write_text(source)
    report = run_lint([str(target)], rules=build_rules([code]))
    return target, report


def _fix_once(target, report):
    result = fix_source(target.as_posix(), target.read_text(), report.violations)
    target.write_text(result.new_source)
    return result


class TestApplyFixes:
    def test_single_span(self):
        out, applied = apply_fixes(
            "abc def\n", [Fix(1, 4, 1, 7, "sorted(def)")]
        )
        assert out == "abc sorted(def)\n"
        assert len(applied) == 1

    def test_reverse_order_application(self):
        source = "aa bb cc\n"
        fixes = [Fix(1, 0, 1, 2, "XX"), Fix(1, 6, 1, 8, "YY")]
        out, applied = apply_fixes(source, fixes)
        assert out == "XX bb YY\n"
        assert len(applied) == 2

    def test_overlapping_fixes_keep_first(self):
        source = "abcdef\n"
        fixes = [Fix(1, 0, 1, 4, "1111"), Fix(1, 2, 1, 6, "2222")]
        out, applied = apply_fixes(source, fixes)
        assert out == "1111ef\n"
        assert len(applied) == 1

    def test_multiline_span(self):
        source = "x = (a\n     | b)\ny = 1\n"
        out, _ = apply_fixes(source, [Fix(1, 4, 2, 9, "frozenset()")])
        assert out == "x = frozenset()\ny = 1\n"

    def test_out_of_range_span_is_skipped(self):
        source = "short\n"
        out, applied = apply_fixes(source, [Fix(9, 0, 9, 4, "nope")])
        assert out == source and applied == []


class TestDet002SortedWrap:
    def test_fix_resolves_all_findings(self, tmp_path):
        target, report = _lint_core_file(tmp_path, DET002_SOURCE)
        assert len(report.violations) == 2
        assert all(v.fix is not None for v in report.violations)
        _fix_once(target, report)
        fixed = target.read_text()
        assert "for item in sorted(self.members):" in fixed
        assert "for k in sorted(table.keys())" in fixed
        _, report_after = _lint_core_file(tmp_path, fixed)
        assert report_after.violations == []

    def test_fix_is_idempotent(self, tmp_path):
        target, report = _lint_core_file(tmp_path, DET002_SOURCE)
        _fix_once(target, report)
        once = target.read_text()
        _, report2 = _lint_core_file(tmp_path, once)
        result = fix_source(target.as_posix(), once, report2.violations)
        assert result.new_source == once
        assert not result.changed


class TestPragmaNormalization:
    def test_canonicalizes_spacing_and_code_order(self):
        source = (
            "import random\n"
            "x = random.random()  #  repro-lint:   disable=DET003 , DET001  --  noise calibration\n"
        )
        out, changed = normalize_pragmas(source)
        assert changed == 1
        assert (
            "# repro-lint: disable=DET001,DET003 -- noise calibration" in out
        )

    def test_canonical_input_is_untouched(self):
        source = "x = 1  # repro-lint: disable=DET001 -- why\n"
        out, changed = normalize_pragmas(source)
        assert out == source and changed == 0

    def test_idempotent(self):
        source = "x = 1  #repro-lint: disable=DET002,DET001--because\n"
        once, _ = normalize_pragmas(source)
        twice, changed = normalize_pragmas(once)
        assert twice == once and changed == 0

    def test_never_invents_a_justification(self):
        source = "x = 1  # repro-lint:  disable=DET001\n"
        out, changed = normalize_pragmas(source)
        assert changed == 1
        assert out == "x = 1  # repro-lint: disable=DET001\n"
        assert "--" not in out


class TestRecordTypesOrdering:
    UNSORTED = (
        "RECORD_TYPES = {\n"
        "    cls.__name__: cls\n"
        "    for cls in (\n"
        "        Zeta,\n"
        "        Alpha,\n"
        "        Mid,\n"
        "    )\n"
        "}\n"
    )

    def test_alphabetizes_preserving_layout(self):
        out, moved = order_record_types(self.UNSORTED)
        assert moved == 3
        assert "        Alpha,\n        Mid,\n        Zeta,\n" in out

    def test_sorted_registry_is_untouched(self):
        once, _ = order_record_types(self.UNSORTED)
        twice, moved = order_record_types(once)
        assert twice == once and moved == 0

    def test_non_tuple_registry_is_left_alone(self):
        source = 'RECORD_TYPES = {"A": A, "B": B}\n'
        out, moved = order_record_types(source)
        assert out == source and moved == 0

    def test_real_registry_is_canonical(self):
        persistence = (
            Path(__file__).resolve().parents[2]
            / "src"
            / "repro"
            / "experiments"
            / "persistence.py"
        )
        out, moved = order_record_types(persistence.read_text())
        assert moved == 0


class TestCliFix:
    def test_fix_flag_rewrites_and_relints(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        core = tmp_path / "core"
        core.mkdir()
        (core / "bag.py").write_text(DET002_SOURCE)
        assert main(["core", "--fix", "--no-baseline"]) == 0
        out = capsys.readouterr().out
        assert "fixed core/bag.py" in out
        assert "0 violations" in out
        assert "sorted(self.members)" in (core / "bag.py").read_text()

    def test_fix_leaves_unfixable_findings(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        bad = tmp_path / "bad.py"
        bad.write_text(
            "import random\n\n\ndef draw():\n    return random.random()\n"
        )
        before = bad.read_text()
        assert main(["bad.py", "--fix", "--no-baseline"]) == 1
        assert bad.read_text() == before  # DET001 has no mechanical rewrite
        assert "DET001" in capsys.readouterr().out

    def test_fix_twice_is_stable(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        core = tmp_path / "core"
        core.mkdir()
        (core / "bag.py").write_text(DET002_SOURCE)
        assert main(["core", "--fix", "--no-baseline"]) == 0
        once = (core / "bag.py").read_text()
        capsys.readouterr()
        assert main(["core", "--fix", "--no-baseline"]) == 0
        out = capsys.readouterr().out
        assert (core / "bag.py").read_text() == once
        assert "fixed" not in out
