"""Fixture-driven rule tests: every planted violation is caught exactly.

Each fixture under ``tests/lint/fixtures/`` marks its intentionally bad
lines with ``PLANT:<CODE>`` comments; the tests assert that each rule
reports those exact (code, line) pairs and nothing else.  The final test
pins the tentpole invariant: the real source tree lints clean.
"""

from pathlib import Path

from repro.lint.engine import run_lint
from repro.lint.rules import build_rules

HERE = Path(__file__).resolve().parent
FIXTURES = HERE / "fixtures"
REPO_ROOT = HERE.parents[1]


def planted_lines(path: Path, code: str):
    return sorted(
        lineno
        for lineno, line in enumerate(path.read_text().splitlines(), start=1)
        if f"PLANT:{code}" in line
    )


def lint_with(code, *paths):
    report = run_lint([str(p) for p in paths], rules=build_rules([code]))
    assert report.parse_errors == []
    return report


def test_det001_planted():
    fixture = FIXTURES / "det001_bad.py"
    report = lint_with("DET001", fixture)
    assert [v.code for v in report.violations] == ["DET001"] * 3
    assert [v.line for v in report.violations] == planted_lines(fixture, "DET001")
    assert all("resolve_rng" in v.message for v in report.violations)


def test_det001_allows_util_rng():
    report = lint_with("DET001", REPO_ROOT / "src" / "repro" / "util" / "rng.py")
    assert report.violations == []


def test_det002_planted():
    fixture = FIXTURES / "core" / "det002_bad.py"
    report = lint_with("DET002", fixture)
    assert [v.code for v in report.violations] == ["DET002"] * 4
    assert sorted(v.line for v in report.violations) == planted_lines(
        fixture, "DET002"
    )
    assert all(v.symbol == "WeightBag.unordered" for v in report.violations)


def test_det002_only_fires_in_hot_dirs(tmp_path):
    # The same source outside core//sketch//baselines/ is not flagged.
    clone = tmp_path / "plain.py"
    clone.write_text((FIXTURES / "core" / "det002_bad.py").read_text())
    report = lint_with("DET002", clone)
    assert report.violations == []


def test_det003_planted():
    fixture = FIXTURES / "det003_bad.py"
    report = lint_with("DET003", fixture)
    assert [v.code for v in report.violations] == ["DET003"] * 2
    assert [v.line for v in report.violations] == planted_lines(fixture, "DET003")


def test_det003_allows_runner():
    runner = REPO_ROOT / "src" / "repro" / "streaming" / "runner.py"
    report = lint_with("DET003", runner)
    assert report.violations == []


def test_obs001_planted():
    fixture = FIXTURES / "obs001_bad.py"
    report = lint_with("OBS001", fixture)
    assert [v.code for v in report.violations] == ["OBS001"] * 3
    assert [v.line for v in report.violations] == planted_lines(fixture, "OBS001")
    messages = " ".join(v.message for v in report.violations)
    assert "stream_pair_total" in messages  # typo'd registered name
    assert "lowercase dotted identifier" in messages  # malformed name
    assert "made.up.metric" in messages  # off-registry via self._telemetry


def test_obs001_registry_is_self_consistent():
    from repro.obs.names import METRIC_NAMES, validate_registry

    assert validate_registry() == []
    assert all(help_text for help_text in METRIC_NAMES.values())


def test_skt001_planted():
    fixture = FIXTURES / "skt001_bad.py"
    report = lint_with("SKT001", fixture)
    lines = planted_lines(fixture, "SKT001")
    # One violation per missing attribute, both anchored at def restore.
    assert [v.code for v in report.violations] == ["SKT001"] * 2
    assert [v.line for v in report.violations] == lines * 2
    assert all(v.symbol == "LeakyCounter.restore" for v in report.violations)
    messages = " ".join(v.message for v in report.violations)
    assert "self._budget" in messages and "self._sample" in messages
    assert "FaithfulCounter" not in messages


def test_skt002_planted():
    tree = FIXTURES / "skt002_tree"
    report = lint_with("SKT002", tree)
    fixture = tree / "experiments" / "persistence.py"
    assert [v.code for v in report.violations] == ["SKT002"] * 4
    assert sorted(v.line for v in report.violations) == planted_lines(
        fixture, "SKT002"
    )
    messages = " ".join(v.message for v in report.violations)
    assert "GhostRecord" in messages  # stale registration
    assert "OrphanResult" in messages  # unregistered record
    assert "tuple" in messages  # JSON-unsafe field
    assert "_InnerBits" in messages  # unregistered nested dataclass


def test_skt002_key_mismatch(tmp_path):
    pkg = tmp_path / "experiments"
    pkg.mkdir()
    (pkg / "persistence.py").write_text(
        "from dataclasses import dataclass\n"
        "\n"
        "\n"
        "@dataclass\n"
        "class GoodRow:\n"
        "    value: float\n"
        "\n"
        "\n"
        'RECORD_TYPES = {"Renamed": GoodRow}\n'
    )
    report = lint_with("SKT002", tmp_path)
    assert len(report.violations) == 1
    assert "key to equal the class name" in report.violations[0].message


def test_src_tree_is_clean():
    """The tentpole gate: the shipped source tree has zero findings."""
    report = run_lint([str(REPO_ROOT / "src")])
    assert report.parse_errors == []
    assert report.active == []
    assert report.exit_code == 0
