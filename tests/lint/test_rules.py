"""Fixture-driven rule tests: every planted violation is caught exactly.

Each fixture under ``tests/lint/fixtures/`` marks its intentionally bad
lines with ``PLANT:<CODE>`` comments; the tests assert that each rule
reports those exact (code, line) pairs and nothing else.  The final test
pins the tentpole invariant: the real source tree lints clean.
"""

from pathlib import Path

from repro.lint.engine import run_lint
from repro.lint.rules import build_rules

HERE = Path(__file__).resolve().parent
FIXTURES = HERE / "fixtures"
REPO_ROOT = HERE.parents[1]


def planted_lines(path: Path, code: str):
    return sorted(
        lineno
        for lineno, line in enumerate(path.read_text().splitlines(), start=1)
        if f"PLANT:{code}" in line
    )


def lint_with(code, *paths):
    report = run_lint([str(p) for p in paths], rules=build_rules([code]))
    assert report.parse_errors == []
    return report


def test_det001_planted():
    fixture = FIXTURES / "det001_bad.py"
    report = lint_with("DET001", fixture)
    assert [v.code for v in report.violations] == ["DET001"] * 3
    assert [v.line for v in report.violations] == planted_lines(fixture, "DET001")
    assert all("resolve_rng" in v.message for v in report.violations)


def test_det001_allows_util_rng():
    report = lint_with("DET001", REPO_ROOT / "src" / "repro" / "util" / "rng.py")
    assert report.violations == []


def test_det002_planted():
    fixture = FIXTURES / "core" / "det002_bad.py"
    report = lint_with("DET002", fixture)
    assert [v.code for v in report.violations] == ["DET002"] * 4
    assert sorted(v.line for v in report.violations) == planted_lines(
        fixture, "DET002"
    )
    assert all(v.symbol == "WeightBag.unordered" for v in report.violations)


def test_det002_only_fires_in_hot_dirs(tmp_path):
    # The same source outside core//sketch//baselines/ is not flagged.
    clone = tmp_path / "plain.py"
    clone.write_text((FIXTURES / "core" / "det002_bad.py").read_text())
    report = lint_with("DET002", clone)
    assert report.violations == []


def test_det003_planted():
    fixture = FIXTURES / "det003_bad.py"
    report = lint_with("DET003", fixture)
    assert [v.code for v in report.violations] == ["DET003"] * 2
    assert [v.line for v in report.violations] == planted_lines(fixture, "DET003")


def test_det003_allows_runner():
    runner = REPO_ROOT / "src" / "repro" / "streaming" / "runner.py"
    report = lint_with("DET003", runner)
    assert report.violations == []


def test_obs001_planted():
    fixture = FIXTURES / "obs001_bad.py"
    report = lint_with("OBS001", fixture)
    assert [v.code for v in report.violations] == ["OBS001"] * 3
    assert [v.line for v in report.violations] == planted_lines(fixture, "OBS001")
    messages = " ".join(v.message for v in report.violations)
    assert "stream_pair_total" in messages  # typo'd registered name
    assert "lowercase dotted identifier" in messages  # malformed name
    assert "made.up.metric" in messages  # off-registry via self._telemetry


def test_obs001_registry_is_self_consistent():
    from repro.obs.names import METRIC_NAMES, validate_registry

    assert validate_registry() == []
    assert all(help_text for help_text in METRIC_NAMES.values())


def test_skt001_planted():
    fixture = FIXTURES / "skt001_bad.py"
    report = lint_with("SKT001", fixture)
    lines = planted_lines(fixture, "SKT001")
    # One violation per missing attribute, both anchored at def restore.
    assert [v.code for v in report.violations] == ["SKT001"] * 2
    assert [v.line for v in report.violations] == lines * 2
    assert all(v.symbol == "LeakyCounter.restore" for v in report.violations)
    messages = " ".join(v.message for v in report.violations)
    assert "self._budget" in messages and "self._sample" in messages
    assert "FaithfulCounter" not in messages


def test_skt002_planted():
    tree = FIXTURES / "skt002_tree"
    report = lint_with("SKT002", tree)
    fixture = tree / "experiments" / "persistence.py"
    assert [v.code for v in report.violations] == ["SKT002"] * 4
    assert sorted(v.line for v in report.violations) == planted_lines(
        fixture, "SKT002"
    )
    messages = " ".join(v.message for v in report.violations)
    assert "GhostRecord" in messages  # stale registration
    assert "OrphanResult" in messages  # unregistered record
    assert "tuple" in messages  # JSON-unsafe field
    assert "_InnerBits" in messages  # unregistered nested dataclass


def test_skt002_key_mismatch(tmp_path):
    pkg = tmp_path / "experiments"
    pkg.mkdir()
    (pkg / "persistence.py").write_text(
        "from dataclasses import dataclass\n"
        "\n"
        "\n"
        "@dataclass\n"
        "class GoodRow:\n"
        "    value: float\n"
        "\n"
        "\n"
        'RECORD_TYPES = {"Renamed": GoodRow}\n'
    )
    report = lint_with("SKT002", tmp_path)
    assert len(report.violations) == 1
    assert "key to equal the class name" in report.violations[0].message


def test_det003_allows_benchmarks(tmp_path):
    bench_dir = tmp_path / "benchmarks"
    bench_dir.mkdir()
    clone = bench_dir / "bench_timer.py"
    clone.write_text("import time\n\nelapsed = time.perf_counter()\n")
    report = lint_with("DET003", clone)
    assert report.violations == []


def test_det004_planted():
    fixture = FIXTURES / "det004_bad.py"
    report = lint_with("DET004", fixture)
    assert [v.code for v in report.violations] == ["DET004"] * 3
    assert sorted(v.line for v in report.violations) == planted_lines(
        fixture, "DET004"
    )
    messages = " ".join(v.message for v in report.violations)
    assert "resolve_rng" in messages  # the second-resolve finding
    assert "Random" in messages  # the raw construction finding
    assert "_fresh_stream" in messages  # the helper-minting finding


def test_asy001_planted():
    fixture = FIXTURES / "serve" / "asy001_bad.py"
    report = lint_with("ASY001", fixture)
    assert [v.code for v in report.violations] == ["ASY001"] * 5
    assert sorted(v.line for v in report.violations) == planted_lines(
        fixture, "ASY001"
    )
    messages = " ".join(v.message for v in report.violations)
    assert "asyncio.sleep" in messages  # time.sleep gets the targeted hint
    assert "asyncio.to_thread" in messages  # the generic dispatch hint


def test_asy001_only_fires_under_serve(tmp_path):
    clone = tmp_path / "plain.py"
    clone.write_text((FIXTURES / "serve" / "asy001_bad.py").read_text())
    report = lint_with("ASY001", clone)
    assert report.violations == []


def test_asy002_planted():
    fixture = FIXTURES / "serve" / "asy002_bad.py"
    report = lint_with("ASY002", fixture)
    assert [v.code for v in report.violations] == ["ASY002"] * 4
    assert sorted(v.line for v in report.violations) == planted_lines(
        fixture, "ASY002"
    )
    messages = " ".join(v.message for v in report.violations)
    assert "_CACHE" in messages and "_LIVE" in messages and "_COUNTER" in messages
    assert "session manager" in messages


def test_vec001_planted():
    tree = FIXTURES / "vec001_tree"
    report = lint_with("VEC001", tree / "src")
    fixture = tree / "src" / "repro" / "util" / "vectorized.py"
    assert [v.code for v in report.violations] == ["VEC001"] * 3
    planted = planted_lines(fixture, "VEC001")
    assert sorted(set(v.line for v in report.violations)) == planted
    messages = " ".join(v.message for v in report.violations)
    assert "ghost_kernel" in messages  # stale export
    assert "stray_public_kernel" in messages  # public but unregistered
    assert "'uncovered_kernel'" in messages  # exported but never exercised
    assert "'covered_kernel'" not in messages  # exercised by the mini test


def test_vec001_real_module_is_covered():
    report = lint_with("VEC001", REPO_ROOT / "src")
    assert report.violations == []


def test_srv001_planted():
    tree = FIXTURES / "srv001_tree"
    report = lint_with("SRV001", tree)
    protocol = tree / "serve" / "protocol.py"
    handlers = tree / "serve" / "handlers.py"
    assert [v.code for v in report.violations] == ["SRV001"] * 6
    assert sorted(v.line for v in report.violations) == sorted(
        planted_lines(protocol, "SRV001") + planted_lines(handlers, "SRV001")
    )
    messages = " ".join(v.message for v in report.violations)
    assert "GHOST_CODE" in messages  # table entry with no constant
    assert "UNLISTED_CODE" in messages  # raised but missing from the table
    assert "DEAD_CODE" in messages  # tabled but never referenced
    assert "NO_SUCH_SESSION" in messages  # the string-literal raise
    assert "MYSTERY_CODE" in messages  # unknown name at a raise site


def test_srv001_real_protocol_is_consistent():
    report = lint_with("SRV001", REPO_ROOT / "src")
    assert report.violations == []


def test_engine_skips_tool_dirs(tmp_path):
    # .venv/.tox/.mypy_cache/.eggs must never be scanned: a local
    # virtualenv would otherwise drown the report in third-party findings.
    (tmp_path / "pkg").mkdir()
    (tmp_path / "pkg" / "ok.py").write_text("x = 1\n")
    bad = "import random\nrandom.random()\n"
    for skipped in (".venv", ".tox", ".mypy_cache", ".eggs", "__pycache__"):
        sub = tmp_path / skipped / "lib"
        sub.mkdir(parents=True)
        (sub / "third_party.py").write_text(bad)
    from repro.lint.engine import discover_files

    found = discover_files([str(tmp_path)])
    assert [p.name for p in found] == ["ok.py"]
    report = run_lint([str(tmp_path)])
    assert report.files_checked == 1
    assert report.violations == []


def test_src_tree_is_clean():
    """The tentpole gate: the shipped source tree has zero findings."""
    report = run_lint([str(REPO_ROOT / "src")])
    assert report.parse_errors == []
    assert report.active == []
    assert report.exit_code == 0


def test_benchmarks_and_examples_are_clean():
    """CI lints benchmarks/ and examples/ too; keep them at zero findings."""
    paths = [REPO_ROOT / "benchmarks", REPO_ROOT / "examples"]
    report = run_lint([str(p) for p in paths if p.exists()])
    assert report.parse_errors == []
    assert report.active == []
