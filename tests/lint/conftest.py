"""Keep pytest out of the planted-violation fixture trees.

The VEC001 fixture tree contains a file literally named
``test_vectorized.py`` (the rule cross-checks the parity-test file by
name); without this ignore, pytest would try to collect it and fail
importing the fixture's fake ``repro.util.vectorized``.
"""

collect_ignore = ["fixtures"]
