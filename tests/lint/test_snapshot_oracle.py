"""Dynamic sketch-contract oracle — the runtime complement of SKT001.

For every algorithm in :mod:`repro.streaming.registry` that implements the
sketch state protocol: run a random stream, snapshot at a seeded-random
list boundary, restore the (byte-round-tripped) state into a fresh
instance built with a *different* seed, finish both runs, and assert the
resumed run is bit-identical to the uninterrupted one — same estimate,
same final serialised state.  Algorithms without snapshot support must say
so honestly by raising :class:`SnapshotUnsupported`.
"""

import pytest

from repro.graph.generators import gnp_random_graph
from repro.sketch.state import SketchState
from repro.streaming import registry
from repro.streaming.algorithm import SnapshotUnsupported, supports_snapshot
from repro.streaming.stream import AdjacencyListStream
from repro.util.rng import resolve_rng

BUDGET = 24
ALGO_SEED = 101
GRAPH = gnp_random_graph(18, 0.3, seed=11)


def _drive(algorithm, lists, *, stop_at=None, start_at=None):
    """Run ``algorithm`` over ``lists`` for all of its passes.

    ``stop_at=(p, k)`` aborts after ``k`` lists of pass ``p`` and returns a
    snapshot (``begin_pass(p)`` has run, matching the runner's mid-pass
    checkpoint semantics).  ``start_at=(p, k)`` resumes a restored instance
    from that same boundary: pass ``p`` is re-entered without ``begin_pass``
    and its first ``k`` lists are skipped.
    """
    first_pass, skip = (0, 0) if start_at is None else start_at
    for pass_index in range(first_pass, algorithm.n_passes):
        resuming = start_at is not None and pass_index == first_pass and skip > 0
        if not resuming:
            algorithm.begin_pass(pass_index)
        for list_index, (vertex, neighbors) in enumerate(lists):
            if resuming and list_index < skip:
                continue
            algorithm.begin_list(vertex)
            algorithm.process_list(vertex, neighbors)
            algorithm.end_list(vertex, neighbors)
            if stop_at == (pass_index, list_index + 1):
                return algorithm.snapshot()
        algorithm.end_pass(pass_index)
    return None


@pytest.mark.parametrize(
    "spec", list(registry.iter_specs()), ids=lambda spec: spec.name
)
def test_snapshot_restore_is_bit_identical(spec):
    probe = spec.make(BUDGET, seed=0)
    if not supports_snapshot(probe):
        with pytest.raises(SnapshotUnsupported):
            probe.snapshot()
        pytest.skip(f"{spec.name} does not implement the sketch state protocol")

    stream = AdjacencyListStream(GRAPH, seed=resolve_rng(202))
    lists = list(stream.iter_lists())

    # Uninterrupted reference run.
    reference = spec.make(BUDGET, seed=ALGO_SEED)
    assert _drive(reference, lists) is None
    expected_estimate = reference.result()
    expected_state = reference.snapshot().to_json()

    # Same trajectory, interrupted at a seeded-random list boundary.
    point_rng = resolve_rng(sum(spec.name.encode("utf-8")))
    boundary = (
        point_rng.randrange(probe.n_passes),
        point_rng.randrange(1, len(lists)),
    )
    interrupted = spec.make(BUDGET, seed=ALGO_SEED)
    state = _drive(interrupted, lists, stop_at=boundary)
    assert state is not None

    # Restore into a fresh, *differently seeded* instance: restore must
    # overwrite every piece of live state, so the foreign seed cannot leak.
    resumed = spec.make(BUDGET, seed=987654321)
    resumed.restore(SketchState.from_bytes(state.to_bytes()))
    assert _drive(resumed, lists, start_at=boundary) is None

    assert resumed.result() == expected_estimate
    assert resumed.snapshot().to_json() == expected_state


def test_registry_covers_snapshot_algorithms():
    # The oracle exercises at least the two core counters (plus the
    # sharded variant); a regression that drops snapshot support from the
    # registry would silently skip the oracle, so pin the count.
    supported = [spec.name for spec, ok in registry.snapshot_support() if ok]
    assert "triangle-two-pass" in supported
    assert "fourcycle-two-pass" in supported
    assert len(supported) >= 3
