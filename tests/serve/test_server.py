"""End-to-end server tests: TCP transport, shutdown, telemetry durability.

Everything runs real asyncio servers on ephemeral localhost ports inside
``asyncio.run`` (no event-loop plugins needed).  The cancellation test
pins the ISSUE's satellite: a serve run killed mid-flight must leave a
*parseable* telemetry JSONL behind — no torn lines, no lost flush.
"""

import asyncio
import json

import pytest

from repro.graph.planted import planted_triangles
from repro.obs.telemetry import open_telemetry
from repro.serve.client import InProcessClient, ServeClient, ServeClientError
from repro.serve.loadgen import run_load_async
from repro.serve.manager import SessionManager
from repro.serve.server import ServeServer, handle_request
from repro.streaming.registry import get as get_spec
from repro.streaming.runner import run_algorithm
from repro.streaming.stream import AdjacencyListStream


def _world():
    planted = planted_triangles(noise_edges=120, triangles=15, seed=3)
    stream = AdjacencyListStream(planted.graph, seed=4)
    return stream, list(stream.iter_pairs()), planted.true_count


async def _with_server(manager, fn):
    """Run ``fn(host, port)`` against a live server, then stop it."""
    server = ServeServer(manager, port=0)
    await server.start()
    task = asyncio.ensure_future(server.serve_until_stopped())
    try:
        return await fn("127.0.0.1", server.bound_port)
    finally:
        server.stop()
        await task


class TestDispatcher:
    """Transport-free request dispatch (what InProcessClient wraps)."""

    def test_hello_and_algorithms(self):
        async def main():
            manager = SessionManager()
            hello = await handle_request(manager, {"id": 1, "op": "hello"})
            assert hello["ok"] and hello["protocol"] == 2
            algos = await handle_request(manager, {"id": 2, "op": "algorithms"})
            assert len(algos["algorithms"]) == 13
            by_name = {a["name"]: a for a in algos["algorithms"]}
            assert by_name["triangle-two-pass"]["serve_compatible"]
            assert not by_name["triangle-exact"]["serve_compatible"]

        asyncio.run(main())

    def test_unknown_op_and_bad_request(self):
        async def main():
            manager = SessionManager()
            out = await handle_request(manager, {"id": 1, "op": "dance"})
            assert not out["ok"] and out["error"]["code"] == "UNKNOWN_OP"
            out = await handle_request(manager, {"id": 2})
            assert out["error"]["code"] == "BAD_REQUEST"
            out = await handle_request(
                manager, {"id": 3, "op": "open", "session": "s",
                          "algorithm": "nope", "budget": 8},
            )
            assert out["error"]["code"] == "NO_SUCH_ALGORITHM"

        asyncio.run(main())

    def test_internal_errors_do_not_leak(self):
        async def main():
            manager = SessionManager()
            # A poll with a truth but no estimate-capable session state is
            # fine; instead provoke INTERNAL by breaking the manager.
            manager.poll = None  # type: ignore[assignment]
            out = await handle_request(
                manager, {"id": 1, "op": "poll", "session": "s"}
            )
            assert out["error"]["code"] == "INTERNAL"

        asyncio.run(main())

    def test_in_process_client_full_lifecycle(self):
        stream, pairs, truth = _world()
        reference = run_algorithm(
            get_spec("triangle-two-pass").make(48, seed=6), stream
        ).estimate

        async def main():
            client = InProcessClient()
            await client.open("s", "triangle-two-pass", 48, seed=6)
            for _ in range(2):
                for i in range(0, len(pairs), 40):
                    await client.feed("s", pairs[i : i + 40])
                final = await client.finish_pass("s")
            poll = await client.poll("s", truth=truth, m=stream.m)
            assert poll["done"] and "verdict" in poll
            stats = await client.stats("s")
            assert stats["pairs_total"] == 2 * len(pairs)
            await client.close_session("s")
            with pytest.raises(ServeClientError) as err:
                await client.poll("s")
            assert err.value.code == "NO_SUCH_SESSION"
            return final["estimate"]

        assert asyncio.run(main()) == reference


class TestTcp:
    def test_tcp_matches_serial_run(self):
        stream, pairs, _ = _world()
        reference = run_algorithm(
            get_spec("triangle-two-pass").make(48, seed=6), stream
        ).estimate

        async def drive(host, port):
            async with ServeClient(host, port) as client:
                await client.open("s", "triangle-two-pass", 48, seed=6)
                final = None
                for _ in range(2):
                    for i in range(0, len(pairs), 64):
                        await client.feed("s", pairs[i : i + 64])
                    final = await client.finish_pass("s")
                return final["estimate"]

        async def main():
            return await _with_server(SessionManager(), drive)

        assert asyncio.run(main()) == reference

    def test_multiplexed_sessions_one_connection(self):
        """Interleaved sessions on ONE socket stay isolated and correct."""
        stream, pairs, _ = _world()
        seeds = [0, 1, 2, 3]
        references = {
            seed: run_algorithm(
                get_spec("triangle-two-pass").make(32, seed=seed), stream
            ).estimate
            for seed in seeds
        }

        async def drive(host, port):
            async with ServeClient(host, port) as client:
                async def one(seed):
                    sid = f"s{seed}"
                    await client.open(sid, "triangle-two-pass", 32, seed=seed)
                    final = None
                    for _ in range(2):
                        for i in range(0, len(pairs), 51):
                            await client.feed(sid, pairs[i : i + 51])
                        final = await client.finish_pass(sid)
                    return final["estimate"]

                return await asyncio.gather(*(one(s) for s in seeds))

        async def main():
            return await _with_server(SessionManager(), drive)

        assert asyncio.run(main()) == [references[s] for s in seeds]

    def test_snapshot_travels_over_the_wire(self):
        stream, pairs, _ = _world()
        reference = run_algorithm(
            get_spec("triangle-two-pass").make(48, seed=6), stream
        ).estimate
        cut = len(pairs) // 2

        async def drive(host, port):
            async with ServeClient(host, port) as client:
                await client.open("a", "triangle-two-pass", 48, seed=6)
                await client.feed("a", pairs[:cut])
                state = await client.snapshot("a")
                json.dumps(state)  # must be pure JSON on the wire
                await client.close_session("a")
                await client.open("b", state=state)
                await client.feed("b", pairs[cut:])
                await client.finish_pass("b")
                await client.feed("b", pairs)
                return (await client.finish_pass("b"))["estimate"]

        async def main():
            return await _with_server(SessionManager(), drive)

        assert asyncio.run(main()) == reference

    def test_shutdown_op_stops_server(self):
        async def main():
            manager = SessionManager()
            server = ServeServer(manager, port=0)
            await server.start()
            task = asyncio.ensure_future(server.serve_until_stopped())
            client = await ServeClient("127.0.0.1", server.bound_port).connect()
            await client.shutdown_server()
            await asyncio.wait_for(task, timeout=5)
            await client.aclose()

        asyncio.run(main())

    def test_loadgen_over_tcp(self):
        """A small fleet through the real transport: full concurrency, all
        estimates bit-identical to batch runs (the bench at miniature)."""

        async def main():
            manager = SessionManager()
            server = ServeServer(manager, port=0)
            await server.start()
            task = asyncio.ensure_future(server.serve_until_stopped())
            try:
                return await run_load_async(
                    sessions=40, host="127.0.0.1", port=server.bound_port,
                    connections=3, chunk_pairs=64,
                )
            finally:
                server.stop()
                await task

        result = asyncio.run(main())
        assert result.concurrent_peak == 40
        assert result.all_bit_identical == 1
        assert result.polls > 0


class TestShutdownDurability:
    def test_cancelled_serve_leaves_parseable_telemetry(self, tmp_path):
        """Kill the serve task mid-flood; telemetry must parse line-by-line."""
        _, pairs, _ = _world()
        log_path = tmp_path / "serve.jsonl"

        async def main():
            telemetry = open_telemetry(str(log_path))
            manager = SessionManager(telemetry=telemetry)
            server = ServeServer(manager, port=0)
            await server.start()
            serve_task = asyncio.ensure_future(server.serve_until_stopped())

            async def flood():
                async with ServeClient("127.0.0.1", server.bound_port) as client:
                    for round_index in range(50):
                        sid = f"s{round_index}"
                        await client.open(sid, "triangle-two-pass", 32, seed=1)
                        for i in range(0, len(pairs), 16):
                            await client.feed(sid, pairs[i : i + 16])

            flood_task = asyncio.ensure_future(flood())
            await asyncio.sleep(0.15)  # mid-flood
            serve_task.cancel()
            flood_task.cancel()
            for task in (serve_task, flood_task):
                try:
                    await task
                except (asyncio.CancelledError, ServeClientError, ConnectionError):
                    pass
            telemetry.close()

        asyncio.run(main())
        lines = log_path.read_text().strip().splitlines()
        assert lines, "cancelled run must still leave telemetry behind"
        events = [json.loads(line) for line in lines]  # every line parses
        assert any(e.get("event") == "SessionOpened" for e in events)

    def test_shutdown_checkpoints_live_sessions(self, tmp_path):
        stream, pairs, _ = _world()
        reference = run_algorithm(
            get_spec("triangle-two-pass").make(48, seed=2), stream
        ).estimate
        cut = len(pairs) // 2
        ckpt = tmp_path / "ckpt"

        async def first_life():
            manager = SessionManager()
            server = ServeServer(manager, port=0, shutdown_checkpoint_dir=str(ckpt))
            await server.start()
            task = asyncio.ensure_future(server.serve_until_stopped())
            async with ServeClient("127.0.0.1", server.bound_port) as client:
                await client.open("s", "triangle-two-pass", 48, seed=2)
                await client.feed("s", pairs[:cut])
            server.stop()
            await task

        async def second_life():
            manager = SessionManager()
            restored = await manager.load_checkpoints(ckpt)
            assert restored == ["s"]
            await manager.feed("s", pairs[cut:])
            await manager.finish_pass("s")
            await manager.feed("s", pairs)
            return (await manager.finish_pass("s"))["estimate"]

        asyncio.run(first_life())
        assert asyncio.run(second_life()) == reference
