"""Router tests: multi-worker bit identity, checkpoint-all, tenant quotas.

Each test forks a real worker fleet (multiprocessing, pre-event-loop)
and talks to the router over TCP.  The headline property mirrors
``TestMerge`` in ``test_manager.py``: shard sessions spread across
*different worker processes*, merged per pass through the router's
snapshot/forward machinery, must reproduce ``run_sharded`` bit-exactly —
horizontal scale-out is an execution detail, not an approximation.
"""

import asyncio
import json

import numpy as np
import pytest

from repro.graph.planted import planted_triangles
from repro.serve.client import ServeClient, ServeClientError
from repro.serve.manager import SessionManager
from repro.serve.protocol import (
    QUOTA_EXCEEDED,
    RATE_LIMITED,
    UNAUTHENTICATED,
)
from repro.serve.router import ServeRouter, load_tenants, worker_for
from repro.sketch.driver import partition_stream, run_sharded
from repro.streaming.registry import get as get_spec
from repro.streaming.stream import AdjacencyListStream
from repro.util.rng import derive_seed

N_WORKERS = 2


def _sid_on_worker(prefix, worker):
    """A deterministic session id that hashes onto the given worker."""
    for j in range(1000):
        sid = f"{prefix}{j}"
        if worker_for(sid, N_WORKERS) == worker:
            return sid
    raise AssertionError(f"no id with prefix {prefix!r} lands on {worker}")


def _run_with_router(fn, **router_kwargs):
    """Fork a worker fleet, run ``fn(host, port)`` against the router."""
    router = ServeRouter(N_WORKERS, port=0, **router_kwargs)
    router.spawn_workers()

    async def main():
        await router.start()
        task = asyncio.ensure_future(router.serve_until_stopped())
        try:
            return await fn("127.0.0.1", router.bound_port)
        finally:
            router.stop()
            await task

    try:
        return asyncio.run(main())
    finally:
        router.join_workers()


def _sharded_world():
    """The run_sharded reference setup from the manager merge tests."""
    planted = planted_triangles(noise_edges=150, triangles=20, seed=3)
    stream = AdjacencyListStream(planted.graph, seed=4)
    n_shards, budget, seed, merge_seed = 3, 48, 7, 5
    algorithm = get_spec("triangle-two-pass-sharded").make(budget, seed=seed)
    expected = run_sharded(
        algorithm, stream, n_shards, merge_seed=merge_seed
    ).estimate
    shards = partition_stream(stream, n_shards, "balanced")
    shard_pairs = [
        [(v, u) for v, neighbors in shard.lists for u in neighbors]
        for shard in shards
    ]
    return expected, shard_pairs, budget, seed, merge_seed


def _spread_sids(prefix):
    """Three session ids guaranteed to span both workers."""
    sids = [
        _sid_on_worker(f"{prefix}a-", 0),
        _sid_on_worker(f"{prefix}b-", 1),
        _sid_on_worker(f"{prefix}c-", 0),
    ]
    assert {worker_for(s, N_WORKERS) for s in sids} == {0, 1}
    return sids


class TestCrossWorkerMerge:
    def test_multi_worker_merge_reproduces_run_sharded(self):
        expected, shard_pairs, budget, seed, merge_seed = _sharded_world()

        async def scenario(host, port):
            async with ServeClient(host, port) as client:
                sids0 = _spread_sids("p0")
                for sid in sids0:
                    await client.open(
                        sid, "triangle-two-pass-sharded", budget, seed,
                        validate="lists",
                    )
                for sid, chunk in zip(sids0, shard_pairs):
                    await client.feed(sid, chunk)
                    await client.finish_pass(sid)
                await client.merge(
                    "m0", sids0, merge_seed=derive_seed(merge_seed, 0)
                )
                state = await client.snapshot("m0")
                sids1 = _spread_sids("p1")
                for sid in sids1:
                    await client.open(sid, state=state)
                for sid, chunk in zip(sids1, shard_pairs):
                    await client.feed(sid, chunk)
                    await client.finish_pass(sid)
                merged = await client.merge(
                    "m1", sids1, merge_seed=derive_seed(merge_seed, 1)
                )
                assert merged["pass_index"] == 2
                poll = await client.poll("m1")
                stats = await client.stats()
                return poll, stats

        poll, stats = _run_with_router(scenario)
        assert poll["done"] is True
        assert poll["estimate"] == expected
        # m0's forked branches and temp merge ids are gone; only the
        # final merged session survives, somewhere in the fleet.
        assert len(stats["workers"]) == N_WORKERS
        assert stats["sessions_open"] == 2  # m0 (unclosed snapshot src) + m1


class TestCheckpointAll:
    def test_shutdown_checkpoints_merge_offline_bit_identical(self, tmp_path):
        expected, shard_pairs, budget, seed, merge_seed = _sharded_world()
        sids0 = _spread_sids("c0")

        async def scenario(host, port):
            async with ServeClient(host, port) as client:
                for sid in sids0:
                    await client.open(
                        sid, "triangle-two-pass-sharded", budget, seed,
                        validate="lists",
                    )
                for sid, chunk in zip(sids0, shard_pairs):
                    await client.feed(sid, chunk)
                    await client.finish_pass(sid)
                # Graceful fleet shutdown: every worker freezes its live
                # sessions into its own checkpoint directory.
                out = await client.request("shutdown")
                assert out["stopping"] is True

        _run_with_router(scenario, checkpoint_dir=str(tmp_path))

        async def offline():
            manager = SessionManager()
            for index in range(N_WORKERS):
                await manager.load_checkpoints(str(tmp_path / f"worker-{index}"))
            assert sorted(manager.session_ids()) == sorted(sids0)
            await manager.merge(
                "m0", sids0, merge_seed=derive_seed(merge_seed, 0)
            )
            state = await manager.snapshot("m0")
            sids1 = [f"c1-{i}" for i in range(len(shard_pairs))]
            for sid in sids1:
                await manager.restore(sid, state)
            for sid, chunk in zip(sids1, shard_pairs):
                await manager.feed(sid, chunk)
                await manager.finish_pass(sid)
            merged = await manager.merge(
                "m1", sids1, merge_seed=derive_seed(merge_seed, 1)
            )
            return merged.result()

        assert asyncio.run(offline()) == expected


class TestBinaryThroughRouter:
    def test_binary_feed_relays_to_both_workers(self):
        async def scenario(host, port):
            async with ServeClient(host, port) as client:
                hello = await client.hello()
                assert hello["server"] == "repro-router"
                assert hello["workers"] == N_WORKERS
                assert hello["auth_required"] is False
                assert await client.negotiate_binary()
                sids = [_sid_on_worker("bin-", 0), _sid_on_worker("bin-", 1)]
                for sid in sids:
                    await client.open(sid, "triangle-two-pass", 32, seed=1)
                    out = await client.feed_binary(
                        sid,
                        np.array([0, 0, 1, 1, 2, 2], dtype=np.uint64),
                        np.array([1, 2, 0, 2, 0, 1], dtype=np.uint64),
                    )
                    assert out["pairs_total"] == 6
                stats = await client.stats()
                assert stats["sessions_open"] == 2
                per_worker = [w["sessions_open"] for w in stats["workers"]]
                assert per_worker == [1, 1]

        _run_with_router(scenario)


class TestTenants:
    def _tenants(self, tmp_path):
        config = tmp_path / "tenants.json"
        config.write_text(json.dumps({
            "tenants": [
                {"name": "alice", "token": "tok-a",
                 "max_sessions": 1, "max_pairs_per_second": 64},
                {"name": "bob", "token": "tok-b", "max_bytes": 600},
            ]
        }))
        return load_tenants(config)

    def test_quota_and_rate_codes_over_the_wire(self, tmp_path):
        async def scenario(host, port):
            async with ServeClient(host, port) as client:
                hello = await client.hello()
                assert hello["auth_required"] is True
                with pytest.raises(ServeClientError) as err:
                    await client.open("s", "triangle-two-pass", 32, seed=1)
                assert err.value.code == UNAUTHENTICATED
                with pytest.raises(ServeClientError) as err:
                    await client.auth("wrong-token")
                assert err.value.code == UNAUTHENTICATED

                out = await client.auth("tok-a")
                assert out["tenant"] == "alice"
                await client.open("s", "triangle-two-pass", 32, seed=1)
                with pytest.raises(ServeClientError) as err:
                    await client.open("s2", "triangle-two-pass", 32, seed=1)
                assert err.value.code == QUOTA_EXCEEDED  # max_sessions=1
                with pytest.raises(ServeClientError) as err:
                    # 100 pairs in one chunk against a 64/s token bucket.
                    await client.feed(
                        "s", [(2 * i, 2 * i + 1) for i in range(100)]
                    )
                assert err.value.code == RATE_LIMITED

            async with ServeClient(host, port) as client:
                await client.auth("tok-b")
                await client.open("b", "triangle-two-pass", 32, seed=1)
                with pytest.raises(ServeClientError) as err:
                    for i in range(100):
                        await client.feed(
                            "b", [(2 * i, 2 * i + 1)]
                        )
                assert err.value.code == QUOTA_EXCEEDED  # max_bytes=600
                assert i < 99, "byte quota never tripped"

        _run_with_router(scenario, tenants=self._tenants(tmp_path))
