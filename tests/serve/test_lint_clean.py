"""The serve subsystem must satisfy the repo's own determinism linter.

``repro.serve`` measures wall-clock latency (feed/poll timings) and so
carries justified ``repro-lint: disable=DET003`` suppressions; this test
pins that those suppressions are the *only* thing standing between the
subsystem and a clean bill — no unexplained violations may creep in.
"""

import os

import repro.serve
from repro.lint.cli import main

SERVE_DIR = os.path.dirname(os.path.abspath(repro.serve.__file__))


def test_serve_subsystem_is_lint_clean(capsys):
    assert main([SERVE_DIR, "--no-baseline"]) == 0
    assert "0 violations" in capsys.readouterr().out


def test_serve_clock_suppressions_are_justified():
    """Every DET003 suppression in repro.serve carries a reason string."""
    found = 0
    for name in os.listdir(SERVE_DIR):
        if not name.endswith(".py"):
            continue
        with open(os.path.join(SERVE_DIR, name)) as fh:
            for line in fh:
                if "repro-lint: disable=DET003" in line:
                    found += 1
                    assert " -- " in line, f"unjustified suppression in {name}: {line!r}"
    assert found >= 2, "manager/loadgen clocks must carry suppressions"
