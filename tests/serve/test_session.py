"""ServeSession core tests: bit-identity, validation, budgets, snapshots.

The central contract: a session fed any chunking of a stream's pairs
produces estimates **bit-identical** to the batch runner over the same
stream — serving is an execution mode, not an approximation.
"""

import pytest

from repro.graph.planted import planted_four_cycles, planted_triangles
from repro.serve.protocol import (
    BAD_REQUEST,
    BUDGET_EXCEEDED,
    SESSION_DONE,
    SPACE_BUDGET_EXCEEDED,
    STREAM_FORMAT,
    UNSUPPORTED,
    ServeError,
)
from repro.serve.session import ServeSession
from repro.sketch.state import SketchState
from repro.streaming.registry import get as get_spec
from repro.streaming.runner import run_algorithm
from repro.streaming.stream import AdjacencyListStream


@pytest.fixture(scope="module")
def triangle_world():
    planted = planted_triangles(noise_edges=200, triangles=30, seed=7)
    stream = AdjacencyListStream(planted.graph, seed=11)
    return stream, list(stream.iter_pairs()), planted.true_count


def _reference(stream, name="triangle-two-pass", budget=64, seed=5):
    return run_algorithm(get_spec(name).make(budget, seed=seed), stream).estimate


def _feed_stream(session, pairs, chunk, passes):
    final = None
    for _ in range(passes):
        for i in range(0, len(pairs), chunk):
            session.feed(pairs[i : i + chunk])
        final = session.finish_pass()
    return final


class TestBitIdentity:
    @pytest.mark.parametrize("chunk", [1, 7, 64, 10_000])
    def test_any_chunking_matches_batch_runner(self, triangle_world, chunk):
        stream, pairs, _ = triangle_world
        reference = _reference(stream)
        session = ServeSession.open("s", "triangle-two-pass", 64, seed=5)
        final = _feed_stream(session, pairs, chunk, 2)
        assert final["done"]
        assert final["estimate"] == reference

    def test_fourcycle_matches_batch_runner(self):
        planted = planted_four_cycles(noise_edges=150, cycles=20, seed=3)
        stream = AdjacencyListStream(planted.graph, seed=2)
        pairs = list(stream.iter_pairs())
        reference = _reference(stream, "fourcycle-two-pass", budget=64, seed=9)
        session = ServeSession.open("s", "fourcycle-two-pass", 64, seed=9)
        final = _feed_stream(session, pairs, 11, 2)
        assert final["estimate"] == reference

    def test_one_pass_algorithm(self, triangle_world):
        stream, pairs, _ = triangle_world
        reference = _reference(stream, "triangle-one-pass", budget=500, seed=3)
        session = ServeSession.open("s", "triangle-one-pass", 500, seed=3)
        final = _feed_stream(session, pairs, 17, 1)
        assert final["done"]
        assert final["estimate"] == reference


class TestValidation:
    def test_self_loop_rejected(self):
        session = ServeSession.open("s", "triangle-two-pass", 8, seed=0)
        with pytest.raises(ServeError) as err:
            session.feed([(1, 1)])
        assert err.value.code == STREAM_FORMAT
        assert "self loop" in err.value.message

    def test_non_contiguous_list_rejected(self):
        session = ServeSession.open("s", "triangle-two-pass", 8, seed=0)
        session.feed([(0, 1), (1, 0)])
        with pytest.raises(ServeError) as err:
            session.feed([(0, 2)])
        assert "not contiguous" in err.value.message

    def test_missing_reverse_caught_at_finish(self):
        session = ServeSession.open("s", "triangle-two-pass", 8, seed=0)
        session.feed([(0, 1), (0, 2), (1, 0)])  # fine mid-stream...
        with pytest.raises(ServeError) as err:
            session.finish_pass()  # ...but (2, 0) never arrived
        assert "reverse" in err.value.message

    def test_lists_mode_allows_shard_slices(self):
        session = ServeSession.open(
            "s", "triangle-two-pass-sharded", 8, seed=0, validate_mode="lists"
        )
        session.feed([(0, 1), (0, 2)])  # reverses live in another shard
        assert session.finish_pass()["pairs"] == 2

    def test_off_mode_skips_everything(self):
        session = ServeSession.open(
            "s", "triangle-two-pass", 8, seed=0, validate_mode="off"
        )
        session.feed([(1, 1)])  # would be rejected under strict
        session.finish_pass()

    def test_second_pass_length_must_match_first(self, triangle_world):
        _, pairs, _ = triangle_world
        session = ServeSession.open("s", "triangle-two-pass", 16, seed=0)
        session.feed(pairs)
        session.finish_pass()
        session.feed(pairs[: len(pairs) // 2])
        with pytest.raises(ServeError) as err:
            session.finish_pass()
        assert "replay identically" in err.value.message

    def test_feed_after_done_rejected(self, triangle_world):
        _, pairs, _ = triangle_world
        session = ServeSession.open("s", "triangle-two-pass", 16, seed=0)
        _feed_stream(session, pairs, 1000, 2)
        with pytest.raises(ServeError) as err:
            session.feed(pairs[:1])
        assert err.value.code == SESSION_DONE


class TestBudgets:
    def test_byte_budget(self):
        session = ServeSession.open(
            "s", "triangle-two-pass", 8, seed=0, byte_budget=100
        )
        session.account_bytes(60)
        with pytest.raises(ServeError) as err:
            session.account_bytes(41)
        assert err.value.code == BUDGET_EXCEEDED

    def test_space_budget(self, triangle_world):
        _, pairs, _ = triangle_world
        session = ServeSession.open(
            "s", "triangle-two-pass", 64, seed=5, space_budget_words=10
        )
        with pytest.raises(ServeError) as err:
            for i in range(0, len(pairs), 50):
                session.feed(pairs[i : i + 50])
        assert err.value.code == SPACE_BUDGET_EXCEEDED


class TestPoll:
    def test_anytime_estimate_and_verdict(self, triangle_world):
        stream, pairs, truth = triangle_world
        session = ServeSession.open("s", "triangle-two-pass", 64, seed=5)
        session.feed(pairs)
        out = session.poll(truth=truth, m=stream.m)
        assert out["anytime"] is True
        assert out["estimate"] is not None
        verdict = out["verdict"]
        assert verdict["theorem"] == "3.7"
        assert isinstance(verdict["ok"], bool)

    def test_poll_without_truth_has_no_verdict(self, triangle_world):
        _, pairs, _ = triangle_world
        session = ServeSession.open("s", "triangle-two-pass", 64, seed=5)
        session.feed(pairs[:10])
        assert "verdict" not in session.poll()

    def test_result_before_done_rejected(self):
        session = ServeSession.open("s", "triangle-two-pass", 8, seed=0)
        with pytest.raises(ServeError) as err:
            session.result()
        assert err.value.code == BAD_REQUEST


class TestSnapshotRestore:
    def test_restore_resumes_bit_exactly_mid_stream(self, triangle_world):
        stream, pairs, _ = triangle_world
        reference = _reference(stream)
        session = ServeSession.open("s", "triangle-two-pass", 64, seed=5)
        # Snapshot mid-list (cut at an odd offset), mid-first-pass.
        cut = len(pairs) // 2 + 1
        for i in range(0, cut, 13):
            session.feed(pairs[i : i + 13][: max(0, cut - i)])
        state = session.snapshot_state()
        # Wire round-trip: what a client would receive and send back.
        state = SketchState.from_json(state.to_json())
        resumed = ServeSession.restore_snapshot("s2", state)
        assert resumed.pairs_total == session.pairs_total
        resumed.feed(pairs[cut:])
        resumed.finish_pass()
        for i in range(0, len(pairs), 29):
            resumed.feed(pairs[i : i + 29])
        final = resumed.finish_pass()
        assert final["estimate"] == reference

    def test_restored_session_still_validates(self, triangle_world):
        _, pairs, _ = triangle_world
        session = ServeSession.open("s", "triangle-two-pass", 16, seed=0)
        session.feed(pairs[:20])
        resumed = ServeSession.restore_snapshot("s2", session.snapshot_state())
        already_closed = pairs[0][0]
        with pytest.raises(ServeError) as err:
            resumed.feed([(already_closed, pairs[1][1] + 10_000)])
        assert "not contiguous" in err.value.message

    def test_snapshot_unsupported_algorithm(self):
        session = ServeSession.open("s", "triangle-wedge", 8, seed=0)
        with pytest.raises(ServeError) as err:
            session.snapshot_state()
        assert err.value.code == UNSUPPORTED

    def test_malformed_state_rejected(self):
        state = SketchState("serve-session", 1, {"spec": "triangle-two-pass"})
        with pytest.raises(ServeError):
            ServeSession.restore_snapshot("s", state)
