"""SessionManager tests: concurrency, determinism, merge, checkpointing.

The headline property (the ISSUE's satellite 3): N sessions driven
*interleaved* on one event loop produce estimates bit-identical to
serial batch runs — including after snapshot → restore → resume
mid-stream — and cross-session merge reproduces ``run_sharded``
bit-exactly.
"""

import asyncio

import pytest

from repro.graph.planted import planted_triangles
from repro.obs.events import (
    ServeCheckpointed,
    SessionClosed,
    SessionOpened,
    SessionsMerged,
)
from repro.obs.sinks import InMemorySink
from repro.obs.telemetry import Telemetry
from repro.serve.manager import SessionManager
from repro.serve.protocol import (
    MERGE_INCOMPATIBLE,
    NO_SUCH_SESSION,
    SERVER_SHUTDOWN,
    SESSION_EXISTS,
    SESSION_LIMIT,
    ServeError,
)
from repro.sketch.driver import partition_stream, run_sharded
from repro.streaming.registry import get as get_spec
from repro.streaming.runner import run_algorithm
from repro.streaming.stream import AdjacencyListStream
from repro.util.rng import derive_seed


def _world(noise=120, triangles=15, graph_seed=3, stream_seed=4):
    planted = planted_triangles(
        noise_edges=noise, triangles=triangles, seed=graph_seed
    )
    stream = AdjacencyListStream(planted.graph, seed=stream_seed)
    return stream, list(stream.iter_pairs())


class TestConcurrentDeterminism:
    def test_interleaved_sessions_match_serial_runs(self):
        """12 sessions with distinct seeds, fed concurrently in interleaved
        chunks, each bit-identical to its own serial batch run."""
        stream, pairs = _world()
        seeds = list(range(12))
        references = {
            seed: run_algorithm(
                get_spec("triangle-two-pass").make(48, seed=seed), stream
            ).estimate
            for seed in seeds
        }

        async def drive(manager, seed):
            sid = f"s{seed}"
            await manager.open(sid, "triangle-two-pass", 48, seed)
            final = None
            for _ in range(2):
                for i in range(0, len(pairs), 31):
                    await manager.feed(sid, pairs[i : i + 31])
                    await asyncio.sleep(0)  # force interleaving
                final = await manager.finish_pass(sid)
            return final["estimate"]

        async def main():
            manager = SessionManager(max_inflight_feeds=4)
            return await asyncio.gather(*(drive(manager, s) for s in seeds))

        estimates = asyncio.run(main())
        assert estimates == [references[s] for s in seeds]

    def test_snapshot_restore_resume_interleaved(self):
        """Sessions snapshotted mid-stream, restored under new ids, and
        resumed concurrently still land bit-identical to serial runs."""
        stream, pairs = _world()
        reference = run_algorithm(
            get_spec("triangle-two-pass").make(48, seed=9), stream
        ).estimate
        cut = len(pairs) // 3

        async def main():
            manager = SessionManager()
            await manager.open("orig", "triangle-two-pass", 48, 9)
            await manager.feed("orig", pairs[:cut])
            state = await manager.snapshot("orig")
            await manager.close("orig")
            await manager.restore("resumed", state)
            await manager.feed("resumed", pairs[cut:])
            await manager.finish_pass("resumed")
            for i in range(0, len(pairs), 53):
                await manager.feed("resumed", pairs[i : i + 53])
            return (await manager.finish_pass("resumed"))["estimate"]

        assert asyncio.run(main()) == reference


class TestMerge:
    def test_merge_reproduces_run_sharded(self):
        """Shard-slice sessions merged per pass == run_sharded, bit-exactly."""
        stream, _ = _world(noise=150, triangles=20)
        n_shards, budget, seed, merge_seed = 3, 48, 7, 5
        algorithm = get_spec("triangle-two-pass-sharded").make(budget, seed=seed)
        expected = run_sharded(
            algorithm, stream, n_shards, merge_seed=merge_seed
        ).estimate

        shards = partition_stream(stream, n_shards, "balanced")
        shard_pairs = [
            [(v, u) for v, neighbors in shard.lists for u in neighbors]
            for shard in shards
        ]

        async def run_pass(manager, sids, merged_id, pass_seed):
            for sid, chunk in zip(sids, shard_pairs):
                await manager.feed(sid, chunk)
                await manager.finish_pass(sid)
            merged = await manager.merge(merged_id, sids, merge_seed=pass_seed)
            return merged

        async def main():
            manager = SessionManager()
            # Pass 0: fresh sibling sessions (same seed -> same origin).
            sids0 = [f"p0-{i}" for i in range(n_shards)]
            for sid in sids0:
                await manager.open(
                    sid, "triangle-two-pass-sharded", budget, seed,
                    validate_mode="lists",
                )
            await run_pass(manager, sids0, "m0", derive_seed(merge_seed, 0))
            # Pass 1: fork the merged session into one branch per shard.
            state = await manager.snapshot("m0")
            sids1 = [f"p1-{i}" for i in range(n_shards)]
            for sid in sids1:
                await manager.restore(sid, state)
            merged = await run_pass(
                manager, sids1, "m1", derive_seed(merge_seed, 1)
            )
            return merged.result()

        assert asyncio.run(main()) == expected

    def test_merge_refuses_mismatched_sessions(self):
        async def main():
            manager = SessionManager()
            await manager.open("a", "triangle-two-pass", 32, 1)
            await manager.open("b", "triangle-two-pass", 64, 1)  # budget differs
            await manager.open("c", "triangle-two-pass", 32, 2)  # seed differs
            with pytest.raises(ServeError) as err:
                await manager.merge("m", ["a", "b"])
            assert err.value.code == MERGE_INCOMPATIBLE
            with pytest.raises(ServeError) as err:
                await manager.merge("m", ["a", "c"])
            assert "origin" in err.value.message
            # Sources must be untouched by failed merges.
            assert manager.session_ids() == ["a", "b", "c"]

        asyncio.run(main())

    def test_merge_refuses_mid_pass_sources(self):
        async def main():
            manager = SessionManager()
            for sid in ("a", "b"):
                await manager.open(sid, "triangle-two-pass", 32, 1)
                await manager.feed(sid, [(0, 1), (1, 0)])
            with pytest.raises(ServeError) as err:
                await manager.merge("m", ["a", "b"])
            assert "pass boundary" in err.value.message

        asyncio.run(main())

    def test_merge_closes_sources_and_emits_events(self):
        sink = InMemorySink()

        async def main():
            manager = SessionManager(telemetry=Telemetry(sink=sink))
            for sid in ("a", "b"):
                await manager.open(sid, "triangle-two-pass", 32, 1)
            await manager.merge("m", ["a", "b"])
            assert manager.session_ids() == ["m"]

        asyncio.run(main())
        merges = sink.of_type(SessionsMerged)
        assert len(merges) == 1
        assert merges[0].n_sources == 2
        closed = {e.session_id: e.reason for e in sink.of_type(SessionClosed)}
        assert closed == {"a": "merged", "b": "merged"}


class TestAdmission:
    def test_session_limit(self):
        async def main():
            manager = SessionManager(max_sessions=2)
            await manager.open("a", "triangle-two-pass", 8, 0)
            await manager.open("b", "triangle-two-pass", 8, 0)
            with pytest.raises(ServeError) as err:
                await manager.open("c", "triangle-two-pass", 8, 0)
            assert err.value.code == SESSION_LIMIT
            await manager.close("a")
            await manager.open("c", "triangle-two-pass", 8, 0)

        asyncio.run(main())

    def test_duplicate_and_unknown_ids(self):
        async def main():
            manager = SessionManager()
            await manager.open("a", "triangle-two-pass", 8, 0)
            with pytest.raises(ServeError) as err:
                await manager.open("a", "triangle-two-pass", 8, 0)
            assert err.value.code == SESSION_EXISTS
            with pytest.raises(ServeError) as err:
                await manager.poll("ghost")
            assert err.value.code == NO_SUCH_SESSION

        asyncio.run(main())

    def test_shutdown_refuses_new_sessions(self):
        async def main():
            manager = SessionManager()
            await manager.open("a", "triangle-two-pass", 8, 0)
            await manager.shutdown()
            assert manager.open_count == 0
            with pytest.raises(ServeError) as err:
                await manager.open("b", "triangle-two-pass", 8, 0)
            assert err.value.code == SERVER_SHUTDOWN

        asyncio.run(main())

    def test_open_high_water_tracks_peak(self):
        async def main():
            manager = SessionManager()
            for i in range(5):
                await manager.open(f"s{i}", "triangle-two-pass", 8, 0)
            for i in range(5):
                await manager.close(f"s{i}")
            return manager.open_high_water, manager.open_count

        assert asyncio.run(main()) == (5, 0)


class TestCheckpointing:
    def test_checkpoint_and_resume_across_managers(self, tmp_path):
        """Shutdown-checkpointed sessions restored in a fresh manager finish
        bit-identical to an uninterrupted serial run."""
        stream, pairs = _world()
        reference = run_algorithm(
            get_spec("triangle-two-pass").make(48, seed=2), stream
        ).estimate
        cut = len(pairs) // 2

        async def first_life():
            manager = SessionManager()
            await manager.open("s", "triangle-two-pass", 48, 2)
            await manager.open("plain", "triangle-wedge", 8, 0)  # no snapshot
            await manager.feed("s", pairs[:cut])
            out = await manager.shutdown(tmp_path / "ckpt")
            assert out["checkpointed"] == 1
            return out

        async def second_life():
            manager = SessionManager()
            restored = await manager.load_checkpoints(tmp_path / "ckpt")
            assert restored == ["s"]
            await manager.feed("s", pairs[cut:])
            await manager.finish_pass("s")
            await manager.feed("s", pairs)
            return (await manager.finish_pass("s"))["estimate"]

        asyncio.run(first_life())
        assert asyncio.run(second_life()) == reference

    def test_checkpoint_emits_event_and_manifest(self, tmp_path):
        sink = InMemorySink()

        async def main():
            manager = SessionManager(telemetry=Telemetry(sink=sink))
            await manager.open("a", "triangle-two-pass", 8, 0)
            return await manager.checkpoint_all(tmp_path / "ckpt")

        out = asyncio.run(main())
        assert out["sessions"] == 1
        assert (tmp_path / "ckpt" / "serve-checkpoint.json").exists()
        events = sink.of_type(ServeCheckpointed)
        assert len(events) == 1 and events[0].sessions == 1


class TestTelemetry:
    def test_session_lifecycle_events_and_metrics(self):
        sink = InMemorySink()
        telemetry = Telemetry(sink=sink)

        async def main():
            manager = SessionManager(telemetry=telemetry)
            await manager.open("a", "triangle-two-pass", 32, 1)
            await manager.feed("a", [(0, 1), (1, 0)])
            await manager.poll("a")
            await manager.close("a")

        asyncio.run(main())
        opened = sink.of_type(SessionOpened)
        assert len(opened) == 1 and not opened[0].resumed
        closed = sink.of_type(SessionClosed)
        assert len(closed) == 1
        assert closed[0].pairs == 2 and closed[0].polls == 1
        names = set(telemetry.metrics_snapshot())
        assert {"serve_sessions_open", "serve_session_pairs_total",
                "serve_polls_total"} <= names
