"""Binary pair-batch frame tests: codec round-trips and wire behavior.

The codec half is property-based (hypothesis): any session id and any
uint64 columns — empty chunks and 2**64-1 included — must survive
encode/decode exactly.  The wire half runs a real server: binary frames
before negotiation must fail with the registered code, and one
connection must be able to interleave JSON and binary feed frames
against the same session with responses staying JSON.
"""

import asyncio
import struct

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve.client import ServeClient
from repro.serve.manager import SessionManager
from repro.serve.protocol import (
    BAD_FRAME,
    BINARY_FRAME_VERSION,
    BINARY_HEADER_BYTES,
    BINARY_MAGIC,
    BINARY_NOT_NEGOTIATED,
    ERROR_CODES,
    FRAME_TOO_LARGE,
    MAX_FRAME_BYTES,
    ServeError,
    decode_binary_body,
    decode_binary_feed,
    decode_binary_header,
    encode_binary_feed,
)
from repro.serve.server import ServeServer

_HEADER = struct.Struct("<BBHIQ")

uint64s = st.integers(min_value=0, max_value=2**64 - 1)
columns = st.lists(st.tuples(uint64s, uint64s), max_size=200)
sessions = st.text(min_size=1, max_size=40).filter(
    lambda s: len(s.encode("utf-8")) <= 0xFFFF
)


class TestCodecRoundTrip:
    @given(req_id=uint64s, session=sessions, pairs=columns)
    @settings(max_examples=200, deadline=None)
    def test_any_frame_round_trips(self, req_id, session, pairs):
        srcs = np.array([p[0] for p in pairs], dtype=np.uint64)
        dsts = np.array([p[1] for p in pairs], dtype=np.uint64)
        frame = encode_binary_feed(req_id, session, srcs, dsts)
        out_id, out_session, out_srcs, out_dsts = decode_binary_feed(frame)
        assert out_id == req_id
        assert out_session == session
        assert out_srcs.tolist() == srcs.tolist()
        assert out_dsts.tolist() == dsts.tolist()

    def test_empty_chunk(self):
        empty = np.array([], dtype=np.uint64)
        frame = encode_binary_feed(7, "s", empty, empty)
        assert len(frame) == BINARY_HEADER_BYTES + 1
        _, session, srcs, dsts = decode_binary_feed(frame)
        assert session == "s" and len(srcs) == 0 and len(dsts) == 0

    def test_max_uint64_survives(self):
        top = np.array([2**64 - 1], dtype=np.uint64)
        _, _, srcs, dsts = decode_binary_feed(encode_binary_feed(0, "s", top, top))
        assert int(srcs[0]) == 2**64 - 1 and int(dsts[0]) == 2**64 - 1

    def test_header_is_sixteen_bytes(self):
        assert BINARY_HEADER_BYTES == 16


class TestCodecErrors:
    def test_codes_are_registered(self):
        for code in (BAD_FRAME, FRAME_TOO_LARGE, BINARY_NOT_NEGOTIATED):
            assert code in ERROR_CODES

    def test_truncated_header(self):
        with pytest.raises(ServeError) as err:
            decode_binary_header(b"\xb1\x01")
        assert err.value.code == BAD_FRAME

    def test_bad_magic(self):
        header = _HEADER.pack(0x7B, BINARY_FRAME_VERSION, 0, 0, 0)
        with pytest.raises(ServeError) as err:
            decode_binary_header(header)
        assert err.value.code == BAD_FRAME

    def test_unknown_version(self):
        header = _HEADER.pack(BINARY_MAGIC, 99, 0, 0, 0)
        with pytest.raises(ServeError) as err:
            decode_binary_header(header)
        assert err.value.code == BAD_FRAME

    def test_oversized_header_refused_before_body(self):
        huge = (MAX_FRAME_BYTES // 16) + 1
        header = _HEADER.pack(BINARY_MAGIC, BINARY_FRAME_VERSION, 0, huge, 0)
        with pytest.raises(ServeError) as err:
            decode_binary_header(header)
        assert err.value.code == FRAME_TOO_LARGE

    def test_truncated_body(self):
        with pytest.raises(ServeError) as err:
            decode_binary_body(b"\x00" * 15, session_len=0, n_pairs=1)
        assert err.value.code == BAD_FRAME

    def test_non_utf8_session(self):
        with pytest.raises(ServeError) as err:
            decode_binary_body(b"\xff\xfe", session_len=2, n_pairs=0)
        assert err.value.code == BAD_FRAME

    def test_mismatched_columns_refused(self):
        with pytest.raises(ServeError) as err:
            encode_binary_feed(
                0, "s",
                np.array([1], dtype=np.uint64),
                np.array([1, 2], dtype=np.uint64),
            )
        assert err.value.code == BAD_FRAME


async def _with_server(fn):
    server = ServeServer(SessionManager(), port=0)
    await server.start()
    task = asyncio.ensure_future(server.serve_until_stopped())
    try:
        return await fn("127.0.0.1", server.bound_port)
    finally:
        server.stop()
        await task


class TestWire:
    def test_binary_before_negotiation_is_refused(self):
        async def scenario(host, port):
            reader, writer = await asyncio.open_connection(host, port)
            try:
                col = np.array([1], dtype=np.uint64)
                writer.write(encode_binary_feed(9, "s", col, col))
                await writer.drain()
                import json

                response = json.loads(await reader.readline())
                assert response["id"] == 9
                assert response["error"]["code"] == BINARY_NOT_NEGOTIATED
            finally:
                writer.close()
                await writer.wait_closed()

        asyncio.run(_with_server(scenario))

    def test_mixed_json_and_binary_frames_on_one_connection(self):
        async def scenario(host, port):
            async with ServeClient(host, port) as client:
                assert await client.negotiate_binary()
                await client.open("mix", "triangle-two-pass", 32, seed=1)
                await client.feed("mix", [[0, 1], [0, 2]])
                out = await client.feed_binary(
                    "mix",
                    np.array([1, 1], dtype=np.uint64),
                    np.array([0, 2], dtype=np.uint64),
                )
                assert out["pairs"] == 2 and out["pairs_total"] == 4
                await client.feed("mix", [[2, 0], [2, 1]])
                poll = await client.poll("mix")
                assert poll["pairs_this_pass"] == 6
                return poll

        asyncio.run(_with_server(scenario))

    def test_binary_feed_requires_negotiation_client_side(self):
        async def scenario(host, port):
            async with ServeClient(host, port) as client:
                col = np.array([1], dtype=np.uint64)
                with pytest.raises(RuntimeError):
                    await client.feed_binary("s", col, col)

        asyncio.run(_with_server(scenario))

    def test_truncated_binary_frame_closes_connection(self):
        async def scenario(host, port):
            reader, writer = await asyncio.open_connection(host, port)
            try:
                writer.write(bytes([BINARY_MAGIC, 99]))  # bad version
                writer.write(b"\x00" * (BINARY_HEADER_BYTES - 2))
                await writer.drain()
                import json

                response = json.loads(await reader.readline())
                assert response["error"]["code"] == BAD_FRAME
                # The stream is unframed after a bad header: the server
                # must hang up rather than resynchronize on garbage.
                assert await reader.read() == b""
            finally:
                writer.close()
                await writer.wait_closed()

        asyncio.run(_with_server(scenario))
