"""Serve live-plane tests: /metrics scrape, stats metrics, relay spans.

Forks a real 2-worker fleet behind the router with the live plane on
(metrics-only worker telemetry, a ``/metrics`` listener, per-worker
trace files) and asserts the operational contracts:

* the scrape endpoint returns valid Prometheus text whose parsed
  snapshot aggregates per-worker histograms under ``worker=<i>`` labels
  and contains only registered names;
* ``stats`` with ``metrics: 1`` ships a worker's snapshot over the
  wire;
* per-process traces stitch into one deterministic span tree with the
  router's relay spans as children of the worker session spans.
"""

import asyncio
import threading
import urllib.error
import urllib.request

from repro.obs.metrics import parse_series
from repro.obs.names import METRIC_NAMES, unregistered_series
from repro.obs.sinks import parse_textfile
from repro.obs.slo import SLOPolicy
from repro.obs.telemetry import Telemetry
from repro.obs.trace import (
    TraceContext,
    Tracer,
    span_tree,
    stitch_chrome_traces,
    write_chrome_trace,
)
from repro.serve.client import ServeClient
from repro.serve.manager import SessionManager
from repro.serve.router import (
    SCRAPE_CONTENT_TYPE,
    ServeRouter,
    worker_artifact_path,
    worker_for,
)
from repro.serve.server import ServeServer

N_WORKERS = 2

TRIANGLE_PAIRS = [(0, 1), (0, 2), (1, 0), (1, 2), (2, 0), (2, 1)]


def _sid_on_worker(prefix, worker):
    for j in range(1000):
        sid = f"{prefix}{j}"
        if worker_for(sid, N_WORKERS) == worker:
            return sid
    raise AssertionError(f"no id with prefix {prefix!r} lands on {worker}")


async def _scrape(port, path="/metrics"):
    """GET the scrape endpoint off-loop; returns (status, headers, body)."""
    result = {}

    def fetch():
        try:
            with urllib.request.urlopen(
                f"http://127.0.0.1:{port}{path}", timeout=5
            ) as response:
                result["status"] = response.status
                result["headers"] = dict(response.headers)
                result["body"] = response.read().decode("utf-8")
        except urllib.error.HTTPError as exc:
            result["status"] = exc.code
            result["headers"] = dict(exc.headers)
            result["body"] = exc.read().decode("utf-8", "replace")

    thread = threading.Thread(target=fetch)
    thread.start()
    while thread.is_alive():
        await asyncio.sleep(0.02)
    return result["status"], result["headers"], result["body"]


def _run_live_fleet(fn, tmp_path, **extra):
    """Fork a live-plane fleet; run ``fn(router, client)`` inside the loop."""
    trace_base = str(tmp_path / "serve.trace")
    worker_traces = [worker_artifact_path(trace_base, i) for i in range(N_WORKERS)]
    telemetry = Telemetry(sink=None)
    tracer = Tracer(seed=0, telemetry=telemetry, root="serve")
    router = ServeRouter(
        N_WORKERS,
        port=0,
        metrics_port=0,
        telemetry=telemetry,
        tracer=tracer,
        worker_trace_paths=worker_traces,
        worker_metrics=True,
        **extra,
    )
    router.spawn_workers()

    async def main():
        with tracer:
            await router.start()
            task = asyncio.ensure_future(router.serve_until_stopped())
            client = ServeClient("127.0.0.1", router.bound_port)
            await client.connect()
            try:
                return await fn(router, client)
            finally:
                await client.shutdown_server()
                await client.aclose()
                router.stop()
                await task

    try:
        return asyncio.run(main())
    finally:
        router.join_workers()
        write_chrome_trace(trace_base, tracer.spans)


class TestScrapeEndpoint:
    def test_metrics_aggregates_workers_and_slo(self, tmp_path):
        sids = [_sid_on_worker("live-a-", 0), _sid_on_worker("live-b-", 1)]

        async def scenario(router, client):
            await client.hello()
            for sid in sids:
                await client.open(sid, "triangle-exact", budget=64)
                await client.feed(sid, TRIANGLE_PAIRS)
                await client.poll(sid)
            await asyncio.sleep(0.7)  # let at least one SLO tick land
            status, headers, body = await _scrape(router.metrics_bound_port)
            status404, _, _ = await _scrape(router.metrics_bound_port, "/nope")
            return status, headers, body, status404

        status, headers, body, status404 = _run_live_fleet(
            scenario, tmp_path, slo=SLOPolicy(), slo_interval_s=0.2
        )
        assert status == 200
        assert headers["Content-Type"] == SCRAPE_CONTENT_TYPE
        assert status404 == 404

        snapshot, helps = parse_textfile(body)
        assert unregistered_series(snapshot) == []
        # Per-worker series: both workers contributed labeled snapshots.
        workers_seen = {
            parse_series(key)[1].get("worker")
            for key in snapshot
            if parse_series(key)[0] == "serve_sessions_total"
        }
        assert workers_seen == {"0", "1"}
        # Live histograms survive aggregation.
        assert any(
            parse_series(key)[0] == "serve_op_latency_seconds" for key in snapshot
        )
        # Router-side series: workers gauge, scrape counter, SLO verdicts.
        assert snapshot["router_workers"]["value"] == N_WORKERS
        assert snapshot["router_scrapes_total"]["value"] >= 1
        slo_objectives = {
            parse_series(key)[1]["objective"]
            for key in snapshot
            if parse_series(key)[0] == "router_slo_ok"
        }
        assert "poll_p99_seconds" in slo_objectives
        # Help lines come from the declared registry.
        assert helps["router_workers"] == METRIC_NAMES["router_workers"]

    def test_post_rejected_with_405(self, tmp_path):
        async def scenario(router, client):
            await client.hello()
            port = router.metrics_bound_port
            result = {}

            def post():
                request = urllib.request.Request(
                    f"http://127.0.0.1:{port}/metrics", data=b"x", method="POST"
                )
                try:
                    urllib.request.urlopen(request, timeout=5)
                except urllib.error.HTTPError as exc:
                    result["status"] = exc.code

            thread = threading.Thread(target=post)
            thread.start()
            while thread.is_alive():
                await asyncio.sleep(0.02)
            return result["status"]

        assert _run_live_fleet(scenario, tmp_path) == 405


class TestStatsMetrics:
    def test_stats_ships_metrics_snapshot(self):
        async def scenario():
            manager = SessionManager(telemetry=Telemetry(sink=None))
            server = ServeServer(manager, port=0)
            await server.start()
            task = asyncio.ensure_future(server.serve_until_stopped())
            client = ServeClient("127.0.0.1", server.bound_port)
            await client.connect()
            try:
                await client.open("s1", "triangle-exact", budget=64)
                await client.feed("s1", TRIANGLE_PAIRS)
                stats = await client.stats(metrics=True)
                plain = await client.stats()
                return stats, plain
            finally:
                await client.aclose()
                server.stop()
                await task

        stats, plain = asyncio.run(scenario())
        snapshot = stats["metrics"]
        assert snapshot["serve_sessions_total"]["value"] == 1
        assert "serve_op_latency_seconds{op=feed,wire=json}" in snapshot
        assert "metrics" not in plain


class TestRelaySpanStitching:
    def test_stitched_tree_contains_relay_children_and_is_deterministic(
        self, tmp_path
    ):
        sids = [_sid_on_worker("span-a-", 0), _sid_on_worker("span-b-", 1)]

        def run_once(subdir):
            base = tmp_path / subdir
            base.mkdir()

            async def scenario(router, client):
                await client.hello()
                for sid in sids:
                    await client.open(
                        sid,
                        "triangle-exact",
                        budget=64,
                        trace=TraceContext(seed=99, path="client"),
                    )
                    await client.feed(sid, TRIANGLE_PAIRS)
                    await client.close_session(sid)
                return None

            _run_live_fleet(scenario, base)
            traces = [str(base / "serve.trace")] + [
                worker_artifact_path(str(base / "serve.trace"), i)
                for i in range(N_WORKERS)
            ]
            stitched = stitch_chrome_traces(traces, str(base / "fleet.trace"))
            return stitched

        first = run_once("run1")
        second = run_once("run2")
        paths = sorted(record.path for record in first)
        for sid in sids:
            assert f"client/session:{sid}" in paths
        assert any("/relay:worker-" in path for path in paths)
        assert "worker-0" in paths and "worker-1" in paths
        # Bit-identical structure across repeat runs: the stitch contract.
        assert span_tree(first) == span_tree(second)
