"""Wire-protocol unit tests: framing, param extraction, codecs."""

import pytest

from repro.serve.protocol import (
    BAD_REQUEST,
    BAD_STATE,
    ERROR_CODES,
    ServeError,
    decode_frame,
    decode_pairs,
    decode_state,
    encode_frame,
    encode_pairs,
    encode_state,
    error_response,
    get_int,
    get_opt_number,
    get_str,
    ok_response,
    request_id,
    require_op,
)
from repro.sketch.state import SketchState


class TestFraming:
    def test_round_trip(self):
        message = {"id": 7, "op": "feed", "pairs": [[0, 1]]}
        assert decode_frame(encode_frame(message).strip()) == message

    def test_frame_is_one_line(self):
        encoded = encode_frame({"op": "hello", "text": "a\nb"})
        assert encoded.endswith(b"\n")
        assert encoded.count(b"\n") == 1

    def test_garbage_rejected(self):
        with pytest.raises(ServeError) as err:
            decode_frame(b"{nope")
        assert err.value.code == BAD_REQUEST

    def test_non_object_rejected(self):
        with pytest.raises(ServeError):
            decode_frame(b"[1, 2]")

    def test_responses(self):
        ok = ok_response(3, pairs=2)
        assert ok == {"id": 3, "ok": True, "pairs": 2}
        bad = error_response(3, ServeError(BAD_REQUEST, "nope"))
        assert bad["ok"] is False
        assert bad["error"]["code"] == BAD_REQUEST

    def test_error_codes_are_unique(self):
        assert len(set(ERROR_CODES)) == len(ERROR_CODES)


class TestParams:
    def test_require_op(self):
        assert require_op({"op": "poll"}) == "poll"
        for bad in ({}, {"op": 3}, {"op": ""}):
            with pytest.raises(ServeError):
                require_op(bad)

    def test_request_id_defaults_none(self):
        assert request_id({}) is None
        assert request_id({"id": 9}) == 9

    def test_get_str_and_int(self):
        msg = {"session": "s1", "budget": 64, "flag": True}
        assert get_str(msg, "session") == "s1"
        assert get_int(msg, "budget") == 64
        assert get_int(msg, "missing", 5) == 5
        with pytest.raises(ServeError):
            get_str(msg, "missing")
        with pytest.raises(ServeError):
            get_int(msg, "session")
        with pytest.raises(ServeError):
            get_int(msg, "flag")  # bool is not an int on the wire

    def test_get_opt_number(self):
        assert get_opt_number({}, "truth") is None
        assert get_opt_number({"truth": 2.5}, "truth") == 2.5
        with pytest.raises(ServeError):
            get_opt_number({"truth": "many"}, "truth")


class TestPairCodec:
    def test_round_trip(self):
        pairs = [(0, 1), ("a", "b"), (3, "x")]
        assert decode_pairs(encode_pairs(pairs)) == pairs

    @pytest.mark.parametrize(
        "bad",
        [None, "pairs", [[0]], [[0, 1, 2]], [[0, True]], [[None, 1]], [[0, 1.5]]],
    )
    def test_rejections(self, bad):
        with pytest.raises(ServeError) as err:
            decode_pairs(bad)
        assert err.value.code == BAD_REQUEST


class TestStateCodec:
    def test_round_trip(self):
        state = SketchState("demo", 1, {"xs": (1, 2), "seen": {3, 4}})
        again = decode_state(encode_state(state))
        assert again == state

    def test_garbage_rejected(self):
        for bad in (None, [], {"kind": "x"}):
            with pytest.raises(ServeError) as err:
                decode_state(bad)
            assert err.value.code == BAD_STATE
