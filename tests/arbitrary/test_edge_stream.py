"""Tests for the arbitrary-order edge-stream substrate."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arbitrary.stream import (
    EdgeStream,
    EdgeStreamFormatError,
    random_edge_stream,
    sorted_edge_stream,
    triangle_edges_last_stream,
    validate_edge_sequence,
)
from repro.graph.counting import triangles_per_edge
from repro.graph.generators import cycle_graph, gnm_random_graph
from repro.graph.planted import planted_triangles


class TestEdgeStream:
    def test_each_edge_once(self, small_random_graph):
        stream = EdgeStream(small_random_graph, seed=1)
        edges = list(stream)
        assert len(edges) == small_random_graph.m
        assert sorted(edges) == sorted(small_random_graph.edges())

    def test_replayable(self, small_random_graph):
        stream = EdgeStream(small_random_graph, seed=2)
        assert list(stream) == list(stream)

    def test_seed_determinism(self, small_random_graph):
        a = EdgeStream(small_random_graph, seed=3)
        b = EdgeStream(small_random_graph, seed=3)
        assert list(a) == list(b)

    def test_custom_order(self):
        g = cycle_graph(4)
        order = [(2, 3), (0, 1), (1, 2), (0, 3)]
        stream = EdgeStream(g, edge_order=order)
        assert list(stream) == order

    def test_order_canonicalised(self):
        g = cycle_graph(3)
        stream = EdgeStream(g, edge_order=[(1, 0), (2, 1), (2, 0)])
        assert all(u <= v for u, v in stream)

    def test_invalid_order_rejected(self):
        g = cycle_graph(4)
        with pytest.raises(ValueError):
            EdgeStream(g, edge_order=[(0, 1)])

    def test_reordered_same_graph(self, small_random_graph):
        stream = EdgeStream(small_random_graph, seed=4)
        other = stream.reordered(seed=5)
        assert sorted(other) == sorted(stream)
        assert list(other) != list(stream)

    def test_position(self):
        g = cycle_graph(4)
        stream = sorted_edge_stream(g)
        assert stream.position(1, 0) == 0


class TestValidation:
    def test_valid(self, small_random_graph):
        validate_edge_sequence(list(EdgeStream(small_random_graph, seed=6)))

    def test_self_loop(self):
        with pytest.raises(EdgeStreamFormatError, match="self loop"):
            validate_edge_sequence([(1, 1)])

    def test_duplicate(self):
        with pytest.raises(EdgeStreamFormatError, match="duplicate"):
            validate_edge_sequence([(0, 1), (1, 0)])


class TestOrderings:
    def test_sorted_stream_deterministic(self, small_random_graph):
        assert list(sorted_edge_stream(small_random_graph)) == sorted(
            small_random_graph.edges()
        )

    def test_random_streams_differ(self, small_random_graph):
        a = random_edge_stream(small_random_graph, seed=1)
        b = random_edge_stream(small_random_graph, seed=2)
        assert list(a) != list(b)

    def test_triangle_edges_last(self):
        planted = planted_triangles(200, 20, seed=7)
        g = planted.graph
        stream = triangle_edges_last_stream(g, seed=8)
        loads = triangles_per_edge(g)
        order = list(stream)
        first_loaded = next(i for i, e in enumerate(order) if loads.get(e, 0) > 0)
        assert all(loads.get(e, 0) > 0 for e in order[first_loaded:])


@given(n=st.integers(2, 14), frac=st.floats(0.1, 0.9), seed=st.integers(0, 10**6))
@settings(max_examples=30, deadline=None)
def test_any_random_graph_streams_validly(n, frac, seed):
    g = gnm_random_graph(n, int(frac * n * (n - 1) // 2), seed=seed)
    validate_edge_sequence(list(EdgeStream(g, seed=seed)))
