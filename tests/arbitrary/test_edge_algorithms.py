"""Tests for the arbitrary-order streaming algorithms."""

import statistics

import pytest

from repro.arbitrary.algorithm import run_edge_algorithm
from repro.arbitrary.stream import EdgeStream, sorted_edge_stream
from repro.arbitrary.triangle_wedge import (
    EdgeStreamWedgeCountEstimator,
    EdgeStreamWedgeCounter,
    ExactEdgeStreamCounter,
)
from repro.graph.counting import count_triangles, count_wedges
from repro.graph.generators import (
    complete_graph,
    cycle_graph,
    gnm_random_graph,
    random_bipartite_graph,
)
from repro.graph.planted import planted_triangles


class TestExactEdgeStreamCounter:
    @pytest.mark.parametrize("length", [3, 4, 5])
    def test_exact(self, length):
        g = gnm_random_graph(20, 70, seed=length)
        result = run_edge_algorithm(ExactEdgeStreamCounter(length), EdgeStream(g, seed=1))
        from repro.graph.counting import count_cycles

        assert result.estimate == count_cycles(g, length)

    def test_space_linear(self, small_random_graph):
        result = run_edge_algorithm(
            ExactEdgeStreamCounter(3), EdgeStream(small_random_graph, seed=2)
        )
        assert result.peak_space_words == 2 * small_random_graph.m + small_random_graph.n

    def test_invalid_length(self):
        with pytest.raises(ValueError):
            ExactEdgeStreamCounter(2)


class TestWedgeClosureCounter:
    def test_full_rate_counts_exactly_one_wedge_per_triangle(self):
        """At p = 1 every triangle's last-edge wedge closes: estimate = T."""
        for seed in range(5):
            g = complete_graph(6)
            algo = EdgeStreamWedgeCounter(1.0, seed=seed)
            result = run_edge_algorithm(algo, EdgeStream(g, seed=10 + seed))
            assert result.estimate == count_triangles(g)
            assert algo.closed_wedges == count_triangles(g)

    def test_unbiased_at_subsampling(self, triangle_workload):
        g = triangle_workload.graph
        truth = triangle_workload.true_count
        estimates = []
        for i in range(40):
            algo = EdgeStreamWedgeCounter(0.35, seed=i)
            estimates.append(
                run_edge_algorithm(algo, EdgeStream(g, seed=100 + i)).estimate
            )
        assert statistics.mean(estimates) == pytest.approx(truth, rel=0.2)

    def test_triangle_free_gives_zero(self):
        g = random_bipartite_graph(20, 20, 80, seed=1)
        algo = EdgeStreamWedgeCounter(1.0, seed=2)
        assert run_edge_algorithm(algo, EdgeStream(g, seed=3)).estimate == 0

    def test_closing_edge_cannot_close_its_own_wedge(self):
        # Triangle whose edges arrive in a fixed order: the wedge of the
        # first two edges closes; the wedges involving the last edge don't.
        g = cycle_graph(3)
        stream = EdgeStream(g, edge_order=[(0, 1), (1, 2), (0, 2)])
        algo = EdgeStreamWedgeCounter(1.0, seed=4)
        run_edge_algorithm(algo, stream)
        assert algo.closed_wedges == 1
        assert algo.watched_wedges == 3

    def test_estimate_invariant_to_order_in_expectation(self, triangle_workload):
        """E[estimate] = T for any order: compare two fixed orders' means."""
        g = triangle_workload.graph
        truth = triangle_workload.true_count
        fixed = sorted_edge_stream(g)

        def mean_over_sampler_seeds(stream):
            ests = [
                run_edge_algorithm(EdgeStreamWedgeCounter(0.4, seed=i), stream).estimate
                for i in range(30)
            ]
            return statistics.mean(ests)

        assert mean_over_sampler_seeds(fixed) == pytest.approx(truth, rel=0.25)

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            EdgeStreamWedgeCounter(0.0)

    def test_space_grows_with_rate(self, triangle_workload):
        g = triangle_workload.graph
        low = run_edge_algorithm(
            EdgeStreamWedgeCounter(0.1, seed=1), EdgeStream(g, seed=2)
        ).peak_space_words
        high = run_edge_algorithm(
            EdgeStreamWedgeCounter(0.8, seed=1), EdgeStream(g, seed=2)
        ).peak_space_words
        assert low < high


class TestWedgeCountEstimator:
    def test_exact_at_full_rate(self, small_random_graph):
        algo = EdgeStreamWedgeCountEstimator(1.0, seed=1)
        result = run_edge_algorithm(algo, EdgeStream(small_random_graph, seed=2))
        assert result.estimate == count_wedges(small_random_graph)

    def test_unbiased_at_subsampling(self, small_random_graph):
        truth = count_wedges(small_random_graph)
        estimates = []
        for i in range(40):
            algo = EdgeStreamWedgeCountEstimator(0.4, seed=i)
            estimates.append(
                run_edge_algorithm(algo, EdgeStream(small_random_graph, seed=50 + i)).estimate
            )
        assert statistics.mean(estimates) == pytest.approx(truth, rel=0.15)

    def test_nonzero_variance_unlike_adjacency_model(self, small_random_graph):
        """The edge model can only estimate P2 — unlike the adjacency-list
        model's exact one-counter computation (WedgeCounter)."""
        estimates = {
            run_edge_algorithm(
                EdgeStreamWedgeCountEstimator(0.3, seed=i),
                EdgeStream(small_random_graph, seed=60 + i),
            ).estimate
            for i in range(10)
        }
        assert len(estimates) > 1

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            EdgeStreamWedgeCountEstimator(1.5)
