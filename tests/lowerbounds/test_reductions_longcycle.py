"""Tests for the ℓ-cycle (ℓ ≥ 5) lower-bound gadget (Theorem 5.5)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.exact_stream import ExactCycleCounter
from repro.graph.counting import count_cycles
from repro.lowerbounds.problems import DisjInstance, random_disj_instance
from repro.lowerbounds.protocol import partition_is_valid, run_protocol
from repro.lowerbounds.reductions import longcycle_multipass
from repro.streaming.stream import validate_pair_sequence


class TestLongCycleGadget:
    @given(
        ell=st.integers(5, 8),
        r=st.integers(2, 15),
        cycles=st.integers(1, 6),
        inter=st.booleans(),
        seed=st.integers(0, 10**6),
    )
    @settings(max_examples=30, deadline=None)
    def test_cycle_count_encodes_answer(self, ell, r, cycles, inter, seed):
        gadget, inst = longcycle_multipass.random_gadget(
            r=r, cycles=cycles, length=ell, intersecting=inter, seed=seed
        )
        t = count_cycles(gadget.graph, ell)
        if inter:
            assert t == cycles  # unique intersection: exactly T planted
        else:
            assert t == 0
        assert partition_is_valid(gadget)

    def test_edge_count_is_linear(self):
        # O(r + T) edges for constant ℓ.
        gadget, _ = longcycle_multipass.random_gadget(
            r=50, cycles=10, length=6, intersecting=True, seed=1
        )
        assert gadget.graph.m <= 3 * 50 + 2 * 10 + 10

    def test_length_five_has_single_d_vertex(self):
        inst = DisjInstance(s1=(1, 0), s2=(1, 0))
        gadget = longcycle_multipass.build_gadget(inst, cycles=3, length=5)
        d_vertices = [v for v in gadget.graph.vertices() if v[0] == "d"]
        assert len(d_vertices) == 1

    def test_rejects_short_cycles(self):
        inst = DisjInstance(s1=(1,), s2=(1,))
        with pytest.raises(ValueError):
            longcycle_multipass.build_gadget(inst, cycles=1, length=4)
        with pytest.raises(ValueError):
            longcycle_multipass.build_gadget(inst, cycles=0, length=5)

    def test_protocol_solves_disj_for_each_length(self):
        for ell in (5, 6, 7):
            for inter in (False, True):
                gadget, _ = longcycle_multipass.random_gadget(
                    r=15, cycles=5, length=ell, intersecting=inter, seed=ell
                )
                result = run_protocol(ExactCycleCounter(ell), gadget)
                assert result.output == int(inter)

    def test_stream_is_model_valid(self):
        gadget, _ = longcycle_multipass.random_gadget(
            r=10, cycles=4, length=6, intersecting=True, seed=2
        )
        validate_pair_sequence(list(gadget.stream(seed=3).iter_pairs()))

    def test_alice_lists_independent_of_bobs_string(self):
        a = DisjInstance(s1=(1, 0, 1), s2=(0, 1, 0))
        b = DisjInstance(s1=(1, 0, 1), s2=(1, 0, 0))
        g1 = longcycle_multipass.build_gadget(a, cycles=2, length=5)
        g2 = longcycle_multipass.build_gadget(b, cycles=2, length=5)
        alice = dict(g1.player_lists)["alice"]
        for v in alice:
            assert g1.graph.neighbors(v) == g2.graph.neighbors(v)

    def test_multiple_intersections_give_at_least_t(self):
        inst = DisjInstance(s1=(1, 1, 0), s2=(1, 1, 0))
        gadget = longcycle_multipass.build_gadget(inst, cycles=4, length=5)
        assert count_cycles(gadget.graph, 5) >= 4
