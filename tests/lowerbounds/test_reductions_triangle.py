"""Tests for the triangle lower-bound gadgets (Theorems 5.1 and 5.2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.exact_stream import ExactCycleCounter
from repro.core.triangle_two_pass import TwoPassTriangleCounter
from repro.graph.counting import count_triangles
from repro.lowerbounds.problems import (
    ThreeDisjInstance,
    ThreePJInstance,
    random_three_disj_instance,
    random_three_pj_instance,
)
from repro.lowerbounds.protocol import partition_is_valid, run_protocol
from repro.lowerbounds.reductions import triangle_multipass, triangle_one_pass
from repro.streaming.stream import validate_pair_sequence


class TestThreePJGadget:
    """Figure 1a / Theorem 5.1."""

    @given(r=st.integers(2, 12), k=st.integers(1, 4), answer=st.integers(0, 1),
           seed=st.integers(0, 10**6))
    @settings(max_examples=30, deadline=None)
    def test_triangle_count_encodes_answer(self, r, k, answer, seed):
        inst = random_three_pj_instance(r, answer, seed=seed)
        gadget = triangle_one_pass.build_gadget(inst, k)
        t = count_triangles(gadget.graph)
        assert t == (k * k if answer else 0)
        assert gadget.promised_cycles == k * k
        assert partition_is_valid(gadget)

    def test_edge_budget(self):
        # Θ(rk + k²) edges, per the theorem.
        inst = random_three_pj_instance(20, 1, seed=1)
        gadget = triangle_one_pass.build_gadget(inst, k=5)
        r, k = 20, 5
        assert gadget.graph.m <= 2 * (r * k + k * k) + r * k

    def test_stream_is_model_valid(self):
        inst = random_three_pj_instance(6, 1, seed=2)
        gadget = triangle_one_pass.build_gadget(inst, k=3)
        validate_pair_sequence(list(gadget.stream(seed=3).iter_pairs()))

    def test_players_cannot_see_private_input(self):
        """Alice's lists must be computable without E1 (Bob/Charlie's
        private layer): her adjacency depends only on E2 and E3."""
        base = ThreePJInstance(start=0, middle=(1, 0, 2), last=(1, 0, 1))
        changed_e1 = ThreePJInstance(start=2, middle=(1, 0, 2), last=(1, 0, 1))
        g1 = triangle_one_pass.build_gadget(base, k=2)
        g2 = triangle_one_pass.build_gadget(changed_e1, k=2)
        alice1 = dict(g1.player_lists)["alice"]
        for v in alice1:
            assert g1.graph.neighbors(v) == g2.graph.neighbors(v), (
                "Alice's adjacency lists changed when only E1 changed"
            )

    def test_protocol_solves_problem(self):
        for answer in (0, 1):
            inst = random_three_pj_instance(10, answer, seed=4 + answer)
            gadget = triangle_one_pass.build_gadget(inst, k=3)
            result = run_protocol(ExactCycleCounter(3), gadget)
            assert result.output == answer

    def test_dimension_helper(self):
        r, k = triangle_one_pass.gadget_dimensions(10000, 100)
        assert k == 10
        assert r == 1000
        with pytest.raises(ValueError):
            triangle_one_pass.gadget_dimensions(0, 1)


class TestThreeDisjGadget:
    """Figure 1b / Theorem 5.2."""

    @given(r=st.integers(2, 8), k=st.integers(1, 3), inter=st.booleans(),
           seed=st.integers(0, 10**6))
    @settings(max_examples=30, deadline=None)
    def test_triangle_count_encodes_answer(self, r, k, inter, seed):
        inst = random_three_disj_instance(r, inter, seed=seed)
        gadget = triangle_multipass.build_gadget(inst, k)
        t = count_triangles(gadget.graph)
        if inter:
            assert t == k**3  # hard instances have a unique intersection
        else:
            assert t == 0
        assert partition_is_valid(gadget)

    def test_private_input_isolation(self):
        """Bob's lists depend only on s2 and s3, never on s1."""
        base = ThreeDisjInstance(s1=(1, 0, 1), s2=(0, 1, 1), s3=(1, 1, 0))
        changed_s1 = ThreeDisjInstance(s1=(0, 1, 0), s2=(0, 1, 1), s3=(1, 1, 0))
        g1 = triangle_multipass.build_gadget(base, k=2)
        g2 = triangle_multipass.build_gadget(changed_s1, k=2)
        bob1 = dict(g1.player_lists)["bob"]
        for v in bob1:
            assert g1.graph.neighbors(v) == g2.graph.neighbors(v)

    def test_protocol_with_sublinear_algorithm(self):
        """Theorem 3.7's algorithm, run as a protocol, solves 3-DISJ —
        that is exactly the reduction's content."""
        for inter in (False, True):
            inst = random_three_disj_instance(8, inter, seed=11)
            gadget = triangle_multipass.build_gadget(inst, k=3)
            t = gadget.promised_cycles
            budget = max(1, round(6 * gadget.graph.m / t ** (2 / 3)))
            algo = TwoPassTriangleCounter(sample_size=budget, seed=12)
            result = run_protocol(algo, gadget)
            assert result.output == int(inter)
            assert result.rounds == 2

    def test_stream_is_model_valid(self):
        inst = random_three_disj_instance(5, True, seed=13)
        gadget = triangle_multipass.build_gadget(inst, k=2)
        validate_pair_sequence(list(gadget.stream(seed=14).iter_pairs()))

    def test_dimension_helper(self):
        r, k = triangle_multipass.gadget_dimensions(8000, 64)
        assert k == 4
        assert r == 500
