"""Tests for the 4-cycle lower-bound gadgets (Theorems 5.3 and 5.4)."""

import pytest

from repro.baselines.exact_stream import ExactCycleCounter
from repro.core.fourcycle_two_pass import TwoPassFourCycleCounter
from repro.graph.counting import count_four_cycles, count_triangles
from repro.lowerbounds.problems import random_disj_instance, random_index_instance
from repro.lowerbounds.protocol import partition_is_valid, run_protocol
from repro.lowerbounds.reductions import fourcycle_multipass, fourcycle_one_pass
from repro.streaming.stream import validate_pair_sequence


class TestHostGraph:
    def test_edges_are_c4_free_bipartite(self):
        edges = fourcycle_one_pass.host_graph_edges(7)
        assert len(edges) == fourcycle_one_pass.instance_size_for(7)
        assert len(set(edges)) == len(edges)
        # Verify no 4-cycle: no two rows share two columns.
        from collections import defaultdict

        cols_by_row = defaultdict(set)
        for i, j in edges:
            cols_by_row[i].add(j)
        rows = list(cols_by_row)
        for a_idx, a in enumerate(rows):
            for b in rows[a_idx + 1 :]:
                assert len(cols_by_row[a] & cols_by_row[b]) <= 1

    def test_instance_size_is_theta_r_three_halves(self):
        size7 = fourcycle_one_pass.instance_size_for(7)  # q=2: 7*3 = 21
        size13 = fourcycle_one_pass.instance_size_for(13)  # q=3: 13*4 = 52
        assert size7 == 21
        assert size13 == 52


class TestIndexGadget:
    """Figure 1c / Theorem 5.3."""

    @pytest.mark.parametrize("answer", [0, 1])
    @pytest.mark.parametrize("k", [1, 3, 6])
    def test_cycle_count_encodes_answer(self, answer, k):
        gadget, inst = fourcycle_one_pass.random_gadget(
            min_side=7, k=k, answer=answer, seed=answer * 10 + k
        )
        t = count_four_cycles(gadget.graph)
        assert t == (k if answer else 0)
        assert gadget.promised_cycles == k
        assert partition_is_valid(gadget)

    def test_no_triangles_ever(self):
        gadget, _ = fourcycle_one_pass.random_gadget(min_side=7, k=4, answer=1, seed=3)
        assert count_triangles(gadget.graph) == 0

    def test_size_mismatch_rejected(self):
        inst = random_index_instance(5, 1, seed=1)
        with pytest.raises(ValueError, match="host graph edge count"):
            fourcycle_one_pass.build_gadget(inst, min_side=7, k=2)

    def test_invalid_k(self):
        inst = random_index_instance(fourcycle_one_pass.instance_size_for(7), 1, seed=2)
        with pytest.raises(ValueError):
            fourcycle_one_pass.build_gadget(inst, min_side=7, k=0)

    def test_protocol_solves_index(self):
        for answer in (0, 1):
            gadget, _ = fourcycle_one_pass.random_gadget(
                min_side=7, k=4, answer=answer, seed=20 + answer
            )
            result = run_protocol(ExactCycleCounter(4), gadget)
            assert result.output == answer
            # One-way: a single Alice -> Bob message.
            assert len(result.messages) == 1
            assert result.messages[0].sender == "alice"

    def test_stream_is_model_valid(self):
        gadget, _ = fourcycle_one_pass.random_gadget(min_side=7, k=3, answer=1, seed=5)
        validate_pair_sequence(list(gadget.stream(seed=6).iter_pairs()))

    def test_alice_lists_do_not_depend_on_bobs_index(self):
        size = fourcycle_one_pass.instance_size_for(7)
        bits = tuple(i % 2 for i in range(size))
        from repro.lowerbounds.problems import IndexInstance

        g1 = fourcycle_one_pass.build_gadget(
            IndexInstance(bits=bits, index=0), min_side=7, k=2
        )
        g2 = fourcycle_one_pass.build_gadget(
            IndexInstance(bits=bits, index=size - 1), min_side=7, k=2
        )
        alice = dict(g1.player_lists)["alice"]
        for v in alice:
            assert g1.graph.neighbors(v) == g2.graph.neighbors(v)


class TestDisjFourCycleGadget:
    """Figure 1d / Theorem 5.4."""

    @pytest.mark.parametrize("inter", [False, True])
    def test_cycle_count_encodes_answer(self, inter):
        gadget, _ = fourcycle_multipass.random_gadget(
            min_side_r=7, min_side_k=7, intersecting=inter, seed=int(inter)
        )
        t = count_four_cycles(gadget.graph)
        if inter:
            assert t == gadget.promised_cycles  # unique intersection: exact
        else:
            assert t == 0
        assert partition_is_valid(gadget)

    def test_promised_count_is_h2_edge_count(self):
        gadget, _ = fourcycle_multipass.random_gadget(
            min_side_r=7, min_side_k=7, intersecting=True, seed=7
        )
        assert gadget.promised_cycles == 21  # |E(H2)| for q=2

    def test_size_mismatch_rejected(self):
        inst = random_disj_instance(4, True, seed=8)
        with pytest.raises(ValueError, match="H1 edge count"):
            fourcycle_multipass.build_gadget(inst, min_side_r=7, min_side_k=7)

    def test_sublinear_two_pass_protocol_solves_disj(self):
        for inter in (False, True):
            gadget, _ = fourcycle_multipass.random_gadget(
                min_side_r=7, min_side_k=7, intersecting=inter, seed=30 + int(inter)
            )
            t = gadget.promised_cycles
            budget = max(2, round(6 * gadget.graph.m / t**0.375))
            algo = TwoPassFourCycleCounter(sample_size=budget, seed=31)
            result = run_protocol(algo, gadget)
            assert result.output == int(inter)

    def test_stream_is_model_valid(self):
        gadget, _ = fourcycle_multipass.random_gadget(
            min_side_r=7, min_side_k=7, intersecting=True, seed=9
        )
        validate_pair_sequence(list(gadget.stream(seed=10).iter_pairs()))
