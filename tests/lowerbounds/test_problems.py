"""Tests for the communication problem instances and generators."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lowerbounds.problems import (
    DisjInstance,
    IndexInstance,
    ThreeDisjInstance,
    ThreePJInstance,
    random_disj_instance,
    random_index_instance,
    random_three_disj_instance,
    random_three_pj_instance,
)


class TestIndex:
    def test_answer_reads_bit(self):
        inst = IndexInstance(bits=(0, 1, 0), index=1)
        assert inst.answer == 1
        assert inst.r == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            IndexInstance(bits=(0, 2), index=0)
        with pytest.raises(ValueError):
            IndexInstance(bits=(0, 1), index=2)

    @given(r=st.integers(1, 100), answer=st.integers(0, 1), seed=st.integers(0, 10**6))
    @settings(max_examples=50)
    def test_generator_forces_answer(self, r, answer, seed):
        inst = random_index_instance(r, answer, seed=seed)
        assert inst.answer == answer
        assert inst.r == r

    def test_generator_validates_r(self):
        with pytest.raises(ValueError):
            random_index_instance(0, 1)


class TestDisj:
    def test_answer_detects_intersection(self):
        assert DisjInstance(s1=(1, 0), s2=(1, 0)).answer == 1
        assert DisjInstance(s1=(1, 0), s2=(0, 1)).answer == 0

    def test_intersection_indices(self):
        inst = DisjInstance(s1=(1, 0, 1), s2=(1, 0, 1))
        assert inst.intersection() == (0, 2)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            DisjInstance(s1=(1,), s2=(1, 0))

    @given(r=st.integers(1, 100), inter=st.booleans(), seed=st.integers(0, 10**6))
    @settings(max_examples=60)
    def test_generator_hard_instances(self, r, inter, seed):
        inst = random_disj_instance(r, inter, seed=seed)
        assert inst.answer == int(inter)
        assert len(inst.intersection()) <= 1


class TestThreePJ:
    def test_answer_follows_pointers(self):
        inst = ThreePJInstance(start=1, middle=(2, 0, 1), last=(1, 0, 0))
        # start=1 -> middle[1]=0 -> last[0]=1
        assert inst.answer == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            ThreePJInstance(start=5, middle=(0,), last=(1,))
        with pytest.raises(ValueError):
            ThreePJInstance(start=0, middle=(3,), last=(0,))
        with pytest.raises(ValueError):
            ThreePJInstance(start=0, middle=(0,), last=(2,))
        with pytest.raises(ValueError):
            ThreePJInstance(start=0, middle=(0, 1), last=(0,))

    @given(r=st.integers(1, 60), answer=st.integers(0, 1), seed=st.integers(0, 10**6))
    @settings(max_examples=50)
    def test_generator_forces_answer(self, r, answer, seed):
        inst = random_three_pj_instance(r, answer, seed=seed)
        assert inst.answer == answer
        assert inst.r == r


class TestThreeDisj:
    def test_answer(self):
        yes = ThreeDisjInstance(s1=(1, 0), s2=(1, 1), s3=(1, 0))
        no = ThreeDisjInstance(s1=(1, 0), s2=(1, 1), s3=(0, 1))
        assert yes.answer == 1
        assert no.answer == 0

    def test_intersection(self):
        inst = ThreeDisjInstance(s1=(1, 1), s2=(1, 1), s3=(0, 1))
        assert inst.intersection() == (1,)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            ThreeDisjInstance(s1=(1,), s2=(1,), s3=(1, 0))

    @given(r=st.integers(1, 60), inter=st.booleans(), seed=st.integers(0, 10**6))
    @settings(max_examples=60)
    def test_generator_hard_instances(self, r, inter, seed):
        inst = random_three_disj_instance(r, inter, seed=seed)
        assert inst.answer == int(inter)
        assert len(inst.intersection()) <= 1
