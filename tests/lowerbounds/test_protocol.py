"""Tests for the communication protocol simulator."""

import pytest

from repro.baselines.exact_stream import ExactCycleCounter
from repro.core.triangle_two_pass import TwoPassTriangleCounter
from repro.graph.graph import Graph
from repro.lowerbounds.problems import random_three_pj_instance
from repro.lowerbounds.protocol import Gadget, partition_is_valid, run_protocol
from repro.lowerbounds.reductions.triangle_one_pass import build_gadget
from repro.streaming.stream import validate_pair_sequence


@pytest.fixture()
def yes_gadget():
    return build_gadget(random_three_pj_instance(8, 1, seed=1), k=3)


@pytest.fixture()
def no_gadget():
    return build_gadget(random_three_pj_instance(8, 0, seed=2), k=3)


class TestGadgetStructure:
    def test_partition_valid(self, yes_gadget):
        assert partition_is_valid(yes_gadget)

    def test_partition_detects_overlap(self):
        g = Graph.from_edges([(0, 1)])
        bad = Gadget(
            graph=g,
            cycle_length=3,
            promised_cycles=1,
            answer=0,
            player_lists=(("alice", (0, 1)), ("bob", (1,))),
        )
        assert not partition_is_valid(bad)

    def test_partition_detects_missing_vertex(self):
        g = Graph.from_edges([(0, 1), (1, 2)])
        bad = Gadget(
            graph=g,
            cycle_length=3,
            promised_cycles=1,
            answer=0,
            player_lists=(("alice", (0, 1)),),
        )
        assert not partition_is_valid(bad)

    def test_stream_is_model_valid(self, yes_gadget):
        validate_pair_sequence(list(yes_gadget.stream(seed=3).iter_pairs()))

    def test_list_order_follows_players(self, yes_gadget):
        order = yes_gadget.list_order()
        boundaries = []
        idx = 0
        for _, vertices in yes_gadget.player_lists:
            assert order[idx : idx + len(vertices)] == list(vertices)
            idx += len(vertices)
            boundaries.append(idx)
        assert idx == len(order)


class TestProtocolExecution:
    def test_correct_output_both_answers(self, yes_gadget, no_gadget):
        assert run_protocol(ExactCycleCounter(3), yes_gadget).output == 1
        assert run_protocol(ExactCycleCounter(3), no_gadget).output == 0

    def test_one_message_per_boundary_per_round(self, yes_gadget):
        result = run_protocol(ExactCycleCounter(3), yes_gadget)
        # 1 pass, 3 players: 2 internal boundaries (the last player outputs).
        assert len(result.messages) == 2
        assert result.rounds == 1

    def test_multipass_message_count(self, yes_gadget):
        algo = TwoPassTriangleCounter(sample_size=yes_gadget.graph.m, seed=4)
        result = run_protocol(algo, yes_gadget)
        # 2 passes, 3 players: 3 boundaries per full round except the last
        # player of the last round -> 2*3 - 1 = 5 messages.
        assert len(result.messages) == 5
        assert result.rounds == 2

    def test_message_accounting(self, yes_gadget):
        result = run_protocol(ExactCycleCounter(3), yes_gadget)
        assert result.total_words == sum(m.state_words for m in result.messages)
        assert result.max_message_words == max(m.state_words for m in result.messages)
        assert result.total_bytes is not None
        assert result.total_bytes > 0

    def test_senders_and_receivers(self, yes_gadget):
        result = run_protocol(ExactCycleCounter(3), yes_gadget)
        assert [m.sender for m in result.messages] == ["alice", "bob"]
        assert [m.receiver for m in result.messages] == ["bob", "charlie"]

    def test_custom_threshold(self, yes_gadget):
        result = run_protocol(
            ExactCycleCounter(3), yes_gadget, decision_threshold=10**9
        )
        assert result.output == 0  # estimate below the absurd threshold

    def test_exact_counter_message_size_tracks_edges_seen(self, yes_gadget):
        result = run_protocol(ExactCycleCounter(3), yes_gadget)
        # The exact counter stores everything: messages grow monotonically.
        words = [m.state_words for m in result.messages]
        assert words == sorted(words)
        assert words[-1] <= 2 * yes_gadget.graph.m + yes_gadget.graph.n


class TestUnpicklableAlgorithms:
    def test_byte_accounting_degrades_gracefully(self, yes_gadget):
        """Unpicklable state (e.g. closures) yields word counts only."""
        from repro.streaming.algorithm import FixedValueAlgorithm

        algo = FixedValueAlgorithm(yes_gadget.promised_cycles + 1.0)
        algo.hook = lambda: None  # closures cannot be pickled
        result = run_protocol(algo, yes_gadget)
        assert result.output == 1
        assert all(msg.state_bytes is None for msg in result.messages)
        assert result.total_bytes is None
        assert result.total_words == sum(m.state_words for m in result.messages)

    def test_players_property(self, yes_gadget):
        assert yes_gadget.players == ["alice", "bob", "charlie"]
