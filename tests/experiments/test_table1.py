"""Tests for the Table-1 experiment drivers (small configurations)."""

import pytest

from repro.experiments.table1 import (
    distinguisher_rows,
    fourcycle_rows,
    rows_as_dicts,
    scaling_experiment,
    triangle_one_pass_rows,
    triangle_two_pass_rows,
)


class TestTriangleRows:
    def test_two_pass_rows_hit_accuracy(self):
        rows = triangle_two_pass_rows(t_values=(125,), m_target=1200, runs=10, seed=1)
        assert len(rows) == 1
        row = rows[0]
        assert row.m == 1200
        assert row.true_count == 125
        assert row.point.success_rate >= 0.7
        assert row.budget < row.m

    def test_one_pass_rows_hit_accuracy(self):
        rows = triangle_one_pass_rows(t_values=(125,), m_target=1200, runs=10, seed=2)
        assert rows[0].point.success_rate >= 0.7

    def test_rows_as_dicts(self):
        rows = triangle_two_pass_rows(t_values=(64,), m_target=800, runs=4, seed=3)
        dicts = rows_as_dicts(rows)
        assert dicts[0]["T"] == 64
        assert "median_rel_err" in dicts[0]


class TestDistinguisherRows:
    def test_no_false_positives_and_good_detection(self):
        rows = distinguisher_rows(t_values=(125,), m_target=1200, runs=10, seed=4)
        row = rows[0]
        assert row.false_positive_rate == 0.0
        assert row.detect_rate_on_t >= 0.7


class TestFourCycleRows:
    def test_constant_factor_accuracy(self):
        rows = fourcycle_rows(t_values=(256,), m_target=1200, runs=10, seed=5)
        assert rows[0].point.success_rate >= 0.7


class TestScalingExperiment:
    @pytest.mark.slow
    def test_exponents_and_winner(self):
        result = scaling_experiment(
            t_values=(27, 125, 343), m_target=2000, runs=8, seed=6
        )
        assert result is not None
        # Doubling-search resolution is coarse: just require the qualitative
        # shape — both needs decrease with T, and the 2-pass algorithm's
        # need decreases at least as fast as the 1-pass baseline's.
        assert result.two_pass_exponent < 0
        assert result.one_pass_exponent < 0
        assert result.two_pass_budgets[-1] <= result.two_pass_budgets[0]
