"""Tests for the text table renderer."""

from repro.experiments.report import format_table, print_table


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["name", "v"], [["a", 1], ["long-name", 22]])
        lines = text.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        assert len({line.rstrip() and len(line.rstrip()) for line in lines}) >= 1
        assert lines[0].startswith("name")
        assert "long-name" in lines[3]

    def test_title(self):
        text = format_table(["a"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_float_formatting(self):
        text = format_table(["x"], [[0.123456], [12345.6], [0.0001234]])
        assert "0.123" in text
        assert "1.23e+04" in text
        assert "0.000123" in text

    def test_nan(self):
        assert "nan" in format_table(["x"], [[float("nan")]])

    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert len(text.splitlines()) == 2

    def test_print_table_smoke(self, capsys):
        print_table(["col"], [[1]], title="T")
        out = capsys.readouterr().out
        assert "T" in out
        assert "col" in out
