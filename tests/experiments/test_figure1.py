"""Tests for the Figure-1 experiment drivers (small configurations)."""

from repro.experiments.figure1 import (
    panel_a_rows,
    panel_b_rows,
    panel_c_heuristic_failure,
    panel_c_rows,
    panel_d_rows,
    panel_e_rows,
    rows_as_dicts,
)


def _assert_panel_ok(rows):
    assert rows
    for row in rows:
        assert row.structure_ok, f"structure failed: {row}"
        assert row.protocol_correct, f"protocol failed: {row}"
    answers = {row.answer for row in rows}
    assert answers == {0, 1}, "both instance types must be exercised"


class TestPanels:
    def test_panel_a(self):
        rows = panel_a_rows(r_values=(8,), k=4, seed=1)
        _assert_panel_ok(rows)
        # The matching sublinear upper bound must also decide correctly.
        for row in rows:
            assert row.sublinear_output == row.answer

    def test_panel_b(self):
        rows = panel_b_rows(r_values=(6,), k=3, seed=2)
        _assert_panel_ok(rows)
        for row in rows:
            assert row.sublinear_output == row.answer

    def test_panel_c(self):
        rows = panel_c_rows(sides=(7,), k=6, seed=3)
        _assert_panel_ok(rows)
        for row in rows:
            assert row.sublinear_output == row.answer

    def test_panel_d(self):
        rows = panel_d_rows(side_pairs=((7, 7),), seed=4)
        _assert_panel_ok(rows)
        for row in rows:
            assert row.sublinear_output == row.answer

    def test_panel_e(self):
        rows = panel_e_rows(lengths=(5, 6), r=15, cycles=5, seed=5)
        _assert_panel_ok(rows)
        for row in rows:
            assert row.sublinear_output is None  # no sublinear algorithm exists

    def test_rows_as_dicts(self):
        rows = panel_e_rows(lengths=(5,), r=10, cycles=3, seed=6)
        dicts = rows_as_dicts(rows)
        assert dicts[0]["panel"] == "1e"
        assert dicts[0]["sublinear_out"] == "-"


class TestHeuristicFailure:
    def test_detection_rate_monotone_in_space(self):
        rows = panel_c_heuristic_failure(
            side=7, k=4, rates=(0.1, 1.0), trials=12, seed=7
        )
        assert rows[0].detect_rate <= rows[1].detect_rate
        assert rows[1].detect_rate >= 0.9  # Θ(m) space: near-certain detection
        assert rows[0].detect_rate <= 0.5  # sublinear space: unreliable

    def test_space_column_scales_with_rate(self):
        rows = panel_c_heuristic_failure(side=7, k=4, rates=(0.2, 0.8), trials=3, seed=8)
        assert rows[0].expected_space_words < rows[1].expected_space_words
