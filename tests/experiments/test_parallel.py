"""Tests for the parallel trial-execution layer.

The hard requirement: parallel execution must be *bit-identical* to the
historical serial loop for a fixed seed — same estimates, same peaks, same
AccuracyPoints.  Factories used with worker processes live at module level
so they pickle.
"""

import random

import pytest

from repro.core.triangle_two_pass import TwoPassTriangleCounter
from repro.experiments.harness import accuracy_sweep, measure_accuracy
from repro.experiments.parallel import (
    ExecutionConfig,
    TrialExecutor,
    TrialSpec,
    resolve_workers,
    run_trial,
    trial_specs,
)
from repro.util.rng import resolve_rng, spawn_rng


def _two_pass(budget, seed):
    return TwoPassTriangleCounter(sample_size=max(budget, 1), seed=seed)


class TestResolveWorkers:
    def test_none_is_serial(self):
        assert resolve_workers(None) == 1

    def test_zero_means_all_cores(self):
        import os

        assert resolve_workers(0) == (os.cpu_count() or 1)

    def test_positive_passthrough(self):
        assert resolve_workers(3) == 3

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            resolve_workers(-1)


class TestTrialSpecs:
    def test_deterministic_for_seed(self):
        s1 = trial_specs(resolve_rng(9), budget=50, runs=5)
        s2 = trial_specs(resolve_rng(9), budget=50, runs=5)
        assert s1 == s2
        assert [s.index for s in s1] == list(range(5))

    def test_matches_historical_spawn_semantics(self):
        """Specs reproduce the serial loop's spawn_rng(rng, 2i)/(2i+1) draws."""
        specs = trial_specs(resolve_rng(4), budget=10, runs=3)
        rng = resolve_rng(4)
        for i, spec in enumerate(specs):
            legacy_algo = spawn_rng(rng, stream=2 * i)
            legacy_stream = spawn_rng(rng, stream=2 * i + 1)
            assert random.Random(spec.algo_seed).getstate() == legacy_algo.getstate()
            assert random.Random(spec.stream_seed).getstate() == legacy_stream.getstate()


class TestTrialExecutor:
    def test_serial_matches_direct_run(self, triangle_workload):
        g = triangle_workload.graph
        specs = trial_specs(resolve_rng(3), budget=60, runs=3)
        with TrialExecutor(_two_pass, g) as ex:
            results = ex.run(specs)
        direct = [run_trial(_two_pass, g, s) for s in specs]
        assert [(r.index, r.estimate, r.peak_space_words) for r in results] == [
            (r.index, r.estimate, r.peak_space_words) for r in direct
        ]

    def test_parallel_matches_serial(self, triangle_workload):
        g = triangle_workload.graph
        specs = trial_specs(resolve_rng(8), budget=60, runs=4)
        with TrialExecutor(_two_pass, g) as ex_serial:
            serial = ex_serial.run(specs)
        with TrialExecutor(_two_pass, g, ExecutionConfig(workers=2)) as ex_par:
            parallel = ex_par.run(specs)
        assert [(r.index, r.estimate, r.peak_space_words) for r in serial] == [
            (r.index, r.estimate, r.peak_space_words) for r in parallel
        ]

    def test_spec_is_picklable(self):
        import pickle

        spec = TrialSpec(index=0, budget=5, algo_seed=1, stream_seed=2)
        assert pickle.loads(pickle.dumps(spec)) == spec


class TestHarnessParallelDeterminism:
    def test_measure_accuracy_workers4_identical(self, triangle_workload):
        """The satellite regression test: workers=4 == serial, exactly."""
        kwargs = dict(
            graph=triangle_workload.graph,
            truth=triangle_workload.true_count,
            budget=80,
            runs=6,
            seed=7,
        )
        serial = measure_accuracy(_two_pass, **kwargs)
        parallel = measure_accuracy(_two_pass, workers=4, **kwargs)
        assert serial == parallel

    def test_accuracy_sweep_identical(self, triangle_workload):
        kwargs = dict(
            graph=triangle_workload.graph,
            truth=triangle_workload.true_count,
            budgets=[40, 80],
            runs=4,
            seed=5,
        )
        assert accuracy_sweep(_two_pass, **kwargs) == accuracy_sweep(
            _two_pass, workers=2, **kwargs
        )

    def test_workers_zero_resolves_to_cpu_count(self, triangle_workload):
        point = measure_accuracy(
            _two_pass,
            triangle_workload.graph,
            triangle_workload.true_count,
            budget=40,
            runs=2,
            seed=1,
            workers=0,
        )
        assert point.runs == 2
