"""Tests for the experiment sweep harness."""

import pytest

from repro.core.triangle_two_pass import TwoPassTriangleCounter
from repro.experiments.harness import (
    accuracy_sweep,
    measure_accuracy,
    min_budget_for_accuracy,
)
from repro.streaming.algorithm import FixedValueAlgorithm


def _two_pass(budget, seed):
    return TwoPassTriangleCounter(sample_size=max(budget, 1), seed=seed)


class TestMeasureAccuracy:
    def test_perfect_estimator(self, triangle_workload):
        point = measure_accuracy(
            lambda b, s: FixedValueAlgorithm(triangle_workload.true_count),
            triangle_workload.graph,
            triangle_workload.true_count,
            budget=10,
            runs=4,
            seed=1,
        )
        assert point.median_relative_error == 0
        assert point.success_rate == 1.0
        assert point.runs == 4
        assert point.budget == 10

    def test_real_estimator_in_exact_regime(self, triangle_workload):
        g = triangle_workload.graph
        point = measure_accuracy(
            _two_pass,
            g,
            triangle_workload.true_count,
            budget=2 * g.m + 3 * triangle_workload.true_count,
            runs=3,
            seed=2,
        )
        assert point.median_relative_error == 0
        assert point.mean_peak_space_words > 0

    def test_reproducible(self, triangle_workload):
        kwargs = dict(
            graph=triangle_workload.graph,
            truth=triangle_workload.true_count,
            budget=100,
            runs=5,
            seed=7,
        )
        p1 = measure_accuracy(_two_pass, **kwargs)
        p2 = measure_accuracy(_two_pass, **kwargs)
        assert p1 == p2


class TestAccuracySweep:
    def test_error_decreases_with_budget(self, triangle_workload):
        g = triangle_workload.graph
        points = accuracy_sweep(
            _two_pass,
            g,
            triangle_workload.true_count,
            budgets=[30, g.m],
            runs=10,
            seed=3,
        )
        assert len(points) == 2
        assert points[1].median_relative_error <= points[0].median_relative_error


class TestMinBudgetSearch:
    def test_finds_budget(self, triangle_workload):
        budget = min_budget_for_accuracy(
            _two_pass,
            triangle_workload.graph,
            triangle_workload.true_count,
            epsilon=0.5,
            runs=6,
            seed=4,
        )
        assert budget is not None
        assert budget <= 4 * triangle_workload.graph.m

    def test_impossible_target_returns_none(self, triangle_workload):
        budget = min_budget_for_accuracy(
            lambda b, s: FixedValueAlgorithm(0.0),  # always wrong
            triangle_workload.graph,
            triangle_workload.true_count,
            epsilon=0.1,
            runs=2,
            max_budget=64,
            seed=5,
        )
        assert budget is None

    def test_trivial_estimator_start_budget(self, triangle_workload):
        budget = min_budget_for_accuracy(
            lambda b, s: FixedValueAlgorithm(triangle_workload.true_count),
            triangle_workload.graph,
            triangle_workload.true_count,
            runs=2,
            start_budget=8,
            seed=6,
        )
        assert budget == 8
