"""Tests for experiment result persistence."""

import pytest

from repro.experiments.figure1 import PanelRow, panel_e_rows
from repro.experiments.harness import AccuracyPoint
from repro.experiments.persistence import (
    load_metadata,
    load_results,
    record_from_dict,
    record_to_dict,
    save_results,
)
from repro.experiments.table1 import Table1Row
from repro.sketch.checkpoint import CheckpointRecord
from repro.sketch.driver import ShardRunResult


@pytest.fixture()
def accuracy_point():
    return AccuracyPoint(
        budget=100,
        truth=50.0,
        runs=10,
        median_estimate=49.5,
        median_relative_error=0.05,
        success_rate=0.9,
        epsilon=0.5,
        mean_peak_space_words=1234.5,
    )


@pytest.fixture()
def table_row(accuracy_point):
    return Table1Row(
        label="triangle 2-pass (Thm 3.7)",
        m=3000,
        true_count=50,
        budget_rule="6*m/T^(2/3)",
        budget=100,
        point=accuracy_point,
    )


class TestRecordRoundtrip:
    def test_flat_record(self, accuracy_point):
        blob = record_to_dict(accuracy_point)
        assert blob["type"] == "AccuracyPoint"
        assert record_from_dict(blob) == accuracy_point

    def test_nested_record(self, table_row):
        blob = record_to_dict(table_row)
        restored = record_from_dict(blob)
        assert restored == table_row
        assert isinstance(restored.point, AccuracyPoint)

    def test_unsupported_type_rejected(self):
        with pytest.raises(TypeError):
            record_to_dict({"not": "a dataclass"})

    def test_malformed_blob_rejected(self):
        with pytest.raises(ValueError):
            record_from_dict({"nope": 1})
        with pytest.raises(ValueError):
            record_from_dict({"type": "Bogus", "data": {}})


class TestSketchRecords:
    """The sketch subsystem's records are persistence-registered too."""

    def shard_result(self):
        return ShardRunResult(
            estimate=41.5,
            passes=2,
            n_shards=4,
            workers=2,
            strategy="balanced",
            pairs_per_pass=800,
            shard_pairs=[200, 200, 201, 199],
            peak_space_words=512,
            mean_space_words=448.25,
            wall_time_seconds=0.75,
        )

    def test_shard_run_result_roundtrip(self, tmp_path):
        result = self.shard_result()
        blob = record_to_dict(result)
        assert blob["type"] == "ShardRunResult"
        assert record_from_dict(blob) == result
        path = tmp_path / "shard.json"
        save_results([result], path, metadata={"bench": "shard"})
        assert load_results(path) == [result]

    def test_checkpoint_record_roundtrip(self, tmp_path):
        record = CheckpointRecord(
            path="/tmp/run.ckpt",
            algorithm_kind="triangle-two-pass",
            pass_index=1,
            lists_done=700,
            space_words=96,
        )
        assert record_from_dict(record_to_dict(record)) == record
        path = tmp_path / "ckpt.json"
        save_results([record, self.shard_result()], path)
        restored = load_results(path)
        assert restored[0] == record
        assert isinstance(restored[1], ShardRunResult)


class TestFileRoundtrip:
    def test_save_and_load(self, tmp_path, table_row, accuracy_point):
        path = tmp_path / "results.json"
        save_results([table_row, accuracy_point], path, metadata={"seed": 0})
        restored = load_results(path)
        assert restored == [table_row, accuracy_point]
        assert load_metadata(path) == {"seed": 0}

    def test_real_experiment_rows_roundtrip(self, tmp_path):
        rows = panel_e_rows(lengths=(5,), r=8, cycles=3, seed=1)
        path = tmp_path / "panel_e.json"
        save_results(rows, path, metadata={"panel": "1e"})
        restored = load_results(path)
        assert restored == rows
        assert all(isinstance(r, PanelRow) for r in restored)

    def test_empty_results(self, tmp_path):
        path = tmp_path / "empty.json"
        save_results([], path)
        assert load_results(path) == []
        assert load_metadata(path) == {}
