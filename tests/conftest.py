"""Shared fixtures: deterministic workload graphs used across test modules."""

import pytest

from repro.graph.generators import gnm_random_graph
from repro.graph.planted import planted_four_cycles, planted_triangles


@pytest.fixture(scope="session")
def small_random_graph():
    """A fixed 60-vertex, 200-edge random graph."""
    return gnm_random_graph(60, 200, seed=12345)


@pytest.fixture(scope="session")
def triangle_workload():
    """Planted-triangle workload: m = 1200, T = 150 (exactly)."""
    return planted_triangles(750, 150, seed=777)


@pytest.fixture(scope="session")
def fourcycle_workload():
    """Planted-4-cycle workload: m = 1000, T = 100 (exactly)."""
    return planted_four_cycles(600, 100, seed=778)
