"""Tests for the offline H / ρ / T_e oracles (Section 3 quantities)."""

import pytest

from repro.analysis.lightest_edge import (
    h_statistics,
    rho_assignment,
    te_counts,
    te_square_sum,
)
from repro.core.triangle_two_pass import apex, triangle_edges
from repro.graph.counting import count_triangles, enumerate_triangles, triangles_per_edge
from repro.graph.generators import book_graph, complete_graph, gnm_random_graph
from repro.streaming.orderings import sorted_stream
from repro.streaming.stream import AdjacencyListStream


@pytest.fixture()
def stream():
    return AdjacencyListStream(gnm_random_graph(20, 70, seed=1), seed=2)


class TestHStatistics:
    def test_every_triangle_and_edge_covered(self, stream):
        stats = h_statistics(stream)
        triangles = set(enumerate_triangles(stream.graph))
        assert set(stats) == triangles
        for tri, per_edge in stats.items():
            assert set(per_edge) == set(triangle_edges(tri))

    def test_h_bounded_by_edge_load(self, stream):
        stats = h_statistics(stream)
        loads = triangles_per_edge(stream.graph)
        for tri, per_edge in stats.items():
            for edge, h in per_edge.items():
                assert 0 <= h <= loads[edge] - 1  # own triangle never counted

    def test_h_is_a_ranking_per_edge(self, stream):
        """For a fixed edge e, the values H_{e,τ} over τ ∈ L(e) are exactly
        {0, 1, ..., T(e)-1}: each triangle has a distinct apex position."""
        stats = h_statistics(stream)
        by_edge = {}
        for tri, per_edge in stats.items():
            for edge, h in per_edge.items():
                by_edge.setdefault(edge, []).append(h)
        for edge, hs in by_edge.items():
            assert sorted(hs) == list(range(len(hs)))

    def test_brute_force_cross_check(self):
        g = complete_graph(5)
        stream = sorted_stream(g)
        stats = h_statistics(stream)
        for tri, per_edge in stats.items():
            for edge, h in per_edge.items():
                my_pos = stream.position(apex(tri, edge))
                expected = 0
                for other in enumerate_triangles(g):
                    if other == tri:
                        continue
                    if edge in triangle_edges(other):
                        if stream.position(apex(other, edge)) > my_pos:
                            expected += 1
                assert h == expected


class TestRhoAssignment:
    def test_rho_is_an_edge_of_the_triangle(self, stream):
        for tri, edge in rho_assignment(stream).items():
            assert edge in triangle_edges(tri)

    def test_rho_minimises_h(self, stream):
        stats = h_statistics(stream)
        for tri, edge in rho_assignment(stream).items():
            assert stats[tri][edge] == min(stats[tri].values())

    def test_book_graph_spine_rarely_chosen(self):
        """On the book graph the spine edge is in every triangle; ρ assigns
        each triangle to one of its two light edges except for at most one
        triangle (the last in stream order)."""
        g = book_graph(12)
        stream = AdjacencyListStream(g, seed=5)
        spine_assigned = sum(
            1 for edge in rho_assignment(stream).values() if edge == (0, 1)
        )
        assert spine_assigned <= 1


class TestTeCounts:
    def test_sums_to_t(self, stream):
        assert sum(te_counts(stream).values()) == count_triangles(stream.graph)

    def test_square_sum_consistency(self, stream):
        counts = te_counts(stream)
        assert te_square_sum(stream) == sum(c * c for c in counts.values())

    def test_book_square_sum_much_smaller_than_naive(self):
        """Lemma 3.2's point: Σ T_e² under ρ is far below Σ T(e)² (which the
        naive estimator pays) on heavy-edge graphs."""
        g = book_graph(30)
        stream = AdjacencyListStream(g, seed=6)
        rho_sum = te_square_sum(stream)
        naive_sum = sum(c * c for c in triangles_per_edge(g).values())
        assert rho_sum < naive_sum / 5
