"""Tests for the Definition 4.1 heaviness classification."""

import pytest

from repro.analysis.heaviness import (
    classify,
    cycle_edge_loads,
    cycle_wedge_loads,
    cycles_with_all_overused_wedges,
    cycles_with_at_most_one_heavy_edge,
)
from repro.graph.counting import count_four_cycles, four_cycles_per_edge
from repro.graph.generators import (
    complete_bipartite,
    cycle_graph,
    gnm_random_graph,
    random_forest,
    theta_graph,
)
from repro.graph.wedges import four_cycles_per_wedge


class TestLoadTables:
    def test_edge_loads_match_counting_module(self):
        g = gnm_random_graph(20, 70, seed=1)
        sparse = cycle_edge_loads(g)
        full = four_cycles_per_edge(g)
        for edge, load in full.items():
            assert sparse.get(edge, 0) == load

    def test_wedge_loads_match_counting_module(self):
        g = gnm_random_graph(15, 50, seed=2)
        sparse = cycle_wedge_loads(g)
        full = four_cycles_per_wedge(g)
        for wedge, load in full.items():
            assert sparse.get(wedge, 0) == load

    def test_load_sums(self):
        g = complete_bipartite(4, 4)
        t = count_four_cycles(g)
        assert sum(cycle_edge_loads(g).values()) == 4 * t
        assert sum(cycle_wedge_loads(g).values()) == 4 * t


class TestClassification:
    def test_cycle_free_graph(self):
        g = random_forest(30, 20, seed=3)
        report = classify(g)
        assert report.cycle_count == 0
        assert report.good_fraction == 1.0
        assert not report.heavy_edges

    def test_single_cycle_all_good(self):
        report = classify(cycle_graph(4))
        assert report.cycle_count == 1
        assert report.good_cycle_count == 1

    def test_low_constant_marks_theta_heavy(self):
        # With the definition constant lowered, the theta graph's shared
        # hub edges become heavy and its hub wedges overused.
        g = theta_graph(10)
        report = classify(g, constant=0.5)
        assert report.heavy_edges
        assert report.bad_wedges

    def test_default_constant_keeps_small_graphs_good(self):
        g = gnm_random_graph(25, 80, seed=4)
        report = classify(g)
        # 40·sqrt(T) exceeds any load on a small graph: everything good.
        assert report.good_fraction == 1.0

    def test_heavy_edges_have_heavy_loads(self):
        g = theta_graph(12)
        report = classify(g, constant=0.2)
        loads = cycle_edge_loads(g)
        for edge in report.heavy_edges:
            assert loads[edge] >= report.heavy_edge_threshold


class TestLemmaHelpers:
    def test_at_most_one_heavy_edge_counts_everything_when_no_heavy(self):
        g = gnm_random_graph(20, 60, seed=5)
        assert cycles_with_at_most_one_heavy_edge(g) == count_four_cycles(g)

    def test_all_overused_is_zero_when_no_overused(self):
        g = gnm_random_graph(20, 60, seed=6)
        assert cycles_with_all_overused_wedges(g) == 0

    def test_tiny_constant_flips_both(self):
        g = complete_bipartite(5, 5)
        t = count_four_cycles(g)
        assert cycles_with_all_overused_wedges(g, constant=0.0) == t
        # With every edge heavy, no cycle has <= 1 heavy edge.
        assert cycles_with_at_most_one_heavy_edge(g, constant=0.0) == 0
