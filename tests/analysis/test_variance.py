"""Tests for the estimator variance profiler."""

import pytest

from repro.analysis.variance import compare_estimators, profile_estimator
from repro.baselines.naive_sampling import NaiveSamplingTriangleCounter
from repro.core.triangle_two_pass import TwoPassTriangleCounter
from repro.graph.counting import count_triangles
from repro.graph.planted import planted_triangles, planted_triangles_book
from repro.streaming.algorithm import FixedValueAlgorithm
from repro.streaming.stream import AdjacencyListStream


class TestProfileEstimator:
    def test_fixed_value_profile(self, triangle_workload):
        profile = profile_estimator(
            lambda s: FixedValueAlgorithm(triangle_workload.true_count),
            triangle_workload.graph,
            triangle_workload.true_count,
            runs=5,
            seed=1,
        )
        assert profile.errors.median_relative_error == 0
        assert profile.relative_stddev == 0
        assert len(profile.estimates) == 5

    def test_space_profiling(self, triangle_workload):
        g = triangle_workload.graph
        profile = profile_estimator(
            lambda s: TwoPassTriangleCounter(sample_size=100, seed=s),
            g,
            triangle_workload.true_count,
            runs=4,
            seed=2,
        )
        assert profile.mean_peak_space_words > 100

    def test_seed_reproducibility(self, triangle_workload):
        def run():
            return profile_estimator(
                lambda s: TwoPassTriangleCounter(sample_size=80, seed=s),
                triangle_workload.graph,
                triangle_workload.true_count,
                runs=5,
                seed=42,
            ).estimates

        assert run() == run()

    def test_fixed_stream_pins_ordering(self, triangle_workload):
        g = triangle_workload.graph
        stream = AdjacencyListStream(g, seed=3)
        profile = profile_estimator(
            lambda s: TwoPassTriangleCounter(sample_size=2 * g.m + 1000, seed=s),
            g,
            triangle_workload.true_count,
            runs=3,
            seed=4,
            fixed_stream=stream,
        )
        # Exact regime + fixed stream: all runs identical and exact.
        assert set(profile.estimates) == {float(triangle_workload.true_count)}

    def test_requires_runs(self, triangle_workload):
        with pytest.raises(ValueError):
            profile_estimator(
                lambda s: FixedValueAlgorithm(0.0),
                triangle_workload.graph,
                1.0,
                runs=0,
            )


class TestCompareEstimators:
    def test_heavy_edge_ablation(self):
        """The paper's Section 2.1 claim, as an assertion: on heavy-edge
        graphs the lightest-edge rule beats naive sampling's spread."""
        planted = planted_triangles_book(400, 200, seed=5)
        g = planted.graph
        truth = count_triangles(g)
        budget = g.m // 6
        profiles = compare_estimators(
            {
                "naive": lambda s: NaiveSamplingTriangleCounter(budget, seed=s),
                "lightest_edge": lambda s: TwoPassTriangleCounter(budget, seed=s),
            },
            g,
            truth,
            runs=25,
            seed=6,
        )
        assert profiles["lightest_edge"].relative_stddev < profiles["naive"].relative_stddev

    def test_light_workload_both_fine(self):
        planted = planted_triangles(500, 100, seed=7)
        profiles = compare_estimators(
            {
                "naive": lambda s: NaiveSamplingTriangleCounter(300, seed=s),
                "lightest_edge": lambda s: TwoPassTriangleCounter(300, seed=s),
            },
            planted.graph,
            planted.true_count,
            runs=15,
            seed=8,
        )
        for profile in profiles.values():
            assert profile.errors.median_relative_error < 0.5


class TestPredictedVariance:
    """§2.1's variance formula, cross-validated against measurement."""

    def test_prediction_matches_empirical_on_heavy_graph(self):
        planted = planted_triangles_book(400, 200, seed=9)
        g = planted.graph
        budget = g.m // 6
        from repro.analysis.variance import predicted_naive_relative_sd

        predicted = predicted_naive_relative_sd(g, budget)
        profile = profile_estimator(
            lambda s: NaiveSamplingTriangleCounter(budget, seed=s),
            g,
            count_triangles(g),
            runs=40,
            seed=10,
        )
        measured = profile.relative_stddev
        assert predicted / 2.5 <= measured <= predicted * 2.5

    def test_prediction_orders_workloads(self):
        from repro.analysis.variance import predicted_naive_relative_sd

        light = planted_triangles(400, 200, seed=11).graph
        heavy = planted_triangles_book(400, 200, seed=12).graph
        budget = 100
        assert predicted_naive_relative_sd(heavy, budget) > 3 * (
            predicted_naive_relative_sd(light, budget)
        )

    def test_full_sample_has_zero_predicted_spread(self):
        g = planted_triangles(100, 10, seed=13).graph
        from repro.analysis.variance import predicted_naive_relative_sd

        assert predicted_naive_relative_sd(g, 2 * g.m) == 0.0

    def test_triangle_free_graph(self):
        from repro.analysis.variance import predicted_naive_relative_sd
        from repro.graph.generators import random_bipartite_graph

        g = random_bipartite_graph(20, 20, 60, seed=14)
        assert predicted_naive_relative_sd(g, 10) == 0.0

    def test_invalid_sample_size(self):
        from repro.analysis.variance import predicted_naive_relative_sd

        g = planted_triangles(50, 5, seed=15).graph
        with pytest.raises(ValueError):
            predicted_naive_relative_sd(g, 0)
