"""The paper's combinatorial lemmas, checked on benign and adversarial graphs."""

import pytest

from repro.analysis.lemmas import (
    LemmaCheck,
    check_lemma_3_2,
    check_lemma_4_2,
    check_lemma_a_1,
    check_lemma_a_2,
    check_lemma_a_3,
    check_max_triangles_bound,
    check_triangle_edge_bound,
    run_all_checks,
)
from repro.graph.generators import (
    book_graph,
    complete_bipartite,
    complete_graph,
    gnm_random_graph,
    theta_graph,
    windmill_graph,
)
from repro.graph.planted import (
    planted_four_cycle_grid,
    planted_four_cycles_theta,
    planted_triangles_book,
)
from repro.streaming.stream import AdjacencyListStream

ADVERSARIAL_GRAPHS = [
    book_graph(25),
    windmill_graph(15),
    theta_graph(12),
    complete_graph(9),
    complete_bipartite(6, 6),
    gnm_random_graph(30, 140, seed=1),
    planted_triangles_book(100, 60, seed=2).graph,
    planted_four_cycles_theta(80, 10, seed=3).graph,
    planted_four_cycle_grid(50, 4, 5, seed=4).graph,
]


class TestLemmaCheckType:
    def test_holds_le(self):
        assert LemmaCheck("x", 1, 2, "<=").holds
        assert not LemmaCheck("x", 3, 2, "<=").holds

    def test_holds_ge(self):
        assert LemmaCheck("x", 3, 2, ">=").holds

    def test_slack(self):
        assert LemmaCheck("x", 1, 4, "<=").slack == 4
        assert LemmaCheck("x", 4, 1, ">=").slack == 4
        assert LemmaCheck("x", 0, 1, "<=").slack == float("inf")


@pytest.mark.parametrize("graph", ADVERSARIAL_GRAPHS, ids=range(len(ADVERSARIAL_GRAPHS)))
class TestLemmasOnAdversarialGraphs:
    def test_lemma_3_2(self, graph):
        for seed in (0, 1):
            check = check_lemma_3_2(AdjacencyListStream(graph, seed=seed))
            assert check.holds, f"Σ T_e² = {check.lhs} > {check.rhs}"

    def test_lemma_4_2(self, graph):
        assert check_lemma_4_2(graph).holds

    def test_lemma_a_1(self, graph):
        assert check_lemma_a_1(graph).holds

    def test_lemma_a_2(self, graph):
        assert check_lemma_a_2(graph).holds

    def test_lemma_a_3(self, graph):
        assert check_lemma_a_3(graph).holds

    def test_triangle_edge_bound(self, graph):
        assert check_triangle_edge_bound(graph).holds

    def test_max_triangles_bound(self, graph):
        assert check_max_triangles_bound(graph).holds


class TestRunAll:
    def test_all_checks_returned_and_hold(self):
        checks = run_all_checks(gnm_random_graph(25, 100, seed=5))
        assert len(checks) == 7
        names = {c.name for c in checks}
        assert names == {
            "lemma_3_2",
            "lemma_4_2",
            "lemma_a_1",
            "lemma_a_2",
            "lemma_a_3",
            "triangle_edge_bound",
            "max_triangles_bound",
        }
        assert all(c.holds for c in checks)


class TestTightness:
    def test_lemma_3_2_nontrivial_on_dense_graph(self):
        """On K_n the bound is within a constant: Σ T_e² = Θ(T^{4/3})."""
        check = check_lemma_3_2(AdjacencyListStream(complete_graph(10), seed=6))
        assert check.holds
        assert check.slack < 60  # genuinely exercised, not vacuous

    def test_max_triangle_bound_tight_on_complete_graph(self):
        check = check_max_triangles_bound(complete_graph(12))
        assert check.holds
        assert check.slack < 5
