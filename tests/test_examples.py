"""Every example script must run cleanly and produce sane output."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLE_SCRIPTS = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    names = {p.name for p in EXAMPLE_SCRIPTS}
    assert "quickstart.py" in names
    assert len(EXAMPLE_SCRIPTS) >= 3


@pytest.mark.parametrize("script", EXAMPLE_SCRIPTS, ids=lambda p: p.name)
def test_example_runs(script, capsys):
    runpy.run_path(str(script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script.name} produced no output"


def test_quickstart_reports_accuracy(capsys):
    runpy.run_path(str(EXAMPLES_DIR / "quickstart.py"), run_name="__main__")
    out = capsys.readouterr().out
    assert "rel error" in out
    # Parse the reported relative error and require the theorem's target.
    line = next(l for l in out.splitlines() if l.startswith("rel error"))
    value = float(line.split("=")[1].split("(")[0])
    assert value < 0.5


def test_lower_bound_demo_all_ok(capsys):
    runpy.run_path(str(EXAMPLES_DIR / "lower_bound_demo.py"), run_name="__main__")
    out = capsys.readouterr().out
    assert "[WRONG]" not in out
    assert out.count("[OK]") >= 14  # 2+2+2+2+6 gadget runs
