"""Tests for the central algorithm registry."""

import pytest

from repro.streaming import registry
from repro.streaming.algorithm import StreamingAlgorithm


def test_names_are_sorted_and_unique():
    names = registry.algorithm_names()
    assert names == sorted(names)
    assert len(names) == len(set(names))
    assert "triangle-two-pass" in names and "fourcycle-two-pass" in names


def test_every_spec_builds_a_matching_algorithm():
    for spec in registry.iter_specs():
        algorithm = spec.make(8, seed=0)
        assert isinstance(algorithm, StreamingAlgorithm)
        assert algorithm.n_passes == spec.n_passes
        assert spec.cycle_length in (3, 4)
        assert spec.summary


def test_builds_are_deterministic_given_seed():
    for spec in registry.iter_specs():
        a = spec.make(8, seed=42)
        b = spec.make(8, seed=42)
        assert type(a) is type(b)


def test_get_unknown_name_lists_known():
    with pytest.raises(KeyError, match="triangle-two-pass"):
        registry.get("no-such-algorithm")


def test_duplicate_registration_rejected():
    spec = registry.get("triangle-two-pass")
    with pytest.raises(ValueError, match="already registered"):
        registry.register(spec)


def test_rate_from_budget_clamps():
    assert registry.rate_from_budget(0) == pytest.approx(0.001)
    assert registry.rate_from_budget(500) == pytest.approx(0.5)
    assert registry.rate_from_budget(10_000) == 1.0
