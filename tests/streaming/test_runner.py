"""Tests for the multi-pass runner, the algorithm interface and SpaceMeter."""

import pytest

from repro.core.fourcycle_two_pass import TwoPassFourCycleCounter
from repro.core.triangle_two_pass import TwoPassTriangleCounter
from repro.graph.generators import gnm_random_graph
from repro.streaming.algorithm import FixedValueAlgorithm, StreamingAlgorithm
from repro.streaming.runner import run_algorithm, supports_list_dispatch
from repro.streaming.space import SpaceMeter
from repro.streaming.stream import AdjacencyListStream


class CallRecorder(StreamingAlgorithm):
    """Records every callback, to verify the runner's contract."""

    def __init__(self, passes=2):
        self.n_passes = passes
        self.events = []

    def begin_pass(self, pass_index):
        self.events.append(("begin_pass", pass_index))

    def begin_list(self, vertex):
        self.events.append(("begin_list", vertex))

    def process(self, source, neighbor):
        self.events.append(("pair", source, neighbor))

    def end_list(self, vertex, neighbors):
        self.events.append(("end_list", vertex, tuple(neighbors)))

    def end_pass(self, pass_index):
        self.events.append(("end_pass", pass_index))

    def result(self):
        return 42.0

    def space_words(self):
        return 7


@pytest.fixture()
def stream():
    return AdjacencyListStream(gnm_random_graph(10, 20, seed=1), seed=2)


class TestRunnerContract:
    def test_pass_count(self, stream):
        algo = CallRecorder(passes=3)
        result = run_algorithm(algo, stream)
        begins = [e for e in algo.events if e[0] == "begin_pass"]
        ends = [e for e in algo.events if e[0] == "end_pass"]
        assert begins == [("begin_pass", i) for i in range(3)]
        assert ends == [("end_pass", i) for i in range(3)]
        assert result.passes == 3

    def test_pairs_delivered_in_order(self, stream):
        algo = CallRecorder(passes=1)
        run_algorithm(algo, stream)
        pairs = [(e[1], e[2]) for e in algo.events if e[0] == "pair"]
        assert pairs == list(stream.iter_pairs())

    def test_each_pass_identical(self, stream):
        algo = CallRecorder(passes=2)
        run_algorithm(algo, stream)
        pairs = [(e[1], e[2]) for e in algo.events if e[0] == "pair"]
        half = len(pairs) // 2
        assert pairs[:half] == pairs[half:]

    def test_list_boundaries_bracket_pairs(self, stream):
        algo = CallRecorder(passes=1)
        run_algorithm(algo, stream)
        current = None
        for event in algo.events:
            if event[0] == "begin_list":
                current = event[1]
            elif event[0] == "pair":
                assert event[1] == current
            elif event[0] == "end_list":
                assert event[1] == current

    def test_end_list_receives_full_neighborhood(self, stream):
        algo = CallRecorder(passes=1)
        run_algorithm(algo, stream)
        for event in algo.events:
            if event[0] == "end_list":
                v, nbrs = event[1], event[2]
                assert set(nbrs) == stream.graph.neighbors(v)

    def test_result_and_space(self, stream):
        result = run_algorithm(CallRecorder(), stream)
        assert result.estimate == 42.0
        assert result.peak_space_words == 7
        assert result.pairs_per_pass == len(stream)

    def test_fixed_value_algorithm(self, stream):
        result = run_algorithm(FixedValueAlgorithm(3.5), stream)
        assert result.estimate == 3.5
        assert result.peak_space_words == 1


class ListLevelRecorder(StreamingAlgorithm):
    """Overrides process_list only; eligible for batched dispatch."""

    n_passes = 1

    def __init__(self):
        self.batches = []

    def process_list(self, source, neighbors):
        self.batches.append((source, tuple(neighbors)))

    def result(self):
        return float(len(self.batches))

    def space_words(self):
        return 1


class TestFastPath:
    def test_detection(self):
        assert supports_list_dispatch(FixedValueAlgorithm(1.0))  # no overrides
        assert supports_list_dispatch(ListLevelRecorder())  # batch override
        assert supports_list_dispatch(TwoPassTriangleCounter(8, seed=0))
        assert supports_list_dispatch(TwoPassFourCycleCounter(8, seed=0))
        assert not supports_list_dispatch(CallRecorder())  # per-pair override

    def test_auto_dispatch_recorded_in_result(self, stream):
        assert run_algorithm(FixedValueAlgorithm(1.0), stream).used_fast_path
        assert not run_algorithm(CallRecorder(passes=1), stream).used_fast_path

    def test_batch_algorithm_sees_every_list(self, stream):
        algo = ListLevelRecorder()
        run_algorithm(algo, stream)
        assert algo.batches == list(stream.iter_lists())

    @pytest.mark.parametrize(
        "make",
        [
            lambda: TwoPassTriangleCounter(sample_size=48, seed=21),
            lambda: TwoPassFourCycleCounter(sample_size=48, seed=21),
        ],
        ids=["triangle-two-pass", "fourcycle-two-pass"],
    )
    def test_fast_path_bit_identical(self, make):
        """Satellite regression: batched and per-pair paths agree exactly."""
        graph = gnm_random_graph(40, 160, seed=6)
        stream = AdjacencyListStream(graph, seed=7)
        fast = run_algorithm(make(), stream, use_fast_path=True)
        slow = run_algorithm(make(), stream, use_fast_path=False)
        assert fast.used_fast_path and not slow.used_fast_path
        assert fast.estimate == slow.estimate
        assert fast.peak_space_words == slow.peak_space_words
        assert fast.mean_space_words == slow.mean_space_words

    def test_timing_fields_populated(self, stream):
        result = run_algorithm(CallRecorder(passes=1), stream)
        assert result.wall_time_seconds > 0
        assert result.pairs_per_second > 0


class TestSpacePollInterval:
    def test_sparse_polling_observes_fewer_samples(self, stream):
        dense, sparse = SpaceMeter(), SpaceMeter()
        run_algorithm(CallRecorder(passes=1), stream, meter=dense)
        run_algorithm(CallRecorder(passes=1), stream, meter=sparse,
                      space_poll_interval=4)
        assert len(sparse._samples) < len(dense._samples)
        # Constant-space algorithm: the peak survives sparse polling.
        assert sparse.peak_words == dense.peak_words == 7

    def test_end_of_pass_always_polled(self, stream):
        meter = SpaceMeter()
        result = run_algorithm(CallRecorder(passes=2), stream, meter=meter,
                               space_poll_interval=10**9)
        assert len(meter._samples) == 2  # once per pass
        assert result.peak_space_words == 7

    def test_invalid_interval_rejected(self, stream):
        with pytest.raises(ValueError):
            run_algorithm(FixedValueAlgorithm(1.0), stream, space_poll_interval=0)


class TestSpaceMeter:
    def test_peak_tracking(self):
        meter = SpaceMeter()
        for words in (3, 10, 5):
            meter.observe(words)
        assert meter.peak_words == 10
        assert meter.current_words == 5

    def test_mean(self):
        meter = SpaceMeter()
        for words in (2, 4, 6):
            meter.observe(words)
        assert meter.mean_words == 4

    def test_mean_empty(self):
        assert SpaceMeter().mean_words == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            SpaceMeter().observe(-1)

    def test_reset(self):
        meter = SpaceMeter()
        meter.observe(9)
        meter.reset()
        assert meter.peak_words == 0
        assert meter.mean_words == 0.0

    def test_external_meter_is_populated(self, stream):
        meter = SpaceMeter()
        run_algorithm(CallRecorder(passes=1), stream, meter=meter)
        assert meter.peak_words == 7
