"""Tests for adjacency-list streams and the model's promise validation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.generators import cycle_graph, gnm_random_graph, star_graph
from repro.graph.graph import Graph
from repro.streaming.stream import (
    AdjacencyListStream,
    PairSequenceValidator,
    StreamFormatError,
    validate_pair_sequence,
)


class TestStreamBasics:
    def test_pair_count_is_2m(self, small_random_graph):
        s = AdjacencyListStream(small_random_graph, seed=1)
        assert len(s) == 2 * small_random_graph.m
        assert sum(1 for _ in s.iter_pairs()) == 2 * small_random_graph.m

    def test_every_edge_appears_twice(self, small_random_graph):
        s = AdjacencyListStream(small_random_graph, seed=2)
        from collections import Counter

        counts = Counter(tuple(sorted(p)) for p in s.iter_pairs())
        assert all(c == 2 for c in counts.values())
        assert len(counts) == small_random_graph.m

    def test_replay_is_identical(self, small_random_graph):
        s = AdjacencyListStream(small_random_graph, seed=3)
        assert list(s.iter_pairs()) == list(s.iter_pairs())
        assert list(s.iter_lists()) == list(s.iter_lists())

    def test_all_lists_present(self, small_random_graph):
        s = AdjacencyListStream(small_random_graph, seed=4)
        seen = [v for v, _ in s.iter_lists()]
        assert sorted(seen) == sorted(small_random_graph.vertices())

    def test_positions_match_order(self, small_random_graph):
        s = AdjacencyListStream(small_random_graph, seed=5)
        for i, v in enumerate(s.list_order):
            assert s.position(v) == i

    def test_lists_contain_exact_neighbourhoods(self, small_random_graph):
        s = AdjacencyListStream(small_random_graph, seed=6)
        for v, nbrs in s.iter_lists():
            assert set(nbrs) == small_random_graph.neighbors(v)
            assert len(nbrs) == small_random_graph.degree(v)


class TestExplicitOrders:
    def test_custom_list_order(self):
        g = cycle_graph(5)
        order = [3, 1, 4, 0, 2]
        s = AdjacencyListStream(g, list_order=order, seed=1)
        assert s.list_order == order

    def test_invalid_permutation_rejected(self):
        g = cycle_graph(4)
        with pytest.raises(ValueError):
            AdjacencyListStream(g, list_order=[0, 1, 2])
        with pytest.raises(ValueError):
            AdjacencyListStream(g, list_order=[0, 1, 2, 2])

    def test_custom_neighbor_orders(self):
        g = star_graph(4)
        s = AdjacencyListStream(
            g, list_order=[0, 1, 2, 3, 4], neighbor_orders={0: [4, 3, 2, 1]}, seed=1
        )
        assert s.neighbors_in_order(0) == (4, 3, 2, 1)

    def test_wrong_neighbor_order_rejected(self):
        g = star_graph(3)
        with pytest.raises(ValueError):
            AdjacencyListStream(g, neighbor_orders={0: [1, 2]}, seed=1)

    def test_seed_determinism(self):
        g = gnm_random_graph(20, 40, seed=7)
        s1 = AdjacencyListStream(g, seed=42)
        s2 = AdjacencyListStream(g, seed=42)
        assert list(s1.iter_pairs()) == list(s2.iter_pairs())

    def test_reordered_changes_order(self):
        g = gnm_random_graph(20, 40, seed=8)
        s1 = AdjacencyListStream(g, seed=1)
        s2 = s1.reordered(seed=2)
        assert list(s1.iter_pairs()) != list(s2.iter_pairs())
        assert s2.graph is g


class TestValidation:
    def test_valid_stream_passes(self, small_random_graph):
        s = AdjacencyListStream(small_random_graph, seed=9)
        validate_pair_sequence(list(s.iter_pairs()))

    def test_self_loop_rejected(self):
        with pytest.raises(StreamFormatError, match="self loop"):
            validate_pair_sequence([(1, 1)])

    def test_non_contiguous_list_rejected(self):
        pairs = [(0, 1), (1, 0), (0, 2), (2, 0)]
        with pytest.raises(StreamFormatError, match="not contiguous"):
            validate_pair_sequence(pairs)

    def test_missing_reverse_rejected(self):
        with pytest.raises(StreamFormatError, match="reverse"):
            validate_pair_sequence([(0, 1)])

    def test_duplicate_pair_rejected(self):
        with pytest.raises(StreamFormatError, match="duplicate"):
            validate_pair_sequence([(0, 1), (0, 1), (1, 0)])

    def test_empty_stream_is_valid(self):
        summary = validate_pair_sequence([])
        assert (summary.pairs, summary.lists, summary.edges) == (0, 0, 0)

    def test_summary_counts_final_list(self):
        """The last list is only closed implicitly (no transition follows);
        the summary must still count it."""
        pairs = [(0, 1), (1, 0)]
        summary = validate_pair_sequence(pairs)
        assert summary.lists == 2  # list of vertex 1 never sees a transition
        assert summary.pairs == 2
        assert summary.edges == 1

    def test_summary_on_longer_stream(self, small_random_graph):
        s = AdjacencyListStream(small_random_graph, seed=11)
        summary = validate_pair_sequence(list(s.iter_pairs()))
        assert summary.pairs == 2 * small_random_graph.m
        assert summary.edges == small_random_graph.m
        # Only vertices with at least one neighbour emit pairs.
        nonempty = sum(1 for v in small_random_graph.vertices()
                       if small_random_graph.degree(v) > 0)
        assert summary.lists == nonempty

    def test_error_messages_carry_position_context(self):
        with pytest.raises(StreamFormatError, match=r"pair #2"):
            validate_pair_sequence([(0, 1), (1, 0), (0, 2), (2, 0)])
        with pytest.raises(StreamFormatError, match=r"pair #1"):
            validate_pair_sequence([(0, 1), (0, 1), (1, 0)])
        with pytest.raises(StreamFormatError, match=r"pair #0"):
            validate_pair_sequence([(1, 1)])

    def test_duplicate_in_final_unclosed_list(self):
        """A violation inside the never-closed last list is still caught."""
        pairs = [(0, 1), (1, 0), (1, 0)]
        with pytest.raises(StreamFormatError, match="duplicate"):
            validate_pair_sequence(pairs)


class TestIncrementalValidator:
    """The chunked validator behind both ``cmd_validate`` and the server."""

    def test_chunked_feed_matches_one_shot(self, small_random_graph):
        s = AdjacencyListStream(small_random_graph, seed=6)
        pairs = list(s.iter_pairs())
        one_shot = validate_pair_sequence(pairs)
        for chunk in (1, 3, 7, len(pairs)):
            validator = PairSequenceValidator()
            for i in range(0, len(pairs), chunk):
                validator.feed(pairs[i : i + chunk])
            assert validator.finish() == one_shot

    def test_partial_summary_counts_open_list(self):
        validator = PairSequenceValidator()
        validator.feed([(0, 1), (0, 2), (1, 0)])
        partial = validator.partial_summary()
        assert partial.pairs == 3
        assert partial.lists == 2  # list 1 is open but counted
        assert partial.edges == 1  # only (0,1)/(1,0) completed so far
        assert partial.max_list_length == 2
        assert validator.current_list == 1

    def test_violation_reports_absolute_position(self):
        validator = PairSequenceValidator()
        validator.feed([(0, 1), (0, 2)])
        with pytest.raises(StreamFormatError, match="pair #2"):
            validator.feed([(0, 1)])

    def test_check_reverse_false_allows_shard_slices(self):
        validator = PairSequenceValidator(check_reverse=False)
        validator.feed([(0, 1), (0, 2)])  # reverses live in other shards
        assert validator.finish().pairs == 2

    def test_state_dict_round_trip_mid_list(self, small_random_graph):
        s = AdjacencyListStream(small_random_graph, seed=6)
        pairs = list(s.iter_pairs())
        cut = len(pairs) // 2 + 1  # odd offset: snapshot inside an open list
        original = PairSequenceValidator()
        original.feed(pairs[:cut])
        resumed = PairSequenceValidator()
        resumed.load_state_dict(original.state_dict())
        assert resumed.pairs_seen == original.pairs_seen
        assert resumed.current_list == original.current_list
        resumed.feed(pairs[cut:])
        assert resumed.finish() == validate_pair_sequence(pairs)

    def test_restored_validator_still_rejects(self):
        original = PairSequenceValidator()
        original.feed([(0, 1), (1, 0)])
        resumed = PairSequenceValidator()
        resumed.load_state_dict(original.state_dict())
        with pytest.raises(StreamFormatError, match="not contiguous"):
            resumed.feed([(0, 2)])

    def test_finish_is_idempotent(self):
        validator = PairSequenceValidator()
        validator.feed([(0, 1), (1, 0)])
        assert validator.finish() == validator.finish()
        with pytest.raises(StreamFormatError, match="finished"):
            validator.feed_pair(2, 3)


class TestFromPairs:
    def test_roundtrip(self, small_random_graph):
        s = AdjacencyListStream(small_random_graph, seed=10)
        pairs = list(s.iter_pairs())
        rebuilt = AdjacencyListStream.from_pairs(pairs)
        assert list(rebuilt.iter_pairs()) == pairs
        assert sorted(rebuilt.graph.edges()) == sorted(small_random_graph.edges())

    def test_invalid_pairs_rejected(self):
        with pytest.raises(StreamFormatError):
            AdjacencyListStream.from_pairs([(0, 1)])

    def test_paper_example(self):
        """The introduction's example stream for a triangle on v1, v2, v3."""
        pairs = [
            ("v3", "v1"), ("v3", "v2"),
            ("v1", "v2"), ("v1", "v3"),
            ("v2", "v3"), ("v2", "v1"),
        ]
        s = AdjacencyListStream.from_pairs(pairs)
        assert s.graph.m == 3
        assert s.list_order == ["v3", "v1", "v2"]


@given(
    n=st.integers(2, 15),
    m_frac=st.floats(0.1, 0.9),
    seed=st.integers(0, 10**6),
)
@settings(max_examples=40, deadline=None)
def test_any_generated_stream_is_model_valid(n, m_frac, seed):
    g = gnm_random_graph(n, int(m_frac * n * (n - 1) // 2), seed=seed)
    s = AdjacencyListStream(g, seed=seed)
    validate_pair_sequence(list(s.iter_pairs()))
