"""Property tests for the ordering strategies.

Two invariants every named ordering must satisfy, for every graph:

* **permutation** — the emitted pair sequence is a permutation of the
  canonical (sorted) stream's pairs, and the list order is a permutation
  of the vertex set;
* **determinism** — the same ``(graph, seed)`` always yields the same
  stream, pair for pair.
"""

from collections import Counter

from hypothesis import given, settings, strategies as st

from repro.graph.generators import gnm_random_graph
from repro.streaming.orderings import ORDERING_FACTORIES, sorted_stream


def _graph(n, density, seed):
    max_edges = n * (n - 1) // 2
    return gnm_random_graph(n, int(density * max_edges), seed=seed)


graphs = st.builds(
    _graph,
    n=st.integers(min_value=3, max_value=12),
    density=st.floats(min_value=0.1, max_value=0.9),
    seed=st.integers(min_value=0, max_value=2**32),
)


@settings(max_examples=25, deadline=None)
@given(graph=graphs, seed=st.integers(min_value=0, max_value=2**31))
def test_every_ordering_is_a_permutation_of_the_canonical_stream(graph, seed):
    canonical = Counter(sorted_stream(graph).iter_pairs())
    for name, factory in sorted(ORDERING_FACTORIES.items()):
        stream = factory(graph, seed=seed)
        assert Counter(stream.iter_pairs()) == canonical, name
        assert sorted(stream.list_order) == sorted(graph.vertices()), name


@settings(max_examples=25, deadline=None)
@given(graph=graphs, seed=st.integers(min_value=0, max_value=2**31))
def test_orderings_are_deterministic_given_seed(graph, seed):
    for name, factory in sorted(ORDERING_FACTORIES.items()):
        first = list(factory(graph, seed=seed).iter_pairs())
        second = list(factory(graph, seed=seed).iter_pairs())
        assert first == second, name


@settings(max_examples=25, deadline=None)
@given(graph=graphs, seed=st.integers(min_value=0, max_value=2**31))
def test_each_list_is_the_exact_neighborhood(graph, seed):
    for name, factory in sorted(ORDERING_FACTORIES.items()):
        for vertex, neighbors in factory(graph, seed=seed).iter_lists():
            assert sorted(neighbors) == sorted(graph.neighbors(vertex)), name
