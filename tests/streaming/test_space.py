"""Tests for the bounded-buffer SpaceMeter."""

import pytest

from repro.streaming.space import SpaceMeter


class TestExactStatistics:
    def test_peak_and_mean(self):
        meter = SpaceMeter()
        for words in (3, 9, 4):
            meter.observe(words)
        assert meter.peak_words == 9
        assert meter.current_words == 4
        assert meter.mean_words == pytest.approx(16 / 3)
        assert meter.n_observations == 3

    def test_empty_meter(self):
        meter = SpaceMeter()
        assert meter.mean_words == 0.0
        assert meter.peak_words == 0
        assert meter.samples() == ()

    def test_negative_reading_rejected(self):
        with pytest.raises(ValueError):
            SpaceMeter().observe(-1)


class TestBoundedBuffer:
    def test_buffer_stays_bounded(self):
        meter = SpaceMeter(max_samples=16)
        for i in range(10_000):
            meter.observe(i)
        assert len(meter._samples) < 16
        assert meter.n_observations == 10_000

    def test_stride_doubles_on_fill(self):
        meter = SpaceMeter(max_samples=8)
        for i in range(8):
            meter.observe(i)
        assert meter.sample_stride == 2
        assert meter.samples() == (0, 2, 4, 6)

    def test_samples_are_evenly_strided(self):
        meter = SpaceMeter(max_samples=8)
        for i in range(100):
            meter.observe(i)
        stride = meter.sample_stride
        kept = meter.samples()
        assert all(b - a == stride for a, b in zip(kept, kept[1:]))

    def test_mean_exact_despite_thinning(self):
        meter = SpaceMeter(max_samples=4)
        readings = list(range(1, 101))
        for words in readings:
            meter.observe(words)
        assert meter.mean_words == pytest.approx(sum(readings) / len(readings))
        assert meter.peak_words == 100

    def test_zero_max_samples_disables_retention(self):
        meter = SpaceMeter(max_samples=0)
        for i in range(50):
            meter.observe(i)
        assert meter.samples() == ()
        assert meter.peak_words == 49
        assert meter.mean_words == pytest.approx(24.5)

    def test_negative_max_samples_rejected(self):
        with pytest.raises(ValueError):
            SpaceMeter(max_samples=-1)


class TestStateRoundTrip:
    def test_state_dict_round_trip(self):
        meter = SpaceMeter(max_samples=8)
        for i in range(37):
            meter.observe(i * 3)
        clone = SpaceMeter()
        clone.load_state_dict(meter.state_dict())
        assert clone.state_dict() == meter.state_dict()
        # Continuations must agree exactly.
        meter.observe(500)
        clone.observe(500)
        assert clone.state_dict() == meter.state_dict()

    def test_reset(self):
        meter = SpaceMeter(max_samples=4)
        for i in range(20):
            meter.observe(i)
        meter.reset()
        assert meter.peak_words == 0
        assert meter.mean_words == 0.0
        assert meter.samples() == ()
        assert meter.sample_stride == 1
