"""Tests for the ordering strategies."""

from repro.graph.generators import gnm_random_graph, path_graph
from repro.streaming.orderings import (
    ORDERING_FACTORIES,
    bfs_stream,
    degree_stream,
    random_stream,
    sorted_stream,
    vertices_first_stream,
    vertices_last_stream,
)
from repro.streaming.stream import validate_pair_sequence


def test_all_factories_produce_valid_streams(small_random_graph):
    for name, factory in ORDERING_FACTORIES.items():
        stream = factory(small_random_graph, seed=5)
        validate_pair_sequence(list(stream.iter_pairs()))


def test_sorted_stream_is_deterministic(small_random_graph):
    s1 = sorted_stream(small_random_graph)
    s2 = sorted_stream(small_random_graph)
    assert list(s1.iter_pairs()) == list(s2.iter_pairs())
    assert s1.list_order == sorted(small_random_graph.vertices())


def test_degree_stream_ascending(small_random_graph):
    s = degree_stream(small_random_graph, ascending=True, seed=1)
    degrees = [small_random_graph.degree(v) for v in s.list_order]
    assert degrees == sorted(degrees)


def test_degree_stream_descending(small_random_graph):
    s = degree_stream(small_random_graph, ascending=False, seed=1)
    degrees = [small_random_graph.degree(v) for v in s.list_order]
    assert degrees == sorted(degrees, reverse=True)


def test_bfs_stream_visits_connected_component_contiguously():
    g = path_graph(10)
    s = bfs_stream(g, seed=2)
    order = s.list_order
    positions = {v: i for i, v in enumerate(order)}
    # In a path, BFS discovery keeps neighbours within distance 2 slots of
    # monotone frontier growth; just check every vertex appears once.
    assert sorted(order) == sorted(g.vertices())
    assert len(positions) == g.n


def test_vertices_first_stream(small_random_graph):
    chosen = list(small_random_graph.vertices())[:5]
    s = vertices_first_stream(small_random_graph, chosen, seed=3)
    assert s.list_order[:5] == chosen


def test_vertices_last_stream(small_random_graph):
    chosen = list(small_random_graph.vertices())[:5]
    s = vertices_last_stream(small_random_graph, chosen, seed=3)
    assert s.list_order[-5:] == chosen


def test_random_stream_differs_by_seed(small_random_graph):
    s1 = random_stream(small_random_graph, seed=1)
    s2 = random_stream(small_random_graph, seed=2)
    assert s1.list_order != s2.list_order
