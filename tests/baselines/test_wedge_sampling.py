"""Tests for the one-pass wedge-sampling triangle counter ([12]-style)."""

import statistics

import pytest

from repro.baselines.wedge_sampling import (
    WedgeSamplingTriangleCounter,
    recommended_sample_size,
)
from repro.graph.counting import count_triangles, count_wedges
from repro.graph.generators import (
    complete_graph,
    gnm_random_graph,
    random_bipartite_graph,
    star_graph,
)
from repro.streaming.orderings import ORDERING_FACTORIES
from repro.streaming.runner import run_algorithm
from repro.streaming.stream import AdjacencyListStream


class TestExactRegime:
    """With every wedge retained, exactly 2 of each triangle's 3 wedges
    are observed closed, so the estimate is exact."""

    @pytest.mark.parametrize(
        "graph",
        [complete_graph(6), gnm_random_graph(25, 90, seed=1)],
    )
    def test_full_reservoir_is_exact(self, graph):
        algo = WedgeSamplingTriangleCounter(sample_size=10**6, seed=2)
        result = run_algorithm(algo, AdjacencyListStream(graph, seed=3))
        assert result.estimate == pytest.approx(count_triangles(graph))
        assert algo.closed_wedges == 2 * count_triangles(graph)

    def test_exact_under_every_ordering(self, small_random_graph):
        truth = count_triangles(small_random_graph)
        for name, factory in ORDERING_FACTORIES.items():
            algo = WedgeSamplingTriangleCounter(sample_size=10**6, seed=4)
            result = run_algorithm(algo, factory(small_random_graph, seed=5))
            assert result.estimate == pytest.approx(truth), f"ordering {name}"

    def test_wedge_count_exact(self, small_random_graph):
        algo = WedgeSamplingTriangleCounter(sample_size=10, seed=6)
        run_algorithm(algo, AdjacencyListStream(small_random_graph, seed=7))
        assert algo.wedge_count == count_wedges(small_random_graph)

    def test_triangle_free_gives_zero(self):
        g = random_bipartite_graph(20, 20, 80, seed=8)
        algo = WedgeSamplingTriangleCounter(sample_size=10**5, seed=9)
        assert run_algorithm(algo, AdjacencyListStream(g, seed=10)).estimate == 0

    def test_star_has_wedges_but_no_closures(self):
        g = star_graph(8)
        algo = WedgeSamplingTriangleCounter(sample_size=100, seed=11)
        run_algorithm(algo, AdjacencyListStream(g, seed=12))
        assert algo.wedge_count == 28
        assert algo.closed_wedges == 0


class TestStatisticalBehaviour:
    def test_mean_near_truth(self, triangle_workload):
        g = triangle_workload.graph
        truth = triangle_workload.true_count
        wedges = count_wedges(g)
        budget = recommended_sample_size(wedges, truth, epsilon=0.5)
        estimates = []
        for i in range(40):
            algo = WedgeSamplingTriangleCounter(sample_size=budget, seed=100 + i)
            stream = AdjacencyListStream(g, seed=200 + i)
            estimates.append(run_algorithm(algo, stream).estimate)
        assert statistics.mean(estimates) == pytest.approx(truth, rel=0.2)

    def test_theorem_budget_achieves_epsilon(self, triangle_workload):
        g = triangle_workload.graph
        truth = triangle_workload.true_count
        budget = recommended_sample_size(count_wedges(g), truth, epsilon=0.5)
        within = 0
        runs = 20
        for i in range(runs):
            algo = WedgeSamplingTriangleCounter(sample_size=budget, seed=300 + i)
            stream = AdjacencyListStream(g, seed=400 + i)
            est = run_algorithm(algo, stream).estimate
            if abs(est - truth) <= 0.5 * truth:
                within += 1
        assert within >= runs * 2 // 3

    def test_space_is_sample_size_bound(self, triangle_workload):
        g = triangle_workload.graph
        result = run_algorithm(
            WedgeSamplingTriangleCounter(sample_size=50, seed=13),
            AdjacencyListStream(g, seed=14),
        )
        assert result.peak_space_words <= 4 * 50 + 1


class TestConfiguration:
    def test_single_pass(self):
        assert WedgeSamplingTriangleCounter(sample_size=5).n_passes == 1

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            WedgeSamplingTriangleCounter(sample_size=0)

    def test_recommended_size_scaling(self):
        assert recommended_sample_size(8000, 100) == pytest.approx(
            2 * recommended_sample_size(4000, 100), rel=0.02
        )
        assert recommended_sample_size(8000, 100) == pytest.approx(
            recommended_sample_size(8000, 200) * 2, rel=0.02
        )

    def test_recommended_size_zero_triangles(self):
        assert recommended_sample_size(500, 0) == 500

    def test_recommended_size_validation(self):
        with pytest.raises(ValueError):
            recommended_sample_size(-1, 10)
        with pytest.raises(ValueError):
            recommended_sample_size(10, 10, epsilon=0)
