"""Tests for the one-pass Õ(m/√T) triangle counter."""

import statistics

import pytest

from repro.baselines.one_pass_triangle import OnePassTriangleCounter, recommended_rate
from repro.graph.counting import count_triangles
from repro.graph.generators import (
    complete_graph,
    gnm_random_graph,
    random_bipartite_graph,
)
from repro.streaming.orderings import ORDERING_FACTORIES
from repro.streaming.runner import run_algorithm
from repro.streaming.stream import AdjacencyListStream


class TestExactRegime:
    """At rate 1.0 every triangle is counted exactly once."""

    @pytest.mark.parametrize(
        "graph",
        [complete_graph(7), gnm_random_graph(30, 120, seed=1)],
    )
    def test_rate_one_is_exact(self, graph):
        algo = OnePassTriangleCounter(sample_rate=1.0, seed=2)
        result = run_algorithm(algo, AdjacencyListStream(graph, seed=3))
        assert result.estimate == count_triangles(graph)
        assert algo.raw_hits == count_triangles(graph)

    def test_rate_one_exact_under_every_ordering(self, small_random_graph):
        truth = count_triangles(small_random_graph)
        for name, factory in ORDERING_FACTORIES.items():
            algo = OnePassTriangleCounter(sample_rate=1.0, seed=4)
            result = run_algorithm(algo, factory(small_random_graph, seed=5))
            assert result.estimate == truth, f"ordering {name}"

    def test_triangle_free_gives_zero(self):
        g = random_bipartite_graph(25, 25, 100, seed=6)
        algo = OnePassTriangleCounter(sample_rate=0.8, seed=7)
        assert run_algorithm(algo, AdjacencyListStream(g, seed=8)).estimate == 0


class TestUnbiasedness:
    def test_mean_near_truth(self, triangle_workload):
        g = triangle_workload.graph
        truth = triangle_workload.true_count
        estimates = []
        for i in range(40):
            algo = OnePassTriangleCounter(sample_rate=0.25, seed=100 + i)
            stream = AdjacencyListStream(g, seed=200 + i)
            estimates.append(run_algorithm(algo, stream).estimate)
        assert statistics.mean(estimates) == pytest.approx(truth, rel=0.15)

    def test_single_pass_only(self):
        algo = OnePassTriangleCounter(sample_rate=0.5)
        assert algo.n_passes == 1


class TestSpace:
    def test_space_proportional_to_rate(self, triangle_workload):
        g = triangle_workload.graph
        low = run_algorithm(
            OnePassTriangleCounter(sample_rate=0.05, seed=1),
            AdjacencyListStream(g, seed=2),
        )
        high = run_algorithm(
            OnePassTriangleCounter(sample_rate=0.5, seed=1),
            AdjacencyListStream(g, seed=2),
        )
        assert low.peak_space_words < high.peak_space_words
        assert low.peak_space_words < 0.15 * high.peak_space_words / 0.5 * 3

    def test_edge_count(self, small_random_graph):
        algo = OnePassTriangleCounter(sample_rate=0.3, seed=3)
        run_algorithm(algo, AdjacencyListStream(small_random_graph, seed=4))
        assert algo.edge_count == small_random_graph.m


class TestValidation:
    def test_rate_bounds(self):
        with pytest.raises(ValueError):
            OnePassTriangleCounter(sample_rate=0.0)
        with pytest.raises(ValueError):
            OnePassTriangleCounter(sample_rate=1.5)

    def test_recommended_rate_scaling(self):
        assert recommended_rate(400) == pytest.approx(2 * recommended_rate(1600))

    def test_recommended_rate_capped(self):
        assert recommended_rate(1) == 1.0
        assert recommended_rate(0) == 1.0

    def test_recommended_rate_validation(self):
        with pytest.raises(ValueError):
            recommended_rate(-1)
        with pytest.raises(ValueError):
            recommended_rate(10, epsilon=0)
