"""Tests for the one-pass 4-cycle heuristic (the Theorem 5.3 foil)."""

import pytest

from repro.baselines.fourcycle_one_pass import OnePassFourCycleHeuristic
from repro.graph.counting import count_four_cycles
from repro.graph.generators import complete_bipartite, cycle_graph, random_forest
from repro.lowerbounds.reductions.fourcycle_one_pass import random_gadget
from repro.streaming.runner import run_algorithm
from repro.streaming.stream import AdjacencyListStream
from repro.streaming.orderings import vertices_last_stream


class TestBasicBehaviour:
    def test_rate_one_detects_all_on_benign_orders(self):
        g = complete_bipartite(3, 3)
        algo = OnePassFourCycleHeuristic(sample_rate=1.0, seed=1)
        result = run_algorithm(algo, AdjacencyListStream(g, seed=2))
        assert result.estimate == count_four_cycles(g)

    def test_cycle_free_graph_detects_nothing(self):
        g = random_forest(40, 30, seed=3)
        algo = OnePassFourCycleHeuristic(sample_rate=1.0, seed=4)
        assert run_algorithm(algo, AdjacencyListStream(g, seed=5)).estimate == 0

    def test_detection_never_exceeds_truth(self):
        g = complete_bipartite(4, 4)
        for seed in range(5):
            algo = OnePassFourCycleHeuristic(sample_rate=0.7, seed=seed)
            result = run_algorithm(algo, AdjacencyListStream(g, seed=seed + 10))
            assert result.estimate <= count_four_cycles(g)

    def test_single_pass(self):
        assert OnePassFourCycleHeuristic(sample_rate=0.5).n_passes == 1

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            OnePassFourCycleHeuristic(sample_rate=0.0)


class TestOrderSensitivity:
    """The heuristic's detection probability depends on the stream order —
    the behaviour the Ω(m) lower bound exploits."""

    def test_rate_one_can_miss_on_adversarial_order(self):
        # C4 on 4 vertices: put two opposite vertices' lists last; at full
        # sampling the wedge through the early vertices exists, but place
        # the *closing* vertices first so their lists precede the wedge.
        g = cycle_graph(4)
        # Order (0, 2) last: their lists close wedges assembled from lists
        # of 1 and 3 — detection depends on relative order, exercising both
        # branches across seeds; at minimum the detector must not crash and
        # must stay <= truth.
        stream = vertices_last_stream(g, [0, 2], seed=6)
        algo = OnePassFourCycleHeuristic(sample_rate=1.0, seed=7)
        result = run_algorithm(algo, stream)
        assert 0 <= result.estimate <= 1

    def test_sublinear_rate_misses_gadget_cycles(self):
        """At a low sampling rate the INDEX gadget's k cycles are missed
        with constant probability, so 0 vs T cannot be distinguished."""
        misses = 0
        trials = 15
        for i in range(trials):
            gadget, _ = random_gadget(min_side=7, k=2, answer=1, seed=i)
            algo = OnePassFourCycleHeuristic(sample_rate=0.1, seed=100 + i)
            result = run_algorithm(algo, gadget.stream(seed=200 + i))
            if result.estimate == 0:
                misses += 1
        assert misses >= trials // 2

    def test_full_rate_detects_gadget_cycles(self):
        gadget, _ = random_gadget(min_side=7, k=4, answer=1, seed=9)
        algo = OnePassFourCycleHeuristic(sample_rate=1.0, seed=10)
        result = run_algorithm(algo, gadget.stream(seed=11))
        assert result.estimate > 0


class TestSpace:
    def test_space_grows_with_rate(self):
        g = complete_bipartite(6, 6)
        low = run_algorithm(
            OnePassFourCycleHeuristic(sample_rate=0.2, seed=1),
            AdjacencyListStream(g, seed=2),
        ).peak_space_words
        high = run_algorithm(
            OnePassFourCycleHeuristic(sample_rate=1.0, seed=1),
            AdjacencyListStream(g, seed=2),
        ).peak_space_words
        assert low < high
