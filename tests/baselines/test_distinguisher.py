"""Tests for the two-pass 0-vs-T distinguisher."""

import pytest

from repro.baselines.distinguisher import (
    TwoPassTriangleDistinguisher,
    recommended_sample_size,
)
from repro.graph.generators import random_bipartite_graph
from repro.graph.planted import planted_triangles
from repro.streaming.runner import run_algorithm
from repro.streaming.stream import AdjacencyListStream


class TestSoundness:
    """On triangle-free graphs the distinguisher can never report a hit."""

    @pytest.mark.parametrize("seed", range(5))
    def test_no_false_positives(self, seed):
        g = random_bipartite_graph(40, 40, 200, seed=seed)
        algo = TwoPassTriangleDistinguisher(sample_size=200, seed=seed + 50)
        result = run_algorithm(algo, AdjacencyListStream(g, seed=seed + 99))
        assert result.estimate == 0.0
        assert not algo.found_triangle


class TestCompleteness:
    def test_detects_with_full_sample(self, triangle_workload):
        g = triangle_workload.graph
        algo = TwoPassTriangleDistinguisher(sample_size=g.m, seed=1)
        result = run_algorithm(algo, AdjacencyListStream(g, seed=2))
        assert result.estimate == 1.0
        assert algo.hit_count > 0

    def test_detects_at_theorem_budget(self, triangle_workload):
        g = triangle_workload.graph
        t = triangle_workload.true_count
        budget = recommended_sample_size(g.m, t)
        detections = 0
        runs = 20
        for i in range(runs):
            algo = TwoPassTriangleDistinguisher(sample_size=budget, seed=100 + i)
            stream = AdjacencyListStream(g, seed=200 + i)
            if run_algorithm(algo, stream).estimate > 0:
                detections += 1
        assert detections >= runs * 2 // 3

    def test_detection_rate_grows_with_budget(self):
        planted = planted_triangles(900, 20, seed=3)
        g = planted.graph

        def rate(budget):
            hits = 0
            for i in range(15):
                algo = TwoPassTriangleDistinguisher(sample_size=budget, seed=i)
                if run_algorithm(algo, AdjacencyListStream(g, seed=50 + i)).estimate:
                    hits += 1
            return hits / 15

        assert rate(g.m) >= rate(g.m // 30)


class TestConfiguration:
    def test_two_passes(self):
        assert TwoPassTriangleDistinguisher(sample_size=5).n_passes == 2

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            TwoPassTriangleDistinguisher(sample_size=0)

    def test_recommended_size_scaling(self):
        assert recommended_sample_size(8000, 8) == pytest.approx(
            2 * recommended_sample_size(4000, 8), rel=0.01
        )
        assert recommended_sample_size(1000, 8) == pytest.approx(
            recommended_sample_size(1000, 64) * 4, rel=0.01
        )

    def test_recommended_size_validation(self):
        with pytest.raises(ValueError):
            recommended_sample_size(100, 0)
