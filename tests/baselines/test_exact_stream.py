"""Tests for the store-everything exact streaming counter."""

import pytest

from repro.baselines.exact_stream import ExactCycleCounter
from repro.graph.counting import count_cycles, count_four_cycles, count_triangles
from repro.graph.generators import complete_graph, cycle_graph, gnm_random_graph
from repro.streaming.runner import run_algorithm
from repro.streaming.stream import AdjacencyListStream


@pytest.mark.parametrize("length", [3, 4, 5, 6])
def test_exact_counts(length):
    g = gnm_random_graph(25, 90, seed=length)
    algo = ExactCycleCounter(length)
    result = run_algorithm(algo, AdjacencyListStream(g, seed=7))
    if length == 3:
        expected = count_triangles(g)
    elif length == 4:
        expected = count_four_cycles(g)
    else:
        expected = count_cycles(g, length)
    assert result.estimate == expected


def test_reconstructs_graph(small_random_graph):
    algo = ExactCycleCounter(3)
    run_algorithm(algo, AdjacencyListStream(small_random_graph, seed=1))
    assert sorted(algo.graph.edges()) == sorted(small_random_graph.edges())


def test_space_is_linear_in_m():
    small = gnm_random_graph(20, 40, seed=1)
    large = gnm_random_graph(40, 160, seed=1)
    space_small = run_algorithm(
        ExactCycleCounter(3), AdjacencyListStream(small, seed=2)
    ).peak_space_words
    space_large = run_algorithm(
        ExactCycleCounter(3), AdjacencyListStream(large, seed=2)
    ).peak_space_words
    assert space_small == 2 * small.m + small.n
    assert space_large == 2 * large.m + large.n


def test_single_cycle_each_length():
    for length in (5, 6, 7):
        algo = ExactCycleCounter(length)
        result = run_algorithm(algo, AdjacencyListStream(cycle_graph(length), seed=3))
        assert result.estimate == 1


def test_k5_counts():
    algo = ExactCycleCounter(5)
    assert run_algorithm(algo, AdjacencyListStream(complete_graph(5), seed=4)).estimate == 12


def test_invalid_length():
    with pytest.raises(ValueError):
        ExactCycleCounter(2)
