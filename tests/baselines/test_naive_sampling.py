"""Tests for the naive edge-sampling estimator (the Section 2.1 strawman)."""

import statistics

import pytest

from repro.baselines.naive_sampling import NaiveSamplingTriangleCounter
from repro.core.triangle_two_pass import TwoPassTriangleCounter
from repro.graph.counting import count_triangles
from repro.graph.generators import complete_graph, gnm_random_graph
from repro.graph.planted import planted_triangles_book
from repro.streaming.runner import run_algorithm
from repro.streaming.stream import AdjacencyListStream


class TestExactRegime:
    def test_full_sample_is_exact(self):
        g = complete_graph(8)
        algo = NaiveSamplingTriangleCounter(sample_size=2 * g.m, seed=1)
        result = run_algorithm(algo, AdjacencyListStream(g, seed=2))
        assert result.estimate == count_triangles(g)
        assert algo.raw_hits == 3 * count_triangles(g)

    def test_edge_count(self, small_random_graph):
        algo = NaiveSamplingTriangleCounter(sample_size=10, seed=3)
        run_algorithm(algo, AdjacencyListStream(small_random_graph, seed=4))
        assert algo.edge_count == small_random_graph.m


class TestUnbiasedness:
    def test_mean_near_truth(self, triangle_workload):
        g = triangle_workload.graph
        truth = triangle_workload.true_count
        estimates = []
        for i in range(40):
            algo = NaiveSamplingTriangleCounter(sample_size=g.m // 4, seed=100 + i)
            stream = AdjacencyListStream(g, seed=200 + i)
            estimates.append(run_algorithm(algo, stream).estimate)
        assert statistics.mean(estimates) == pytest.approx(truth, rel=0.15)


class TestHeavyEdgeFragility:
    """The paper's motivation: naive sampling blows up on heavy edges."""

    def test_higher_variance_than_lightest_edge_rule(self):
        planted = planted_triangles_book(500, 250, seed=5)
        g = planted.graph
        budget = g.m // 6

        def spread(factory):
            estimates = []
            for i in range(30):
                stream = AdjacencyListStream(g, seed=300 + i)
                estimates.append(run_algorithm(factory(i), stream).estimate)
            return statistics.pstdev(estimates)

        naive_sd = spread(lambda i: NaiveSamplingTriangleCounter(budget, seed=i))
        smart_sd = spread(lambda i: TwoPassTriangleCounter(budget, seed=i))
        assert naive_sd > 1.5 * smart_sd


class TestConfiguration:
    def test_two_passes(self):
        assert NaiveSamplingTriangleCounter(sample_size=3).n_passes == 2

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            NaiveSamplingTriangleCounter(sample_size=0)

    def test_empty_graph_estimate_zero(self):
        g = gnm_random_graph(5, 0, seed=1)
        algo = NaiveSamplingTriangleCounter(sample_size=4, seed=2)
        assert run_algorithm(algo, AdjacencyListStream(g, seed=3)).estimate == 0.0
