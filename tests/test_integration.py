"""End-to-end integration tests across package boundaries."""

import statistics

import pytest

from repro import (
    ExactCycleCounter,
    MedianBoosted,
    OnePassTriangleCounter,
    TwoPassFourCycleCounter,
    TwoPassTriangleCounter,
    fourcycle_sample_size,
    run_algorithm,
    triangle_sample_size,
)
from repro.analysis import run_all_checks
from repro.graph import (
    count_four_cycles,
    count_triangles,
    gnm_random_graph,
    planted_triangles_book,
    powerlaw_cluster_graph,
)
from repro.lowerbounds import run_protocol
from repro.lowerbounds.problems import random_three_disj_instance
from repro.lowerbounds.reductions import triangle_multipass
from repro.streaming import AdjacencyListStream


class TestFullTrianglePipeline:
    """Generate -> stream -> estimate -> verify, at the theorem's budget."""

    def test_random_graph_pipeline(self):
        graph = gnm_random_graph(300, 2200, seed=1)
        truth = count_triangles(graph)
        assert truth > 50  # workload sanity
        budget = triangle_sample_size(graph.m, truth, epsilon=0.4)
        estimates = []
        for i in range(11):
            algo = TwoPassTriangleCounter(sample_size=budget, seed=100 + i)
            stream = AdjacencyListStream(graph, seed=200 + i)
            estimates.append(run_algorithm(algo, stream).estimate)
        median = statistics.median(estimates)
        assert abs(median - truth) <= 0.4 * truth

    def test_powerlaw_graph_pipeline(self):
        graph = powerlaw_cluster_graph(400, 3, triangle_prob=0.7, seed=2)
        truth = count_triangles(graph)
        budget = triangle_sample_size(graph.m, truth, epsilon=0.5)
        boosted = MedianBoosted(
            lambda s: TwoPassTriangleCounter(sample_size=budget, seed=s),
            copies=5,
            seed=3,
        )
        result = run_algorithm(boosted, AdjacencyListStream(graph, seed=4))
        assert abs(result.estimate - truth) <= 0.6 * truth

    def test_two_pass_beats_one_pass_at_equal_space(self):
        # Heavy-edge workload: the book's spine edge lies in every planted
        # triangle, which is exactly where the one-pass estimator's variance
        # blows up and the lightest-edge rule does not.
        planted = planted_triangles_book(1200, 400, seed=5)
        graph = planted.graph
        budget = graph.m // 8

        def spread(factory):
            ests = []
            for i in range(20):
                stream = AdjacencyListStream(graph, seed=300 + i)
                ests.append(run_algorithm(factory(i), stream).estimate)
            return statistics.pstdev(ests)

        two_sd = spread(lambda i: TwoPassTriangleCounter(budget, seed=i))
        one_sd = spread(
            lambda i: OnePassTriangleCounter(min(1.0, budget / graph.m), seed=50 + i)
        )
        assert two_sd < 0.5 * one_sd


class TestFullFourCyclePipeline:
    def test_random_graph_pipeline(self):
        graph = gnm_random_graph(250, 1800, seed=6)
        truth = count_four_cycles(graph)
        assert truth > 100
        budget = fourcycle_sample_size(graph.m, truth)
        estimates = []
        for i in range(11):
            algo = TwoPassFourCycleCounter(sample_size=budget, seed=400 + i)
            stream = AdjacencyListStream(graph, seed=500 + i)
            estimates.append(run_algorithm(algo, stream).estimate)
        median = statistics.median(estimates)
        assert truth / 4 <= median <= 4 * truth  # Theorem 4.6's O(1) factor


class TestEstimatorAgainstExactBaseline:
    def test_same_stream_same_answer_shape(self):
        graph = gnm_random_graph(350, 4000, seed=7)
        stream = AdjacencyListStream(graph, seed=8)
        exact = run_algorithm(ExactCycleCounter(3), stream)
        approx = run_algorithm(
            TwoPassTriangleCounter(sample_size=150, seed=9), stream
        )
        assert exact.estimate == count_triangles(graph)
        assert approx.estimate == pytest.approx(exact.estimate, rel=1.0)
        assert approx.peak_space_words < exact.peak_space_words


class TestReductionPipeline:
    """Upper and lower bound machinery composed: the sublinear algorithm
    solves the communication problem through the gadget."""

    def test_sublinear_algorithm_solves_three_disj(self):
        outcomes = []
        for seed in range(6):
            inter = seed % 2 == 1
            inst = random_three_disj_instance(8, inter, seed=seed)
            gadget = triangle_multipass.build_gadget(inst, k=3)
            budget = max(
                1, round(6 * gadget.graph.m / gadget.promised_cycles ** (2 / 3))
            )
            algo = TwoPassTriangleCounter(sample_size=budget, seed=1000 + seed)
            result = run_protocol(algo, gadget)
            outcomes.append(result.output == int(inter))
        assert all(outcomes)


class TestLemmaChecksOnPipelineGraphs:
    def test_all_lemmas_hold_on_generated_workloads(self):
        for seed in range(3):
            graph = gnm_random_graph(40, 180, seed=seed)
            assert all(c.holds for c in run_all_checks(graph, stream_seed=seed))
