"""The telemetry subsystem must satisfy the repo's own determinism linter.

``repro.obs`` necessarily touches wall clocks (timers measure them), so it
carries justified ``repro-lint: disable=DET003`` suppressions; this test
pins that those suppressions are the *only* thing standing between the
subsystem and a clean bill — no unexplained violations may creep in.
"""

import os

import repro.obs
from repro.lint.cli import main

OBS_DIR = os.path.dirname(os.path.abspath(repro.obs.__file__))


def test_obs_subsystem_is_lint_clean(capsys):
    assert main([OBS_DIR, "--no-baseline"]) == 0
    assert "0 violations" in capsys.readouterr().out


def test_obs_timer_suppressions_are_justified():
    """Every DET003 suppression in repro.obs carries a reason string."""
    found = 0
    for name in os.listdir(OBS_DIR):
        if not name.endswith(".py"):
            continue
        with open(os.path.join(OBS_DIR, name)) as fh:
            for line in fh:
                if "repro-lint: disable=DET003" in line:
                    found += 1
                    assert " -- " in line, f"unjustified suppression in {name}: {line!r}"
    assert found >= 2, "the Timer context manager must carry suppressions"
