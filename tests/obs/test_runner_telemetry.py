"""Runner instrumentation: pass boundaries, high-water events, null parity."""

from repro.core.triangle_two_pass import TwoPassTriangleCounter
from repro.graph.planted import planted_triangles
from repro.obs.events import (
    MergeCompleted,
    OccupancySample,
    PassFinished,
    PassStarted,
    RunFinished,
    RunStarted,
    ShardPassFinished,
    SpaceHighWater,
)
from repro.obs.sinks import InMemorySink
from repro.obs.telemetry import Telemetry
from repro.sketch.driver import run_sharded
from repro.streaming.runner import run_algorithm
from repro.streaming.stream import AdjacencyListStream


def _workload():
    planted = planted_triangles(400, 50, seed=3)
    return planted.graph


def _instrumented_run(sink=None):
    graph = _workload()
    algo = TwoPassTriangleCounter(sample_size=60, seed=7)
    stream = AdjacencyListStream(graph, seed=11)
    telemetry = Telemetry(sink=sink) if sink is not None else None
    if telemetry is None:
        return run_algorithm(algo, stream), None
    result = run_algorithm(algo, stream, telemetry=telemetry)
    telemetry.close()
    return result, telemetry


def test_pass_boundaries_and_throughput():
    sink = InMemorySink()
    result, _ = _instrumented_run(sink)

    (started,) = sink.of_type(RunStarted)
    assert started.algorithm == "TwoPassTriangleCounter"
    assert started.passes == 2

    assert [e.pass_index for e in sink.of_type(PassStarted)] == [0, 1]
    finished = sink.of_type(PassFinished)
    assert [e.pass_index for e in finished] == [0, 1]
    for e in finished:
        assert e.pairs == started.pairs_per_pass
        assert e.pairs_per_second > 0

    (run_finished,) = sink.of_type(RunFinished)
    assert run_finished.estimate == result.estimate
    assert run_finished.passes == 2
    assert run_finished.pairs == 2 * started.pairs_per_pass


def test_high_water_events_match_run_result():
    sink = InMemorySink()
    result, _ = _instrumented_run(sink)
    high_waters = sink.of_type(SpaceHighWater)
    assert high_waters, "a growing sampler must cross its own peak repeatedly"
    words = [e.words for e in high_waters]
    # Each event strictly exceeds every earlier reading...
    assert words == sorted(words) and len(set(words)) == len(words)
    # ...and the last one is the run's true peak.
    assert words[-1] == result.peak_space_words
    (run_finished,) = sink.of_type(RunFinished)
    assert run_finished.peak_space_words == result.peak_space_words


def test_occupancy_samples_expose_algorithm_observables():
    sink = InMemorySink()
    _instrumented_run(sink)
    samples = sink.of_type(OccupancySample)
    assert samples
    gauges = samples[-1].gauges
    assert "edge_sample_occupancy" in gauges
    assert "pair_reservoir_occupancy" in gauges
    assert gauges["edge_sample_capacity"] == 60


def test_metrics_registry_accumulates_counters():
    sink = InMemorySink()
    result, telemetry = _instrumented_run(sink)
    snap = telemetry.metrics_snapshot()
    pairs_p0 = snap["stream_pairs_total{pass_index=0}"]["value"]
    pairs_p1 = snap["stream_pairs_total{pass_index=1}"]["value"]
    assert pairs_p0 == pairs_p1 > 0
    assert snap["run_peak_space_words"]["high_water"] == result.peak_space_words


def test_null_telemetry_run_is_identical():
    with_telemetry, _ = _instrumented_run(InMemorySink())
    without, _ = _instrumented_run(None)
    assert with_telemetry.estimate == without.estimate
    assert with_telemetry.peak_space_words == without.peak_space_words
    assert with_telemetry.mean_space_words == without.mean_space_words


def test_sharded_driver_emits_shard_events():
    graph = _workload()
    algo = TwoPassTriangleCounter(sample_size=60, seed=7, sharded=True)
    stream = AdjacencyListStream(graph, seed=11)
    sink = InMemorySink()
    telemetry = Telemetry(sink=sink)
    result = run_sharded(algo, stream, n_shards=3, telemetry=telemetry)
    telemetry.close()

    shard_events = sink.of_type(ShardPassFinished)
    assert {e.shard_index for e in shard_events} == {0, 1, 2}
    merges = sink.of_type(MergeCompleted)
    assert [m.n_shards for m in merges] == [3] * len(merges)
    (run_finished,) = sink.of_type(RunFinished)
    assert run_finished.estimate == result.estimate
