"""Cross-worker metric roll-up: parallel == serial after stripping timers."""

from repro.core.triangle_two_pass import TwoPassTriangleCounter
from repro.experiments.parallel import (
    ExecutionConfig,
    TrialExecutor,
    run_trial,
    trial_specs,
)
from repro.obs.metrics import TIMER
from repro.obs.rollup import deterministic_rollup, rollup_metrics
from repro.util.rng import resolve_rng


def _two_pass(budget, seed):
    return TwoPassTriangleCounter(sample_size=max(budget, 1), seed=seed)


def test_collect_metrics_off_by_default(triangle_workload):
    specs = trial_specs(resolve_rng(5), budget=60, runs=2)
    result = run_trial(_two_pass, triangle_workload.graph, specs[0])
    assert result.metrics is None
    assert rollup_metrics([result.metrics]) == {}


def test_collect_metrics_does_not_change_estimates(triangle_workload):
    specs = trial_specs(resolve_rng(5), budget=60, runs=3)
    plain = [run_trial(_two_pass, triangle_workload.graph, s) for s in specs]
    metered = [
        run_trial(_two_pass, triangle_workload.graph, s, collect_metrics=True)
        for s in specs
    ]
    assert [r.estimate for r in plain] == [r.estimate for r in metered]
    assert [r.peak_space_words for r in plain] == [r.peak_space_words for r in metered]
    for r in metered:
        assert r.metrics is not None
        assert r.metrics["run_peak_space_words"]["high_water"] == r.peak_space_words


def test_parallel_rollup_equals_serial(triangle_workload):
    g = triangle_workload.graph
    specs = trial_specs(resolve_rng(8), budget=60, runs=4)
    with TrialExecutor(_two_pass, g, ExecutionConfig(collect_metrics=True)) as ex_serial:
        serial = ex_serial.run(specs)
    with TrialExecutor(
        _two_pass, g, ExecutionConfig(workers=2, collect_metrics=True)
    ) as ex_par:
        parallel = ex_par.run(specs)

    serial_roll = deterministic_rollup([r.metrics for r in serial])
    parallel_roll = deterministic_rollup([r.metrics for r in parallel])
    assert serial_roll == parallel_roll
    assert serial_roll, "roll-up must not be empty"
    # The full roll-up differs only in timers (wall clock is schedule-bound).
    assert not any(
        blob["kind"] == TIMER for blob in serial_roll.values()
    )


def test_rollup_sums_counters_across_trials(triangle_workload):
    specs = trial_specs(resolve_rng(2), budget=60, runs=3)
    results = [
        run_trial(_two_pass, triangle_workload.graph, s, collect_metrics=True)
        for s in specs
    ]
    merged = rollup_metrics([r.metrics for r in results])
    single = results[0].metrics
    key = "stream_pairs_total{pass_index=0}"
    assert merged[key]["value"] == sum(r.metrics[key]["value"] for r in results)
    assert merged[key]["value"] == 3 * single[key]["value"]
