"""Live-plane unit tests: histograms, exposition, labeling, SLOs, top.

Pins the contracts the router's ``/metrics`` endpoint rests on:

* histogram bucketing, merge, and the conservative quantile estimate;
* Prometheus text exposition correctness — label escaping, the
  cumulative ``_bucket`` ladder ending at ``le="+Inf"``, ``_sum`` and
  ``_count`` samples — and that ``parse_textfile`` inverts
  ``render_textfile`` exactly (the round-trip ``repro-cycles top``
  depends on);
* ``label_snapshot`` (how worker snapshots gain ``worker=<i>``);
* the ``unregistered_series`` runtime check behind the endpoint's
  refusal to expose undeclared names;
* SLO evaluation directions and disabled objectives;
* the ``top`` dashboard renderer.
"""

import math

import pytest

from repro.obs.metrics import (
    HISTOGRAM_BOUNDS,
    Histogram,
    MetricRegistry,
    histogram_quantile,
    label_snapshot,
    merge_snapshots,
    parse_series,
    strip_timers,
)
from repro.obs.names import METRIC_NAMES, unregistered_series
from repro.obs.sinks import parse_textfile, render_textfile
from repro.obs.slo import SLOPolicy, evaluate_slo, pooled_histogram
from repro.obs.telemetry import Telemetry
from repro.obs.top import render_top


def _snapshot_with_histogram(name, values, **labels):
    telemetry = Telemetry(sink=None)
    for value in values:
        telemetry.observe_histogram(name, value, **labels)
    return telemetry.metrics_snapshot()


class TestHistogram:
    def test_observe_places_into_correct_bucket(self):
        h = Histogram()
        h.observe(HISTOGRAM_BOUNDS[0])  # exactly on the first bound
        h.observe(HISTOGRAM_BOUNDS[3] * 0.99)
        h.observe(HISTOGRAM_BOUNDS[-1] * 2)  # beyond the last bound
        assert h.buckets[0] == 1
        assert h.buckets[3] == 1
        assert h.buckets[-1] == 1  # +Inf overflow bucket
        assert h.count == 3

    def test_negative_observation_rejected(self):
        with pytest.raises(ValueError):
            Histogram().observe(-1e-9)

    def test_unsorted_bounds_rejected(self):
        with pytest.raises(ValueError):
            Histogram(bounds=(2.0, 1.0))

    def test_cumulative_ends_at_count(self):
        h = Histogram()
        for v in (1e-6, 1e-3, 1.0, 100.0):
            h.observe(v)
        ladder = list(h.cumulative())
        assert ladder[-1] == (math.inf, h.count)
        running = [n for _, n in ladder]
        assert running == sorted(running)  # monotone non-decreasing

    def test_quantile_is_conservative_upper_bound(self):
        h = Histogram()
        for _ in range(100):
            h.observe(0.010)  # lands in the (0.008388, 0.016777] bucket
        p = h.quantile(0.99)
        assert p >= 0.010
        assert p in HISTOGRAM_BOUNDS

    def test_quantile_empty_is_zero(self):
        assert Histogram().quantile(0.5) == 0.0

    def test_dump_load_round_trip(self):
        h = Histogram()
        for v in (0.001, 0.5, 3.0):
            h.observe(v)
        other = Histogram()
        other.load(h.dump())
        assert other.dump() == h.dump()

    def test_merge_snapshots_adds_buckets_elementwise(self):
        a = _snapshot_with_histogram("serve_op_latency_seconds", [0.001], op="poll")
        b = _snapshot_with_histogram(
            "serve_op_latency_seconds", [0.001, 0.002], op="poll"
        )
        merged = merge_snapshots([a, b])
        (blob,) = [v for v in merged.values()]
        assert blob["count"] == 3
        assert sum(blob["buckets"]) == 3

    def test_strip_timers_drops_histograms(self):
        snap = _snapshot_with_histogram("serve_op_latency_seconds", [0.001], op="poll")
        registry = MetricRegistry()
        registry.counter("serve_polls_total").labels().inc()
        snap.update(registry.snapshot())
        stripped = strip_timers(snap)
        assert list(stripped) == ["serve_polls_total"]


class TestExposition:
    def test_histogram_exposition_shape(self):
        snap = _snapshot_with_histogram(
            "serve_op_latency_seconds", [0.010, 0.010, 5.0], op="poll", wire="json"
        )
        text = render_textfile(snap, METRIC_NAMES)
        assert "# TYPE serve_op_latency_seconds histogram" in text
        assert '_bucket{le="+Inf",op="poll",wire="json"} 3' in text
        assert "serve_op_latency_seconds_count" in text
        assert "serve_op_latency_seconds_sum" in text
        # Cumulative ladder: counts along le= lines never decrease.
        counts = [
            int(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if "_bucket{" in line
        ]
        assert counts == sorted(counts)

    def test_label_escaping_round_trips(self):
        registry = MetricRegistry()
        tricky = 'a\\b"c\nd'
        registry.counter(
            "serve_errors_total", labelnames=("code",)
        ).labels(code=tricky).inc(2)
        snap = registry.snapshot()
        text = render_textfile(snap)
        assert '\\\\' in text and '\\"' in text and "\\n" in text
        parsed, _ = parse_textfile(text)
        assert parsed == snap

    def test_full_round_trip_counters_gauges_histograms(self):
        telemetry = Telemetry(sink=None)
        telemetry.count("serve_requests_total", 4, op="feed")
        telemetry.set_gauge("serve_sessions_open", 2, worker="0")
        telemetry.observe_histogram("serve_op_latency_seconds", 0.25, op="poll")
        snap = telemetry.metrics_snapshot()
        parsed, helps = parse_textfile(render_textfile(snap, METRIC_NAMES))
        assert parsed == snap
        assert helps["serve_requests_total"] == METRIC_NAMES["serve_requests_total"]

    def test_internal_keys_are_unquoted(self):
        # The snapshot keyspace never carries exposition quoting.
        snap = _snapshot_with_histogram("serve_op_latency_seconds", [0.1], op="poll")
        (key,) = snap
        assert key == "serve_op_latency_seconds{op=poll}"


class TestLabelSnapshot:
    def test_adds_worker_label_to_every_series(self):
        telemetry = Telemetry(sink=None)
        telemetry.count("serve_polls_total", 3)
        telemetry.set_gauge("serve_sessions_open", 1)
        labeled = label_snapshot(telemetry.metrics_snapshot(), worker="1")
        for key in labeled:
            _, labels = parse_series(key)
            assert labels["worker"] == "1"

    def test_does_not_mutate_input(self):
        telemetry = Telemetry(sink=None)
        telemetry.count("serve_polls_total", 3)
        snap = telemetry.metrics_snapshot()
        before = {k: dict(v) for k, v in snap.items()}
        label_snapshot(snap, worker="0")
        assert snap == before

    def test_labeled_snapshots_merge_disjointly(self):
        snaps = []
        for worker in ("0", "1"):
            telemetry = Telemetry(sink=None)
            telemetry.count("serve_polls_total", 5)
            snaps.append(label_snapshot(telemetry.metrics_snapshot(), worker=worker))
        merged = merge_snapshots(snaps)
        assert len(merged) == 2  # one series per worker, not summed


class TestUnregisteredSeries:
    def test_registered_names_pass(self):
        telemetry = Telemetry(sink=None)
        telemetry.count("serve_polls_total")
        assert unregistered_series(telemetry.metrics_snapshot()) == []

    def test_unknown_name_flagged_with_and_without_labels(self):
        snap = {
            "serve_polls_totals": {"kind": "counter", "value": 1},
            "mystery_metric{op=feed}": {"kind": "counter", "value": 1},
        }
        assert unregistered_series(snap) == [
            "mystery_metric{op=feed}",
            "serve_polls_totals",
        ]


class TestSLO:
    def test_pooled_histogram_pools_label_subsets(self):
        telemetry = Telemetry(sink=None)
        telemetry.observe_histogram("serve_op_latency_seconds", 0.1, op="poll", wire="json")
        telemetry.observe_histogram("serve_op_latency_seconds", 0.2, op="poll", wire="binary")
        telemetry.observe_histogram("serve_op_latency_seconds", 9.0, op="feed", wire="json")
        blob = pooled_histogram(
            telemetry.metrics_snapshot(), "serve_op_latency_seconds", {"op": "poll"}
        )
        assert blob["count"] == 2  # feed series excluded

    def test_pooled_histogram_missing_returns_none(self):
        assert pooled_histogram({}, "serve_op_latency_seconds") is None

    def test_evaluate_slo_directions(self):
        snap = _snapshot_with_histogram(
            "serve_op_latency_seconds", [0.001] * 100, op="poll"
        )
        policy = SLOPolicy(
            poll_p99_seconds=1.0,
            feed_pairs_per_second=100.0,
            verdict_age_seconds=60.0,
            loop_lag_p99_seconds=0.0,  # disabled
        )
        statuses = {
            s.objective: s
            for s in evaluate_slo(
                policy, snap, pairs_per_second=50.0, verdict_age_seconds=10.0
            )
        }
        assert statuses["poll_p99_seconds"].ok
        assert not statuses["feed_pairs_per_second"].ok  # 50 < floor 100
        assert statuses["verdict_age_seconds"].ok
        assert "loop_lag_p99_seconds" not in statuses  # threshold 0 disables

    def test_histogram_quantile_matches_class_quantile(self):
        h = Histogram()
        for v in (0.001, 0.01, 0.1, 1.0):
            h.observe(v)
        assert histogram_quantile(h.dump(), 0.99) == h.quantile(0.99)


class TestTopRender:
    def _fleet_snapshot(self, pairs_per_worker):
        telemetry = Telemetry(sink=None)
        telemetry.set_gauge("router_workers", len(pairs_per_worker))
        telemetry.count("router_scrapes_total")
        telemetry.set_gauge("router_slo_ok", 1, objective="poll_p99_seconds")
        telemetry.set_gauge("router_slo_poll_p99_seconds", 0.25)
        telemetry.set_gauge("router_slo_ok", 0, objective="verdict_age_seconds")
        telemetry.set_gauge("router_slo_verdict_age_seconds", 900.0)
        snaps = [telemetry.metrics_snapshot()]
        for worker, pairs in enumerate(pairs_per_worker):
            wt = Telemetry(sink=None)
            wt.set_gauge("serve_sessions_open", 1)
            wt.count("serve_sessions_total", 1)
            wt.count("serve_session_pairs_total", pairs)
            wt.observe_histogram("serve_op_latency_seconds", 0.004, op="poll")
            snaps.append(label_snapshot(wt.metrics_snapshot(), worker=str(worker)))
        return merge_snapshots(snaps)

    def test_frame_sections_and_verdicts(self):
        frame = render_top(self._fleet_snapshot([600, 400]), source="test")
        assert "workers: 2" in frame
        assert "poll_p99_seconds" in frame and "ok" in frame
        assert "VIOLATED" in frame  # the stale-verdict objective
        assert "600" in frame and "400" in frame
        assert "p99<=" in frame  # latency sparkline line

    def test_rate_column_from_counter_deltas(self):
        prev = self._fleet_snapshot([1000, 0])
        cur = self._fleet_snapshot([3000, 0])
        frame = render_top(cur, prev=prev, interval_s=2.0)
        assert "1,000" in frame  # (3000-1000)/2s on worker 0
