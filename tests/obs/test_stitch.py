"""Trace stitching and the multi-input ``obs-report`` modes.

Cross-process stitching rests on span ids being pure functions of
(seed, structural path): the same logical span observed by two
processes collapses to one record, and the output order is sorted by
identity — so stitching N per-process traces is deterministic in both
file order and wall clock.  ``obs-report stitch-trace`` is the CLI
packaging of the same helper; ``--log``/``--trace`` are repeatable and
merge into one report.
"""

import json

from repro.obs.obs_report import build_parser, load_run_data, run_obs_report
from repro.obs.trace import (
    TraceContext,
    Tracer,
    read_chrome_trace,
    span_tree,
    stitch_chrome_traces,
    stitch_spans,
    write_chrome_trace,
)


def _worker_spans(ctx, start, end):
    """What a worker process records under a negotiated trace context."""
    tracer = Tracer.from_context(ctx)
    tracer.record_span("feed", category="serve", start_s=start, end_s=end, pairs=6.0)
    return tracer.spans


class TestStitchSpans:
    def test_dedupes_by_identity_longest_wins(self):
        ctx = TraceContext(seed=9, path="client/session:a")
        short = _worker_spans(ctx, 0.0, 1.0)
        long = _worker_spans(ctx, 0.0, 5.0)
        stitched = stitch_spans([short, long])
        assert len(stitched) == 1
        assert stitched[0].end_s == 5.0

    def test_order_independent_of_input_order(self):
        a = _worker_spans(TraceContext(seed=9, path="client/session:a"), 0.0, 1.0)
        b = _worker_spans(TraceContext(seed=9, path="client/session:b"), 0.0, 2.0)
        assert span_tree(stitch_spans([a, b])) == span_tree(stitch_spans([b, a]))

    def test_distinct_seeds_do_not_collide(self):
        same_path = "client/session:a"
        a = _worker_spans(TraceContext(seed=1, path=same_path), 0.0, 1.0)
        b = _worker_spans(TraceContext(seed=2, path=same_path), 0.0, 1.0)
        assert len(stitch_spans([a, b])) == 2


class TestStitchChromeTraces:
    def _write_fleet(self, tmp_path):
        paths = []
        for worker in range(2):
            ctx = TraceContext(seed=9, path=f"client/session:w{worker}")
            path = str(tmp_path / f"serve.worker-{worker}.trace")
            write_chrome_trace(path, _worker_spans(ctx, 0.0, 1.0 + worker))
            paths.append(path)
        return paths

    def test_round_trip_and_determinism(self, tmp_path):
        paths = self._write_fleet(tmp_path)
        out = str(tmp_path / "fleet.trace")
        stitched = stitch_chrome_traces(paths, out)
        assert span_tree(read_chrome_trace(out)) == span_tree(stitched)
        # Repeat with reversed input order: bit-identical structure.
        out2 = str(tmp_path / "fleet2.trace")
        again = stitch_chrome_traces(list(reversed(paths)), out2)
        assert span_tree(again) == span_tree(stitched)

    def test_cli_stitch_trace_mode(self, tmp_path, capsys):
        paths = self._write_fleet(tmp_path)
        out = str(tmp_path / "fleet.trace")
        args = build_parser().parse_args(
            ["stitch-trace", "--trace", paths[0], "--trace", paths[1], "--out", out]
        )
        assert run_obs_report(args) == 0
        assert "stitched" in capsys.readouterr().err
        assert len(read_chrome_trace(out)) == 2

    def test_cli_stitch_trace_requires_trace_and_out(self, tmp_path):
        args = build_parser().parse_args(["stitch-trace", "--out", "x.trace"])
        assert run_obs_report(args) == 2
        args = build_parser().parse_args(
            ["stitch-trace", "--trace", str(tmp_path / "a.trace")]
        )
        assert run_obs_report(args) == 2


class TestMultiInputReport:
    def _log(self, tmp_path, name, pass_index):
        path = str(tmp_path / name)
        with open(path, "w") as fh:
            fh.write(json.dumps({"event": "PassStarted", "pass_index": pass_index}) + "\n")
            fh.write(json.dumps({
                "event": "PassFinished", "pass_index": pass_index, "lists": 2,
                "pairs": 6, "seconds": 1.0, "pairs_per_second": 6.0,
            }) + "\n")
        return path

    def test_multiple_logs_concatenate_in_order(self, tmp_path):
        logs = [
            self._log(tmp_path, "a.jsonl", 0),
            self._log(tmp_path, "b.jsonl", 1),
        ]
        data = load_run_data(logs)
        assert len(data.events) == 4
        assert data.log_paths == logs
        assert data.log_path == logs[0]  # back-compat first-or-None view

    def test_string_path_still_accepted(self, tmp_path):
        log = self._log(tmp_path, "a.jsonl", 0)
        data = load_run_data(log)
        assert data.log_paths == [log]
        assert len(data.events) == 2

    def test_multiple_traces_stitch_into_report_spans(self, tmp_path):
        paths = []
        for worker in range(2):
            ctx = TraceContext(seed=3, path=f"client/session:w{worker}")
            path = str(tmp_path / f"w{worker}.trace")
            write_chrome_trace(path, _worker_spans(ctx, 0.0, 1.0))
            paths.append(path)
        data = load_run_data(trace_path=paths)
        assert len(data.spans) == 2
        assert data.trace_paths == paths

    def test_default_mode_still_report(self):
        args = build_parser().parse_args(["--log", "missing.jsonl"])
        assert args.mode == "report"
