"""The bench-report comparison engine and its CLI exit codes."""

import json

import pytest

from repro.obs.bench_report import (
    CONTEXT,
    GATE,
    INVARIANT,
    RESOURCE_HIGH,
    RESOURCE_LOW,
    TIMING_LOW,
    classify,
    compare_pair,
    evaluate_gates,
    load_artifact,
    load_flat_metrics,
    main,
)

BASELINE = {
    "quick": True,
    "workload.n": 500,
    "serial.seconds": 2.0,
    "serial.peak_space_words": 1000,
    "parallel.bit_identical": True,
    "parallel.success_rate": 0.9,
    "estimate": 150.0,
}


def _write(tmp_path, name, payload):
    path = tmp_path / name
    path.write_text(json.dumps(payload))
    return str(path)


def test_classification():
    assert classify("parallel.bit_identical", True) == INVARIANT
    assert classify("estimate", 150.0) == INVARIANT
    assert classify("serial.peak_space_words", 1000) == RESOURCE_LOW
    assert classify("trials.success_rate", 0.9) == RESOURCE_HIGH
    assert classify("serial.seconds", 2.0) == TIMING_LOW
    assert classify("workload.n", 500) == CONTEXT
    assert classify("strategy", "balanced") == CONTEXT


def test_identical_files_pass():
    deltas = compare_pair(dict(BASELINE), dict(BASELINE), threshold=0.25)
    assert not [d for d in deltas if d.status == "regression"]


def test_space_regression_gates():
    current = dict(BASELINE, **{"serial.peak_space_words": 1400})
    deltas = compare_pair(current, BASELINE, threshold=0.25)
    (reg,) = [d for d in deltas if d.status == "regression"]
    assert reg.key == "serial.peak_space_words"
    assert reg.relative_delta == pytest.approx(0.4)


def test_timing_not_gated_by_default():
    current = dict(BASELINE, **{"serial.seconds": 10.0})
    deltas = compare_pair(current, BASELINE, threshold=0.25)
    assert not [d for d in deltas if d.status == "regression"]
    gated = compare_pair(current, BASELINE, threshold=0.25, gate_timing=True)
    assert [d.key for d in gated if d.status == "regression"] == ["serial.seconds"]


def test_invariant_flip_is_strict():
    current = dict(BASELINE, **{"parallel.bit_identical": False})
    deltas = compare_pair(current, BASELINE, threshold=0.25)
    (reg,) = [d for d in deltas if d.status == "regression"]
    assert reg.key == "parallel.bit_identical"


def test_estimate_drift_breaks_determinism():
    current = dict(BASELINE, estimate=151.0)
    deltas = compare_pair(current, BASELINE, threshold=0.25)
    (reg,) = [d for d in deltas if d.status == "regression"]
    assert "determinism" in reg.note


def test_success_rate_gates_downward_only():
    worse = compare_pair(dict(BASELINE, **{"parallel.success_rate": 0.5}),
                         BASELINE, threshold=0.25)
    assert [d.key for d in worse if d.status == "regression"] == [
        "parallel.success_rate"
    ]
    better = compare_pair(dict(BASELINE, **{"parallel.success_rate": 1.0}),
                          BASELINE, threshold=0.25)
    assert not [d for d in better if d.status == "regression"]


def test_threshold_override_glob():
    current = dict(BASELINE, **{"serial.peak_space_words": 1400})
    deltas = compare_pair(
        current, BASELINE, threshold=0.25, overrides=[("*peak_space*", 0.5)]
    )
    assert not [d for d in deltas if d.status == "regression"]


def test_context_mismatch_warns_not_gates():
    current = dict(BASELINE, **{"workload.n": 900})
    deltas = compare_pair(current, BASELINE, threshold=0.25)
    (warn,) = [d for d in deltas if d.status == "context-mismatch"]
    assert warn.key == "workload.n"
    assert not [d for d in deltas if d.status == "regression"]


def test_load_flat_metrics_nests(tmp_path):
    path = _write(tmp_path, "BENCH_x.json", {"a": {"b": [1, 2]}, "c": 3})
    assert load_flat_metrics(path) == {"a.b.0": 1, "a.b.1": 2, "c": 3}


def test_cli_exit_codes(tmp_path, capsys):
    base = _write(tmp_path, "BENCH_a.json", BASELINE)
    same = _write(tmp_path, "fresh.json", BASELINE)
    degraded = _write(
        tmp_path, "BENCH_bad.json",
        dict(BASELINE, **{"parallel.bit_identical": False,
                          "serial.peak_space_words": 2000}),
    )
    assert main([same, "--against", base]) == 0
    assert main([degraded, "--against", base, "--format", "github"]) == 1
    out = capsys.readouterr().out
    assert "::error" in out
    # Unreadable input is a usage error, not a crash.
    assert main([str(tmp_path / "missing.json"), "--against", base]) == 2


def test_cli_writes_report_file(tmp_path, capsys):
    base = _write(tmp_path, "BENCH_a.json", BASELINE)
    out_path = tmp_path / "report.md"
    assert main([base, "--against", base, "--format", "markdown",
                 "--out", str(out_path)]) == 0
    assert out_path.read_text().strip() == capsys.readouterr().out.strip()


def test_cli_pairing_mismatch_is_an_error(tmp_path, capsys):
    a = _write(tmp_path, "one.json", BASELINE)
    b = _write(tmp_path, "two.json", BASELINE)
    c = _write(tmp_path, "three.json", BASELINE)
    # No basename overlap and unequal counts: nothing sane to pair.
    assert main([a, "--against", b, c]) == 2


# -- self-declared gates ------------------------------------------------------

GATED = {
    "cpu_count": 4,
    "fast_path": {"triangle": {"columnar_speedup": 6.2}},
    "sweep": {"speedup": 1.4},
    "gates": [
        {"metric": "fast_path.triangle.columnar_speedup", "min": 5.0},
        {"metric": "sweep.speedup", "min": 1.0, "needs_parallelism": True},
    ],
}


def test_load_artifact_splits_gates(tmp_path):
    path = _write(tmp_path, "BENCH_g.json", GATED)
    flat, gates = load_artifact(path)
    assert gates == GATED["gates"]
    assert "gates.0.metric" not in flat
    assert flat["fast_path.triangle.columnar_speedup"] == 6.2


def test_gates_pass_when_floors_met():
    flat = {"cpu_count": 4, "fast_path.triangle.columnar_speedup": 6.2,
            "sweep.speedup": 1.4}
    deltas = evaluate_gates(flat, GATED["gates"])
    assert [d.status for d in deltas] == ["ok", "ok"]
    assert all(d.kind == GATE for d in deltas)


def test_gate_floor_violation_is_a_regression():
    flat = {"cpu_count": 4, "fast_path.triangle.columnar_speedup": 3.0,
            "sweep.speedup": 1.4}
    deltas = evaluate_gates(flat, GATED["gates"])
    (reg,) = [d for d in deltas if d.status == "regression"]
    assert reg.key == "gate:fast_path.triangle.columnar_speedup"
    assert "below floor" in reg.note


def test_parallel_gate_skipped_on_single_core_with_note():
    flat = {"cpu_count": 1, "fast_path.triangle.columnar_speedup": 6.2,
            "sweep.speedup": 0.8}  # would fail, but cannot be gated here
    deltas = evaluate_gates(flat, GATED["gates"])
    by_key = {d.key: d for d in deltas}
    assert by_key["gate:sweep.speedup"].status == "skipped"
    assert "cpu_count=1" in by_key["gate:sweep.speedup"].note
    # The machine-independent columnar gate still applies on one core.
    assert by_key["gate:fast_path.triangle.columnar_speedup"].status == "ok"


def test_gate_on_missing_metric_warns():
    deltas = evaluate_gates({"cpu_count": 4}, [{"metric": "nope.speedup", "min": 1.0}])
    assert [d.status for d in deltas] == ["missing"]


def test_malformed_gate_warns_not_crashes():
    deltas = evaluate_gates({"cpu_count": 4}, [{"min": 1.0}, {"metric": "x"}])
    assert [d.status for d in deltas] == ["missing", "missing"]


def test_gate_ceiling():
    deltas = evaluate_gates(
        {"overhead.fraction": 0.4}, [{"metric": "overhead.fraction", "max": 0.25}]
    )
    assert deltas[0].status == "regression"
    assert "above ceiling" in deltas[0].note


def test_cli_gates_exit_code_and_visibility(tmp_path, capsys):
    failing = dict(GATED, fast_path={"triangle": {"columnar_speedup": 2.0}})
    cur = _write(tmp_path, "BENCH_g.json", failing)
    base = _write(tmp_path, "base.json", GATED)
    assert main([cur, "--against", base, "--format", "github"]) == 1
    out = capsys.readouterr().out
    assert "::error" in out and "below floor" in out
    # A passing artifact shows its gate verdicts (ok + skipped note).
    passing = _write(tmp_path, "BENCH_ok.json", dict(GATED, cpu_count=1))
    assert main([passing, "--against", base]) == 0
    out = capsys.readouterr().out
    assert "gate met" in out and "skipped" in out
