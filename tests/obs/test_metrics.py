"""Metric families: instruments, snapshots, merge and strip semantics."""

import pytest

from repro.obs.metrics import (
    COUNTER,
    GAUGE,
    TIMER,
    MetricRegistry,
    format_series,
    merge_snapshots,
    parse_series,
    strip_timers,
)


def test_series_key_round_trip():
    key = format_series("stream_pairs_total", {"pass": "0", "shard": "3"})
    assert key == "stream_pairs_total{pass=0,shard=3}"
    assert parse_series(key) == ("stream_pairs_total", {"pass": "0", "shard": "3"})
    assert parse_series("bare_name") == ("bare_name", {})


def test_counter_monotonic():
    registry = MetricRegistry()
    counter = registry.counter("events_total").labels()
    counter.inc()
    counter.inc(4)
    assert counter.value == 5
    with pytest.raises(ValueError):
        counter.inc(-1)


def test_gauge_tracks_high_water():
    gauge = MetricRegistry().gauge("space_words").labels()
    gauge.set(10)
    gauge.set(3)
    assert gauge.value == 3
    assert gauge.high_water == 10


def test_timer_accumulates():
    timer = MetricRegistry().timer("pass_seconds").labels()
    timer.observe(0.5)
    timer.observe(0.25)
    assert timer.total_seconds == 0.75
    assert timer.count == 2
    assert timer.max_seconds == 0.5
    with pytest.raises(ValueError):
        timer.observe(-0.1)


def test_timer_context_manager():
    timer = MetricRegistry().timer("block_seconds").labels()
    with timer.time():
        pass
    assert timer.count == 1
    assert timer.total_seconds >= 0


def test_labelled_series_are_independent():
    registry = MetricRegistry()
    family = registry.counter("pairs_total", labelnames=("pass",))
    family.labels(**{"pass": "0"}).inc(7)
    family.labels(**{"pass": "1"}).inc(2)
    snap = registry.snapshot()
    assert snap["pairs_total{pass=0}"]["value"] == 7
    assert snap["pairs_total{pass=1}"]["value"] == 2
    with pytest.raises(ValueError):
        family.labels(wrong="x")


def test_kind_conflict_rejected():
    registry = MetricRegistry()
    registry.counter("thing")
    with pytest.raises(ValueError):
        registry.gauge("thing")


def test_snapshot_load_round_trip():
    registry = MetricRegistry()
    registry.counter("a_total").labels().inc(3)
    g = registry.gauge("b_words").labels()
    g.set(9)
    g.set(2)
    registry.timer("c_seconds").labels().observe(1.5)
    snap = registry.snapshot()

    reloaded = MetricRegistry()
    reloaded.load_snapshot(snap)
    assert reloaded.snapshot() == snap


def test_merge_snapshots_semantics():
    a = {
        "pairs_total": {"kind": COUNTER, "value": 10},
        "space": {"kind": GAUGE, "value": 5, "high_water": 8},
        "t": {"kind": TIMER, "total_seconds": 1.0, "count": 2, "max_seconds": 0.8},
    }
    b = {
        "pairs_total": {"kind": COUNTER, "value": 4},
        "space": {"kind": GAUGE, "value": 7, "high_water": 7},
        "t": {"kind": TIMER, "total_seconds": 0.5, "count": 1, "max_seconds": 0.5},
    }
    merged = merge_snapshots([a, b])
    assert merged["pairs_total"]["value"] == 14
    assert merged["space"] == {"kind": GAUGE, "value": 7, "high_water": 8}
    assert merged["t"] == {
        "kind": TIMER, "total_seconds": 1.5, "count": 3, "max_seconds": 0.8,
    }
    # inputs untouched
    assert a["pairs_total"]["value"] == 10


def test_merge_rejects_kind_conflicts():
    with pytest.raises(ValueError):
        merge_snapshots([
            {"x": {"kind": COUNTER, "value": 1}},
            {"x": {"kind": GAUGE, "value": 1, "high_water": 1}},
        ])


def test_strip_timers():
    snap = {
        "a_total": {"kind": COUNTER, "value": 1},
        "t": {"kind": TIMER, "total_seconds": 1.0, "count": 1, "max_seconds": 1.0},
    }
    assert set(strip_timers(snap)) == {"a_total"}
