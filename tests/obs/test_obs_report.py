"""The obs-report dashboard: loading run artifacts and rendering them."""

import json

import pytest

from repro.core.triangle_two_pass import TwoPassTriangleCounter
from repro.graph.planted import planted_triangles
from repro.obs.obs_report import (
    RunData,
    _downsample,
    _sparkline,
    _timeline_rows,
    build_parser,
    load_run_data,
    main,
    render_report,
    run_obs_report,
)
from repro.obs.sinks import JsonlSink, TeeSink
from repro.obs.telemetry import Telemetry
from repro.obs.trace import Tracer, TraceSink, write_chrome_trace
from repro.streaming.runner import run_algorithm
from repro.streaming.stream import AdjacencyListStream

WORKLOAD = planted_triangles(120, 12, seed=7)


@pytest.fixture(scope="module")
def run_artifacts(tmp_path_factory):
    """One traced, telemetered run shared by every rendering test."""
    tmp = tmp_path_factory.mktemp("obs_report")
    log = str(tmp / "run.jsonl")
    trace = str(tmp / "run.trace")
    telemetry = Telemetry(sink=TeeSink(JsonlSink(log), TraceSink(trace)))
    tracer = Tracer(seed=3, telemetry=telemetry)
    with telemetry:
        with tracer:
            run = run_algorithm(
                TwoPassTriangleCounter(64, seed=5),
                AdjacencyListStream(WORKLOAD.graph, seed=9),
                telemetry=telemetry,
                tracer=tracer,
            )
    if tracer.spans:
        write_chrome_trace(trace, tracer.spans)
    return {"log": log, "trace": trace, "estimate": run.estimate}


class TestLoadRunData:
    def test_requires_at_least_one_input(self):
        with pytest.raises(ValueError, match="telemetry log"):
            load_run_data(None, None)

    def test_log_only(self, run_artifacts):
        data = load_run_data(run_artifacts["log"], None)
        assert data.events and data.spans  # spans recovered from SpanFinished
        assert data.trace_path is None

    def test_trace_only(self, run_artifacts):
        data = load_run_data(None, run_artifacts["trace"])
        assert data.events == [] and data.spans
        assert {s.path for s in data.spans} >= {"run", "run/pass:0", "run/pass:1"}

    def test_both_prefers_trace_file_for_spans(self, run_artifacts):
        data = load_run_data(run_artifacts["log"], run_artifacts["trace"])
        trace_only = load_run_data(None, run_artifacts["trace"])
        assert {s.span_id for s in data.spans} == {s.span_id for s in trace_only.spans}
        assert data.events


class TestRendering:
    @pytest.mark.parametrize("fmt", ["text", "markdown", "html"])
    def test_all_formats_have_the_core_sections(self, run_artifacts, fmt):
        data = load_run_data(run_artifacts["log"], run_artifacts["trace"])
        report = render_report(data, fmt=fmt, truth=float(WORKLOAD.true_count))
        for fragment in ("TwoPassTriangleCounter", "pass:0", "pairs"):
            assert fragment in report
        # Convergence section references the anytime estimates.
        assert "onvergence" in report

    def test_html_is_self_contained(self, run_artifacts):
        data = load_run_data(run_artifacts["log"], run_artifacts["trace"])
        html = render_report(data, fmt="html", truth=float(WORKLOAD.true_count))
        assert html.lstrip().startswith("<!DOCTYPE html>")
        assert "<style>" in html and "<svg" in html
        assert "http://" not in html and "https://" not in html  # no external assets

    def test_unknown_format_rejected(self, run_artifacts):
        data = load_run_data(run_artifacts["log"], None)
        with pytest.raises(ValueError, match="unknown obs-report format"):
            render_report(data, fmt="pdf")

    def test_log_only_timeline_falls_back_to_passes(self, run_artifacts):
        data = load_run_data(run_artifacts["log"], None)
        no_spans = RunData(
            events=data.events, spans=[], log_path=data.log_path, trace_path=None
        )
        rows = _timeline_rows(no_spans)
        assert [r.label for r in rows] == ["pass:0", "pass:1"]
        # Laid end to end: each pass starts where the previous ended.
        assert rows[1].start_s == pytest.approx(rows[0].start_s + rows[0].duration_s)


class TestCli:
    def test_exit_0_and_writes_out(self, run_artifacts, tmp_path, capsys):
        out = tmp_path / "report.md"
        args = build_parser().parse_args(
            [
                "--log", run_artifacts["log"],
                "--trace", run_artifacts["trace"],
                "--truth", str(WORKLOAD.true_count),
                "--format", "markdown",
                "--out", str(out),
            ]
        )
        assert run_obs_report(args) == 0
        assert "pass:0" in out.read_text()
        assert str(out) in capsys.readouterr().err

    def test_exit_2_without_inputs(self, capsys):
        assert main([]) == 2
        assert "--log and/or --trace" in capsys.readouterr().err

    def test_exit_2_on_unreadable_file(self, tmp_path, capsys):
        assert main(["--log", str(tmp_path / "missing.jsonl")]) == 2
        assert "missing.jsonl" in capsys.readouterr().err

    def test_exit_2_on_corrupt_trace(self, tmp_path, capsys):
        bad = tmp_path / "bad.trace"
        bad.write_text("not json at all")
        assert main(["--trace", str(bad)]) == 2
        capsys.readouterr()

    def test_stdout_when_no_out(self, run_artifacts, capsys):
        assert main(["--log", run_artifacts["log"]]) == 0
        assert "pass:0" in capsys.readouterr().out


class TestHelpers:
    def test_sparkline_maps_range_to_blocks(self):
        line = _sparkline([0.0, 1.0, 2.0, 3.0])
        assert len(line) == 4
        assert line[0] == "▁" and line[-1] == "█"
        assert _sparkline([]) == ""
        assert _sparkline([5.0, 5.0]) == "▁▁"  # flat series

    def test_downsample_keeps_ends_and_bounds_length(self):
        from repro.obs.diagnostics import EstimatePoint

        points = [
            EstimatePoint(pass_index=1, lists_done=i, estimate=float(i))
            for i in range(500)
        ]
        sampled = _downsample(points, limit=60)
        assert len(sampled) <= 60
        assert sampled[0] == points[0] and sampled[-1] == points[-1]
        assert _downsample(points[:3], limit=60) == points[:3]


def test_chrome_trace_schema_of_fixture(run_artifacts):
    """The committed artifact format stays loadable by Chrome's tracing UI."""
    with open(run_artifacts["trace"]) as fh:
        payload = json.load(fh)
    assert set(payload) == {"traceEvents", "displayTimeUnit"}
    for event in payload["traceEvents"]:
        assert {"ph", "ts", "pid", "tid", "name"} <= set(event)
