"""Sink round-trips: JSONL event logs, Prometheus textfiles, null no-ops."""

import pytest

from repro.obs.events import (
    EVENT_TYPES,
    MetricsReport,
    PassFinished,
    RunStarted,
    SpaceHighWater,
    decode_event,
    encode_event,
)
from repro.obs.metrics import MetricRegistry
from repro.obs.sinks import (
    NULL_SINK,
    InMemorySink,
    JsonlSink,
    NullSink,
    TextfileSink,
    parse_textfile,
    read_jsonl_events,
    render_textfile,
)
from repro.obs.telemetry import NULL_TELEMETRY, Telemetry, open_telemetry

EVENTS = [
    RunStarted(algorithm="TwoPassTriangleCounter", passes=2, pairs_per_pass=550),
    SpaceHighWater(pass_index=0, lists_done=3, words=17),
    PassFinished(pass_index=0, lists=100, pairs=550, seconds=0.01, pairs_per_second=55000.0),
    MetricsReport(metrics={"pairs_total": {"kind": "counter", "value": 550}}),
]


def test_event_codec_round_trip():
    for event in EVENTS:
        blob = encode_event(event)
        assert blob["event"] == type(event).__name__
        assert decode_event(blob) == event


def test_decode_rejects_unknown_type_and_fields():
    with pytest.raises(ValueError):
        decode_event({"event": "NoSuchEvent"})
    with pytest.raises(ValueError):
        decode_event({"event": "PassStarted", "pass_index": 0, "bogus": 1})
    assert len(EVENT_TYPES) == 16


def test_jsonl_round_trip(tmp_path):
    path = str(tmp_path / "run.jsonl")
    sink = JsonlSink(path)
    for event in EVENTS:
        sink.emit(event)
    sink.close()
    assert read_jsonl_events(path) == EVENTS
    with pytest.raises(ValueError):
        sink.emit(EVENTS[0])


def test_jsonl_reader_flags_bad_lines(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text('{"event": "PassStarted", "pass_index": 0}\nnot json\n')
    with pytest.raises(ValueError, match="bad.jsonl:2"):
        read_jsonl_events(str(path))


def test_in_memory_sink_filters():
    sink = InMemorySink()
    for event in EVENTS:
        sink.emit(event)
    assert sink.of_type(SpaceHighWater) == [EVENTS[1]]
    assert sink.metrics() == {"pairs_total": {"kind": "counter", "value": 550}}


def test_null_sink_is_disabled_no_op():
    assert NullSink.enabled is False
    assert NULL_SINK.emit(EVENTS[0]) is None
    NULL_SINK.close()


def test_null_telemetry_records_nothing():
    assert NULL_TELEMETRY.enabled is False
    NULL_TELEMETRY.count("x_total")
    NULL_TELEMETRY.set_gauge("y", 3)
    NULL_TELEMETRY.observe_seconds("z_seconds", 0.1)
    NULL_TELEMETRY.emit(EVENTS[0])
    NULL_TELEMETRY.close()
    assert NULL_TELEMETRY.metrics_snapshot() == {}


def test_textfile_round_trip():
    registry = MetricRegistry()
    family = registry.counter("pairs_total", help="pairs consumed", labelnames=("pass",))
    family.labels(**{"pass": "0"}).inc(550)
    family.labels(**{"pass": "1"}).inc(550)
    gauge = registry.gauge("space_words", help="live space").labels()
    gauge.set(12)
    gauge.set(7)
    registry.timer("pass_seconds").labels().observe(0.25)
    snapshot = registry.snapshot()
    text = render_textfile(snapshot, {"pairs_total": "pairs consumed"})

    assert "# HELP pairs_total pairs consumed" in text
    assert "# TYPE pairs_total counter" in text
    assert 'pairs_total{pass="0"} 550' in text
    assert "space_words_high_water 12" in text
    assert "pass_seconds_count 1" in text

    parsed, helps = parse_textfile(text)
    assert parsed == snapshot
    assert helps == {"pairs_total": "pairs consumed"}


def test_textfile_sink_writes_last_report(tmp_path):
    path = str(tmp_path / "metrics.prom")
    sink = TextfileSink(path)
    sink.emit(MetricsReport(metrics={"a_total": {"kind": "counter", "value": 1}}))
    sink.emit(MetricsReport(metrics={"a_total": {"kind": "counter", "value": 2}}))
    sink.close()
    with open(path) as fh:
        snapshot, _ = parse_textfile(fh.read())
    assert snapshot == {"a_total": {"kind": "counter", "value": 2}}


def test_telemetry_close_emits_final_metrics_report():
    sink = InMemorySink()
    telemetry = Telemetry(sink=sink)
    telemetry.count("events_total", 3)
    telemetry.close()
    telemetry.close()  # idempotent
    reports = sink.of_type(MetricsReport)
    assert len(reports) == 1
    assert reports[0].metrics["events_total"]["value"] == 3


def test_open_telemetry_picks_sink_by_extension(tmp_path):
    jsonl = open_telemetry(str(tmp_path / "log.jsonl"))
    assert isinstance(jsonl.sink, JsonlSink)
    jsonl.close()
    prom = open_telemetry(str(tmp_path / "metrics.prom"))
    assert isinstance(prom.sink, TextfileSink)
    prom.close()


def test_open_telemetry_trace_extension(tmp_path):
    from repro.obs.trace import TraceSink

    trace = open_telemetry(str(tmp_path / "run.trace"))
    assert isinstance(trace.sink, TraceSink)
    trace.close()
    trace_json = open_telemetry(str(tmp_path / "run.trace.json"))
    assert isinstance(trace_json.sink, TraceSink)
    trace_json.close()


def test_open_telemetry_rejects_unknown_extension(tmp_path):
    with pytest.raises(ValueError, match="unrecognised extension"):
        open_telemetry(str(tmp_path / "metrics.csv"))
    assert not (tmp_path / "metrics.csv").exists()


def test_tee_sink_fans_out_and_closes_all():
    from repro.obs.sinks import TeeSink

    first, second = InMemorySink(), InMemorySink()
    tee = TeeSink(first, second)
    for event in EVENTS:
        tee.emit(event)
    tee.close()
    assert first.events == EVENTS
    assert second.events == EVENTS


def test_telemetry_context_manager_closes_on_exception(tmp_path):
    path = str(tmp_path / "fail.jsonl")
    with pytest.raises(RuntimeError):
        with open_telemetry(path) as telemetry:
            telemetry.emit(EVENTS[0])
            telemetry.count("events_total")
            raise RuntimeError("mid-run failure")
    # The sink was flushed and closed on the exception path: the log is
    # complete, parseable JSONL ending in the final MetricsReport.
    events = read_jsonl_events(path)
    assert events[0] == EVENTS[0]
    assert isinstance(events[-1], MetricsReport)
    assert events[-1].metrics["events_total"]["value"] == 1
