"""Convergence diagnostics against the Theorem 3.7 / 4.6 budgets.

The acceptance pair pinned here: on a planted-triangle instance the
empirical relative error stays within the Theorem 3.7 budget at the
paper's space setting, AND a deliberately under-budgeted run is flagged
as a violation.
"""

import random

import pytest

from repro.core.triangle_two_pass import TwoPassTriangleCounter, recommended_sample_size
from repro.experiments.parallel import run_trial, trial_specs
from repro.graph.planted import planted_triangles
from repro.obs.diagnostics import (
    THEOREM_FOURCYCLE,
    THEOREM_TRIANGLE,
    ConvergenceVerdict,
    diagnose,
    estimate_trace,
    required_sample_size,
)
from repro.obs.events import EstimateSample, PassStarted
from repro.obs.sinks import InMemorySink
from repro.obs.telemetry import Telemetry
from repro.streaming.runner import run_algorithm
from repro.streaming.stream import AdjacencyListStream

WORKLOAD = planted_triangles(300, 30, seed=7)
PAPER_BUDGET = recommended_sample_size(WORKLOAD.m, WORKLOAD.true_count, epsilon=0.5)


def _factory(budget, seed):
    return TwoPassTriangleCounter(sample_size=budget, seed=seed)


def _estimates(budget, runs=12, seed=123):
    specs = trial_specs(random.Random(seed), budget, runs)
    return [run_trial(_factory, WORKLOAD.graph, s).estimate for s in specs]


class TestRequiredSampleSize:
    def test_delegates_to_the_algorithms(self):
        assert required_sample_size(
            THEOREM_TRIANGLE, WORKLOAD.m, WORKLOAD.true_count, epsilon=0.5
        ) == recommended_sample_size(WORKLOAD.m, WORKLOAD.true_count, epsilon=0.5)
        from repro.core.fourcycle_two_pass import (
            recommended_sample_size as fourcycle_size,
        )

        assert required_sample_size(THEOREM_FOURCYCLE, 1000, 50) == fourcycle_size(
            1000, 50
        )

    def test_unknown_theorem_rejected(self):
        with pytest.raises(ValueError, match="unknown theorem"):
            required_sample_size("9.9", 100, 10)


class TestVerdict:
    def test_paper_budget_passes_theorem_37(self):
        verdict = diagnose(
            _estimates(PAPER_BUDGET),
            WORKLOAD.true_count,
            WORKLOAD.m,
            PAPER_BUDGET,
            theorem=THEOREM_TRIANGLE,
            epsilon=0.5,
        )
        assert verdict.ok
        assert verdict.violations == ()
        assert verdict.median_relative_error <= 0.5
        assert verdict.success_rate >= 2 / 3
        assert verdict.variance <= verdict.variance_budget

    def test_under_budgeted_run_is_flagged(self):
        starved = max(1, PAPER_BUDGET // 8)
        verdict = diagnose(
            _estimates(starved),
            WORKLOAD.true_count,
            WORKLOAD.m,
            starved,
            theorem=THEOREM_TRIANGLE,
            epsilon=0.5,
        )
        assert not verdict.ok
        assert not verdict.space_budget_ok
        assert any("space budget" in violation for violation in verdict.violations)

    def test_bad_estimates_trip_the_empirical_checks(self):
        # Space budget fine, estimates off by 3x: error, success-rate and
        # variance checks all fire.
        verdict = diagnose(
            [90.0, 92.0, 88.0, 91.0],
            truth=30.0,
            m=WORKLOAD.m,
            sample_size=PAPER_BUDGET,
            epsilon=0.5,
        )
        assert verdict.space_budget_ok
        assert not verdict.relative_error_ok
        assert not verdict.success_rate_ok
        assert len(verdict.violations) >= 2

    def test_fourcycle_theorem_target(self):
        verdict = diagnose(
            [50.0] * 5,
            truth=50.0,
            m=1000,
            sample_size=10_000,
            theorem=THEOREM_FOURCYCLE,
            epsilon=1.0,
        )
        assert verdict.success_target == pytest.approx(4 / 5)
        assert verdict.ok

    def test_input_validation(self):
        with pytest.raises(ValueError, match="at least one"):
            diagnose([], 30.0, 100, 10)
        with pytest.raises(ValueError, match="truth"):
            diagnose([1.0], 0.0, 100, 10)
        with pytest.raises(ValueError, match="epsilon"):
            diagnose([1.0], 30.0, 100, 10, epsilon=0.0)

    def test_flat_dict_booleans_gate_under_bench_report(self):
        from repro.obs.bench_report import INVARIANT, classify, compare_pair

        verdict = diagnose(_estimates(PAPER_BUDGET, runs=4), WORKLOAD.true_count,
                           WORKLOAD.m, PAPER_BUDGET)
        flat = {f"convergence.{k}": v for k, v in verdict.to_flat_dict().items()}
        for key in ("convergence.ok", "convergence.space_budget_ok"):
            assert classify(key, flat[key]) == INVARIANT
        broken = dict(flat)
        broken["convergence.ok"] = False
        deltas = compare_pair(broken, flat, threshold=0.35)
        regressions = [d for d in deltas if d.status == "regression"]
        assert any(d.key == "convergence.ok" for d in regressions)
        assert any("invariant flipped" in d.note for d in regressions)


class TestEstimateTrace:
    def _events(self):
        sink = InMemorySink()
        telemetry = Telemetry(sink=sink)
        algo = TwoPassTriangleCounter(PAPER_BUDGET, seed=5)
        stream = AdjacencyListStream(WORKLOAD.graph, seed=11)
        run = run_algorithm(algo, stream, telemetry=telemetry)
        telemetry.close()
        return sink.events, run

    def test_trace_follows_emission_order_and_truth_annotates(self):
        events, run = self._events()
        samples = [e for e in events if isinstance(e, EstimateSample)]
        assert samples, "two-pass counter should emit anytime estimates"
        points = estimate_trace(events, truth=float(WORKLOAD.true_count))
        assert len(points) == len(samples)
        assert points[-1].estimate == run.estimate
        assert points[-1].relative_error == pytest.approx(
            abs(run.estimate - WORKLOAD.true_count) / WORKLOAD.true_count
        )
        # lists_done is non-decreasing within each pass.
        for first, second in zip(points, points[1:]):
            if first.pass_index == second.pass_index:
                assert first.lists_done <= second.lists_done

    def test_without_truth_no_errors(self):
        events, _ = self._events()
        points = estimate_trace(events)
        assert all(p.relative_error is None for p in points)

    def test_non_estimate_events_ignored(self):
        assert estimate_trace([PassStarted(pass_index=0)]) == []


def test_verdict_is_deterministic():
    one = diagnose(_estimates(PAPER_BUDGET), WORKLOAD.true_count, WORKLOAD.m, PAPER_BUDGET)
    two = diagnose(_estimates(PAPER_BUDGET), WORKLOAD.true_count, WORKLOAD.m, PAPER_BUDGET)
    assert one == two
    assert isinstance(one, ConvergenceVerdict)
