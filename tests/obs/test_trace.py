"""Trace spans: deterministic identity, schedule invariance, Chrome export.

The two pinned tentpole invariants:

* the exported trace validates against the Chrome trace-event schema
  (required keys, monotone timestamps within a thread track);
* serial and parallel executions of the same spec — both the sharded
  driver and a TrialSpec batch — produce *identical* span trees once
  timers are stripped (:func:`repro.obs.trace.span_tree`).
"""

import json
import random

import pytest

from repro.core.triangle_two_pass import TwoPassTriangleCounter
from repro.experiments.parallel import (
    ExecutionConfig,
    TrialExecutor,
    trial_spans,
    trial_specs,
)
from repro.graph.generators import gnm_random_graph
from repro.obs.events import RunStarted, SpanFinished
from repro.obs.sinks import InMemorySink, JsonlSink, TeeSink, read_jsonl_events
from repro.obs.telemetry import Telemetry
from repro.obs.trace import (
    NULL_TRACER,
    TraceContext,
    Tracer,
    TraceSink,
    chrome_trace_events,
    decode_span,
    encode_span,
    read_chrome_trace,
    span_id_for,
    span_tree,
    spans_from_events,
    write_chrome_trace,
)
from repro.sketch.driver import run_sharded
from repro.streaming.runner import run_algorithm
from repro.streaming.stream import AdjacencyListStream


def _record_tree(tracer_seed=7):
    """A small three-level span tree, for unit-level assertions."""
    tracer = Tracer(seed=tracer_seed)
    with tracer:
        with tracer.span("pass:0", category="pass") as sp:
            with tracer.span("shard:0", category="shard", pairs=10):
                pass
            with tracer.span("shard:1", category="shard", pairs=12):
                pass
            sp.set(pairs=22)
        with tracer.span("merge:0", category="merge", n_shards=2):
            pass
    return tracer


class TestSpanIdentity:
    def test_span_ids_are_deterministic_and_path_derived(self):
        first, second = _record_tree(), _record_tree()
        assert span_tree(first.spans) == span_tree(second.spans)
        by_path = {record.path: record for record in first.spans}
        for path, record in by_path.items():
            assert record.span_id == span_id_for(7, path)
            assert len(record.span_id) == 16
            int(record.span_id, 16)  # hex

    def test_parent_ids_link_the_tree(self):
        tracer = _record_tree()
        by_path = {record.path: record for record in tracer.spans}
        assert by_path["run"].parent_id == ""
        assert by_path["run/pass:0"].parent_id == by_path["run"].span_id
        assert by_path["run/pass:0/shard:1"].parent_id == by_path["run/pass:0"].span_id

    def test_different_seed_different_ids_same_shape(self):
        a, b = _record_tree(7), _record_tree(8)
        assert {r.path for r in a.spans} == {r.path for r in b.spans}
        assert {r.span_id for r in a.spans}.isdisjoint({r.span_id for r in b.spans})

    def test_timers_are_the_only_difference_between_runs(self):
        a, b = _record_tree(), _record_tree()
        stripped = lambda t: span_tree(t.spans)  # noqa: E731
        assert stripped(a) == stripped(b)
        assert [r.attrs for r in a.spans] == [r.attrs for r in b.spans]


class TestWireFormat:
    def test_encode_decode_round_trip(self):
        tracer = _record_tree()
        for record in tracer.spans:
            assert decode_span(encode_span(record)) == record
        # Wire form is JSON-safe.
        json.dumps(tracer.encoded_spans())

    def test_worker_context_and_adopt(self):
        parent = Tracer(seed=7)
        with parent:
            with parent.span("pass:0", category="pass"):
                ctx = parent.context()
                assert ctx == TraceContext(seed=7, path="run/pass:0")
                # Simulate the worker: child tracer, one shard span.
                child = Tracer.from_context(ctx)
                with child:
                    with child.span("shard:0", category="shard", pairs=5):
                        pass
                shipped = child.encoded_spans()
                parent.adopt(shipped)
        by_path = {r.path: r for r in parent.spans}
        shard = by_path["run/pass:0/shard:0"]
        assert shard.parent_id == by_path["run/pass:0"].span_id
        assert shard.span_id == span_id_for(7, "run/pass:0/shard:0")
        # The child never emitted its own root span.
        assert sum(1 for r in parent.spans if r.path == "run/pass:0") == 1

    def test_spans_flow_to_telemetry_as_events(self):
        sink = InMemorySink()
        telemetry = Telemetry(sink=sink)
        tracer = Tracer(seed=7, telemetry=telemetry)
        with tracer:
            with tracer.span("pass:0", category="pass"):
                pass
        events = sink.of_type(SpanFinished)
        assert [e.path for e in events] == ["run/pass:0", "run"]
        assert span_tree(spans_from_events(events)) == span_tree(tracer.spans)


class TestNullTracer:
    def test_null_tracer_is_inert(self):
        assert NULL_TRACER.enabled is False
        with NULL_TRACER:
            with NULL_TRACER.span("pass:0") as handle:
                handle.set(pairs=3)
        assert NULL_TRACER.spans == []
        assert NULL_TRACER.context() is None
        assert NULL_TRACER.adopt([{"bogus": True}]) == []

    def test_null_tracer_run_matches_untraced_run(self):
        graph = gnm_random_graph(200, 900, seed=3)
        stream = AdjacencyListStream(graph, seed=4)
        plain = run_algorithm(TwoPassTriangleCounter(64, seed=5), stream)
        nulled = run_algorithm(
            TwoPassTriangleCounter(64, seed=5), stream, tracer=NULL_TRACER
        )
        assert plain.estimate == nulled.estimate
        assert plain.peak_space_words == nulled.peak_space_words


class TestChromeExport:
    def test_required_keys_and_monotone_ts_per_tid(self):
        tracer = _record_tree()
        events = chrome_trace_events(tracer.spans)
        assert len(events) == len(tracer.spans)
        last_ts = {}
        for event in events:
            for key in ("ph", "ts", "pid", "tid", "name"):
                assert key in event, f"missing required key {key}"
            assert event["ph"] == "X"
            assert event["pid"] == 1
            assert isinstance(event["ts"], int) and event["ts"] >= 0
            assert event["dur"] >= 0
            tid = event["tid"]
            assert event["ts"] >= last_ts.get(tid, 0), "ts not monotone within tid"
            last_ts[tid] = event["ts"]

    def test_worker_units_get_their_own_tid(self):
        tracer = _record_tree()
        events = chrome_trace_events(tracer.spans)
        tid_of = {e["args"]["path"]: e["tid"] for e in events}
        assert tid_of["run/pass:0/shard:0"] != tid_of["run/pass:0/shard:1"]
        assert tid_of["run"] == tid_of["run/pass:0"] == tid_of["run/merge:0"]

    def test_write_read_round_trip(self, tmp_path):
        tracer = _record_tree()
        path = str(tmp_path / "run.trace")
        write_chrome_trace(path, tracer.spans)
        with open(path) as fh:
            payload = json.load(fh)
        assert payload["displayTimeUnit"] == "ms"
        loaded = read_chrome_trace(path)
        # Timestamps are quantised to microseconds, but the structural
        # identity survives the round trip exactly.
        assert span_tree(loaded) == span_tree(tracer.spans)

    def test_trace_sink_collects_spans_and_writes_on_close(self, tmp_path):
        path = str(tmp_path / "run.trace")
        sink = TraceSink(path)
        telemetry = Telemetry(sink=sink)
        tracer = Tracer(seed=7, telemetry=telemetry)
        with tracer:
            with tracer.span("pass:0", category="pass"):
                pass
        telemetry.emit(RunStarted(algorithm="X", passes=1, pairs_per_pass=0))  # dropped
        telemetry.close()
        assert span_tree(read_chrome_trace(path)) == span_tree(tracer.spans)
        with pytest.raises(ValueError):
            sink.emit(RunStarted(algorithm="X", passes=1, pairs_per_pass=0))

    def test_tee_sink_yields_both_artifacts(self, tmp_path):
        log = str(tmp_path / "run.jsonl")
        trace = str(tmp_path / "run.trace")
        telemetry = Telemetry(sink=TeeSink(JsonlSink(log), TraceSink(trace)))
        tracer = Tracer(seed=7, telemetry=telemetry)
        with telemetry:
            with tracer:
                with tracer.span("pass:0", category="pass"):
                    pass
        logged = spans_from_events(read_jsonl_events(log))
        assert span_tree(logged) == span_tree(tracer.spans)
        assert span_tree(read_chrome_trace(trace)) == span_tree(tracer.spans)


def _factory(budget, seed):
    """Module-level (picklable) trial factory."""
    return TwoPassTriangleCounter(sample_size=max(budget, 1), seed=seed)


def _trial_batch_tree(workers):
    graph = gnm_random_graph(120, 500, seed=3)
    specs = trial_specs(random.Random(42), 64, 4)
    config = ExecutionConfig(workers=workers, trace_seed=11)
    with TrialExecutor(_factory, graph, config) as executor:
        results = executor.run(specs)
    parent = Tracer(seed=11)
    with parent:
        parent.adopt(trial_spans(results))
    return results, span_tree(parent.spans)


class TestScheduleInvariance:
    def test_trial_batch_serial_equals_parallel(self):
        serial_results, serial_tree = _trial_batch_tree(workers=None)
        parallel_results, parallel_tree = _trial_batch_tree(workers=2)
        assert serial_tree == parallel_tree
        assert [r.estimate for r in serial_results] == [
            r.estimate for r in parallel_results
        ]
        paths = {entry[0] for entry in serial_tree}
        assert "run" in paths
        assert "run/trial:0/pass:0" in paths and "run/trial:3/pass:1" in paths

    def test_sharded_serial_equals_parallel(self):
        def run(workers):
            graph = gnm_random_graph(120, 500, seed=3)
            stream = AdjacencyListStream(graph, seed=4)
            algo = TwoPassTriangleCounter(64, seed=5, sharded=True)
            tracer = Tracer(seed=11)
            with tracer:
                result = run_sharded(
                    algo, stream, 3, workers=workers, merge_seed=1, tracer=tracer
                )
            return result, span_tree(tracer.spans)

        serial_result, serial_tree = run(None)
        parallel_result, parallel_tree = run(2)
        assert serial_tree == parallel_tree
        assert serial_result.estimate == parallel_result.estimate
        paths = {entry[0] for entry in serial_tree}
        assert "run/pass:0/shard:2" in paths and "run/pass:1/merge:1" in paths
        # Shard attrs (pairs, peaks) are schedule-invariant numbers.
        shard_attrs = [entry[5] for entry in serial_tree if "shard:" in entry[0]]
        assert all(dict(attrs)["pairs"] > 0 for attrs in shard_attrs)
