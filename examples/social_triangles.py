#!/usr/bin/env python3
"""Social-network scenario: clustering analysis of a power-law graph.

The paper's introduction motivates triangle counting with community
detection and clustering analysis of social networks.  This example builds
a Holme–Kim power-law graph (heavy-tailed degrees + tunable clustering —
the stand-in for a SNAP-style social network; no network access in this
environment), then estimates in two passes over the adjacency-list stream:

* the triangle count (Theorem 3.7, boosted to 1-δ confidence),
* the global transitivity 3T/P2 (wedge count is exact in this model).

It compares the two-pass counter against the one-pass prior-work baseline
at equal space.
"""

from repro import (
    MedianBoosted,
    OnePassTriangleCounter,
    TransitivityEstimator,
    TwoPassTriangleCounter,
    copies_for_confidence,
    run_algorithm,
    triangle_sample_size,
)
from repro.graph import count_triangles, powerlaw_cluster_graph, transitivity
from repro.streaming import AdjacencyListStream


def main() -> None:
    graph = powerlaw_cluster_graph(n=1500, attach=4, triangle_prob=0.6, seed=10)
    truth = count_triangles(graph)
    true_kappa = transitivity(graph)
    print(f"social graph: n={graph.n} m={graph.m}")
    print(f"ground truth: T={truth}, transitivity={true_kappa:.4f}")

    stream = AdjacencyListStream(graph, seed=11)
    budget = triangle_sample_size(graph.m, truth, epsilon=0.4)
    print(f"\nsample size m' = {budget}")

    # --- Two-pass triangle estimate, amplified to 95% confidence. ---
    copies = copies_for_confidence(0.05, constant=3.0)
    boosted = MedianBoosted(
        lambda seed: TwoPassTriangleCounter(sample_size=budget, seed=seed),
        copies=copies,
        seed=12,
    )
    result = run_algorithm(boosted, stream)
    err = abs(result.estimate - truth) / truth
    print(f"two-pass (x{copies} copies): T^ = {result.estimate:.0f}  rel err = {err:.3f}")

    # --- One-pass baseline at (roughly) the same per-copy space. ---
    rate = min(1.0, budget / graph.m)
    one_pass = OnePassTriangleCounter(sample_rate=rate, seed=13)
    op_result = run_algorithm(one_pass, stream)
    op_err = abs(op_result.estimate - truth) / truth
    print(f"one-pass baseline:          T^ = {op_result.estimate:.0f}  rel err = {op_err:.3f}")

    # --- Transitivity, the quantity community-detection pipelines use. ---
    kappa_algo = TransitivityEstimator(sample_size=budget, seed=14)
    kappa_result = run_algorithm(kappa_algo, stream)
    print(
        f"\ntransitivity estimate = {kappa_result.estimate:.4f}"
        f"  (truth {true_kappa:.4f}; wedge count P2 = {kappa_algo.wedge_count()} is exact)"
    )


if __name__ == "__main__":
    main()
