#!/usr/bin/env python3
"""Lower-bound machinery tour: gadgets, protocols, message sizes.

Walks through the five constructions of Figure 1:

1. builds each gadget for a yes- and a no-instance;
2. verifies the promised cycle counts by exact counting;
3. runs a real streaming algorithm over the player-partitioned stream as
   a communication protocol, printing the decoded answer and the message
   sizes — the reduction that turns communication lower bounds into
   streaming space lower bounds.
"""

from repro import ExactCycleCounter
from repro.graph import count_cycles, count_four_cycles, count_triangles
from repro.lowerbounds import run_protocol
from repro.lowerbounds.problems import (
    random_three_disj_instance,
    random_three_pj_instance,
)
from repro.lowerbounds.reductions import (
    fourcycle_multipass,
    fourcycle_one_pass,
    longcycle_multipass,
    triangle_multipass,
    triangle_one_pass,
)


def show(name: str, gadget, exact: int) -> None:
    result = run_protocol(ExactCycleCounter(gadget.cycle_length), gadget)
    sizes = ", ".join(
        f"{msg.sender}->{msg.receiver}:{msg.state_words}w" for msg in result.messages
    )
    status = "OK" if result.output == gadget.answer else "WRONG"
    print(
        f"  {name}: answer={gadget.answer} exact_cycles={exact}"
        f" (promised {gadget.promised_cycles}) -> protocol output {result.output}"
        f" [{status}]"
    )
    print(f"    n={gadget.graph.n} m={gadget.graph.m}; messages: {sizes}")


def main() -> None:
    print("Figure 1a — 3-PJ -> one-pass triangle counting (Thm 5.1)")
    for answer in (0, 1):
        inst = random_three_pj_instance(12, answer, seed=answer)
        gadget = triangle_one_pass.build_gadget(inst, k=4)
        show("3-PJ gadget", gadget, count_triangles(gadget.graph))

    print("\nFigure 1b — 3-DISJ -> multipass triangle counting (Thm 5.2)")
    for inter in (False, True):
        inst = random_three_disj_instance(8, inter, seed=int(inter))
        gadget = triangle_multipass.build_gadget(inst, k=3)
        show("3-DISJ gadget", gadget, count_triangles(gadget.graph))

    print("\nFigure 1c — INDEX -> one-pass 4-cycle counting (Thm 5.3)")
    for answer in (0, 1):
        gadget, _ = fourcycle_one_pass.random_gadget(
            min_side=13, k=5, answer=answer, seed=answer + 10
        )
        show("INDEX gadget", gadget, count_four_cycles(gadget.graph))

    print("\nFigure 1d — DISJ -> multipass 4-cycle counting (Thm 5.4)")
    for inter in (False, True):
        gadget, _ = fourcycle_multipass.random_gadget(
            min_side_r=7, min_side_k=7, intersecting=inter, seed=int(inter) + 20
        )
        show("DISJ gadget", gadget, count_four_cycles(gadget.graph))

    print("\nFigure 1e — DISJ -> l-cycle counting, l >= 5 (Thm 5.5)")
    for length in (5, 6, 7):
        for inter in (False, True):
            gadget, _ = longcycle_multipass.random_gadget(
                r=20, cycles=6, length=length, intersecting=inter, seed=length
            )
            show(f"l={length} gadget", gadget, count_cycles(gadget.graph, length))


if __name__ == "__main__":
    main()
