#!/usr/bin/env python3
"""4-cycle counting: butterfly census of a bipartite interaction graph.

In bipartite graphs (users x items, authors x papers) the 4-cycle
("butterfly") count is the basic clustering statistic — triangles cannot
exist.  This example builds a bipartite graph with planted co-interaction
structure and runs the paper's two-pass 4-cycle counter (Theorem 4.6) at
the Õ(m/T^{3/8}) budget, in both counting modes, against ground truth.

It also demonstrates the one-pass/two-pass separation (Theorems 5.3 vs
4.6): the one-pass heuristic's detections collapse at the same space
budget where the two-pass algorithm is accurate.
"""

from repro import (
    OnePassFourCycleHeuristic,
    TwoPassFourCycleCounter,
    fourcycle_sample_size,
    run_algorithm,
)
from repro.graph import count_four_cycles, random_bipartite_graph
from repro.streaming import AdjacencyListStream


def main() -> None:
    graph = random_bipartite_graph(400, 400, 4000, seed=20)
    truth = count_four_cycles(graph)
    print(f"bipartite graph: n={graph.n} m={graph.m}, true 4-cycle count T={truth}")

    stream = AdjacencyListStream(graph, seed=21)
    budget = fourcycle_sample_size(graph.m, truth)
    print(f"sample size m' = {budget} = Θ(m/T^(3/8))  (vs m = {graph.m})")

    for mode in ("multiplicity", "distinct"):
        algo = TwoPassFourCycleCounter(sample_size=budget, mode=mode, seed=22)
        result = run_algorithm(algo, stream)
        factor = result.estimate / truth if truth else float("nan")
        print(
            f"two-pass [{mode:>12}]: T^ = {result.estimate:9.0f}"
            f"  (x{factor:.2f} of truth, {algo.wedge_sample_size} wedges tracked,"
            f" peak {result.peak_space_words} words)"
        )

    # One-pass attempt at the same edge-sampling rate: no guarantee exists
    # (Theorem 5.3), and detections are a small, order-dependent fraction.
    rate = min(1.0, budget / graph.m)
    heuristic = OnePassFourCycleHeuristic(sample_rate=rate, seed=23)
    h_result = run_algorithm(heuristic, stream)
    print(
        f"one-pass heuristic at p={rate:.3f}: detected {heuristic.detected_cycles}"
        f" cycles, optimistic estimate {heuristic.estimate():.0f} (truth {truth})"
    )


if __name__ == "__main__":
    main()
