#!/usr/bin/env python3
"""Estimating without knowing T: the adaptive geometric-level counter.

Every Table-1 bound is parameterised by the unknown count T, so the
theorem-rate sample sizes cannot be computed up front.  The standard
remedy (implemented here as an extension, not part of the paper) runs
geometrically shrinking levels in the same two passes and trusts the
cheapest level with enough counted evidence.

The script runs the adaptive counter over three graphs whose triangle
counts span two orders of magnitude — using the *same* configuration for
all three — and shows which level each one selects.
"""

from repro.core import AdaptiveTriangleCounter
from repro.graph import planted_triangles
from repro.streaming import AdjacencyListStream, run_algorithm


def main() -> None:
    m_target = 3000
    for true_t in (20, 200, 900):
        planted = planted_triangles(m_target - 3 * true_t, true_t, seed=true_t)
        graph = planted.graph
        algo = AdaptiveTriangleCounter(max_sample_size=graph.m, seed=1)
        result = run_algorithm(algo, AdjacencyListStream(graph, seed=2))
        chosen = algo.chosen_level()
        err = abs(result.estimate - true_t) / true_t
        print(
            f"T = {true_t:4d}: estimate {result.estimate:7.1f} (rel err {err:.2f}) "
            f"from level m' = {chosen.sample_size:5d} "
            f"with {chosen.counted_pairs()} counted pairs"
        )
        for row in algo.level_report():
            marker = "<-- chosen" if row["sample_size"] == chosen.sample_size else ""
            print(
                f"    level m'={row['sample_size']:5d}: support={row['counted_pairs']:4d}"
                f" estimate={row['estimate']:8.1f} {marker}"
            )


if __name__ == "__main__":
    main()
