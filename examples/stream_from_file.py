#!/usr/bin/env python3
"""File-backed pipeline: serialize a graph, replay it as a stream, estimate.

Shows the I/O layer: a graph is written in the adjacency-list text format
(one ``v: neighbours`` line per vertex — the on-disk twin of the streaming
model's input), read back, validated against the model's promise, and fed
to the triangle and 4-cycle estimators.
"""

import tempfile
from pathlib import Path

from repro import TwoPassFourCycleCounter, TwoPassTriangleCounter, run_algorithm
from repro.graph import (
    count_four_cycles,
    count_triangles,
    gnm_random_graph,
    read_adjacency_list,
    write_adjacency_list,
)
from repro.streaming import AdjacencyListStream, validate_pair_sequence


def main() -> None:
    original = gnm_random_graph(n=400, m=2500, seed=30)
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "graph.adj"
        write_adjacency_list(original, path)
        print(f"wrote {path.stat().st_size} bytes of adjacency lists")

        graph = read_adjacency_list(path)
        assert sorted(graph.edges()) == sorted(original.edges())
        print(f"re-read graph: n={graph.n} m={graph.m}")

    stream = AdjacencyListStream(graph, seed=31)
    validate_pair_sequence(list(stream.iter_pairs()))
    print("stream validated against the adjacency-list model's promise")

    t3, t4 = count_triangles(graph), count_four_cycles(graph)
    tri = run_algorithm(TwoPassTriangleCounter(sample_size=800, seed=32), stream)
    fc = run_algorithm(TwoPassFourCycleCounter(sample_size=800, seed=33), stream)
    print(f"triangles: estimate {tri.estimate:.0f} vs truth {t3}")
    print(f"4-cycles:  estimate {fc.estimate:.0f} vs truth {t4}")


if __name__ == "__main__":
    main()
