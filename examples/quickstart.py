#!/usr/bin/env python3
"""Quickstart: estimate a graph's triangle count from an adjacency-list stream.

Builds a random graph, streams it in adjacency-list order, and runs the
paper's two-pass triangle counter (Theorem 3.7) at the theorem's sample
size, comparing against exact ground truth and the trivial store-everything
baseline's space.
"""

from repro import TwoPassTriangleCounter, run_algorithm, triangle_sample_size
from repro.graph import count_triangles, gnm_random_graph
from repro.streaming import AdjacencyListStream


def main() -> None:
    # A random graph with a healthy number of triangles.
    graph = gnm_random_graph(n=800, m=6000, seed=0)
    truth = count_triangles(graph)
    print(f"graph: n={graph.n} m={graph.m}, true triangle count T={truth}")

    # The adversary picks the stream order; we just pick one at random.
    stream = AdjacencyListStream(graph, seed=1)

    # Theorem 3.7: m' = Θ(m / (ε² T^{2/3})) suffices for a (1 ± ε) estimate.
    epsilon = 0.3
    budget = triangle_sample_size(graph.m, truth, epsilon=epsilon)
    print(f"sample size m' = {budget} (vs m = {graph.m} for exact counting)")

    algo = TwoPassTriangleCounter(sample_size=budget, seed=2)
    result = run_algorithm(algo, stream)

    rel_err = abs(result.estimate - truth) / truth
    print(f"estimate  = {result.estimate:.1f}")
    print(f"rel error = {rel_err:.3f} (target ε = {epsilon})")
    print(f"peak space = {result.peak_space_words} words over {result.passes} passes")
    print(f"store-everything would need ~{2 * graph.m + graph.n} words")


if __name__ == "__main__":
    main()
