"""Small statistics helpers shared across estimators and experiments."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Sequence


def median(values: Sequence[float]) -> float:
    """Return the median of ``values`` (mean of middle two when even)."""
    if not values:
        raise ValueError("median of empty sequence")
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2 == 1:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def mean(values: Sequence[float]) -> float:
    """Return the arithmetic mean of ``values``."""
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def variance(values: Sequence[float]) -> float:
    """Return the population variance of ``values``."""
    mu = mean(values)
    return sum((v - mu) ** 2 for v in values) / len(values)


def stddev(values: Sequence[float]) -> float:
    """Return the population standard deviation of ``values``."""
    return math.sqrt(variance(values))


def relative_error(estimate: float, truth: float) -> float:
    """Return ``|estimate - truth| / truth``; infinity when truth is 0."""
    if truth == 0:
        return math.inf if estimate != 0 else 0.0
    return abs(estimate - truth) / abs(truth)


def median_of_runs(estimates: Sequence[float]) -> float:
    """Median aggregation for probability amplification (Chernoff trick)."""
    return median(estimates)


@dataclass(frozen=True)
class ErrorSummary:
    """Aggregate accuracy of a batch of repeated estimates."""

    truth: float
    n_runs: int
    mean_estimate: float
    median_estimate: float
    median_relative_error: float
    mean_relative_error: float
    stddev_estimate: float

    @property
    def median_within(self) -> float:
        """Relative error of the median estimate (amplified accuracy)."""
        return relative_error(self.median_estimate, self.truth)


def summarize_errors(estimates: Sequence[float], truth: float) -> ErrorSummary:
    """Summarise repeated estimates of a known ground truth."""
    rel = [relative_error(e, truth) for e in estimates]
    return ErrorSummary(
        truth=truth,
        n_runs=len(estimates),
        mean_estimate=mean(estimates),
        median_estimate=median(estimates),
        median_relative_error=median(rel),
        mean_relative_error=mean(rel),
        stddev_estimate=stddev(estimates),
    )


def fit_power_law(xs: Sequence[float], ys: Sequence[float]) -> tuple:
    """Least-squares fit of ``y = c * x**alpha``; returns ``(alpha, c)``.

    Used by the Table-1 experiments to recover empirical space exponents
    (e.g. required sample size vs. triangle count should fit alpha near
    -2/3 for the two-pass algorithm).  Zero or negative data points are
    rejected because the fit runs in log space.
    """
    if len(xs) != len(ys) or len(xs) < 2:
        raise ValueError("need at least two (x, y) pairs of equal length")
    if any(x <= 0 for x in xs) or any(y <= 0 for y in ys):
        raise ValueError("power-law fit requires positive data")
    lx = [math.log(x) for x in xs]
    ly = [math.log(y) for y in ys]
    n = len(lx)
    mx = sum(lx) / n
    my = sum(ly) / n
    sxx = sum((v - mx) ** 2 for v in lx)
    sxy = sum((a - mx) * (b - my) for a, b in zip(lx, ly))
    if sxx == 0:
        raise ValueError("x values must not all be equal")
    alpha = sxy / sxx
    c = math.exp(my - alpha * mx)
    return alpha, c


def geometric_range(lo: float, hi: float, count: int) -> List[float]:
    """Return ``count`` geometrically spaced values from ``lo`` to ``hi``."""
    if count < 1:
        raise ValueError("count must be positive")
    if lo <= 0 or hi <= 0:
        raise ValueError("geometric range requires positive endpoints")
    if count == 1:
        return [lo]
    ratio = (hi / lo) ** (1.0 / (count - 1))
    return [lo * ratio**i for i in range(count)]


def quantile(values: Sequence[float], q: float) -> float:
    """Return the ``q``-quantile of ``values`` by linear interpolation."""
    if not values:
        raise ValueError("quantile of empty sequence")
    if not 0.0 <= q <= 1.0:
        raise ValueError("q must lie in [0, 1]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    pos = q * (len(ordered) - 1)
    lo = math.floor(pos)
    hi = math.ceil(pos)
    if lo == hi:
        return ordered[lo]
    frac = pos - lo
    return ordered[lo] * (1 - frac) + ordered[hi] * frac


def success_rate(outcomes: Iterable[bool]) -> float:
    """Return the fraction of True outcomes."""
    outcomes = list(outcomes)
    if not outcomes:
        raise ValueError("success rate of empty sequence")
    return sum(1 for o in outcomes if o) / len(outcomes)
