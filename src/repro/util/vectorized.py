"""Columnar (numpy-vectorized) kernels for the streaming hot path.

The paper's samplers are *hash-priority* based: every edge carries a fixed
pseudorandom priority shared across passes, and all sampling decisions are
comparisons against that priority.  That structure vectorizes directly —
hash a whole adjacency list's edges at once, compare against the current
bottom-k threshold with one vectorized comparison, and let only the few
surviving candidates touch Python-level data structures.

This module holds the kernels; they are drop-in, **bit-identical**
replacements for the scalar implementations in :mod:`repro.util.hashing`:

* :func:`encode_pair_keys` — vectorized ``_to_int_key((u, v))`` for edge
  tuples of non-negative ints (the samplers' canonical edge keys).
* :func:`splitmix64_array` / :func:`mixhash_int_array` — vectorized
  ``_splitmix64`` / :meth:`MixHash64.hash_int` over encoded key arrays.
* :func:`pairwise_int_array` — vectorized :meth:`PairwiseHash.hash_int`
  (``(a·x + b) mod (2^89 − 1)`` via 32-bit limb arithmetic, exact).

Bit-identity is pinned by hypothesis property tests
(``tests/util/test_vectorized.py``); the scalar implementations remain the
oracle and the fallback for exotic vertex labels (see
:func:`as_vertex_array`).

The module-level switch :func:`set_columnar_enabled` /
:func:`scalar_oracle` lets tests and benchmarks force every consumer back
onto the scalar path, which is how columnar-vs-scalar equivalence and
throughput are measured end to end.
"""

from __future__ import annotations

import contextlib
from typing import Iterator, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "as_vertex_array",
    "as_vertex_scalar",
    "canonical_pair_columns",
    "ColumnMemo",
    "edge_columns",
    "columnar_enabled",
    "encode_pair_keys",
    "encode_int_keys",
    "in_sorted",
    "mixhash_int_array",
    "mixhash_unit_array",
    "pairwise_int_array",
    "PairColumns",
    "scalar_oracle",
    "set_columnar_enabled",
    "splitmix64_array",
    "VertexTable",
]

_MASK64 = (1 << 64) - 1

# Constants mirrored from repro.util.hashing (kept as np.uint64 scalars so
# the per-list kernels never pay a Python-int -> numpy conversion).
_FNV_PRIME = np.uint64(0x100000001B3)
#: ``_to_int_key`` tuple accumulator after the first multiply:
#: ``(0x243F6A8885A308D3 * 0x100000001B3) & MASK64``.
_TUPLE_ACC1 = np.uint64((0x243F6A8885A308D3 * 0x100000001B3) & _MASK64)
_SM_GOLDEN = np.uint64(0x9E3779B97F4A7C15)
_SM_MUL1 = np.uint64(0xBF58476D1CE4E5B9)
_SM_MUL2 = np.uint64(0x94D049BB133111EB)
_SM_S1 = np.uint64(30)
_SM_S2 = np.uint64(27)
_SM_S3 = np.uint64(31)

_MASK32 = (1 << 32) - 1
#: Mersenne prime 2^89 - 1 (matches hashing._MERSENNE_P).
_MERSENNE_P = (1 << 89) - 1
_M25 = np.uint64((1 << 25) - 1)  # high 25 bits of an 89-bit value
_U64_MAX = np.uint64(_MASK64)

# -- global columnar switch ----------------------------------------------------

_COLUMNAR_ENABLED = True


def columnar_enabled() -> bool:
    """Whether consumers should use the columnar kernels (default True)."""
    return _COLUMNAR_ENABLED


def set_columnar_enabled(enabled: bool) -> bool:
    """Toggle the columnar fast path globally; returns the previous value.

    The scalar implementations are always available and bit-identical, so
    flipping this mid-run only changes speed, never results.
    """
    global _COLUMNAR_ENABLED
    previous = _COLUMNAR_ENABLED
    _COLUMNAR_ENABLED = bool(enabled)
    return previous


@contextlib.contextmanager
def scalar_oracle() -> Iterator[None]:
    """Context manager forcing every consumer onto the scalar oracle path.

    Used by the equivalence tests and the columnar-vs-scalar throughput
    benchmark: run once inside this context, once outside, and require
    bit-identical estimates, sampler state and space trajectories.
    """
    previous = set_columnar_enabled(False)
    try:
        yield
    finally:
        set_columnar_enabled(previous)


# -- input adaptation ----------------------------------------------------------

def as_vertex_array(vertices: Sequence) -> Optional[np.ndarray]:
    """Convert a neighbour list to a ``uint64`` array, or None to fall back.

    The columnar kernels are exact only for vertices that are non-negative
    Python ints below 2^64 (the universal case for generated graphs).
    Anything else — structured tuples from the lower-bound gadgets,
    strings, negative or huge ints — returns ``None`` and the caller uses
    the scalar path.  The leading ``type(...) is int`` probe keeps the
    common rejection (gadget labels) cheap and refuses bools and numeric
    subclasses whose ``__index__`` could diverge from the scalar hash.
    """
    if not vertices or type(vertices[0]) is not int:
        return None
    try:
        return np.asarray(vertices, dtype=np.uint64)
    except (OverflowError, ValueError, TypeError):
        return None


def as_vertex_scalar(vertex: object) -> Optional[np.uint64]:
    """Single-vertex counterpart of :func:`as_vertex_array`."""
    if type(vertex) is not int:
        return None
    try:
        return np.uint64(vertex)
    except (OverflowError, ValueError, TypeError):
        return None


class ColumnMemo:
    """Identity-keyed memo of per-list vertex-id columns.

    The callable counterpart of ``AdjacencyListStream.columns_for`` for
    contexts that hold adjacency lists without a stream object — shard
    workers in the sharded driver keep one per shard, so a multi-pass
    algorithm converts each list to a ``uint64`` column once and reuses
    it across passes.  ``neighbors`` is identity-checked against the
    cached entry (the shard's lists are fixed tuples replayed verbatim
    each pass), so a different object for the same vertex misses and
    re-converts.  Results are bit-identical to a direct
    :func:`as_vertex_array` call; this is purely an acceleration channel.
    """

    __slots__ = ("_cache",)

    def __init__(self) -> None:
        self._cache: dict = {}

    def __call__(self, vertex: object, neighbors: Sequence) -> Optional[np.ndarray]:
        entry = self._cache.get(vertex)
        if entry is None or entry[0] is not neighbors:
            entry = (neighbors, as_vertex_array(neighbors))
            self._cache[vertex] = entry
        return entry[1]


def canonical_pair_columns(
    source: np.uint64, neighbors: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Columnar ``canonical_edge(source, nbr)``: (min, max) endpoint arrays."""
    return np.minimum(neighbors, source), np.maximum(neighbors, source)


def edge_columns(
    source: object, neighbors: Sequence
) -> Optional[Tuple[np.ndarray, np.ndarray]]:
    """Canonical edge columns for one adjacency list, or None to fall back.

    The counters' single entry point into the columnar path: returns the
    ``(u, v)`` endpoint arrays of ``canonical_edge(source, nbr)`` for every
    neighbour, or ``None`` when the columnar path is disabled or the labels
    are not plain ints (scalar fallback).
    """
    if not _COLUMNAR_ENABLED:
        return None
    src = as_vertex_scalar(source)
    if src is None:
        return None
    nbrs = as_vertex_array(neighbors)
    if nbrs is None:
        return None
    return canonical_pair_columns(src, nbrs)


class PairColumns:
    """Lazy tuple view over two endpoint columns.

    ``keys[i]`` materialises the canonical edge tuple ``(u_i, v_i)`` as
    Python ints — only the few batch survivors that actually reach the
    heap/dict pay tuple construction.
    """

    __slots__ = ("u", "v")

    def __init__(self, u: np.ndarray, v: np.ndarray) -> None:
        self.u = u
        self.v = v

    def __len__(self) -> int:
        return len(self.u)

    def __getitem__(self, index: int) -> Tuple[int, int]:
        return (int(self.u[index]), int(self.v[index]))


def in_sorted(sorted_values: np.ndarray, queries: np.ndarray) -> np.ndarray:
    """Membership mask of ``queries`` against an ascending-sorted array.

    ``searchsorted`` beats ``np.isin`` here: the counters test many small
    query batches against one adjacency list per call, and ``isin`` would
    re-sort both sides every time, while this is one binary search per
    query against the list sorted once per ``end_list``.
    """
    count = len(sorted_values)
    if count == 0:
        return np.zeros(len(queries), dtype=bool)
    idx = np.searchsorted(sorted_values, queries)
    np.minimum(idx, count - 1, out=idx)
    result: np.ndarray = sorted_values[idx] == queries
    return result


class VertexTable:
    """Reusable boolean lookup table for small-integer vertex universes.

    Membership masks via direct indexing: an order of magnitude cheaper
    than ``searchsorted`` at adjacency-list sizes because a fancy-indexed
    boolean gather has essentially no per-call dispatch cost.  Only
    engages when the largest id involved stays under ``universe_cap``
    (generated graphs label vertices ``0..n-1``, so this is the universal
    case); callers fall back to :func:`in_sorted` otherwise.

    Usage discipline: :meth:`mark` the current adjacency list, run any
    number of :meth:`lookup` calls whose query values are ``<=`` the
    ``query_max`` passed to ``mark``, then :meth:`unmark` with the same
    values.  Unmarking only clears the set positions, so the buffer is
    reused across lists without O(universe) zeroing.
    """

    __slots__ = ("_table", "_cap")

    def __init__(self, universe_cap: int = 1 << 22) -> None:
        self._table = np.zeros(0, dtype=bool)
        self._cap = universe_cap

    def mark(self, values: np.ndarray, query_max: int) -> bool:
        """Mark ``values`` present; return False (no-op) if the universe
        implied by ``max(values.max(), query_max)`` exceeds the cap."""
        if len(values) == 0:
            return False
        hi = int(values.max())
        if query_max > hi:
            hi = query_max
        if hi >= self._cap:
            return False
        if hi >= len(self._table):
            self._table = np.zeros(hi + 1, dtype=bool)
        self._table[values] = True
        return True

    def lookup(self, queries: np.ndarray) -> np.ndarray:
        """Boolean membership mask for ``queries`` (all ``<= query_max``)."""
        result: np.ndarray = self._table[queries]
        return result

    def contains_checked(self, value: int) -> bool:
        """Scalar membership probe, safe for ids beyond the marked range.

        Out-of-range ids (admitted after the covering views were built,
        hence possibly larger than anything marked) are simply not
        members of the marked list.
        """
        table = self._table
        return 0 <= value < len(table) and bool(table[value])

    def unmark(self, values: np.ndarray) -> None:
        """Clear exactly the positions set by the matching :meth:`mark`."""
        self._table[values] = False


# -- key encoding --------------------------------------------------------------

def encode_int_keys(keys: np.ndarray) -> np.ndarray:
    """Vectorized ``_to_int_key`` for plain int keys (identity mod 2^64)."""
    return keys.astype(np.uint64, copy=False)


def encode_pair_keys(u: np.ndarray, v: np.ndarray) -> np.ndarray:
    """Vectorized ``_to_int_key((u, v))`` for int-pair tuples.

    Bit-identical to the scalar FNV-style tuple fold in
    :func:`repro.util.hashing._to_int_key`: the accumulator is seeded,
    multiplied by the FNV prime and XORed per part; for a 2-tuple the
    first multiply is constant-folded into :data:`_TUPLE_ACC1`.
    """
    with np.errstate(over="ignore"):
        acc = np.bitwise_xor(_TUPLE_ACC1, u)
        acc *= _FNV_PRIME
        acc ^= v
    return acc


# -- MixHash64 kernel ----------------------------------------------------------

def splitmix64_array(z: np.ndarray) -> np.ndarray:
    """Vectorized ``_splitmix64`` over a ``uint64`` array (new array)."""
    with np.errstate(over="ignore"):
        z = z + _SM_GOLDEN
        z ^= z >> _SM_S1
        z *= _SM_MUL1
        z ^= z >> _SM_S2
        z *= _SM_MUL2
        z ^= z >> _SM_S3
    return z


def mixhash_int_array(encoded_keys: np.ndarray, hash_key: int) -> np.ndarray:
    """Vectorized :meth:`MixHash64.hash_int` over encoded ``uint64`` keys.

    ``encoded_keys`` are ``_to_int_key`` outputs (see the encode kernels);
    ``hash_key`` is the hash's 64-bit internal key.
    """
    return splitmix64_array(np.bitwise_xor(encoded_keys, np.uint64(hash_key)))


def mixhash_unit_array(encoded_keys: np.ndarray, hash_key: int) -> np.ndarray:
    """Vectorized :meth:`MixHash64.hash_unit`: floats in ``[0, 1)``.

    ``h / 2**64`` in float64 rounds identically scalar and vectorized
    (both are one IEEE-754 division), so threshold comparisons agree with
    the scalar path bit for bit.
    """
    return mixhash_int_array(encoded_keys, hash_key) / 2.0**64


# -- PairwiseHash kernel -------------------------------------------------------

def pairwise_int_array(encoded_keys: np.ndarray, a: int, b: int) -> np.ndarray:
    """Vectorized :meth:`PairwiseHash.hash_int`: ``((a·x + b) mod p) & MASK64``.

    ``p = 2^89 − 1`` exceeds uint64, so the product is assembled in 32-bit
    limbs (every partial product and carry fits a uint64 exactly) and
    reduced with the Mersenne identity ``2^89 ≡ 1 (mod p)``.  Exact for
    the family's full parameter range ``a ∈ [1, p), b ∈ [0, p)``.
    """
    x = encoded_keys.astype(np.uint64, copy=False)
    with np.errstate(over="ignore"):
        x0 = x & np.uint64(_MASK32)
        x1 = x >> np.uint64(32)
        # 5 base-2^32 limbs cover a·x + b < 2^153.
        limbs = [np.zeros(x.shape, dtype=np.uint64) for _ in range(5)]
        a_limbs = [(a >> shift) & _MASK32 for shift in (0, 32, 64)]
        b_limbs = [(b >> shift) & _MASK32 for shift in (0, 32, 64)]
        for i, ai in enumerate(a_limbs):
            if ai == 0:
                continue
            ai64 = np.uint64(ai)
            for j, xj in enumerate((x0, x1)):
                t = ai64 * xj  # < 2^64: 32-bit by 32-bit product
                limbs[i + j] += t & np.uint64(_MASK32)
                limbs[i + j + 1] += t >> np.uint64(32)
        for k, bk in enumerate(b_limbs):
            if bk:
                limbs[k] += np.uint64(bk)
        # Carry-normalize (each limb accumulated at most ~2^35).
        for k in range(4):
            limbs[k + 1] += limbs[k] >> np.uint64(32)
            limbs[k] &= np.uint64(_MASK32)
        # Pack into 64-bit words: n = w0 + w1·2^64 + w2·2^128 < 2^153.
        w0 = limbs[0] | (limbs[1] << np.uint64(32))
        w1 = limbs[2] | (limbs[3] << np.uint64(32))
        w2 = limbs[4]
        # Mersenne fold #1: n = q·2^89 + r, n ≡ q + r (mod p); q < 2^64
        # because n < (p−1)·2^64 + p < 2^153.
        r_lo = w0
        r_hi = w1 & _M25
        q = (w1 >> np.uint64(25)) | (w2 << np.uint64(39))
        s = r_lo + q
        carry = (s < q).astype(np.uint64)
        lo = s
        hi = r_hi + carry  # < 2^26
        # Mersenne fold #2: value < 2^90 now, one more fold + subtract.
        q2 = hi >> np.uint64(25)
        hi &= _M25
        s2 = lo + q2
        carry2 = (s2 < q2).astype(np.uint64)
        lo = s2
        hi += carry2
        # Final conditional subtractions: value ≤ 2^89, so at most twice.
        for _ in range(2):
            ge = (hi > _M25) | ((hi == _M25) & (lo == _U64_MAX))
            if not ge.any():
                break
            # value − p = value − 2^89 + 1: borrow-aware two-word subtract.
            new_lo = lo + np.uint64(1)  # − (2^64 − 1) ≡ + 1 with borrow
            borrow = (lo != _U64_MAX).astype(np.uint64)
            new_hi = hi - _M25 - borrow
            lo = np.where(ge, new_lo, lo)
            hi = np.where(ge, new_hi, hi)
    return lo
