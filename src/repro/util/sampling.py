"""Sampling primitives for the streaming algorithms.

Three samplers back the paper's algorithms:

* :class:`BottomKSampler` — a uniform fixed-size edge sample via bottom-k
  hashing.  Every key has a fixed pseudorandom priority, and the sampler
  retains the ``k`` smallest priorities seen so far.  Crucially, a key that
  belongs to the *final* sample is a member of the running sample from its
  first insertion onward (its priority is among the ``k`` smallest of every
  prefix), which is exactly the property Section 3.3.1 of the paper relies
  on: a triangle on a sampled edge is observable from the moment the edge
  first appears.
* :class:`ThresholdSampler` — Bernoulli sampling by hash threshold; a
  simpler, independent-inclusion alternative with the same first-occurrence
  property.
* :class:`ReservoirSampler` — classic reservoir sampling with optional
  deletion support, used for the pair sample ``Q`` in the triangle
  algorithm.
"""

from __future__ import annotations

import heapq
from typing import (
    Any,
    Callable,
    Dict,
    Generic,
    Hashable,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
)

import numpy as np

from repro.util.hashing import MixHash64
from repro.util.rng import SeedLike, resolve_rng


def _member_sort_key(entry: Tuple[Any, int]) -> Tuple[int, str]:
    """Canonical ordering for serialised ``(key, priority)`` members.

    Primary order is the priority (what bottom-k truncation compares);
    ``repr`` of the key breaks the astronomically rare priority ties
    deterministically so two state dicts of the same sample are equal.
    """
    key, priority = entry
    return (priority, repr(key))

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")


class BottomKSampler(Generic[K]):
    """Uniform size-``k`` sample of a key universe via bottom-k hashing.

    ``offer(key)`` admits the key if its priority is currently among the
    ``k`` smallest; admitting a new key may evict the current maximum, in
    which case ``on_evict`` (if provided) is called with the evicted key.
    Offering the same key twice is a no-op the second time.
    """

    def __init__(
        self,
        capacity: int,
        seed: SeedLike = None,
        on_evict: Optional[Callable[[K], None]] = None,
    ):
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        self.capacity = capacity
        self._hash = MixHash64(resolve_rng(seed))
        self._heap: List[tuple] = []  # max-heap via negated priority
        self._members: Dict[K, int] = {}
        self._on_evict = on_evict
        # Monotonic structural-mutation counter.  Consumers that maintain
        # columnar views over the membership (the two-pass counters' member
        # edge columns) key their caches on this and rebuild only when the
        # sample actually changed.
        self._version = 0
        # Append-only admission log: every key ever admitted, in admission
        # order.  Columnar consumers snapshot a (epoch, position) cursor and
        # treat log entries past it as a pending tail, so a few admissions
        # never force a full column rebuild.  The log is compacted back to
        # the live membership (bumping the epoch, which invalidates all
        # cursors) once stale entries dominate, keeping it O(capacity).
        self._admit_log: List[K] = []
        self._admit_epoch = 0

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, key: K) -> bool:
        return key in self._members

    @property
    def version(self) -> int:
        """Counter bumped on every structural change to the membership."""
        return self._version

    @property
    def admission_log(self) -> List[K]:
        """Append-only list of admitted keys (may contain evicted keys).

        Read-only for consumers; valid only together with
        :attr:`admission_epoch` — a changed epoch means the log was
        compacted or the sampler restored, and any cursor into it is void.
        """
        return self._admit_log

    @property
    def admission_epoch(self) -> int:
        """Bumped whenever the admission log is rewritten wholesale."""
        return self._admit_epoch

    def _note_admit(self, key: K) -> None:
        log = self._admit_log
        log.append(key)
        if len(log) > 4 * self.capacity + 64:
            del log[:]
            log.extend(self._members)
            self._admit_epoch += 1

    def priority(self, key: K) -> int:
        """Return the fixed pseudorandom priority of ``key``."""
        return self._hash.hash_int(key)

    def priority_array(self, encoded_keys: np.ndarray) -> np.ndarray:
        """Columnar :meth:`priority` over pre-encoded ``uint64`` keys.

        ``encoded_keys`` must be ``_to_int_key`` outputs for the original
        keys (see :mod:`repro.util.vectorized`); bit-identical to the
        scalar priorities.
        """
        return self._hash.hash_int_array(encoded_keys)

    def threshold(self) -> Optional[int]:
        """Current admission threshold: the largest member priority.

        ``None`` while the sample is not yet full — every new key is then
        admitted regardless of priority.  Once full, a key can be (or
        become) a member iff its priority is ``<=`` this value: strictly
        below to displace the worst member, equal only if it *is* the
        worst member.
        """
        if len(self._members) < self.capacity:
            return None
        return -self._heap[0][0]

    def candidate_indices(self, priorities: np.ndarray) -> np.ndarray:
        """Indices of priorities that could belong to (or enter) the sample.

        The vectorized pre-filter of the columnar fast path: with a full
        sample only ``prio <= threshold`` can be members or displace one,
        so membership tests and offers need only touch these indices.
        While the sample is not full every index is a candidate.
        """
        threshold = self.threshold()
        if threshold is None:
            return np.arange(len(priorities))
        return np.nonzero(priorities <= np.uint64(threshold))[0]

    def offer(self, key: K) -> bool:
        """Offer ``key`` to the sample; return True iff it is now sampled.

        Returns True also for keys that were already members.
        """
        if self.capacity == 0:
            return False
        if key in self._members:
            return True
        prio = self.priority(key)
        if len(self._members) < self.capacity:
            heapq.heappush(self._heap, (-prio, key))
            self._members[key] = prio
            self._version += 1
            self._note_admit(key)
            return True
        worst_neg, worst_key = self._heap[0]
        if prio >= -worst_neg:
            return False
        heapq.heapreplace(self._heap, (-prio, key))
        self._members[key] = prio
        del self._members[worst_key]
        self._version += 1
        self._note_admit(key)
        if self._on_evict is not None:
            self._on_evict(worst_key)
        return True

    def offer_many(self, keys) -> int:
        """Offer each key in order; return how many offers were accepted.

        Observably identical to calling :meth:`offer` per key — the return
        value is the number of per-key calls that would have returned True
        (repeat members included) — with the per-call overhead hoisted out
        of the loop (the batched streaming fast path's inner loop).
        """
        if self.capacity == 0:
            return 0
        admitted = 0
        members = self._members
        heap = self._heap
        hash_int = self._hash.hash_int
        capacity = self.capacity
        on_evict = self._on_evict
        for key in keys:
            if key in members:
                admitted += 1
                continue
            prio = hash_int(key)
            if len(members) < capacity:
                heapq.heappush(heap, (-prio, key))
                members[key] = prio
                self._version += 1
                self._note_admit(key)
                admitted += 1
                continue
            worst_neg, worst_key = heap[0]
            if prio >= -worst_neg:
                continue
            heapq.heapreplace(heap, (-prio, key))
            members[key] = prio
            del members[worst_key]
            self._version += 1
            self._note_admit(key)
            admitted += 1
            if on_evict is not None:
                on_evict(worst_key)
        return admitted

    def offer_array(self, priorities: np.ndarray, keys: Sequence[K]) -> int:
        """Batched :meth:`offer` over pre-hashed priorities; return the
        number of accepted offers, exactly as :meth:`offer_many` would.

        ``priorities[i]`` must be ``priority(keys[i])`` (use
        :meth:`priority_array`); ``keys`` only needs ``__getitem__`` — the
        lazy :class:`repro.util.vectorized.PairColumns` view qualifies, so
        tuple keys are materialised solely for batch survivors.

        State and return value are bit-identical to offering per key, by
        the threshold monotonicity argument: once the sample is full, the
        admission threshold can only *tighten* within a batch, so any key
        with ``prio > threshold_at_batch_start`` would be rejected by the
        scalar loop no matter where in the batch it sits, cannot already
        be a member (member priorities never exceed the threshold), and
        changes neither state nor the accepted count.  Keys at exactly the
        threshold are kept — the worst member itself re-offered must
        count as accepted.  While the sample is not yet full, keys are
        processed scalar until it fills, then the remainder is
        pre-filtered.
        """
        if self.capacity == 0:
            return 0
        admitted = 0
        members = self._members
        heap = self._heap
        capacity = self.capacity
        on_evict = self._on_evict
        total = len(priorities)
        start = 0
        # Scalar warm-up: while not full, every offer is accepted, so there
        # is nothing to pre-filter (and no threshold to filter against).
        while len(members) < capacity and start < total:
            key = keys[start]
            if key not in members:
                prio = int(priorities[start])
                heapq.heappush(heap, (-prio, key))
                members[key] = prio
                self._version += 1
                self._note_admit(key)
            admitted += 1
            start += 1
        if start >= total:
            return admitted
        # Full sample: one vectorized comparison selects the survivors.
        survivors = np.nonzero(priorities[start:] <= np.uint64(-heap[0][0]))[0]
        for offset in survivors:
            index = start + int(offset)
            key = keys[index]
            if key in members:
                admitted += 1
                continue
            prio = int(priorities[index])
            worst_neg, worst_key = heap[0]
            if prio >= -worst_neg:
                continue
            heapq.heapreplace(heap, (-prio, key))
            members[key] = prio
            del members[worst_key]
            self._version += 1
            self._note_admit(key)
            admitted += 1
            if on_evict is not None:
                on_evict(worst_key)
        return admitted

    def members(self) -> List[K]:
        """Return the currently sampled keys (unspecified order)."""
        return list(self._members)

    def membership(self) -> Dict[K, int]:
        """Return the live key→priority mapping for read-only membership
        tests (avoids per-lookup ``__contains__`` dispatch in hot loops).
        Callers must not mutate it.
        """
        return self._members

    def space_words(self) -> int:
        """Machine words of live state: one key plus one priority per slot."""
        return 2 * len(self._members)

    # -- state protocol -----------------------------------------------------

    def state_dict(self) -> Dict[str, Any]:
        """Serialise the sampler to a plain dict (JSON-safe via the sketch
        codec).  Members are listed in canonical (priority, key) order so
        state dicts of equal samples compare equal regardless of insertion
        history — the property the bottom-k merge tests rely on.
        """
        return {
            "capacity": self.capacity,
            "hash_key": self._hash.key,
            "members": sorted(self._members.items(), key=_member_sort_key),
        }

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        """Restore the sampler from :meth:`state_dict` output.

        The hash function, capacity, and membership are all replaced; the
        ``on_evict`` callback wired at construction is retained.
        """
        capacity = int(state["capacity"])
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        members = [(tuple(k) if isinstance(k, list) else k, int(p))
                   for k, p in state["members"]]
        if len(members) > capacity:
            raise ValueError(
                f"state holds {len(members)} members but capacity is {capacity}"
            )
        self.capacity = capacity
        self._hash = MixHash64(key=int(state["hash_key"]))
        self._members = dict(members)
        self._heap = [(-p, k) for k, p in members]
        heapq.heapify(self._heap)
        self._version += 1
        self._admit_log = list(self._members)
        self._admit_epoch += 1

    @classmethod
    def from_state_dict(
        cls,
        state: Dict[str, Any],
        on_evict: Optional[Callable[[K], None]] = None,
    ) -> "BottomKSampler":
        """Reconstruct a sampler from serialised state."""
        sampler: BottomKSampler[K] = cls(int(state["capacity"]), on_evict=on_evict)
        sampler.load_state_dict(state)
        return sampler


class ThresholdSampler(Generic[K]):
    """Bernoulli key sampler: ``key`` is sampled iff ``h(key) < rate``.

    Inclusion decisions are independent across keys and fixed for the
    sampler's lifetime, so both stream passes agree on the sample and a key
    is recognisable as sampled from its first occurrence.
    """

    def __init__(self, rate: float, seed: SeedLike = None):
        if not 0.0 <= rate <= 1.0:
            raise ValueError("rate must lie in [0, 1]")
        self.rate = rate
        self._hash = MixHash64(resolve_rng(seed))
        self._members: set = set()

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, key: K) -> bool:
        return key in self._members

    def wants(self, key: K) -> bool:
        """Return whether ``key`` falls under the sampling threshold."""
        return self._hash.hash_unit(key) < self.rate

    def wants_array(self, encoded_keys: np.ndarray) -> np.ndarray:
        """Columnar :meth:`wants` over pre-encoded ``uint64`` keys.

        Returns a boolean mask; bit-identical to the scalar decision (the
        unit-interval division rounds identically in both paths).
        """
        return self._hash.hash_unit_array(encoded_keys) < self.rate

    def offer(self, key: K) -> bool:
        """Offer ``key``; record and return True iff it is sampled."""
        if key in self._members:
            return True
        if self.wants(key):
            self._members.add(key)
            return True
        return False

    def members(self) -> List[K]:
        """Return the currently sampled keys (unspecified order)."""
        return list(self._members)

    def space_words(self) -> int:
        """Machine words of live state: one word per retained key."""
        return len(self._members)

    # -- state protocol -----------------------------------------------------

    def state_dict(self) -> Dict[str, Any]:
        """Serialise the sampler to a plain dict."""
        return {
            "rate": self.rate,
            "hash_key": self._hash.key,
            "members": sorted(self._members, key=repr),
        }

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        """Restore the sampler from :meth:`state_dict` output."""
        self.rate = float(state["rate"])
        self._hash = MixHash64(key=int(state["hash_key"]))
        self._members = {
            tuple(k) if isinstance(k, list) else k for k in state["members"]
        }


class ReservoirSampler(Generic[V]):
    """Uniform size-``k`` reservoir over a stream of offered items.

    Standard Algorithm R, with one extension: :meth:`discard` removes an
    item (used when an edge is evicted from the first-pass sample and its
    dependent pairs must be dropped).  After a discard the reservoir refills
    from subsequent offers; the sample remains uniform over candidates that
    were never invalidated whenever discards are themselves oblivious to the
    items' identities, which holds in our use (eviction depends only on edge
    hash priorities, drawn independently of the reservoir's randomness).
    """

    def __init__(self, capacity: int, seed: SeedLike = None):
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        self.capacity = capacity
        self._rng = resolve_rng(seed)
        self._items: List[V] = []
        self.offered = 0

    def __len__(self) -> int:
        return len(self._items)

    def offer(self, item: V) -> Optional[V]:
        """Offer ``item``; return it if admitted, else ``None``."""
        admitted, _ = self.offer_detailed(item)
        return item if admitted else None

    def offer_detailed(self, item: V) -> Tuple[bool, Optional[V]]:
        """Offer ``item``; return ``(admitted, displaced_item_or_None)``.

        Callers that maintain side indexes over the reservoir contents use
        the displaced item to unregister it.
        """
        self.offered += 1
        if self.capacity == 0:
            return False, None
        if len(self._items) < self.capacity:
            self._items.append(item)
            return True, None
        j = self._rng.randrange(self.offered)
        if j < len(self._items):
            displaced = self._items[j]
            self._items[j] = item
            return True, displaced
        return False, None

    def discard(self, predicate: Callable[[V], bool]) -> int:
        """Remove all items matching ``predicate``; return how many."""
        return len(self.discard_collect(predicate))

    def discard_collect(
        self, predicate: Callable[[V], bool], limit: Optional[int] = None
    ) -> List[V]:
        """Remove all items matching ``predicate``; return them, in order.

        One partitioning scan: callers that need the removed items to
        unregister side indexes would otherwise pay a second full scan
        (collect, then :meth:`discard`).  Keeps the survivors' relative
        order, exactly like :meth:`discard`.  ``limit``, when the caller
        knows the exact match count up front (e.g. from a side index),
        stops the predicate scan at the last match and keeps the tail
        wholesale — same result, about half the predicate calls.
        """
        items = self._items
        kept: List[V] = []
        removed: List[V] = []
        for i, item in enumerate(items):
            if predicate(item):
                removed.append(item)
                if limit is not None and len(removed) == limit:
                    kept.extend(items[i + 1:])
                    break
            else:
                kept.append(item)
        self._items = kept
        return removed

    def items(self) -> List[V]:
        """Return the current sample contents."""
        return list(self._items)

    def saturated(self) -> bool:
        """Return True if more candidates were offered than retained."""
        return self.offered > self.capacity

    def space_words(self) -> int:
        """Machine words of live state: one word per retained item."""
        return len(self._items)

    # -- state protocol -----------------------------------------------------

    def state_dict(
        self, encode_item: Optional[Callable[[V], Any]] = None
    ) -> Dict[str, Any]:
        """Serialise the reservoir, including its RNG state.

        ``encode_item`` maps each retained item to a serialisable form
        (identity by default); item order is preserved because Algorithm R
        replaces by index, so order is part of the reproducible state.
        """
        encode = encode_item if encode_item is not None else (lambda item: item)
        return {
            "capacity": self.capacity,
            "offered": self.offered,
            "rng_state": self._rng.getstate(),
            "items": [encode(item) for item in self._items],
        }

    def load_state_dict(
        self,
        state: Dict[str, Any],
        decode_item: Optional[Callable[[Any], V]] = None,
    ) -> None:
        """Restore the reservoir from :meth:`state_dict` output."""
        capacity = int(state["capacity"])
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        decode = decode_item if decode_item is not None else (lambda blob: blob)
        items = [decode(blob) for blob in state["items"]]
        if len(items) > capacity:
            raise ValueError(
                f"state holds {len(items)} items but capacity is {capacity}"
            )
        self.capacity = capacity
        self.offered = int(state["offered"])
        self._items = items
        rng_state = state["rng_state"]
        # random.Random.setstate needs the exact nested tuple shape.
        self._rng.setstate(
            (int(rng_state[0]), tuple(int(x) for x in rng_state[1]), rng_state[2])
        )
