"""Seeded random number generation helpers.

Every stochastic component in the library threads its randomness through an
explicit :class:`random.Random` (or a seed convertible to one) so that
experiments are reproducible end to end.  The helpers here normalise the
various ways callers may specify randomness and derive independent child
generators from a parent seed.
"""

from __future__ import annotations

import random
from typing import Optional, Union

SeedLike = Union[None, int, random.Random]

# Arbitrary odd 64-bit constants used to decorrelate derived seeds.
_DERIVE_MULT = 0x9E3779B97F4A7C15
_DERIVE_XOR = 0xBF58476D1CE4E5B9
_MASK64 = (1 << 64) - 1


def resolve_rng(seed: SeedLike = None) -> random.Random:
    """Return a ``random.Random`` for ``seed``.

    ``None`` produces a fresh nondeterministically seeded generator, an
    ``int`` produces a deterministic generator, and an existing
    ``random.Random`` is passed through unchanged (shared, not copied).
    """
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)


def derive_seed(seed: int, stream: int) -> int:
    """Derive an independent 63-bit seed for substream ``stream``.

    Uses a splitmix64-style mixing step so that nearby ``(seed, stream)``
    pairs yield uncorrelated generators.
    """
    z = (seed * _DERIVE_MULT + stream) & _MASK64
    z ^= z >> 30
    z = (z * _DERIVE_XOR) & _MASK64
    z ^= z >> 27
    z = (z * 0x94D049BB133111EB) & _MASK64
    z ^= z >> 31
    return z & ((1 << 63) - 1)


def spawn_seed(rng: random.Random, stream: Optional[int] = None) -> int:
    """Draw the integer seed that :func:`spawn_rng` would seed a child with.

    Useful when the child generator must be reconstructed elsewhere (for
    example in a worker process): ``random.Random(spawn_seed(rng, s))`` has
    exactly the same state as ``spawn_rng(rng, s)``, but the integer is
    cheap to pickle and ship across process boundaries.
    """
    base = rng.getrandbits(63)
    if stream is not None:
        base = derive_seed(base, stream)
    return base


def spawn_rng(rng: random.Random, stream: Optional[int] = None) -> random.Random:
    """Spawn a child generator from ``rng``.

    If ``stream`` is given the child is a deterministic function of the
    parent's next output and the stream index; otherwise it is seeded from
    the parent's next output alone.
    """
    return random.Random(spawn_seed(rng, stream))
