"""Hash families used by the streaming samplers.

The paper's edge samplers are hash based: each edge receives a pseudorandom
priority fixed for the lifetime of the algorithm, so that both passes agree
on which edges are sampled and an edge can be admitted the *first* time it
appears in the stream.  Two families are provided:

* :class:`MixHash64` — a splitmix64-style mixer keyed by a seed.  This is the
  practical default: fast, stateless, and empirically uniform.
* :class:`PairwiseHash` — a genuinely pairwise-independent family
  ``h(x) = (a*x + b) mod p`` over a Mersenne prime, for components whose
  analysis requires 2-wise independence.

Both map arbitrary hashable keys to integers in ``[0, 2**64)`` and to floats
in ``[0, 1)``.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Hashable, Optional

from repro.util.rng import SeedLike, resolve_rng

if TYPE_CHECKING:  # numpy only needed for the columnar batch signatures
    import numpy as np

_MASK64 = (1 << 64) - 1
#: Mersenne prime 2^89 - 1, comfortably above 64-bit key space.
_MERSENNE_P = (1 << 89) - 1


def _to_int_key(key: Hashable) -> int:
    """Map an arbitrary hashable key to a non-negative integer.

    Tuples (the common case: canonical edge keys) are combined injectively
    enough for hashing purposes.  Strings are folded with FNV-1a over their
    UTF-8 bytes rather than built-in ``hash``: the samplers' priorities must
    agree *across processes* (shard workers merge bottom-k states by
    priority), and ``str.__hash__`` is salted per interpreter.  Other
    objects fall back to ``hash``.
    """
    if isinstance(key, int):
        return key & _MASK64
    if isinstance(key, tuple):
        acc = 0x243F6A8885A308D3
        for part in key:
            acc = (acc * 0x100000001B3) & _MASK64
            # Inlined int case (bit-identical to the recursive call): edge
            # tuples of int vertices are the hot path for the samplers.
            if type(part) is int:
                acc ^= part & _MASK64
            else:
                acc ^= _to_int_key(part)
        return acc
    if isinstance(key, str):
        acc = 0xCBF29CE484222325
        for byte in key.encode("utf-8"):
            acc = ((acc ^ byte) * 0x100000001B3) & _MASK64
        return acc
    return hash(key) & _MASK64


def _splitmix64(z: int) -> int:
    z = (z + 0x9E3779B97F4A7C15) & _MASK64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return z ^ (z >> 31)


class MixHash64:
    """Seeded 64-bit mixing hash over arbitrary hashable keys.

    ``key`` pins the internal 64-bit key directly (bypassing ``seed``); it
    is how serialized sampler state reconstructs the exact hash function,
    so that a restored sampler assigns the same priorities as the original.
    """

    def __init__(self, seed: SeedLike = None, *, key: Optional[int] = None) -> None:
        if key is not None:
            self._key = key & _MASK64
        else:
            rng = resolve_rng(seed)
            self._key = rng.getrandbits(64)

    @property
    def key(self) -> int:
        """The internal 64-bit key (serialise this to clone the hash)."""
        return self._key

    def hash_int(self, key: Hashable) -> int:
        """Return a pseudorandom integer in ``[0, 2**64)`` for ``key``."""
        return _splitmix64(_to_int_key(key) ^ self._key)

    def hash_unit(self, key: Hashable) -> float:
        """Return a pseudorandom float in ``[0, 1)`` for ``key``."""
        return self.hash_int(key) / 2.0**64

    def hash_int_array(self, encoded_keys: "np.ndarray") -> "np.ndarray":
        """Columnar :meth:`hash_int` over pre-encoded ``uint64`` keys.

        ``encoded_keys`` must already be ``_to_int_key`` outputs (see the
        encode kernels in :mod:`repro.util.vectorized`); the result is
        bit-identical to calling :meth:`hash_int` per key.
        """
        from repro.util.vectorized import mixhash_int_array

        return mixhash_int_array(encoded_keys, self._key)

    def hash_unit_array(self, encoded_keys: "np.ndarray") -> "np.ndarray":
        """Columnar :meth:`hash_unit` over pre-encoded ``uint64`` keys."""
        from repro.util.vectorized import mixhash_unit_array

        return mixhash_unit_array(encoded_keys, self._key)


class PairwiseHash:
    """Pairwise-independent hash family ``h(x) = ((a*x + b) mod p) mod 2^64``.

    ``a`` is drawn from ``[1, p)`` and ``b`` from ``[0, p)`` where ``p`` is a
    Mersenne prime larger than the key space, giving exact 2-wise
    independence over 64-bit integer keys.
    """

    def __init__(self, seed: SeedLike = None) -> None:
        rng = resolve_rng(seed)
        self._a = rng.randrange(1, _MERSENNE_P)
        self._b = rng.randrange(_MERSENNE_P)

    def hash_int(self, key: Hashable) -> int:
        """Return a pseudorandom integer in ``[0, 2**64)`` for ``key``."""
        x = _to_int_key(key)
        return ((self._a * x + self._b) % _MERSENNE_P) & _MASK64

    def hash_unit(self, key: Hashable) -> float:
        """Return a pseudorandom float in ``[0, 1)`` for ``key``."""
        return self.hash_int(key) / 2.0**64

    def hash_int_array(self, encoded_keys: "np.ndarray") -> "np.ndarray":
        """Columnar :meth:`hash_int` over pre-encoded ``uint64`` keys.

        Bit-identical to the scalar modular arithmetic: the kernel carries
        the full ``a·x + b`` product in 32-bit limbs and reduces modulo the
        Mersenne prime exactly.
        """
        from repro.util.vectorized import pairwise_int_array

        return pairwise_int_array(encoded_keys, self._a, self._b)


def fresh_hash(rng: random.Random) -> MixHash64:
    """Draw a fresh :class:`MixHash64` keyed from ``rng``."""
    return MixHash64(rng)
