"""Shared utilities: seeded RNG, hash families, samplers, statistics."""

from repro.util.hashing import MixHash64, PairwiseHash
from repro.util.rng import derive_seed, resolve_rng, spawn_rng
from repro.util.sampling import BottomKSampler, ReservoirSampler, ThresholdSampler
from repro.util.stats import (
    ErrorSummary,
    fit_power_law,
    geometric_range,
    mean,
    median,
    median_of_runs,
    quantile,
    relative_error,
    stddev,
    success_rate,
    summarize_errors,
    variance,
)

__all__ = [
    "MixHash64",
    "PairwiseHash",
    "derive_seed",
    "resolve_rng",
    "spawn_rng",
    "BottomKSampler",
    "ReservoirSampler",
    "ThresholdSampler",
    "ErrorSummary",
    "fit_power_law",
    "geometric_range",
    "mean",
    "median",
    "median_of_runs",
    "quantile",
    "relative_error",
    "stddev",
    "success_rate",
    "summarize_errors",
    "variance",
]
