"""One-pass triangle counting in arbitrary-order edge streams.

The Jha–Seshadhri–Pinar-inspired wedge-closure estimator the paper's
Section 1.1 reviews: sample each edge independently with probability
``p``; wedges formed by two sampled edges are watched, and a watched
wedge is *closed* when its missing edge arrives later in the stream.

For every triangle exactly one wedge is closable — the one whose missing
edge arrives last — so ``E[closed] = p²·T`` in *every* order, and

    ``T̂ = closed / p²``

is unbiased.  The random-order model's role (as in [17]) is to make each
of the three wedges equally likely to be the closable one, which the
variance analysis uses; the adjacency-list model removes the issue
entirely (closure is visible on a full list regardless of edge order),
which is what :mod:`benchmarks.bench_model_comparison` demonstrates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.arbitrary.algorithm import EdgeStreamAlgorithm
from repro.graph.graph import Edge, Vertex, canonical_edge
from repro.util.rng import SeedLike
from repro.util.sampling import ThresholdSampler


@dataclass(eq=False)
class _WatchedWedge:
    """A wedge of two sampled edges waiting for its closing edge."""

    u: Vertex
    center: Vertex
    w: Vertex
    closed: bool = False

    @property
    def missing_edge(self) -> Edge:
        return canonical_edge(self.u, self.w)


class EdgeStreamWedgeCounter(EdgeStreamAlgorithm):
    """One-pass unbiased triangle estimation on arbitrary-order edge streams.

    Parameters
    ----------
    sample_rate:
        Per-edge inclusion probability ``p``; expected space is
        ``O(p·m + (p·Δ)²)`` words (sampled edges plus their wedges).
    seed:
        Randomness for the hash-based edge sampler.
    """

    n_passes = 1

    def __init__(self, sample_rate: float, seed: SeedLike = None):
        if not 0.0 < sample_rate <= 1.0:
            raise ValueError("sample_rate must lie in (0, 1]")
        self.sample_rate = sample_rate
        self._sampler: ThresholdSampler[Edge] = ThresholdSampler(sample_rate, seed=seed)
        self._incident: Dict[Vertex, List[Vertex]] = {}
        self._by_missing_edge: Dict[Edge, List[_WatchedWedge]] = {}
        self._wedges: List[_WatchedWedge] = []

    def _add_wedges_for(self, u: Vertex, v: Vertex) -> None:
        """Watch every wedge the new sampled edge forms with older ones."""
        for a, b in ((u, v), (v, u)):
            for c in self._incident.get(a, ()):
                if c == b:
                    continue
                wedge = _WatchedWedge(u=b, center=a, w=c)
                self._wedges.append(wedge)
                self._by_missing_edge.setdefault(wedge.missing_edge, []).append(wedge)
        self._incident.setdefault(u, []).append(v)
        self._incident.setdefault(v, []).append(u)

    def process_edge(self, u: Vertex, v: Vertex) -> None:
        edge = canonical_edge(u, v)
        # Close any watched wedge whose missing edge just arrived.  Closure
        # first: an edge cannot close a wedge it is itself part of.
        for wedge in self._by_missing_edge.get(edge, ()):
            wedge.closed = True
        if self._sampler.offer(edge):
            self._add_wedges_for(*edge)

    @property
    def watched_wedges(self) -> int:
        """Number of wedges formed by pairs of sampled edges."""
        return len(self._wedges)

    @property
    def closed_wedges(self) -> int:
        """Watched wedges whose missing edge arrived after both wedge edges."""
        return sum(1 for wedge in self._wedges if wedge.closed)

    def result(self) -> float:
        """Unbiased estimate ``closed / p²``."""
        return self.closed_wedges / self.sample_rate**2

    def space_words(self) -> int:
        incident = sum(len(v) for v in self._incident.values())
        return incident + 4 * len(self._wedges)


class ExactEdgeStreamCounter(EdgeStreamAlgorithm):
    """Store-everything exact cycle counter for edge streams (O(m) space)."""

    n_passes = 1

    def __init__(self, length: int = 3):
        if length < 3:
            raise ValueError("cycles have at least 3 vertices")
        self.length = length
        from repro.graph.graph import Graph

        self._graph = Graph()

    def process_edge(self, u: Vertex, v: Vertex) -> None:
        self._graph.add_edge(u, v)

    def result(self) -> float:
        from repro.graph.counting import count_cycles, count_four_cycles, count_triangles

        if self.length == 3:
            return float(count_triangles(self._graph))
        if self.length == 4:
            return float(count_four_cycles(self._graph))
        return float(count_cycles(self._graph, self.length))

    def space_words(self) -> int:
        return 2 * self._graph.m + self._graph.n


class EdgeStreamWedgeCountEstimator(EdgeStreamAlgorithm):
    """One-pass P2 (wedge count) *estimation* for edge streams.

    Counts wedges among a Bernoulli edge sample and scales by ``1/p²``.
    Exists for the model comparison: the adjacency-list model computes P2
    *exactly* with a single counter (:class:`repro.core.WedgeCounter`),
    while the edge model can only estimate it — one concrete measure of
    what the adjacency-list promise is worth.
    """

    n_passes = 1

    def __init__(self, sample_rate: float, seed: SeedLike = None):
        if not 0.0 < sample_rate <= 1.0:
            raise ValueError("sample_rate must lie in (0, 1]")
        self.sample_rate = sample_rate
        self._sampler: ThresholdSampler[Edge] = ThresholdSampler(sample_rate, seed=seed)
        self._degree: Dict[Vertex, int] = {}
        self._wedge_pairs = 0

    def process_edge(self, u: Vertex, v: Vertex) -> None:
        if self._sampler.offer(canonical_edge(u, v)):
            for x in (u, v):
                d = self._degree.get(x, 0)
                self._wedge_pairs += d  # new edge pairs with each older one
                self._degree[x] = d + 1

    def result(self) -> float:
        """Estimate ``P2 ≈ sampled_wedges / p²``."""
        return self._wedge_pairs / self.sample_rate**2

    def space_words(self) -> int:
        return 2 * len(self._degree) + 1
