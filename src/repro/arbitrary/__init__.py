"""Arbitrary-order edge-stream model (the Section 1.1 comparison model)."""

from repro.arbitrary.algorithm import (
    EdgeRunResult,
    EdgeStreamAlgorithm,
    run_edge_algorithm,
)
from repro.arbitrary.stream import (
    EdgeStream,
    EdgeStreamFormatError,
    random_edge_stream,
    sorted_edge_stream,
    triangle_edges_last_stream,
    validate_edge_sequence,
)
from repro.arbitrary.triangle_wedge import (
    EdgeStreamWedgeCountEstimator,
    EdgeStreamWedgeCounter,
    ExactEdgeStreamCounter,
)

__all__ = [
    "EdgeStream",
    "EdgeStreamFormatError",
    "validate_edge_sequence",
    "random_edge_stream",
    "sorted_edge_stream",
    "triangle_edges_last_stream",
    "EdgeStreamAlgorithm",
    "EdgeRunResult",
    "run_edge_algorithm",
    "EdgeStreamWedgeCounter",
    "EdgeStreamWedgeCountEstimator",
    "ExactEdgeStreamCounter",
]
