"""Arbitrary-order edge streams — the model the paper contrasts against.

Section 1.1 reviews triangle counting in the *arbitrary order* model,
where the stream is a sequence of edges (each once, any order) with no
adjacency-list promise.  This subpackage implements that model so the
library can demonstrate, on the same graphs, what the adjacency-list
promise buys: whole neighbourhoods at once (exact degree statistics in
O(1) space, triangle closure visible on a single list) versus edge
streams where everything must be sampled.

:class:`EdgeStream` mirrors :class:`repro.streaming.AdjacencyListStream`:
replayable, seeded, validated.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence

from repro.graph.graph import Edge, Graph, canonical_edge
from repro.util.rng import SeedLike, resolve_rng


class EdgeStreamFormatError(ValueError):
    """Raised when an edge sequence violates the model (dup/self-loop)."""


class EdgeStream:
    """A replayable arbitrary-order edge stream over a graph.

    Each edge appears exactly once, in canonical orientation, in the order
    given by ``edge_order`` (default: a seeded uniform permutation).
    """

    def __init__(
        self,
        graph: Graph,
        edge_order: Optional[Sequence[Edge]] = None,
        seed: SeedLike = None,
    ):
        self.graph = graph
        rng = resolve_rng(seed)
        canonical = sorted(graph.edges())
        if edge_order is None:
            order = list(canonical)
            rng.shuffle(order)
        else:
            order = [canonical_edge(u, v) for u, v in edge_order]
            if sorted(order) != canonical:
                raise ValueError("edge_order must be a permutation of the graph's edges")
        self._order = order

    @property
    def m(self) -> int:
        """Number of edges (= stream length)."""
        return self.graph.m

    def edge_order(self) -> List[Edge]:
        """The edges in stream order."""
        return list(self._order)

    def position(self, u, v) -> int:
        """Index of edge ``{u, v}`` in the stream (linear scan; test use)."""
        return self._order.index(canonical_edge(u, v))

    def __iter__(self) -> Iterator[Edge]:
        return iter(self._order)

    def __len__(self) -> int:
        return len(self._order)

    def reordered(self, seed: SeedLike = None) -> "EdgeStream":
        """Same graph, fresh random order."""
        return EdgeStream(self.graph, seed=seed)


def validate_edge_sequence(edges: Sequence[Edge]) -> None:
    """Check an edge sequence: no self loops, no duplicate edges."""
    seen = set()
    for u, v in edges:
        if u == v:
            raise EdgeStreamFormatError(f"self loop on {u!r}")
        key = canonical_edge(u, v)
        if key in seen:
            raise EdgeStreamFormatError(f"duplicate edge {key!r}")
        seen.add(key)


def random_edge_stream(graph: Graph, seed: SeedLike = None) -> EdgeStream:
    """Uniformly random edge order — the *random order* model of [17]."""
    return EdgeStream(graph, seed=seed)


def sorted_edge_stream(graph: Graph) -> EdgeStream:
    """Deterministic lexicographic edge order."""
    return EdgeStream(graph, edge_order=sorted(graph.edges()))


def triangle_edges_last_stream(
    graph: Graph, seed: SeedLike = None
) -> EdgeStream:
    """Helpful order: all triangle-closing structure arrives late.

    Edges that participate in triangles are placed after all others (and
    shuffled within each class) — wedge-closure detectors see wedges
    before closings as often as possible.
    """
    from repro.graph.counting import triangles_per_edge

    rng = resolve_rng(seed)
    loads = triangles_per_edge(graph)
    plain = [e for e in graph.edges() if loads.get(e, 0) == 0]
    loaded = [e for e in graph.edges() if loads.get(e, 0) > 0]
    rng.shuffle(plain)
    rng.shuffle(loaded)
    return EdgeStream(graph, edge_order=plain + loaded)
