"""Algorithm interface and runner for arbitrary-order edge streams."""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Optional

from repro.graph.graph import Vertex
from repro.streaming.space import SpaceMeter
from repro.arbitrary.stream import EdgeStream


class EdgeStreamAlgorithm(abc.ABC):
    """Base class for multi-pass arbitrary-order streaming algorithms."""

    #: Number of passes over the edge stream.
    n_passes: int = 1

    def begin_pass(self, pass_index: int) -> None:
        """Called before pass ``pass_index`` (0-based) starts."""

    @abc.abstractmethod
    def process_edge(self, u: Vertex, v: Vertex) -> None:
        """Called once per edge, in stream order."""

    def end_pass(self, pass_index: int) -> None:
        """Called after pass ``pass_index`` completes."""

    @abc.abstractmethod
    def result(self) -> float:
        """Return the final estimate (valid after the last pass)."""

    @abc.abstractmethod
    def space_words(self) -> int:
        """Return the current live state size in machine words."""


@dataclass(frozen=True)
class EdgeRunResult:
    """Outcome of an edge-stream run: estimate plus space facts."""

    estimate: float
    peak_space_words: int
    passes: int
    edges_per_pass: int


def run_edge_algorithm(
    algorithm: EdgeStreamAlgorithm,
    stream: EdgeStream,
    meter: Optional[SpaceMeter] = None,
) -> EdgeRunResult:
    """Run ``algorithm`` for its declared passes over ``stream``.

    Space is polled after every edge (edge streams have no natural coarser
    boundary).
    """
    meter = meter if meter is not None else SpaceMeter()
    for pass_index in range(algorithm.n_passes):
        algorithm.begin_pass(pass_index)
        for u, v in stream:
            algorithm.process_edge(u, v)
            meter.observe(algorithm.space_words())
        algorithm.end_pass(pass_index)
        meter.observe(algorithm.space_words())
    return EdgeRunResult(
        estimate=algorithm.result(),
        peak_space_words=meter.peak_words,
        passes=algorithm.n_passes,
        edges_per_pass=len(stream),
    )
