"""Workload generators with an exactly known cycle count.

The Table-1 experiments need graphs where the true count ``T`` is a free
parameter, independent of the edge count ``m``.  These generators combine
cycle-free "noise" with planted cycles:

* triangle workloads: bipartite noise (triangle-free) + planted triangles;
* 4-cycle workloads: forest noise (acyclic) + planted 4-cycles;
* ℓ-cycle workloads: forest noise + planted ℓ-cycles.

Planted structure can be disjoint (light edges — the easy case) or share
edges/vertices (heavy cases exercising the variance-reduction machinery).
All vertex labels are integers, with noise occupying ``0..`` and planted
components stacked above, so planted cycles never interact with the noise.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.counting import count_cycles, count_triangles
from repro.graph.generators import (
    book_graph,
    random_bipartite_graph,
    random_forest,
    theta_graph,
    windmill_graph,
)
from repro.graph.graph import Graph
from repro.util.rng import SeedLike, resolve_rng


@dataclass(frozen=True)
class PlantedGraph:
    """A generated graph together with its exact planted cycle count."""

    graph: Graph
    cycle_length: int
    true_count: int

    @property
    def m(self) -> int:
        """Edge count of the generated graph."""
        return self.graph.m


def _append_offset(target: Graph, component: Graph, offset: int) -> int:
    """Copy ``component`` into ``target`` with labels shifted by ``offset``.

    Returns the next free label.
    """
    labels = {}
    relabeled, mapping = component.relabeled()
    for v in relabeled.vertices():
        labels[v] = offset + v
        target.add_vertex(offset + v)
    for u, v in relabeled.edges():
        target.add_edge(labels[u], labels[v])
    return offset + relabeled.n


def planted_triangles(
    noise_edges: int,
    triangles: int,
    seed: SeedLike = None,
    noise_side: int = None,
) -> PlantedGraph:
    """Triangle-free bipartite noise plus ``triangles`` disjoint triangles.

    ``noise_side`` controls the bipartite sides (defaults to a side size
    that keeps the noise graph sparse, around average degree 4).
    """
    if noise_edges < 0:
        raise ValueError("noise_edges must be non-negative")
    rng = resolve_rng(seed)
    if noise_side is None:
        noise_side = max(4, noise_edges // 2)
    g = random_bipartite_graph(noise_side, noise_side, noise_edges, seed=rng)
    offset = 2 * noise_side
    for _ in range(triangles):
        g.add_edge(offset, offset + 1)
        g.add_edge(offset + 1, offset + 2)
        g.add_edge(offset, offset + 2)
        offset += 3
    return PlantedGraph(graph=g, cycle_length=3, true_count=triangles)


def planted_triangles_book(
    noise_edges: int,
    pages: int,
    seed: SeedLike = None,
    noise_side: int = None,
) -> PlantedGraph:
    """Bipartite noise plus a book of ``pages`` triangles sharing one edge.

    The shared edge lies in every triangle — the adversarial heavy-edge
    profile motivating the lightest-edge rule of Section 2.1.
    """
    if noise_edges < 0:
        raise ValueError("noise_edges must be non-negative")
    rng = resolve_rng(seed)
    if noise_side is None:
        noise_side = max(4, noise_edges // 2)
    g = random_bipartite_graph(noise_side, noise_side, noise_edges, seed=rng)
    _append_offset(g, book_graph(pages), 2 * noise_side)
    return PlantedGraph(graph=g, cycle_length=3, true_count=pages)


def planted_triangles_windmill(
    noise_edges: int,
    blades: int,
    seed: SeedLike = None,
    noise_side: int = None,
) -> PlantedGraph:
    """Bipartite noise plus ``blades`` triangles sharing a single vertex."""
    if noise_edges < 0:
        raise ValueError("noise_edges must be non-negative")
    rng = resolve_rng(seed)
    if noise_side is None:
        noise_side = max(4, noise_edges // 2)
    g = random_bipartite_graph(noise_side, noise_side, noise_edges, seed=rng)
    _append_offset(g, windmill_graph(blades), 2 * noise_side)
    return PlantedGraph(graph=g, cycle_length=3, true_count=blades)


def planted_cycles(
    noise_edges: int,
    cycles: int,
    length: int,
    seed: SeedLike = None,
) -> PlantedGraph:
    """Acyclic forest noise plus ``cycles`` disjoint ``length``-cycles.

    Works for any ``length >= 3``; the forest contributes no cycles at all,
    so the count is exact for every length simultaneously.
    """
    if length < 3:
        raise ValueError("cycles have at least 3 vertices")
    if noise_edges < 0:
        raise ValueError("noise_edges must be non-negative")
    rng = resolve_rng(seed)
    noise_n = noise_edges + 1
    g = random_forest(noise_n, noise_edges, seed=rng)
    offset = noise_n
    for _ in range(cycles):
        for i in range(length):
            g.add_edge(offset + i, offset + (i + 1) % length)
        offset += length
    return PlantedGraph(graph=g, cycle_length=length, true_count=cycles)


def planted_four_cycles(noise_edges: int, cycles: int, seed: SeedLike = None) -> PlantedGraph:
    """Forest noise plus ``cycles`` disjoint 4-cycles."""
    return planted_cycles(noise_edges, cycles, length=4, seed=seed)


def planted_four_cycles_theta(
    noise_edges: int, spokes: int, seed: SeedLike = None
) -> PlantedGraph:
    """Forest noise plus ``K_{2, spokes}``: ``C(spokes, 2)`` entangled 4-cycles.

    Every planted 4-cycle shares the two hub vertices — the heavy case for
    wedge-sampling estimators.
    """
    rng = resolve_rng(seed)
    noise_n = noise_edges + 1
    g = random_forest(noise_n, noise_edges, seed=rng)
    _append_offset(g, theta_graph(spokes), noise_n)
    count = spokes * (spokes - 1) // 2
    return PlantedGraph(graph=g, cycle_length=4, true_count=count)


def planted_four_cycle_grid(
    noise_edges: int, rows: int, cols: int, seed: SeedLike = None
) -> PlantedGraph:
    """Forest noise plus a ``rows x cols`` grid of unit 4-cycles.

    A grid provides moderately overlapping 4-cycles (each interior edge is
    shared by two) — an intermediate heaviness profile between disjoint
    cycles and the theta graph.  The unit squares are the only 4-cycles of a
    grid, giving ``(rows - 1) * (cols - 1)`` of them.
    """
    if rows < 2 or cols < 2:
        raise ValueError("grid needs at least 2 rows and 2 columns")
    rng = resolve_rng(seed)
    noise_n = noise_edges + 1
    g = random_forest(noise_n, noise_edges, seed=rng)
    base = noise_n

    def vid(r: int, c: int) -> int:
        return base + r * cols + c

    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                g.add_edge(vid(r, c), vid(r, c + 1))
            if r + 1 < rows:
                g.add_edge(vid(r, c), vid(r + 1, c))
    count = (rows - 1) * (cols - 1)
    return PlantedGraph(graph=g, cycle_length=4, true_count=count)


def verify_planted(planted: PlantedGraph) -> bool:
    """Recount the planted cycles exactly; True iff the label is correct.

    Exponential-time safety check used in tests and example scripts, not in
    benchmarks.
    """
    if planted.cycle_length == 3:
        return count_triangles(planted.graph) == planted.true_count
    return count_cycles(planted.graph, planted.cycle_length) == planted.true_count
