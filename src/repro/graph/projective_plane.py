"""Projective plane incidence graphs: extremal 4-cycle-free bipartite graphs.

Section 5.2 of the paper uses the incidence graph of the field plane
``PG(2, q)``: for a prime power ``q`` it has ``2(q^2 + q + 1)`` vertices,
every vertex has degree ``q + 1`` (so ``(q^2 + q + 1)(q + 1)`` edges,
which is ``Theta(r^{3/2})`` for ``r = q^2 + q + 1`` vertices per side),
and girth 6 — no 4-cycles, because two points lie on exactly one common
line and two lines meet in exactly one point.

Points and lines are both represented by normalised homogeneous coordinate
triples over GF(q) (first nonzero coordinate scaled to 1); a point ``P``
is incident to a line ``L`` iff their dot product vanishes.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.graph.gf import GF
from repro.graph.graph import Graph

Triple = Tuple[int, int, int]

#: Vertex tags for the two sides of the incidence graph.
POINT = "P"
LINE = "L"


def plane_order_for_size(min_side: int) -> int:
    """Return the smallest prime-power ``q`` with ``q^2 + q + 1 >= min_side``.

    Convenience for the lower-bound reductions, which need a 4-cycle-free
    bipartite graph with at least ``r`` vertices per side.
    """
    q = 2
    while q * q + q + 1 < min_side:
        q += 1
        while not _is_prime_power(q):
            q += 1
    return q


def _is_prime_power(q: int) -> bool:
    from repro.graph.gf import factor_prime_power

    try:
        factor_prime_power(q)
        return True
    except ValueError:
        return False


def projective_points(field: GF) -> List[Triple]:
    """Return normalised homogeneous coordinates of all points of PG(2, q).

    Normalisation: the first nonzero coordinate equals 1, giving exactly
    ``q^2 + q + 1`` representatives: ``(1, y, z)``, ``(0, 1, z)``,
    ``(0, 0, 1)``.
    """
    q = field.q
    points: List[Triple] = [(1, y, z) for y in range(q) for z in range(q)]
    points.extend((0, 1, z) for z in range(q))
    points.append((0, 0, 1))
    return points


def incident(field: GF, point: Triple, line: Triple) -> bool:
    """Return whether ``point`` lies on ``line`` (dot product is zero)."""
    acc = 0
    for a, b in zip(point, line):
        acc = field.add(acc, field.mul(a, b))
    return acc == 0


def projective_plane_incidence_graph(q: int) -> Graph:
    """Return the point-line incidence graph of PG(2, q).

    Vertices are ``(POINT, i)`` and ``(LINE, j)`` where ``i``/``j`` index
    the normalised triples from :func:`projective_points` (lines are also
    parameterised by triples, via duality).  The graph is bipartite,
    ``(q + 1)``-regular, and has girth 6.
    """
    field = GF(q)
    triples = projective_points(field)
    g = Graph()
    for i in range(len(triples)):
        g.add_vertex((POINT, i))
        g.add_vertex((LINE, i))
    for i, pt in enumerate(triples):
        for j, ln in enumerate(triples):
            if incident(field, pt, ln):
                g.add_edge((POINT, i), (LINE, j))
    return g


def relabeled_bipartite_sides(graph: Graph) -> Tuple[List, List]:
    """Split an incidence graph's vertices into (points, lines) lists."""
    points = [v for v in graph.vertices() if v[0] == POINT]
    lines = [v for v in graph.vertices() if v[0] == LINE]
    return points, lines


def four_cycle_free_bipartite(min_side: int) -> Tuple[Graph, List, List]:
    """Return a dense 4-cycle-free bipartite graph with >= ``min_side`` per side.

    Used by the Theorem 5.3/5.4 reductions, which need bipartite 4-cycle-free
    graphs on ``2r`` vertices with ``Theta(r^{3/2})`` edges.  Returns the
    graph plus its two sides in a deterministic order.
    """
    q = plane_order_for_size(min_side)
    graph = projective_plane_incidence_graph(q)
    points, lines = relabeled_bipartite_sides(graph)
    return graph, sorted(points), sorted(lines)
