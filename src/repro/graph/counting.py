"""Exact subgraph counting: ground truth for every estimator in the repo.

Fast closed-form counters exist for triangles (per-edge codegrees) and
4-cycles (codegree pairs over diagonals); a generic DFS counter handles any
fixed cycle length and doubles as a cross-check for the specialised ones.
Trace identities over the adjacency matrix provide a third, independent
implementation for dense cross-validation in tests.
"""

from __future__ import annotations

from math import comb
from typing import Dict, Iterator, List, Tuple

from repro.graph.graph import Edge, Graph, Vertex, canonical_edge

Triangle = Tuple[Vertex, Vertex, Vertex]
FourCycle = Tuple[Vertex, Vertex, Vertex, Vertex]


def count_triangles(graph: Graph) -> int:
    """Return the number of triangles in ``graph``.

    Sums per-edge codegrees; each triangle is counted once per edge, hence
    the division by 3.
    """
    total = sum(graph.codegree(u, v) for u, v in graph.edges())
    assert total % 3 == 0
    return total // 3


def triangles_per_edge(graph: Graph) -> Dict[Edge, int]:
    """Return ``T(e)`` — the number of triangles containing each edge.

    Edges in no triangle are included with count 0.
    """
    return {canonical_edge(u, v): graph.codegree(u, v) for u, v in graph.edges()}


def enumerate_triangles(graph: Graph) -> Iterator[Triangle]:
    """Yield every triangle once, as a sorted vertex triple."""
    for u, v in graph.edges():
        for w in graph.common_neighbors(u, v):
            if v < w:  # u < v < w given canonical edge orientation
                yield (u, v, w)


def count_wedges(graph: Graph) -> int:
    """Return the number of paths of length two (wedges)."""
    return sum(comb(graph.degree(v), 2) for v in graph.vertices())


def _codegree_pairs(graph: Graph) -> Dict[Tuple[Vertex, Vertex], int]:
    """Return codegree counts for every vertex pair at distance <= 2.

    Computed by expanding each vertex's neighbourhood, which costs
    ``sum(deg^2)`` — the standard sparse approach.
    """
    codeg: Dict[Tuple[Vertex, Vertex], int] = {}
    for center in graph.vertices():
        nbrs = sorted(graph.neighbors(center))
        for i, u in enumerate(nbrs):
            for v in nbrs[i + 1 :]:
                key = (u, v)
                codeg[key] = codeg.get(key, 0) + 1
    return codeg


def count_four_cycles(graph: Graph) -> int:
    """Return the number of 4-cycles in ``graph``.

    Every 4-cycle has exactly two diagonals ``{u, v}``, each contributing
    ``C(codeg(u, v), 2)`` to the sum; dividing by 2 counts each cycle once.
    """
    total = sum(comb(c, 2) for c in _codegree_pairs(graph).values())
    assert total % 2 == 0
    return total // 2


def enumerate_four_cycles(graph: Graph) -> Iterator[FourCycle]:
    """Yield every 4-cycle once as ``(u, x, v, y)`` in cyclic order.

    The tuple satisfies ``u = min`` of the cycle and ``{u, v}`` is the
    diagonal containing the minimum vertex, making the representation
    canonical: each cycle is produced exactly once.
    """
    # Common-neighbour lists per vertex pair (only pairs with codegree >= 2
    # matter, but we gather all and filter).
    common: Dict[Tuple[Vertex, Vertex], List[Vertex]] = {}
    for center in graph.vertices():
        nbrs = sorted(graph.neighbors(center))
        for i, u in enumerate(nbrs):
            for v in nbrs[i + 1 :]:
                common.setdefault((u, v), []).append(center)
    for (u, v), through in common.items():
        if len(through) < 2:
            continue
        through_sorted = sorted(through)
        for i, x in enumerate(through_sorted):
            for y in through_sorted[i + 1 :]:
                # Emit once per cycle: keep the diagonal whose min vertex is
                # the global min of the 4 cycle vertices.
                if u < x:  # u < v and x < y already; u is global min iff u < x
                    yield (u, x, v, y)


def four_cycles_per_edge(graph: Graph) -> Dict[Edge, int]:
    """Return the number of 4-cycles containing each edge.

    Edges in no 4-cycle are included with count 0 so that heaviness
    classification can consult any edge.
    """
    loads: Dict[Edge, int] = {canonical_edge(u, v): 0 for u, v in graph.edges()}
    for u, x, v, y in enumerate_four_cycles(graph):
        for a, b in ((u, x), (x, v), (v, y), (y, u)):
            loads[canonical_edge(a, b)] += 1
    return loads


def count_cycles(graph: Graph, length: int) -> int:
    """Return the number of simple cycles of exactly ``length`` vertices.

    Generic DFS counter: for each start vertex ``s`` (forced to be the
    minimum of the cycle) grow simple paths through vertices larger than
    ``s``; a path of ``length`` vertices whose endpoint neighbours ``s``
    closes a cycle.  Each cycle is found twice (two traversal directions),
    hence the division by 2.  Exponential in ``length`` but fine for the
    constant lengths the paper considers.
    """
    if length < 3:
        raise ValueError("cycles have at least 3 vertices")
    count = 0
    for s in graph.vertices():
        count += _count_cycles_from(graph, s, length)
    assert count % 2 == 0
    return count // 2


def _count_cycles_from(graph: Graph, s: Vertex, length: int) -> int:
    """Count directed cycles of ``length`` vertices whose minimum is ``s``."""
    total = 0
    # Stack holds (current_vertex, depth); path membership in `on_path`.
    on_path = {s}
    order: List[Vertex] = [s]

    def extend(current: Vertex, depth: int) -> None:
        nonlocal total
        for nxt in graph.neighbors(current):
            if nxt <= s:
                if nxt == s and depth == length:
                    total += 1
                continue
            if nxt in on_path or depth == length:
                continue
            on_path.add(nxt)
            order.append(nxt)
            extend(nxt, depth + 1)
            order.pop()
            on_path.discard(nxt)

    extend(s, 1)
    return total


def count_cycles_by_trace(graph: Graph, length: int) -> int:
    """Count 3- or 4-cycles through adjacency-matrix trace identities.

    * triangles: ``trace(A^3) / 6``
    * 4-cycles:  ``(trace(A^4) - 2m - sum_v deg(v)(deg(v)-1) * 2) / 8``
      (closed 4-walks minus degenerate walks: back-and-forth over an edge
      and wedge out-and-back walks).

    Dense (O(n^3)); used as an independent cross-check in tests.
    """
    import numpy as np

    mat, _ = graph.adjacency_matrix()
    if length == 3:
        tr = int(np.trace(np.linalg.matrix_power(mat, 3)))
        assert tr % 6 == 0
        return tr // 6
    if length == 4:
        tr = int(np.trace(np.linalg.matrix_power(mat, 4)))
        degs = mat.sum(axis=1)
        degenerate = 2 * graph.m + 2 * int((degs * (degs - 1)).sum())
        walks = tr - degenerate
        assert walks % 8 == 0
        return walks // 8
    raise ValueError("trace identities implemented for lengths 3 and 4 only")


def is_cycle_free(graph: Graph, length: int) -> bool:
    """Return whether ``graph`` contains no cycle of exactly ``length``."""
    return count_cycles(graph, length) == 0


def girth_at_least(graph: Graph, girth: int) -> bool:
    """Return whether the graph has no cycle shorter than ``girth``."""
    return all(count_cycles(graph, ell) == 0 for ell in range(3, girth))


def transitivity(graph: Graph) -> float:
    """Return the global clustering coefficient ``3T / P2`` (0 if no wedges)."""
    wedges = count_wedges(graph)
    if wedges == 0:
        return 0.0
    return 3.0 * count_triangles(graph) / wedges
