"""Graph serialization: edge-list and adjacency-list text formats.

The adjacency-list format mirrors the streaming model's input contract:
one line per vertex, ``vertex: neighbor neighbor ...``, so a file can be
replayed directly as an adjacency-list stream.  Vertex labels are written
with ``repr``-free plain text and parsed back as ints when possible.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Union

from repro.graph.graph import Graph, Vertex

PathLike = Union[str, Path]


def _format_vertex(v: Vertex) -> str:
    text = str(v)
    if any(ch.isspace() for ch in text) or ":" in text:
        raise ValueError(f"vertex label {v!r} cannot be serialised to text")
    return text


def _parse_vertex(token: str) -> Vertex:
    try:
        return int(token)
    except ValueError:
        return token


def write_edge_list(graph: Graph, path: PathLike) -> None:
    """Write one ``u v`` line per edge (canonical orientation)."""
    with open(path, "w") as fh:
        for u, v in graph.edges():
            fh.write(f"{_format_vertex(u)} {_format_vertex(v)}\n")


def read_edge_list(path: PathLike) -> Graph:
    """Read a graph from an edge-list file (``#`` comments allowed)."""
    g = Graph()
    with open(path) as fh:
        for lineno, line in enumerate(fh, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            parts = stripped.split()
            if len(parts) != 2:
                raise ValueError(f"{path}:{lineno}: expected 'u v', got {stripped!r}")
            g.add_edge(_parse_vertex(parts[0]), _parse_vertex(parts[1]))
    return g


def write_adjacency_list(graph: Graph, path: PathLike) -> None:
    """Write one ``v: n1 n2 ...`` line per vertex (isolated vertices too)."""
    with open(path, "w") as fh:
        for v in sorted(graph.vertices()):
            nbrs = " ".join(_format_vertex(u) for u in sorted(graph.neighbors(v)))
            fh.write(f"{_format_vertex(v)}: {nbrs}\n".rstrip() + "\n")


def read_adjacency_list(path: PathLike) -> Graph:
    """Read a graph from an adjacency-list file.

    Each edge is expected to appear in both endpoints' lines (as in the
    streaming model); single-sided mentions are accepted and symmetrised.
    """
    g = Graph()
    with open(path) as fh:
        for lineno, line in enumerate(fh, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            if ":" not in stripped:
                raise ValueError(f"{path}:{lineno}: expected 'v: ...', got {stripped!r}")
            head, _, tail = stripped.partition(":")
            v = _parse_vertex(head.strip())
            g.add_vertex(v)
            for token in tail.split():
                u = _parse_vertex(token)
                if u != v and not g.has_edge(u, v):
                    g.add_edge(u, v)
    return g


def adjacency_lines(graph: Graph) -> List[str]:
    """Return the adjacency-list serialisation as a list of lines."""
    lines = []
    for v in sorted(graph.vertices()):
        nbrs = " ".join(_format_vertex(u) for u in sorted(graph.neighbors(v)))
        lines.append(f"{_format_vertex(v)}: {nbrs}".rstrip())
    return lines
