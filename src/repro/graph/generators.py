"""Random and deterministic graph generators.

Implemented from scratch (no networkx dependency in library code) so the
whole pipeline is self-contained.  These provide the workloads for the
Table-1 experiments: Erdős–Rényi graphs, preferential-attachment graphs
with tunable clustering, bipartite (triangle-free) noise, and the classic
deterministic families used as building blocks and adversarial cases.
"""

from __future__ import annotations

from typing import List, Optional

from repro.graph.graph import Graph
from repro.util.rng import SeedLike, resolve_rng


def empty_graph(n: int) -> Graph:
    """Return ``n`` isolated vertices labelled ``0..n-1``."""
    return Graph(vertices=range(n))


def complete_graph(n: int) -> Graph:
    """Return the complete graph ``K_n``."""
    g = empty_graph(n)
    for u in range(n):
        for v in range(u + 1, n):
            g.add_edge(u, v)
    return g


def complete_bipartite(a: int, b: int) -> Graph:
    """Return ``K_{a,b}`` with sides ``0..a-1`` and ``a..a+b-1``."""
    g = empty_graph(a + b)
    for u in range(a):
        for v in range(a, a + b):
            g.add_edge(u, v)
    return g


def cycle_graph(n: int) -> Graph:
    """Return the cycle ``C_n`` (n >= 3)."""
    if n < 3:
        raise ValueError("cycle needs at least 3 vertices")
    g = empty_graph(n)
    for i in range(n):
        g.add_edge(i, (i + 1) % n)
    return g


def path_graph(n: int) -> Graph:
    """Return the path on ``n`` vertices."""
    g = empty_graph(n)
    for i in range(n - 1):
        g.add_edge(i, i + 1)
    return g


def star_graph(leaves: int) -> Graph:
    """Return a star: center 0 joined to ``leaves`` leaf vertices."""
    g = empty_graph(leaves + 1)
    for i in range(1, leaves + 1):
        g.add_edge(0, i)
    return g


def gnm_random_graph(n: int, m: int, seed: SeedLike = None) -> Graph:
    """Return a uniform random graph with ``n`` vertices and ``m`` edges."""
    max_edges = n * (n - 1) // 2
    if m > max_edges:
        raise ValueError(f"G(n, m) with n={n} supports at most {max_edges} edges")
    rng = resolve_rng(seed)
    g = empty_graph(n)
    if m > max_edges // 2:
        # Dense regime: sample the complement of a random edge subset.
        all_edges = [(u, v) for u in range(n) for v in range(u + 1, n)]
        for u, v in rng.sample(all_edges, m):
            g.add_edge(u, v)
        return g
    added = 0
    while added < m:
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u != v and g.add_edge(u, v):
            added += 1
    return g


def gnp_random_graph(n: int, p: float, seed: SeedLike = None) -> Graph:
    """Return an Erdős–Rényi ``G(n, p)`` graph."""
    if not 0.0 <= p <= 1.0:
        raise ValueError("p must lie in [0, 1]")
    rng = resolve_rng(seed)
    g = empty_graph(n)
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < p:
                g.add_edge(u, v)
    return g


def random_bipartite_graph(a: int, b: int, m: int, seed: SeedLike = None) -> Graph:
    """Return a uniform random bipartite (hence triangle-free) graph.

    Sides are ``0..a-1`` and ``a..a+b-1`` with exactly ``m`` edges.  Used as
    triangle-free noise when planting a known number of triangles.
    """
    if m > a * b:
        raise ValueError(f"bipartite graph on {a}x{b} supports at most {a * b} edges")
    rng = resolve_rng(seed)
    g = empty_graph(a + b)
    added = 0
    while added < m:
        u = rng.randrange(a)
        v = a + rng.randrange(b)
        if g.add_edge(u, v):
            added += 1
    return g


def barabasi_albert_graph(n: int, attach: int, seed: SeedLike = None) -> Graph:
    """Return a Barabási–Albert preferential-attachment graph.

    Each new vertex attaches to ``attach`` existing vertices chosen
    proportionally to degree — a standard heavy-tailed-degree workload for
    triangle counting benchmarks.
    """
    if attach < 1 or n < attach + 1:
        raise ValueError("need n >= attach + 1 and attach >= 1")
    rng = resolve_rng(seed)
    g = complete_graph(attach + 1)
    # Repeated-endpoint list: vertex v appears deg(v) times.
    endpoints: List[int] = []
    for u, v in g.edges():
        endpoints.extend((u, v))
    for new in range(attach + 1, n):
        targets = set()
        while len(targets) < attach:
            targets.add(rng.choice(endpoints))
        for t in targets:
            g.add_edge(new, t)
            endpoints.extend((new, t))
    return g


def powerlaw_cluster_graph(
    n: int, attach: int, triangle_prob: float, seed: SeedLike = None
) -> Graph:
    """Return a Holme–Kim power-law graph with tunable clustering.

    Like Barabási–Albert, but after each preferential attachment step a
    triad-closure step links the new vertex to a neighbour of the previous
    target with probability ``triangle_prob``, injecting triangles.  This is
    the "social network" workload from the paper's motivation.
    """
    if not 0.0 <= triangle_prob <= 1.0:
        raise ValueError("triangle_prob must lie in [0, 1]")
    if attach < 1 or n < attach + 1:
        raise ValueError("need n >= attach + 1 and attach >= 1")
    rng = resolve_rng(seed)
    g = complete_graph(attach + 1)
    endpoints: List[int] = []
    for u, v in g.edges():
        endpoints.extend((u, v))
    for new in range(attach + 1, n):
        added = 0
        last_target: Optional[int] = None
        while added < attach:
            if (
                last_target is not None
                and rng.random() < triangle_prob
                and g.degree(last_target) > 0
            ):
                candidate = rng.choice(sorted(g.neighbors(last_target)))
            else:
                candidate = rng.choice(endpoints)
            if candidate != new and g.add_edge(new, candidate):
                endpoints.extend((new, candidate))
                last_target = candidate
                added += 1
    return g


def random_forest(n: int, edges: int, seed: SeedLike = None) -> Graph:
    """Return a random forest with ``edges`` edges (acyclic noise).

    Grows a uniform random attachment forest: each added edge joins a fresh
    vertex to a uniformly random already-used vertex, so no cycles of any
    length exist.  Requires ``edges < n``.
    """
    if edges >= n:
        raise ValueError("a forest on n vertices has at most n - 1 edges")
    rng = resolve_rng(seed)
    g = empty_graph(n)
    for new in range(1, edges + 1):
        g.add_edge(new, rng.randrange(new))
    return g


def book_graph(pages: int) -> Graph:
    """Return the book ``B_pages``: ``pages`` triangles sharing one edge.

    The shared edge (0, 1) is the canonical "heavy edge" adversarial case
    from Section 2.1: it lies in every triangle.
    """
    g = empty_graph(pages + 2)
    g.add_edge(0, 1)
    for i in range(pages):
        g.add_edge(0, 2 + i)
        g.add_edge(1, 2 + i)
    return g


def windmill_graph(blades: int) -> Graph:
    """Return the friendship graph: ``blades`` triangles sharing vertex 0."""
    g = empty_graph(2 * blades + 1)
    for i in range(blades):
        a, b = 1 + 2 * i, 2 + 2 * i
        g.add_edge(0, a)
        g.add_edge(0, b)
        g.add_edge(a, b)
    return g


def theta_graph(spokes: int) -> Graph:
    """Return ``K_{2, spokes}``: every pair of spokes forms a 4-cycle.

    All ``C(spokes, 2)`` 4-cycles share the two hub vertices and every edge
    lies in ``spokes - 1`` of them — the heavy-edge adversarial case for
    4-cycle counting.
    """
    return complete_bipartite(2, spokes)


def random_regular_graph(n: int, degree: int, seed: SeedLike = None, max_tries: int = 10000) -> Graph:
    """Return a random ``degree``-regular graph via the pairing model.

    Repeatedly shuffles the stub multiset and pairs stubs, restarting on
    self loops or duplicate edges (rejection sampling, uniform over simple
    graphs; the success probability is ``≈ exp(-(d²-1)/4)`` so the default
    retry budget covers degrees up to ~7).  Requires ``n * degree`` even.
    """
    if degree < 0 or degree >= n:
        raise ValueError("need 0 <= degree < n")
    if (n * degree) % 2 != 0:
        raise ValueError("n * degree must be even")
    rng = resolve_rng(seed)
    for _ in range(max_tries):
        stubs = [v for v in range(n) for _ in range(degree)]
        rng.shuffle(stubs)
        g = empty_graph(n)
        ok = True
        for i in range(0, len(stubs), 2):
            u, v = stubs[i], stubs[i + 1]
            if u == v or g.has_edge(u, v):
                ok = False
                break
            g.add_edge(u, v)
        if ok:
            return g
    raise RuntimeError(f"failed to build a {degree}-regular graph in {max_tries} tries")


def configuration_model_graph(degrees: List[int], seed: SeedLike = None) -> Graph:
    """Return a simple graph approximating the given degree sequence.

    Standard configuration model with self loops and duplicate pairings
    *discarded* (so realised degrees may fall slightly short of the
    targets — the usual simple-graph projection).  The degree sum must be
    even.
    """
    if any(d < 0 for d in degrees):
        raise ValueError("degrees must be non-negative")
    if sum(degrees) % 2 != 0:
        raise ValueError("degree sum must be even")
    rng = resolve_rng(seed)
    stubs = [v for v, d in enumerate(degrees) for _ in range(d)]
    rng.shuffle(stubs)
    g = empty_graph(len(degrees))
    for i in range(0, len(stubs), 2):
        u, v = stubs[i], stubs[i + 1]
        if u != v and not g.has_edge(u, v):
            g.add_edge(u, v)
    return g
