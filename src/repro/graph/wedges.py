"""Wedge (length-2 path) machinery for the 4-cycle algorithm.

A wedge is a path ``u - center - v``; the 4-cycle counter of Section 4
samples edges and forms wedges from pairs of sampled edges sharing an
endpoint.  This module provides the canonical wedge representation, wedge
enumeration, and the exact per-wedge / per-edge 4-cycle loads used by the
heaviness classification of Definition 4.1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Tuple

from repro.graph.counting import enumerate_four_cycles
from repro.graph.graph import Edge, Graph, Vertex, canonical_edge


@dataclass(frozen=True, order=True)
class Wedge:
    """A wedge ``u - center - v`` with canonically ordered endpoints."""

    center: Vertex
    u: Vertex
    v: Vertex

    @staticmethod
    def make(center: Vertex, a: Vertex, b: Vertex) -> "Wedge":
        """Build a wedge, normalising endpoint order."""
        if a == b or a == center or b == center:
            raise ValueError("wedge requires three distinct vertices")
        u, v = (a, b) if a <= b else (b, a)
        return Wedge(center=center, u=u, v=v)

    @property
    def endpoints(self) -> Tuple[Vertex, Vertex]:
        """The two non-center vertices (canonically ordered)."""
        return (self.u, self.v)

    @property
    def edges(self) -> Tuple[Edge, Edge]:
        """The two edges of the wedge, in canonical orientation."""
        return (canonical_edge(self.u, self.center), canonical_edge(self.v, self.center))


def iter_wedges(graph: Graph) -> Iterator[Wedge]:
    """Yield every wedge of ``graph`` exactly once."""
    for center in graph.vertices():
        nbrs = sorted(graph.neighbors(center))
        for i, u in enumerate(nbrs):
            for v in nbrs[i + 1 :]:
                yield Wedge(center=center, u=u, v=v)


def wedge_exists(graph: Graph, wedge: Wedge) -> bool:
    """Return whether both edges of ``wedge`` are present in ``graph``."""
    return graph.has_edge(wedge.u, wedge.center) and graph.has_edge(wedge.v, wedge.center)


def four_cycles_through_wedge(graph: Graph, wedge: Wedge) -> int:
    """Return ``T_w`` — the number of 4-cycles containing ``wedge``.

    A 4-cycle through ``u - center - v`` closes with any common neighbour of
    ``u`` and ``v`` other than the center, so ``T_w = codeg(u, v) - 1``
    whenever the wedge exists (the center itself is always a common
    neighbour).
    """
    if not wedge_exists(graph, wedge):
        raise ValueError(f"{wedge} is not a wedge of the graph")
    return graph.codegree(wedge.u, wedge.v) - 1


def wedges_of_four_cycle(cycle: Tuple[Vertex, Vertex, Vertex, Vertex]) -> Tuple[Wedge, ...]:
    """Return the four wedges of a 4-cycle given in cyclic order."""
    a, b, c, d = cycle
    return (
        Wedge.make(b, a, c),
        Wedge.make(c, b, d),
        Wedge.make(d, c, a),
        Wedge.make(a, d, b),
    )


def four_cycles_per_wedge(graph: Graph) -> Dict[Wedge, int]:
    """Return ``T_w`` for every wedge of the graph (including zeros).

    Convenience for the heaviness analysis; prefer
    :func:`four_cycles_through_wedge` for single queries.
    """
    loads = {wedge: 0 for wedge in iter_wedges(graph)}
    for cycle in enumerate_four_cycles(graph):
        for wedge in wedges_of_four_cycle(cycle):
            loads[wedge] += 1
    return loads


def count_wedges_on_edges(graph: Graph, edges) -> int:
    """Count wedges whose two edges both lie in the given edge collection.

    Used to size the wedge set ``Q`` formed from the first-pass edge sample.
    """
    edge_set = {canonical_edge(u, v) for u, v in edges}
    by_vertex: Dict[Vertex, int] = {}
    for u, v in edge_set:
        by_vertex[u] = by_vertex.get(u, 0) + 1
        by_vertex[v] = by_vertex.get(v, 0) + 1
    return sum(d * (d - 1) // 2 for d in by_vertex.values())
