"""Finite field arithmetic GF(p^k), built from scratch.

Section 5.2 of the paper uses incidence graphs of projective planes of
order ``q`` (a prime power) as extremal 4-cycle-free graphs.  Constructing
``PG(2, q)`` requires arithmetic in GF(q); this module implements it for
any prime power: GF(p) directly, GF(p^k) as polynomials over GF(p) modulo
an irreducible polynomial found by exhaustive search (fields used here are
tiny, so the search is instant).

Elements are represented as integers ``0 .. q-1`` encoding the coefficient
vector in base ``p`` (least significant digit = constant term), which makes
them hashable and cheap to compare.
"""

from __future__ import annotations

from typing import List, Tuple


def is_prime(n: int) -> bool:
    """Deterministic primality test by trial division (fields are tiny)."""
    if n < 2:
        return False
    if n % 2 == 0:
        return n == 2
    f = 3
    while f * f <= n:
        if n % f == 0:
            return False
        f += 2
    return True


def factor_prime_power(q: int) -> Tuple[int, int]:
    """Return ``(p, k)`` with ``q = p**k`` for prime ``p``; raise otherwise."""
    if q < 2:
        raise ValueError(f"{q} is not a prime power")
    for p in range(2, q + 1):
        if not is_prime(p):
            continue
        if q % p == 0:
            k = 0
            rest = q
            while rest % p == 0:
                rest //= p
                k += 1
            if rest == 1:
                return p, k
            raise ValueError(f"{q} is not a prime power")
    raise ValueError(f"{q} is not a prime power")


def _poly_trim(poly: List[int]) -> List[int]:
    """Strip trailing zero coefficients."""
    while poly and poly[-1] == 0:
        poly.pop()
    return poly


def _poly_mul(a: List[int], b: List[int], p: int) -> List[int]:
    """Multiply polynomials over GF(p)."""
    if not a or not b:
        return []
    out = [0] * (len(a) + len(b) - 1)
    for i, ca in enumerate(a):
        if ca == 0:
            continue
        for j, cb in enumerate(b):
            out[i + j] = (out[i + j] + ca * cb) % p
    return _poly_trim(out)


def _poly_mod(a: List[int], mod: List[int], p: int) -> List[int]:
    """Reduce polynomial ``a`` modulo monic-leading ``mod`` over GF(p)."""
    a = list(a)
    inv_lead = pow(mod[-1], p - 2, p) if mod[-1] != 1 else 1
    while len(a) >= len(mod):
        coef = (a[-1] * inv_lead) % p
        shift = len(a) - len(mod)
        for i, c in enumerate(mod):
            a[shift + i] = (a[shift + i] - coef * c) % p
        _poly_trim(a)
        if not a:
            break
    return a


def _irreducible_poly(p: int, k: int) -> List[int]:
    """Find a monic irreducible degree-``k`` polynomial over GF(p).

    Exhaustive search, testing that the polynomial has no root-free proper
    factorisation by checking divisibility against all lower-degree monic
    polynomials.  Fine for the tiny fields we construct.
    """
    if k == 1:
        return [0, 1]  # x

    def poly_from_index(idx: int, degree: int) -> List[int]:
        coeffs = []
        for _ in range(degree):
            coeffs.append(idx % p)
            idx //= p
        coeffs.append(1)  # monic
        return coeffs

    def divides(d: List[int], a: List[int]) -> bool:
        return not _poly_mod(a, d, p)

    for idx in range(p**k):
        candidate = poly_from_index(idx, k)
        if candidate[0] == 0:
            continue  # divisible by x
        reducible = False
        max_factor_deg = k // 2
        for deg in range(1, max_factor_deg + 1):
            for fidx in range(p**deg):
                factor = poly_from_index(fidx, deg)
                if divides(factor, candidate):
                    reducible = True
                    break
            if reducible:
                break
        if not reducible:
            return candidate
    raise RuntimeError(f"no irreducible polynomial of degree {k} over GF({p})")


class GF:
    """The finite field GF(q) for a prime power ``q``.

    Elements are integers ``0..q-1``; arithmetic methods interpret them as
    coefficient vectors in base ``p``.  For prime ``q`` the representation
    is the field itself and all operations reduce to modular arithmetic.
    """

    def __init__(self, q: int):
        self.q = q
        self.p, self.k = factor_prime_power(q)
        self._modulus = _irreducible_poly(self.p, self.k) if self.k > 1 else None
        # Multiplication and inverse tables; fields here are tiny so tables
        # are both the simplest and the fastest option.
        self._mul_table = [[self._mul_direct(a, b) for b in range(q)] for a in range(q)]
        self._inv_table = self._build_inverses()

    # -- encoding ----------------------------------------------------------

    def _to_poly(self, x: int) -> List[int]:
        coeffs = []
        while x:
            coeffs.append(x % self.p)
            x //= self.p
        return coeffs

    def _from_poly(self, poly: List[int]) -> int:
        out = 0
        for c in reversed(poly):
            out = out * self.p + c
        return out

    # -- arithmetic ---------------------------------------------------------

    def add(self, a: int, b: int) -> int:
        """Return ``a + b`` in GF(q)."""
        if self.k == 1:
            return (a + b) % self.p
        pa, pb = self._to_poly(a), self._to_poly(b)
        length = max(len(pa), len(pb))
        pa += [0] * (length - len(pa))
        pb += [0] * (length - len(pb))
        return self._from_poly(_poly_trim([(x + y) % self.p for x, y in zip(pa, pb)]))

    def neg(self, a: int) -> int:
        """Return ``-a`` in GF(q)."""
        if self.k == 1:
            return (-a) % self.p
        return self._from_poly([(-c) % self.p for c in self._to_poly(a)])

    def sub(self, a: int, b: int) -> int:
        """Return ``a - b`` in GF(q)."""
        return self.add(a, self.neg(b))

    def _mul_direct(self, a: int, b: int) -> int:
        if self.k == 1:
            return (a * b) % self.p
        prod = _poly_mul(self._to_poly(a), self._to_poly(b), self.p)
        return self._from_poly(_poly_mod(prod, self._modulus, self.p))

    def mul(self, a: int, b: int) -> int:
        """Return ``a * b`` in GF(q) (table lookup)."""
        return self._mul_table[a][b]

    def _build_inverses(self) -> List[int]:
        inv = [0] * self.q
        for a in range(1, self.q):
            for b in range(1, self.q):
                if self._mul_table[a][b] == 1:
                    inv[a] = b
                    break
            else:
                raise RuntimeError(f"element {a} has no inverse; field construction bug")
        return inv

    def inv(self, a: int) -> int:
        """Return the multiplicative inverse of ``a`` (a != 0)."""
        if a == 0:
            raise ZeroDivisionError("0 has no inverse in GF(q)")
        return self._inv_table[a]

    def div(self, a: int, b: int) -> int:
        """Return ``a / b`` in GF(q)."""
        return self.mul(a, self.inv(b))

    def elements(self) -> range:
        """Return all field elements."""
        return range(self.q)

    def __repr__(self) -> str:
        return f"GF({self.q})"
