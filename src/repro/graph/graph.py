"""Undirected simple graph used throughout the library.

The graph is deliberately minimal: vertices are arbitrary hashable,
mutually comparable labels (ints for generated graphs; structured tuples
for the lower-bound gadgets), edges are unordered pairs without self loops
or multiplicity.  Adjacency is stored as sets for O(1) membership tests,
which the exact counters and the streaming simulator both rely on.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, List, Set, Tuple

Vertex = Hashable
Edge = Tuple[Vertex, Vertex]


def canonical_edge(u: Vertex, v: Vertex) -> Edge:
    """Return the canonical (sorted) form of the undirected edge ``{u, v}``.

    Both stream passes and every sampler key edges through this function so
    that the two directed appearances of an edge map to the same sample slot.
    """
    return (u, v) if u <= v else (v, u)


class Graph:
    """An undirected simple graph with set-based adjacency."""

    def __init__(self, vertices: Iterable[Vertex] = (), edges: Iterable[Edge] = ()):
        self._adj: Dict[Vertex, Set[Vertex]] = {}
        self._m = 0
        # Per-vertex memoized tuple of list(self._adj[v]); invalidated on
        # mutation so cached order always equals current set-iteration order.
        self._nbr_cache: Dict[Vertex, Tuple[Vertex, ...]] = {}
        for v in vertices:
            self.add_vertex(v)
        for u, v in edges:
            self.add_edge(u, v)

    # -- construction -----------------------------------------------------

    @classmethod
    def from_edges(cls, edges: Iterable[Edge]) -> "Graph":
        """Build a graph from an iterable of vertex pairs."""
        return cls(edges=edges)

    def add_vertex(self, v: Vertex) -> None:
        """Add an isolated vertex (no-op if already present)."""
        if v not in self._adj:
            self._adj[v] = set()

    def add_edge(self, u: Vertex, v: Vertex) -> bool:
        """Add the undirected edge ``{u, v}``; return True if it was new.

        Self loops are rejected because cycle counting is defined on simple
        graphs.
        """
        if u == v:
            raise ValueError(f"self loop on {u!r} not allowed")
        self.add_vertex(u)
        self.add_vertex(v)
        if v in self._adj[u]:
            return False
        self._adj[u].add(v)
        self._adj[v].add(u)
        self._m += 1
        self._nbr_cache.pop(u, None)
        self._nbr_cache.pop(v, None)
        return True

    def add_edges(self, edges: Iterable[Edge]) -> int:
        """Add many edges; return how many were new."""
        return sum(1 for u, v in edges if self.add_edge(u, v))

    def remove_edge(self, u: Vertex, v: Vertex) -> None:
        """Remove the edge ``{u, v}``; raise KeyError if absent."""
        if not self.has_edge(u, v):
            raise KeyError(f"edge ({u!r}, {v!r}) not in graph")
        self._adj[u].discard(v)
        self._adj[v].discard(u)
        self._m -= 1
        self._nbr_cache.pop(u, None)
        self._nbr_cache.pop(v, None)

    # -- queries -----------------------------------------------------------

    @property
    def n(self) -> int:
        """Number of vertices."""
        return len(self._adj)

    @property
    def m(self) -> int:
        """Number of edges."""
        return self._m

    def has_vertex(self, v: Vertex) -> bool:
        """Return whether ``v`` is a vertex of the graph."""
        return v in self._adj

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        """Return whether ``{u, v}`` is an edge of the graph."""
        return u in self._adj and v in self._adj[u]

    def neighbors(self, v: Vertex) -> Set[Vertex]:
        """Return the adjacency set of ``v`` (live view; do not mutate)."""
        return self._adj[v]

    def neighbor_list(self, v: Vertex) -> Tuple[Vertex, ...]:
        """Return ``v``'s neighbours as a memoized tuple.

        The tuple preserves the adjacency set's iteration order at the time
        of materialization, so ``list(graph.neighbor_list(v))`` is
        bit-identical to ``list(graph.neighbors(v))`` for an unmutated
        graph.  Mutating an incident edge invalidates the cached tuple.
        Repeated stream constructions over the same graph (one per trial in
        the experiment harness) hit the cache instead of re-walking sets.
        """
        cached = self._nbr_cache.get(v)
        if cached is None:
            cached = tuple(self._adj[v])
            self._nbr_cache[v] = cached
        return cached

    def degree(self, v: Vertex) -> int:
        """Return the degree of ``v``."""
        return len(self._adj[v])

    def vertices(self) -> List[Vertex]:
        """Return all vertices in insertion order."""
        return list(self._adj)

    def edges(self) -> Iterator[Edge]:
        """Yield every edge once, in canonical orientation."""
        for u, nbrs in self._adj.items():
            for v in nbrs:
                if u <= v:
                    yield (u, v)

    def degree_sequence(self) -> List[int]:
        """Return the sorted (descending) degree sequence."""
        return sorted((len(nbrs) for nbrs in self._adj.values()), reverse=True)

    def max_degree(self) -> int:
        """Return the maximum degree (0 for the empty graph)."""
        if not self._adj:
            return 0
        return max(len(nbrs) for nbrs in self._adj.values())

    def codegree(self, u: Vertex, v: Vertex) -> int:
        """Return the number of common neighbours of ``u`` and ``v``."""
        a, b = self._adj[u], self._adj[v]
        if len(a) > len(b):
            a, b = b, a
        return sum(1 for w in a if w in b)

    def common_neighbors(self, u: Vertex, v: Vertex) -> Set[Vertex]:
        """Return the set of common neighbours of ``u`` and ``v``."""
        return self._adj[u] & self._adj[v]

    # -- transformation ----------------------------------------------------

    def copy(self) -> "Graph":
        """Return a deep copy of the graph."""
        clone = Graph()
        for v, nbrs in self._adj.items():
            clone._adj[v] = set(nbrs)
        clone._m = self._m
        return clone

    def subgraph(self, keep: Iterable[Vertex]) -> "Graph":
        """Return the induced subgraph on ``keep``."""
        keep_set = set(keep)
        sub = Graph(vertices=(v for v in keep_set if v in self._adj))
        for u, v in self.edges():
            if u in keep_set and v in keep_set:
                sub.add_edge(u, v)
        return sub

    def relabeled(self) -> Tuple["Graph", Dict[Vertex, int]]:
        """Return a copy with vertices relabelled ``0..n-1`` plus the map."""
        mapping = {v: i for i, v in enumerate(self._adj)}
        relab = Graph(vertices=range(self.n))
        for u, v in self.edges():
            relab.add_edge(mapping[u], mapping[v])
        return relab, mapping

    def disjoint_union(self, other: "Graph") -> "Graph":
        """Return the disjoint union, tagging vertices with 0/1 origin."""
        result = Graph()
        for v in self._adj:
            result.add_vertex((0, v))
        for v in other._adj:
            result.add_vertex((1, v))
        for u, v in self.edges():
            result.add_edge((0, u), (0, v))
        for u, v in other.edges():
            result.add_edge((1, u), (1, v))
        return result

    def adjacency_matrix(self):
        """Return the dense numpy adjacency matrix and the vertex order."""
        import numpy as np

        order = self.vertices()
        index = {v: i for i, v in enumerate(order)}
        mat = np.zeros((self.n, self.n), dtype=np.int64)
        for u, v in self.edges():
            i, j = index[u], index[v]
            mat[i, j] = 1
            mat[j, i] = 1
        return mat, order

    def __repr__(self) -> str:
        return f"Graph(n={self.n}, m={self.m})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return self._adj == other._adj

    def __hash__(self):  # graphs are mutable
        raise TypeError("Graph objects are unhashable")
