"""Command-line interface: count cycles in graph files, generate workloads.

Installed as ``repro-cycles``.  Subcommands:

* ``count`` — stream a graph file in adjacency-list order and estimate its
  triangle or 4-cycle count with any of the implemented algorithms;
* ``generate`` — write a synthetic workload graph (random families or
  planted cycle counts) to an edge-list / adjacency-list file;
* ``validate`` — check that a raw pair file respects the adjacency-list
  streaming model's promise;
* ``experiment`` — regenerate the paper's Table-1 rows or Figure-1 panels
  and print them;
* ``algorithms`` — list every registered estimator (cycle length, passes,
  budget kind) and whether the serve subsystem supports its full session
  lifecycle;
* ``serve`` — run the async streaming counting service: sessions, chunked
  feeds, anytime-estimate polls, snapshots and cross-session sketch merge
  over a newline-JSON protocol (see ``docs/SERVING.md``);
* ``bench-report`` — compare benchmark artifacts (``BENCH_*.json`` or
  ``.jsonl`` telemetry logs) against baselines and exit non-zero on
  regression (the CI perf gate; see ``repro.obs.bench_report``);
* ``obs-report`` — render a run report (phase timeline, throughput,
  convergence curves) from one or more telemetry logs and/or trace files;
  ``obs-report stitch-trace`` merges per-process Chrome traces into one
  (see ``docs/OBSERVABILITY.md``);
* ``top`` — live terminal dashboard polling a routed fleet's ``/metrics``
  scrape endpoint (sessions, ingest rates, latency sparklines, SLO
  verdicts);
* ``lint`` — alias for the ``repro-lint`` static analyser (determinism and
  sketch-state contracts; see ``docs/LINTING.md``).

Examples::

    repro-cycles generate --family gnm --n 1000 --m 8000 --out g.adj
    repro-cycles count g.adj --length 3 --algorithm two-pass --sample-size 600
    repro-cycles count g.adj --length 4 --algorithm exact
    repro-cycles count g.adj --length 4 --shards 4 --workers 0
    repro-cycles count g.adj --checkpoint run.ckpt --resume
    repro-cycles count g.adj --telemetry run.jsonl --trace run.trace
    repro-cycles obs-report --log run.jsonl --trace run.trace --format html --out report.html
    repro-cycles experiment table1
    repro-cycles bench-report fresh/BENCH_parallel.json --against BENCH_parallel.json
    repro-cycles algorithms
    repro-cycles serve --port 7340 --telemetry serve.jsonl --checkpoint-dir ckpt/
    repro-cycles serve --port 7340 --workers 4 --metrics-port 9640 --trace serve.trace
    repro-cycles top --port 9640 --once
    repro-cycles obs-report stitch-trace --trace serve.trace --trace serve.worker-0.trace --out fleet.trace
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.baselines.exact_stream import ExactCycleCounter
from repro.baselines.naive_sampling import NaiveSamplingTriangleCounter
from repro.baselines.one_pass_triangle import OnePassTriangleCounter
from repro.baselines.wedge_sampling import WedgeSamplingTriangleCounter
from repro.core.adaptive import AdaptiveTriangleCounter
from repro.core.boosting import MedianBoosted
from repro.core.fourcycle_two_pass import TwoPassFourCycleCounter
from repro.core.triangle_three_pass import ThreePassTriangleCounter
from repro.core.triangle_two_pass import TwoPassTriangleCounter
from repro.graph import generators, planted
from repro.graph.graph import Graph
from repro.graph.io import (
    read_adjacency_list,
    read_edge_list,
    write_adjacency_list,
    write_edge_list,
)
from repro.streaming.runner import run_algorithm
from repro.streaming.stream import AdjacencyListStream, PairSequenceValidator

TRIANGLE_ALGORITHMS = (
    "two-pass", "three-pass", "one-pass", "wedge", "naive", "adaptive", "exact"
)
FOURCYCLE_ALGORITHMS = ("two-pass", "exact")


def _read_graph(path: str, fmt: Optional[str]) -> Graph:
    if fmt is None:
        fmt = "adj" if path.endswith(".adj") else "edges"
    if fmt == "adj":
        return read_adjacency_list(path)
    if fmt == "edges":
        return read_edge_list(path)
    raise SystemExit(f"unknown format {fmt!r} (choose 'adj' or 'edges')")


def _build_counter(args, graph: Graph):
    size = args.sample_size or max(1, graph.m // 10)
    if args.length == 3:
        if args.algorithm == "two-pass":
            return lambda seed: TwoPassTriangleCounter(size, seed=seed)
        if args.algorithm == "three-pass":
            return lambda seed: ThreePassTriangleCounter(size, seed=seed)
        if args.algorithm == "one-pass":
            rate = min(1.0, size / max(graph.m, 1))
            return lambda seed: OnePassTriangleCounter(rate, seed=seed)
        if args.algorithm == "wedge":
            return lambda seed: WedgeSamplingTriangleCounter(size, seed=seed)
        if args.algorithm == "naive":
            return lambda seed: NaiveSamplingTriangleCounter(size, seed=seed)
        if args.algorithm == "adaptive":
            # No prior T needed: geometric levels under the given ceiling.
            ceiling = args.sample_size or graph.m
            return lambda seed: AdaptiveTriangleCounter(ceiling, seed=seed)
        if args.algorithm == "exact":
            return lambda seed: ExactCycleCounter(3)
        raise SystemExit(f"triangle algorithms: {', '.join(TRIANGLE_ALGORITHMS)}")
    if args.length == 4:
        if args.algorithm == "two-pass":
            return lambda seed: TwoPassFourCycleCounter(max(size, 2), seed=seed)
        if args.algorithm == "exact":
            return lambda seed: ExactCycleCounter(4)
        raise SystemExit(f"4-cycle algorithms: {', '.join(FOURCYCLE_ALGORITHMS)}")
    if args.algorithm == "exact":
        return lambda seed: ExactCycleCounter(args.length)
    raise SystemExit(
        f"no sublinear algorithm exists for length {args.length} (Theorem 5.5); "
        "use --algorithm exact"
    )


def _checkpoint_setup(args, algo, stream):
    """Resolve ``--checkpoint`` / ``--resume`` into runner arguments."""
    from repro.sketch.checkpoint import (
        CheckpointConfig,
        fingerprint_stream,
        load_checkpoint_if_exists,
    )
    from repro.streaming.algorithm import supports_snapshot

    if args.resume and not args.checkpoint:
        raise SystemExit("--resume requires --checkpoint PATH")
    if not args.checkpoint:
        return None, None
    if algo is not None and not supports_snapshot(algo):
        raise SystemExit(
            f"--checkpoint requires an algorithm with snapshot support; "
            f"{type(algo).__name__} has none"
        )
    fingerprint = fingerprint_stream(stream)
    config = CheckpointConfig(
        args.checkpoint,
        every_lists=args.checkpoint_every,
        stream_fingerprint=fingerprint,
    )
    resume = None
    if args.resume:
        resume = load_checkpoint_if_exists(args.checkpoint)
        if resume is not None and not resume.matches_stream(fingerprint):
            raise SystemExit(
                f"checkpoint {args.checkpoint} was taken against a different "
                "stream; refusing to resume"
            )
        if resume is not None:
            print(
                f"resuming from {args.checkpoint} "
                f"(pass {resume.pass_index}, {resume.lists_done} lists done)"
            )
    return config, resume


def _count_sharded(args, graph: Graph, stream: AdjacencyListStream, telemetry, tracer) -> int:
    """The ``--shards N`` path: shard-and-merge execution of a two-pass counter."""
    from repro.sketch.driver import run_sharded

    if args.copies > 1:
        raise SystemExit("--shards is incompatible with --copies > 1")
    if args.algorithm != "two-pass" or args.length not in (3, 4):
        raise SystemExit(
            "--shards supports the two-pass algorithms only "
            "(--algorithm two-pass with --length 3 or 4)"
        )
    size = args.sample_size or max(1, graph.m // 10)
    if args.length == 3:
        algo = TwoPassTriangleCounter(size, seed=args.seed, sharded=True)
    else:
        algo = TwoPassFourCycleCounter(max(size, 2), seed=args.seed)
    config, resume = _checkpoint_setup(args, algo, stream)
    result = run_sharded(
        algo,
        stream,
        args.shards,
        workers=args.workers,
        merge_seed=args.seed,
        checkpoint=config,
        resume_from=resume,
        telemetry=telemetry,
        tracer=tracer,
    )
    print(f"graph: n={graph.n} m={graph.m}")
    print(f"estimated {args.length}-cycles: {result.estimate:.1f}")
    print(
        f"passes={result.passes} shards={result.n_shards} workers={result.workers}"
        f" peak_shard_space_words={result.peak_space_words}"
        f" (store-everything ~{2 * graph.m + graph.n})"
    )
    return 0


def cmd_count(args) -> int:
    """Estimate a graph file's cycle count and print estimate + space."""
    from repro.obs.telemetry import NULL_TELEMETRY, open_telemetry
    from repro.obs.trace import NULL_TRACER, Tracer, write_chrome_trace

    graph = _read_graph(args.input, args.format)
    stream = AdjacencyListStream(graph, seed=args.seed)
    if args.telemetry:
        try:
            telemetry = open_telemetry(args.telemetry)
        except ValueError as exc:
            raise SystemExit(str(exc))
    else:
        telemetry = NULL_TELEMETRY
    tracer = (
        Tracer(seed=args.seed, telemetry=telemetry if telemetry.enabled else None)
        if args.trace
        else NULL_TRACER
    )
    # The telemetry context flushes and closes the sink even when the run
    # dies mid-stream, so a failed run still leaves a parseable JSONL log;
    # the trace file is likewise written on the way out of a failing run.
    with telemetry:
        try:
            with tracer:
                if args.shards > 1:
                    return _count_sharded(args, graph, stream, telemetry, tracer)
                factory = _build_counter(args, graph)
                algo = (
                    MedianBoosted(factory, copies=args.copies, seed=args.seed)
                    if args.copies > 1
                    else factory(args.seed)
                )
                config, resume = _checkpoint_setup(args, algo, stream)
                result = run_algorithm(
                    algo, stream, checkpoint=config, resume_from=resume,
                    telemetry=telemetry, tracer=tracer,
                )
        finally:
            if args.trace and tracer.spans:
                write_chrome_trace(args.trace, tracer.spans)
    print(f"graph: n={graph.n} m={graph.m}")
    print(f"estimated {args.length}-cycles: {result.estimate:.1f}")
    print(
        f"passes={result.passes} peak_space_words={result.peak_space_words}"
        f" (store-everything ~{2 * graph.m + graph.n})"
    )
    return 0


def cmd_generate(args) -> int:
    """Generate a synthetic workload graph and write it to disk."""
    if args.family == "gnm":
        graph = generators.gnm_random_graph(args.n, args.m, seed=args.seed)
    elif args.family == "gnp":
        graph = generators.gnp_random_graph(args.n, args.p, seed=args.seed)
    elif args.family == "ba":
        graph = generators.barabasi_albert_graph(args.n, args.attach, seed=args.seed)
    elif args.family == "powerlaw":
        graph = generators.powerlaw_cluster_graph(
            args.n, args.attach, args.p, seed=args.seed
        )
    elif args.family == "planted-triangles":
        graph = planted.planted_triangles(args.m, args.count, seed=args.seed).graph
    elif args.family == "planted-4cycles":
        graph = planted.planted_four_cycles(args.m, args.count, seed=args.seed).graph
    else:
        raise SystemExit(f"unknown family {args.family!r}")
    if args.out.endswith(".adj"):
        write_adjacency_list(graph, args.out)
    else:
        write_edge_list(graph, args.out)
    print(f"wrote {args.out}: n={graph.n} m={graph.m}")
    return 0


def cmd_validate(args) -> int:
    """Validate a graph file against the adjacency-list stream model.

    Prints the full :class:`PairSequenceSummary` on success and returns 0;
    on a model violation or an unreadable/malformed file the offending
    detail goes to stderr and the exit code is 1 (so shell pipelines and
    CI steps can gate on validity).  ``StreamFormatError`` subclasses
    ``ValueError``, so one catch covers parse and model failures alike.

    Validation streams through the incremental
    :class:`~repro.streaming.stream.PairSequenceValidator` — the same
    checker the serve subsystem applies to session chunks — one adjacency
    list at a time, so the pair sequence is never materialised.
    """
    try:
        graph = _read_graph(args.input, args.format)
        stream = AdjacencyListStream(graph, seed=args.seed)
        validator = PairSequenceValidator()
        for vertex, neighbors in stream.iter_lists():
            validator.feed((vertex, u) for u in neighbors)
        summary = validator.finish()
    except (ValueError, OSError) as exc:
        print(f"INVALID: {args.input}: {exc}", file=sys.stderr)
        return 1
    print(f"OK: {args.input} streams as a valid adjacency-list sequence")
    print(f"  pairs:           {summary.pairs}")
    print(f"  lists:           {summary.lists}")
    print(f"  edges:           {summary.edges}")
    print(f"  max list length: {summary.max_list_length}")
    return 0


def cmd_experiment(args) -> int:
    """Regenerate a paper artifact (Table-1 row / Figure-1 panel) inline."""
    from repro.experiments.report import print_table

    if args.which == "table1":
        from repro.experiments.table1 import (
            rows_as_dicts,
            triangle_two_pass_rows,
        )

        rows = rows_as_dicts(
            triangle_two_pass_rows(runs=args.runs, seed=args.seed, workers=args.workers)
        )
        print_table(list(rows[0].keys()), [list(r.values()) for r in rows],
                    title="Table 1 / Theorem 3.7 row")
    elif args.which == "figure1":
        from repro.experiments.figure1 import panel_e_rows, rows_as_dicts

        rows = rows_as_dicts(panel_e_rows(seed=args.seed))
        print_table(list(rows[0].keys()), [list(r.values()) for r in rows],
                    title="Figure 1e")
    else:
        raise SystemExit("experiments: table1, figure1 (full set: pytest benchmarks/)")
    return 0


def cmd_algorithms(args) -> int:
    """List the registry: every estimator with its shape and serve support."""
    import json as _json

    from repro.streaming.registry import iter_specs, serve_capabilities

    rows = []
    for spec in iter_specs():
        caps = serve_capabilities(spec)
        rows.append(
            {
                "name": spec.name,
                "cycle_length": spec.cycle_length,
                "passes": spec.n_passes,
                "budget_kind": spec.budget_kind,
                "snapshot": caps.snapshot,
                "anytime": caps.anytime,
                "serve_compatible": caps.serve_compatible,
                "summary": spec.summary,
            }
        )
    if args.json:
        print(_json.dumps(rows, indent=2))
        return 0
    name_width = max(len(r["name"]) for r in rows)
    header = f"{'name':<{name_width}}  len passes budget       serve  summary"
    print(header)
    print("-" * len(header))
    for r in rows:
        serve_flag = "yes" if r["serve_compatible"] else "no"
        print(
            f"{r['name']:<{name_width}}  {r['cycle_length']:>3} {r['passes']:>6} "
            f"{r['budget_kind']:<12} {serve_flag:<6} {r['summary']}"
        )
    print(
        f"\n{len(rows)} algorithms; serve = snapshot/restore + anytime estimates "
        "(full session lifecycle incl. merge)"
    )
    return 0


def _install_stop_handlers(stop) -> None:
    """Route SIGINT/SIGTERM to a graceful server stop, explicitly.

    The default KeyboardInterrupt path is not enough: a server launched
    with ``&`` from a non-interactive shell (CI smoke runs) inherits
    SIGINT as *ignored*, so ``kill -INT`` would be silently dropped and
    the graceful checkpoint path never run.  An explicit loop handler
    overrides the inherited disposition.
    """
    import asyncio
    import signal

    loop = asyncio.get_running_loop()
    try:
        loop.add_signal_handler(signal.SIGINT, stop)
        loop.add_signal_handler(signal.SIGTERM, stop)
    except NotImplementedError:  # pragma: no cover - non-POSIX event loop
        pass


def cmd_serve(args) -> int:
    """Run the asyncio streaming-counting service until interrupted.

    Sessions bind to registry algorithms; clients stream pair chunks,
    poll anytime estimates, snapshot and merge (see ``docs/SERVING.md``).
    With ``--checkpoint-dir`` a graceful shutdown freezes every live
    snapshot-capable session there, and ``--resume`` restores them on the
    next start.  ``--telemetry``/``--trace`` wire the serve metrics and
    per-session spans to the same files every other runner uses.

    ``--workers N`` scales out horizontally: N persistent worker
    processes behind a hash-sharding router, with binary pair-batch
    framing negotiated per connection and cross-worker merges that stay
    bit-identical to single-process runs.  ``--auth`` (router mode only)
    loads per-tenant tokens and quotas from a JSON file.

    ``--metrics-port`` (router mode) exposes the live observability
    plane: a ``/metrics`` Prometheus scrape endpoint aggregating
    per-worker metric snapshots, relay-latency histograms and SLO gauges
    (thresholds via the ``--slo-*`` flags; see ``docs/OBSERVABILITY.md``
    and ``repro-cycles top``).  In router mode ``--telemetry``/``--trace``
    name the *router's* artifacts; each worker writes a
    ``.worker-<i>`` sibling, and the per-process trace files stitch into
    one tree with ``repro-cycles obs-report stitch-trace``.
    """
    import asyncio

    from repro.obs.telemetry import NULL_TELEMETRY, Telemetry, open_telemetry
    from repro.obs.trace import NULL_TRACER, Tracer, write_chrome_trace
    from repro.serve.manager import SessionManager
    from repro.serve.protocol import ServeError
    from repro.serve.server import ServeServer

    if args.resume and not args.checkpoint_dir:
        print("--resume requires --checkpoint-dir", file=sys.stderr)
        return 2
    if args.auth and not args.workers:
        print("--auth requires --workers (quotas are router-enforced)",
              file=sys.stderr)
        return 2
    if args.metrics_port is not None and not args.workers:
        print("--metrics-port requires --workers (the scrape endpoint "
              "aggregates the router's worker fleet)", file=sys.stderr)
        return 2

    if args.workers:
        from repro.obs.slo import SLOPolicy
        from repro.serve.router import (
            ServeRouter,
            load_tenants,
            worker_artifact_path,
        )

        try:
            tenants = load_tenants(args.auth) if args.auth else None
        except (OSError, ValueError, KeyError) as exc:
            print(f"serve: bad --auth file: {exc}", file=sys.stderr)
            return 2
        try:
            telemetry = (
                open_telemetry(args.telemetry) if args.telemetry
                else (Telemetry(sink=None) if args.metrics_port is not None
                      else NULL_TELEMETRY)
            )
        except ValueError as exc:
            print(f"serve: {exc}", file=sys.stderr)
            return 2
        tracer = (
            Tracer(seed=0, telemetry=telemetry, root="serve")
            if args.trace
            else NULL_TRACER
        )
        slo = (
            SLOPolicy(
                poll_p99_seconds=args.slo_poll_p99,
                feed_pairs_per_second=args.slo_feed_rate,
                verdict_age_seconds=args.slo_verdict_age,
                loop_lag_p99_seconds=args.slo_loop_lag_p99,
            )
            if args.metrics_port is not None
            else None
        )
        router = ServeRouter(
            args.workers,
            args.host,
            args.port,
            max_sessions=args.max_sessions,
            max_inflight_feeds=args.max_inflight_feeds,
            byte_budget=args.byte_budget,
            space_budget=args.space_budget,
            checkpoint_dir=args.checkpoint_dir,
            resume=args.resume,
            tenants=tenants,
            metrics_port=args.metrics_port,
            slo=slo,
            slo_interval_s=args.slo_interval,
            telemetry=telemetry,
            tracer=tracer,
            worker_telemetry_paths=(
                [worker_artifact_path(args.telemetry, i) for i in range(args.workers)]
                if args.telemetry else None
            ),
            worker_trace_paths=(
                [worker_artifact_path(args.trace, i) for i in range(args.workers)]
                if args.trace else None
            ),
        )
        router.spawn_workers()  # fork before the event loop exists

        async def _route() -> None:
            await router.start()
            _install_stop_handlers(router.stop)
            print(
                f"routing {args.workers} worker(s) on "
                f"{args.host}:{router.bound_port}",
                flush=True,
            )
            if args.metrics_port is not None:
                print(
                    f"metrics on http://{args.host}:"
                    f"{router.metrics_bound_port}/metrics",
                    flush=True,
                )
            await router.serve_until_stopped()

        exit_code = 0
        try:
            if tracer is not NULL_TRACER:
                with tracer:
                    asyncio.run(_route())
            else:
                asyncio.run(_route())
        except KeyboardInterrupt:
            pass  # workers share the SIGINT and checkpoint themselves
        except OSError as exc:
            print(f"serve: {exc}", file=sys.stderr)
            exit_code = 1
        finally:
            router.join_workers()
            if args.trace and tracer.spans:
                write_chrome_trace(args.trace, tracer.spans)
            telemetry.close()
        return exit_code

    telemetry = open_telemetry(args.telemetry) if args.telemetry else NULL_TELEMETRY
    tracer = (
        Tracer(seed=0, telemetry=telemetry, root="serve")
        if args.trace
        else NULL_TRACER
    )

    async def _serve() -> None:
        manager = SessionManager(
            max_sessions=args.max_sessions,
            max_inflight_feeds=args.max_inflight_feeds,
            default_byte_budget=args.byte_budget,
            default_space_budget_words=args.space_budget,
            telemetry=telemetry,
            tracer=tracer,
        )
        server = ServeServer(
            manager,
            args.host,
            args.port,
            shutdown_checkpoint_dir=args.checkpoint_dir,
        )
        await server.start()
        if args.resume:
            try:
                restored = await manager.load_checkpoints(args.checkpoint_dir)
                print(f"resumed {len(restored)} checkpointed session(s)")
            except ServeError as exc:
                print(f"no sessions resumed: {exc.message}")
        _install_stop_handlers(server.stop)
        print(f"serving on {args.host}:{server.bound_port}", flush=True)
        await server.serve_until_stopped()

    exit_code = 0
    try:
        if tracer is not NULL_TRACER:
            with tracer:
                asyncio.run(_serve())
        else:
            asyncio.run(_serve())
    except KeyboardInterrupt:
        pass  # graceful path already ran inside serve_until_stopped's finally
    except OSError as exc:
        print(f"serve: {exc}", file=sys.stderr)
        exit_code = 1
    finally:
        if args.trace and tracer.spans:
            write_chrome_trace(args.trace, tracer.spans)
        telemetry.close()
    return exit_code


def cmd_bench_report(args) -> int:
    """Compare benchmark artifacts against baselines; exit 1 on regression."""
    from repro.obs.bench_report import run_report

    return run_report(args)


def cmd_obs_report(args) -> int:
    """Render a run report from telemetry / trace files; exit 2 on bad input."""
    from repro.obs.obs_report import run_obs_report

    return run_obs_report(args)


def cmd_top(args) -> int:
    """Live /metrics dashboard; exit 2 when --once cannot scrape."""
    from repro.obs.top import run_top

    return run_top(args)


def cmd_lint(args) -> int:
    """Alias for the ``repro-lint`` console script (same flags, same codes)."""
    from repro.lint.cli import main as lint_main

    return lint_main(args.lint_args)


def build_parser() -> argparse.ArgumentParser:
    """Build the repro-cycles argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-cycles",
        description="Cycle counting in the adjacency-list streaming model (PODS'19)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    count = sub.add_parser("count", help="estimate a graph file's cycle count")
    count.add_argument("input", help="graph file (.adj or edge list)")
    count.add_argument("--format", choices=("adj", "edges"), default=None)
    count.add_argument("--length", type=int, default=3, help="cycle length (default 3)")
    count.add_argument(
        "--algorithm",
        default="two-pass",
        help="two-pass | three-pass | one-pass | wedge | naive | adaptive | exact",
    )
    count.add_argument("--sample-size", type=int, default=None, help="m' (default m/10)")
    count.add_argument("--copies", type=int, default=1, help="median-boost copies")
    count.add_argument("--seed", type=int, default=0)
    count.add_argument(
        "--shards",
        type=int,
        default=1,
        help="split the stream into N vertex shards and merge sketch states "
        "(two-pass algorithms only; default 1 = conventional run)",
    )
    count.add_argument(
        "--workers",
        type=int,
        default=None,
        help="processes for --shards fan-out (0 = all CPU cores, default serial; "
        "serial and parallel schedules give identical results)",
    )
    count.add_argument(
        "--checkpoint",
        default=None,
        metavar="PATH",
        help="write resumable snapshots to PATH during the run",
    )
    count.add_argument(
        "--checkpoint-every",
        type=int,
        default=1000,
        metavar="LISTS",
        help="adjacency lists between checkpoints (default 1000; sharded runs "
        "checkpoint at pass boundaries regardless)",
    )
    count.add_argument(
        "--telemetry",
        default=None,
        metavar="PATH",
        help="write streaming telemetry to PATH (.jsonl event log; .prom/.txt "
        "Prometheus-style textfile); omit for the zero-overhead null sink",
    )
    count.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="write a hierarchical span trace to PATH as Chrome trace-event "
        "JSON (load in Perfetto / chrome://tracing); span identity derives "
        "from --seed and structure, so serial and parallel runs trace "
        "identically modulo timings",
    )
    count.add_argument(
        "--resume",
        action="store_true",
        help="resume from --checkpoint PATH if it exists (fresh run otherwise); "
        "refuses a checkpoint taken against a different stream",
    )
    count.set_defaults(func=cmd_count)

    gen = sub.add_parser("generate", help="write a synthetic workload graph")
    gen.add_argument("--family", required=True,
                     help="gnm | gnp | ba | powerlaw | planted-triangles | planted-4cycles")
    gen.add_argument("--n", type=int, default=1000)
    gen.add_argument("--m", type=int, default=5000,
                     help="edges (gnm) or noise edges (planted families)")
    gen.add_argument("--p", type=float, default=0.1,
                     help="edge probability (gnp) / triad probability (powerlaw)")
    gen.add_argument("--attach", type=int, default=3, help="attachment degree (ba/powerlaw)")
    gen.add_argument("--count", type=int, default=100, help="planted cycle count")
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--out", required=True, help=".adj or edge-list output path")
    gen.set_defaults(func=cmd_generate)

    val = sub.add_parser(
        "validate",
        help="validate a file against the stream model",
        description="Validate a graph file against the adjacency-list "
        "streaming model and print its stream summary (pairs, lists, edges, "
        "max list length).  Exits 0 on success, 1 on a model violation "
        "(details on stderr).",
    )
    val.add_argument("input")
    val.add_argument("--format", choices=("adj", "edges"), default=None)
    val.add_argument("--seed", type=int, default=0)
    val.set_defaults(func=cmd_validate)

    exp = sub.add_parser("experiment", help="regenerate a paper artifact")
    exp.add_argument("which", help="table1 | figure1")
    exp.add_argument("--runs", type=int, default=12)
    exp.add_argument("--seed", type=int, default=0)
    exp.add_argument(
        "--workers",
        type=int,
        default=None,
        help="parallel trial workers for the sweeps (0 = all CPU cores, "
        "default serial); results are bit-identical to serial runs",
    )
    exp.set_defaults(func=cmd_experiment)

    algos = sub.add_parser(
        "algorithms",
        help="list the registered algorithms and their serve support",
        description="List every registered streaming algorithm: cycle "
        "length, pass count, how its budget knob is interpreted, and "
        "whether the serve subsystem supports the full session lifecycle "
        "(snapshot/restore + anytime estimates) for it.",
    )
    algos.add_argument("--json", action="store_true", help="machine-readable output")
    algos.set_defaults(func=cmd_algorithms)

    serve = sub.add_parser(
        "serve",
        help="run the async streaming counting service",
        description="Serve registry algorithms over the newline-JSON "
        "protocol (see docs/SERVING.md): clients open sessions, stream "
        "adjacency pairs in chunks, poll anytime estimates with "
        "convergence verdicts, snapshot, and merge sketches across "
        "sessions.  Ctrl-C shuts down gracefully, checkpointing live "
        "sessions when --checkpoint-dir is set.",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=7340,
                       help="TCP port (0 picks a free one; default 7340)")
    serve.add_argument("--max-sessions", type=int, default=10_000,
                       help="hard cap on concurrently open sessions")
    serve.add_argument("--max-inflight-feeds", type=int, default=64,
                       help="feed chunks processed concurrently before "
                       "backpressure queues the rest")
    serve.add_argument("--byte-budget", type=int, default=None,
                       help="default per-session request-payload byte budget")
    serve.add_argument("--space-budget", type=int, default=None,
                       help="default per-session cap on algorithm space (words)")
    serve.add_argument("--checkpoint-dir", default=None,
                       help="directory where graceful shutdown freezes live sessions")
    serve.add_argument("--resume", action="store_true",
                       help="restore sessions checkpointed in --checkpoint-dir")
    serve.add_argument("--telemetry", default=None,
                       help="write serve telemetry (JSONL) to this path; in "
                       "router mode workers write .worker-<i> siblings")
    serve.add_argument("--trace", default=None,
                       help="write per-session trace spans (Chrome trace) to "
                       "this path; in router mode workers write .worker-<i> "
                       "siblings that stitch via obs-report stitch-trace")
    serve.add_argument("--workers", type=int, default=0,
                       help="scale out: run a hash-sharding router over N "
                       "worker processes (0 = single in-process server)")
    serve.add_argument("--auth", default=None,
                       help="tenant config JSON (tokens + quotas), enforced "
                       "at the router; requires --workers")
    serve.add_argument("--metrics-port", type=int, default=None,
                       help="serve a Prometheus /metrics scrape endpoint on "
                       "this port (0 picks a free one); requires --workers")
    serve.add_argument("--slo-poll-p99", type=float, default=2.0,
                       help="SLO: p99 poll latency ceiling in seconds "
                       "(0 disables; default 2.0)")
    serve.add_argument("--slo-feed-rate", type=float, default=0.0,
                       help="SLO: ingest throughput floor in pairs/s over the "
                       "evaluation window (0 disables; default 0)")
    serve.add_argument("--slo-verdict-age", type=float, default=300.0,
                       help="SLO: ceiling on seconds since a convergence poll "
                       "last refreshed a verdict (0 disables; default 300)")
    serve.add_argument("--slo-loop-lag-p99", type=float, default=0.25,
                       help="SLO: p99 event-loop lag ceiling in seconds "
                       "(0 disables; default 0.25)")
    serve.add_argument("--slo-interval", type=float, default=5.0,
                       help="seconds between SLO evaluations (default 5)")
    serve.set_defaults(func=cmd_serve)

    from repro.obs.bench_report import build_parser as build_bench_parser

    bench = sub.add_parser(
        "bench-report",
        help="compare benchmark artifacts; exit 1 on regression (CI gate)",
        description="Compare BENCH_*.json artifacts (or .jsonl telemetry "
        "logs) against baselines.  Machine-independent metrics (space "
        "words, bit-identity invariants, estimates, imbalance) gate with "
        "the relative --threshold; wall-time metrics are informational "
        "unless --gate-timing.  Exits 1 when any gated metric regresses.",
    )
    build_bench_parser(bench)
    bench.set_defaults(func=cmd_bench_report)

    from repro.obs.obs_report import build_parser as build_obs_parser

    obs = sub.add_parser(
        "obs-report",
        help="render a run report from telemetry and/or trace files",
        description="Render a self-contained run report (phase timeline, "
        "throughput, sampler occupancy, convergence curves) from a "
        "--telemetry JSONL log and/or a --trace Chrome trace file.  "
        "Formats: text, markdown, html (single file, CI-artifact ready).",
    )
    build_obs_parser(obs)
    obs.set_defaults(func=cmd_obs_report)

    from repro.obs.top import build_parser as build_top_parser

    top = sub.add_parser(
        "top",
        help="live terminal view of a routed serve fleet's /metrics",
        description="Poll a router's /metrics scrape endpoint and render a "
        "live dashboard: per-worker sessions and ingest rates, latency "
        "histogram sparklines, and SLO pass/fail gauges.  --once prints a "
        "single frame and exits (CI mode).",
    )
    build_top_parser(top)
    top.set_defaults(func=cmd_top)

    lint = sub.add_parser(
        "lint",
        help="run the repro-lint static analyser",
        add_help=False,  # forward --help to repro-lint itself
    )
    lint.add_argument("lint_args", nargs=argparse.REMAINDER)
    lint.set_defaults(func=cmd_lint)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    arg_list = list(sys.argv[1:] if argv is None else argv)
    if arg_list[:1] == ["lint"]:
        # Forwarded before argparse sees it: REMAINDER swallows positional
        # tails fine but lets leading options (e.g. --list-rules) leak to
        # this parser, which would reject them.
        from repro.lint.cli import main as lint_main

        return lint_main(arg_list[1:])
    args = build_parser().parse_args(arg_list)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
