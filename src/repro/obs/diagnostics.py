"""Estimator convergence diagnostics against the paper's error budgets.

Two layers:

* **Per-run traces** — :func:`estimate_trace` turns the
  :class:`~repro.obs.events.EstimateSample` events an instrumented run
  emits (see ``current_estimate()`` on the algorithms) into a convergence
  trajectory, optionally annotated with relative error against a known
  ground truth.  ``obs-report`` renders these as convergence curves.
* **Across-trial verdicts** — :func:`diagnose` checks a batch of final
  estimates against the ``(1 ± ε)`` guarantees of Theorem 3.7 (two-pass
  triangle counting, success probability 2/3 at space
  ``m' = c·m/(ε²T^{2/3})``) or Theorem 4.6 (two-pass 4-cycle counting,
  success probability 4/5 at ``m' = c·m/T^{3/8}``), producing a
  structured :class:`ConvergenceVerdict`.

The verdict checks four budgets:

1. **space** — the configured sample size covers the theorem's
   requirement for the claimed ``ε`` (an under-budgeted run cannot claim
   the guarantee, whatever its luck on one seed);
2. **relative error** — the median relative error across trials is
   within ``ε``;
3. **success rate** — the fraction of trials within ``(1 ± ε)`` meets the
   theorem's probability;
4. **variance** — the across-trial variance stays within the ``ε²T²``
   budget the second-moment analysis bounds.

``ConvergenceVerdict.to_flat_dict()`` emits the verdict as flat
JSON-safe metrics whose booleans the ``bench-report`` classifier treats
as gated invariants, so a benchmark artifact embedding a verdict turns
any budget violation into a CI regression.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.obs.events import EstimateSample, TelemetryEvent

__all__ = [
    "THEOREM_TRIANGLE",
    "THEOREM_FOURCYCLE",
    "required_sample_size",
    "EstimatePoint",
    "estimate_trace",
    "ConvergenceVerdict",
    "diagnose",
]

#: Theorem 3.7 — two-pass (1±ε) triangle counting, success probability 2/3.
THEOREM_TRIANGLE = "3.7"
#: Theorem 4.6 — two-pass O(1)-approximate 4-cycle counting, probability 4/5.
THEOREM_FOURCYCLE = "4.6"

_SUCCESS_TARGETS = {THEOREM_TRIANGLE: 2.0 / 3.0, THEOREM_FOURCYCLE: 4.0 / 5.0}


def required_sample_size(
    theorem: str, m: int, true_count: int, epsilon: float = 0.5, constant: float = 4.0
) -> int:
    """The theorem's space requirement for claiming ``(1 ± ε)`` at ``ε``.

    Delegates to the algorithms' own ``recommended_sample_size`` so the
    diagnostics and the estimators can never disagree on the formula.
    """
    # Imported here: repro.obs is a lower layer than repro.core.
    if theorem == THEOREM_TRIANGLE:
        from repro.core.triangle_two_pass import recommended_sample_size

        return recommended_sample_size(m, true_count, epsilon=epsilon, constant=constant)
    if theorem == THEOREM_FOURCYCLE:
        from repro.core.fourcycle_two_pass import recommended_sample_size

        return recommended_sample_size(m, true_count, constant=constant)
    raise ValueError(f"unknown theorem {theorem!r} (expected '3.7' or '4.6')")


@dataclass(frozen=True)
class EstimatePoint:
    """One point of a convergence trajectory."""

    pass_index: int
    lists_done: int
    estimate: float
    relative_error: Optional[float] = None


def estimate_trace(
    events: Sequence[TelemetryEvent], truth: Optional[float] = None
) -> List[EstimatePoint]:
    """The run's anytime-estimate trajectory, in emission order.

    With ``truth`` given, each point carries its relative error
    ``|estimate - truth| / truth`` (``None`` when truth is zero).
    """
    points: List[EstimatePoint] = []
    for event in events:
        if not isinstance(event, EstimateSample):
            continue
        error: Optional[float] = None
        if truth is not None and truth != 0:
            error = abs(event.estimate - truth) / abs(truth)
        points.append(
            EstimatePoint(
                pass_index=event.pass_index,
                lists_done=event.lists_done,
                estimate=event.estimate,
                relative_error=error,
            )
        )
    return points


def _median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def _variance(values: Sequence[float]) -> float:
    if len(values) < 2:
        return 0.0
    mean = sum(values) / len(values)
    return sum((v - mean) ** 2 for v in values) / (len(values) - 1)


@dataclass(frozen=True)
class ConvergenceVerdict:
    """Structured outcome of checking trials against a theorem's budgets."""

    theorem: str
    epsilon: float
    truth: float
    m: int
    sample_size: int
    required_size: int
    runs: int
    median_relative_error: float
    success_rate: float
    success_target: float
    variance: float
    variance_budget: float
    space_budget_ok: bool
    relative_error_ok: bool
    success_rate_ok: bool
    variance_ok: bool
    ok: bool
    violations: Tuple[str, ...]

    def to_flat_dict(self) -> Dict[str, Any]:
        """Flat JSON-safe form for benchmark artifacts.

        Booleans classify as gated invariants under ``bench-report``, so
        embedding this dict in a ``BENCH_*.json`` makes every budget
        violation a CI regression.
        """
        return {
            "theorem": self.theorem,
            "epsilon": self.epsilon,
            "truth": self.truth,
            "m": self.m,
            "sample_size": self.sample_size,
            "required_size": self.required_size,
            "runs": self.runs,
            "median_relative_error": self.median_relative_error,
            "success_rate": self.success_rate,
            "success_target": self.success_target,
            "variance": self.variance,
            "variance_budget": self.variance_budget,
            "space_budget_ok": self.space_budget_ok,
            "relative_error_ok": self.relative_error_ok,
            "success_rate_ok": self.success_rate_ok,
            "variance_ok": self.variance_ok,
            "ok": self.ok,
        }


def diagnose(
    estimates: Sequence[float],
    truth: float,
    m: int,
    sample_size: int,
    *,
    theorem: str = THEOREM_TRIANGLE,
    epsilon: float = 0.5,
    constant: float = 4.0,
    success_target: Optional[float] = None,
) -> ConvergenceVerdict:
    """Check across-trial estimates against a theorem's budgets.

    ``estimates`` are the final estimates of independent trials at space
    ``sample_size`` on a stream of ``m`` edges whose true count is
    ``truth``; ``epsilon`` is the *claimed* accuracy.  The space check
    compares ``sample_size`` against what the theorem requires for that
    claim — a deliberately under-budgeted run is flagged even before its
    empirical error is (Theorem 4.6 promises a constant-factor
    approximation, so ``epsilon`` defaults to the same knob but reads as
    the claimed constant there).
    """
    if not estimates:
        raise ValueError("diagnose needs at least one trial estimate")
    if truth <= 0:
        raise ValueError("truth must be positive (plant a known count)")
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    required = required_sample_size(theorem, m, int(truth), epsilon, constant)
    target = success_target if success_target is not None else _SUCCESS_TARGETS[theorem]

    errors = [abs(e - truth) / truth for e in estimates]
    median_error = _median(errors)
    success_rate = sum(1 for err in errors if err <= epsilon) / len(errors)
    variance = _variance(list(estimates))
    variance_budget = epsilon**2 * truth**2

    space_ok = sample_size >= required
    error_ok = median_error <= epsilon
    success_ok = success_rate >= target
    variance_ok = variance <= variance_budget

    violations: List[str] = []
    if not space_ok:
        violations.append(
            f"space budget: sample_size {sample_size} < required "
            f"{required} for eps={epsilon:g} (Theorem {theorem})"
        )
    if not error_ok:
        violations.append(
            f"relative error: median {median_error:.3g} > eps {epsilon:g}"
        )
    if not success_ok:
        violations.append(
            f"success rate: {success_rate:.3g} < target {target:.3g}"
        )
    if not variance_ok:
        violations.append(
            f"variance: {variance:.3g} > eps^2*T^2 budget {variance_budget:.3g}"
        )

    return ConvergenceVerdict(
        theorem=theorem,
        epsilon=epsilon,
        truth=float(truth),
        m=m,
        sample_size=sample_size,
        required_size=required,
        runs=len(estimates),
        median_relative_error=median_error,
        success_rate=success_rate,
        success_target=target,
        variance=variance,
        variance_budget=variance_budget,
        space_budget_ok=space_ok,
        relative_error_ok=error_ok,
        success_rate_ok=success_ok,
        variance_ok=variance_ok,
        ok=space_ok and error_ok and success_ok and variance_ok,
        violations=tuple(violations),
    )
