"""``repro.obs`` — streaming telemetry: metrics, events, sinks, reports.

Public surface:

* :class:`~repro.obs.telemetry.Telemetry` / :data:`NULL_TELEMETRY` /
  :func:`open_telemetry` — the facade instrumented code talks to;
* the event vocabulary in :mod:`repro.obs.events`;
* sinks (:class:`InMemorySink`, :class:`JsonlSink`, :class:`TextfileSink`,
  :data:`NULL_SINK`) in :mod:`repro.obs.sinks`;
* metric machinery (:class:`MetricRegistry`, :func:`merge_snapshots`,
  :func:`strip_timers`) in :mod:`repro.obs.metrics`;
* roll-ups (:func:`rollup_metrics`, :func:`deterministic_rollup`) in
  :mod:`repro.obs.rollup`;
* the benchmark comparison engine in :mod:`repro.obs.bench_report`.
"""

from repro.obs.events import (
    EVENT_TYPES,
    MergeCompleted,
    MetricsReport,
    OccupancySample,
    PassFinished,
    PassStarted,
    RunFinished,
    RunStarted,
    ShardPassFinished,
    SpaceHighWater,
    TelemetryEvent,
    TrialFinished,
    decode_event,
    encode_event,
)
from repro.obs.metrics import (
    COUNTER,
    GAUGE,
    TIMER,
    MetricFamily,
    MetricRegistry,
    Snapshot,
    format_series,
    merge_snapshots,
    parse_series,
    strip_timers,
)
from repro.obs.rollup import deterministic_rollup, rollup_metrics
from repro.obs.sinks import (
    NULL_SINK,
    InMemorySink,
    JsonlSink,
    NullSink,
    TelemetrySink,
    TextfileSink,
    parse_textfile,
    read_jsonl_events,
    render_textfile,
)
from repro.obs.telemetry import NULL_TELEMETRY, Telemetry, open_telemetry

__all__ = [
    "Telemetry",
    "NULL_TELEMETRY",
    "open_telemetry",
    "TelemetryEvent",
    "RunStarted",
    "PassStarted",
    "PassFinished",
    "SpaceHighWater",
    "OccupancySample",
    "ShardPassFinished",
    "MergeCompleted",
    "TrialFinished",
    "RunFinished",
    "MetricsReport",
    "EVENT_TYPES",
    "encode_event",
    "decode_event",
    "TelemetrySink",
    "NullSink",
    "NULL_SINK",
    "InMemorySink",
    "JsonlSink",
    "TextfileSink",
    "read_jsonl_events",
    "render_textfile",
    "parse_textfile",
    "MetricRegistry",
    "MetricFamily",
    "Snapshot",
    "COUNTER",
    "GAUGE",
    "TIMER",
    "format_series",
    "parse_series",
    "merge_snapshots",
    "strip_timers",
    "rollup_metrics",
    "deterministic_rollup",
]
