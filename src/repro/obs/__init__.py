"""``repro.obs`` — streaming telemetry: metrics, events, sinks, reports.

Public surface:

* :class:`~repro.obs.telemetry.Telemetry` / :data:`NULL_TELEMETRY` /
  :func:`open_telemetry` — the facade instrumented code talks to;
* the event vocabulary in :mod:`repro.obs.events`;
* sinks (:class:`InMemorySink`, :class:`JsonlSink`, :class:`TextfileSink`,
  :data:`NULL_SINK`) in :mod:`repro.obs.sinks`;
* metric machinery (:class:`MetricRegistry`, :func:`merge_snapshots`,
  :func:`strip_timers`) in :mod:`repro.obs.metrics`;
* roll-ups (:func:`rollup_metrics`, :func:`deterministic_rollup`) in
  :mod:`repro.obs.rollup`;
* hierarchical trace spans (:class:`Tracer`, :data:`NULL_TRACER`,
  :class:`TraceSink`, Chrome trace export) in :mod:`repro.obs.trace`;
* convergence diagnostics (:func:`estimate_trace`, :func:`diagnose`,
  :class:`ConvergenceVerdict`) in :mod:`repro.obs.diagnostics`;
* the metric/event name registry in :mod:`repro.obs.names`;
* the benchmark comparison engine in :mod:`repro.obs.bench_report`
  and the run dashboard in :mod:`repro.obs.obs_report`.
"""

from repro.obs.diagnostics import (
    ConvergenceVerdict,
    EstimatePoint,
    diagnose,
    estimate_trace,
    required_sample_size,
)
from repro.obs.events import (
    EVENT_TYPES,
    EstimateSample,
    MergeCompleted,
    MetricsReport,
    OccupancySample,
    PassFinished,
    PassStarted,
    RunFinished,
    RunStarted,
    ShardPassFinished,
    SpaceHighWater,
    SpanFinished,
    TelemetryEvent,
    TrialFinished,
    decode_event,
    encode_event,
)
from repro.obs.metrics import (
    COUNTER,
    GAUGE,
    HISTOGRAM,
    HISTOGRAM_BOUNDS,
    TIMER,
    Histogram,
    MetricFamily,
    MetricRegistry,
    Snapshot,
    format_series,
    histogram_quantile,
    label_snapshot,
    merge_snapshots,
    parse_series,
    strip_timers,
)
from repro.obs.names import METRIC_NAMES, is_valid_metric_name, unregistered_series
from repro.obs.rollup import deterministic_rollup, rollup_metrics
from repro.obs.sinks import (
    NULL_SINK,
    InMemorySink,
    JsonlSink,
    NullSink,
    TeeSink,
    TelemetrySink,
    TextfileSink,
    parse_textfile,
    read_jsonl_events,
    render_textfile,
)
from repro.obs.telemetry import NULL_TELEMETRY, Telemetry, open_telemetry
from repro.obs.trace import (
    NULL_TRACER,
    SpanRecord,
    TraceContext,
    Tracer,
    TraceSink,
    chrome_trace_events,
    read_chrome_trace,
    span_id_for,
    span_tree,
    spans_from_events,
    stitch_chrome_traces,
    stitch_spans,
    write_chrome_trace,
)
from repro.obs.slo import SLOPolicy, SLOStatus, evaluate_slo, pooled_histogram

__all__ = [
    "Telemetry",
    "NULL_TELEMETRY",
    "open_telemetry",
    "TelemetryEvent",
    "RunStarted",
    "PassStarted",
    "PassFinished",
    "SpaceHighWater",
    "OccupancySample",
    "ShardPassFinished",
    "MergeCompleted",
    "TrialFinished",
    "RunFinished",
    "MetricsReport",
    "EstimateSample",
    "SpanFinished",
    "EVENT_TYPES",
    "encode_event",
    "decode_event",
    "TelemetrySink",
    "NullSink",
    "NULL_SINK",
    "InMemorySink",
    "JsonlSink",
    "TeeSink",
    "TextfileSink",
    "read_jsonl_events",
    "render_textfile",
    "parse_textfile",
    "MetricRegistry",
    "MetricFamily",
    "Snapshot",
    "COUNTER",
    "GAUGE",
    "TIMER",
    "HISTOGRAM",
    "HISTOGRAM_BOUNDS",
    "Histogram",
    "histogram_quantile",
    "format_series",
    "parse_series",
    "label_snapshot",
    "merge_snapshots",
    "strip_timers",
    "unregistered_series",
    "rollup_metrics",
    "deterministic_rollup",
    "Tracer",
    "NULL_TRACER",
    "TraceContext",
    "TraceSink",
    "SpanRecord",
    "span_id_for",
    "span_tree",
    "spans_from_events",
    "chrome_trace_events",
    "write_chrome_trace",
    "read_chrome_trace",
    "stitch_spans",
    "stitch_chrome_traces",
    "SLOPolicy",
    "SLOStatus",
    "evaluate_slo",
    "pooled_histogram",
    "EstimatePoint",
    "estimate_trace",
    "ConvergenceVerdict",
    "diagnose",
    "required_sample_size",
    "METRIC_NAMES",
    "is_valid_metric_name",
]
