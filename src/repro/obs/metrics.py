"""Labelled metric families: counters, gauges, and timers.

The model follows the Prometheus client shape without the dependency: a
:class:`MetricRegistry` holds :class:`MetricFamily` objects (one per
metric *name*), a family holds one instrument per distinct label
combination, and ``family.labels(pass_index="0")`` returns the live
instrument for that series.  Three instrument kinds exist:

* :class:`Counter` — monotonically increasing total (``inc``);
* :class:`Gauge` — instantaneous value plus its high-water mark (``set``);
* :class:`Timer` — accumulated wall-time observations (sum / count / max),
  with a context-manager ``time()`` helper;
* :class:`Histogram` — bucketed observations over *fixed* exponential
  bounds (:data:`HISTOGRAM_BOUNDS`), so independently collected
  histograms merge deterministically bucket-by-bucket.

Everything serialises through :meth:`MetricRegistry.snapshot`: a flat,
JSON-safe ``{series_key: {kind, ...values}}`` dict whose series keys look
like ``stream_pairs_total{pass=0}``.  Snapshots from independent workers
merge with :func:`merge_snapshots` (counters add, gauges keep the
high-water, timers pool their observations), which is what the
experiment harness's per-trial roll-up uses.
"""

from __future__ import annotations

import time
from bisect import bisect_left
from typing import Any, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

Snapshot = Dict[str, Dict[str, Any]]

COUNTER = "counter"
GAUGE = "gauge"
TIMER = "timer"
HISTOGRAM = "histogram"
KINDS = (COUNTER, GAUGE, TIMER, HISTOGRAM)

#: Metric kinds that record wall-clock quantities and are therefore
#: excluded from determinism comparisons (see :func:`strip_timers`).
WALL_CLOCK_KINDS = (TIMER, HISTOGRAM)

#: The one fixed bucket layout every histogram in the tree uses: upper
#: bounds in seconds, powers of two from 1 µs to ~8.4 s (24 buckets),
#: plus an implicit ``+Inf`` overflow bucket.  Fixing the bounds is what
#: makes :func:`merge_snapshots` deterministic — two workers can never
#: disagree on bucket edges, so merging is pure elementwise addition.
HISTOGRAM_BOUNDS: Tuple[float, ...] = tuple(1e-6 * 2.0**i for i in range(24))


def format_series(name: str, labels: Mapping[str, str]) -> str:
    """Canonical series key: ``name{k1=v1,k2=v2}`` with sorted labels."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


def parse_series(series: str) -> Tuple[str, Dict[str, str]]:
    """Invert :func:`format_series` (labels may not contain ``,{}=``)."""
    if "{" not in series:
        return series, {}
    name, _, rest = series.partition("{")
    body = rest.rstrip("}")
    labels: Dict[str, str] = {}
    if body:
        for part in body.split(","):
            key, _, value = part.partition("=")
            labels[key] = value
    return name, labels


class Counter:
    """A monotonically increasing total."""

    kind = COUNTER

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError("counters only increase; use a gauge")
        self.value += amount

    def dump(self) -> Dict[str, Any]:
        return {"kind": COUNTER, "value": self.value}

    def load(self, blob: Mapping[str, Any]) -> None:
        self.value = blob["value"]


class Gauge:
    """An instantaneous value plus its high-water mark."""

    kind = GAUGE

    __slots__ = ("value", "high_water")

    def __init__(self) -> None:
        self.value: float = 0
        self.high_water: float = 0

    def set(self, value: float) -> None:
        self.value = value
        if value > self.high_water:
            self.high_water = value

    def dump(self) -> Dict[str, Any]:
        return {"kind": GAUGE, "value": self.value, "high_water": self.high_water}

    def load(self, blob: Mapping[str, Any]) -> None:
        self.value = blob["value"]
        self.high_water = blob["high_water"]


class Timer:
    """Accumulated duration observations (sum, count, max), in seconds."""

    kind = TIMER

    __slots__ = ("total_seconds", "count", "max_seconds")

    def __init__(self) -> None:
        self.total_seconds: float = 0.0
        self.count: int = 0
        self.max_seconds: float = 0.0

    def observe(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("durations cannot be negative")
        self.total_seconds += seconds
        self.count += 1
        if seconds > self.max_seconds:
            self.max_seconds = seconds

    def time(self) -> "_TimerContext":
        """Context manager recording the wall time of its ``with`` block."""
        return _TimerContext(self)

    def dump(self) -> Dict[str, Any]:
        return {
            "kind": TIMER,
            "total_seconds": self.total_seconds,
            "count": self.count,
            "max_seconds": self.max_seconds,
        }

    def load(self, blob: Mapping[str, Any]) -> None:
        self.total_seconds = blob["total_seconds"]
        self.count = int(blob["count"])
        self.max_seconds = blob["max_seconds"]


class Histogram:
    """Bucketed observations over fixed exponential bounds.

    ``buckets[i]`` counts observations with ``value <= bounds[i]`` that
    no earlier bucket claimed (non-cumulative storage); ``buckets[-1]``
    is the ``+Inf`` overflow.  :meth:`cumulative` produces the
    Prometheus-style running totals for exposition.
    """

    kind = HISTOGRAM

    __slots__ = ("bounds", "buckets", "total", "count")

    def __init__(self, bounds: Sequence[float] = HISTOGRAM_BOUNDS) -> None:
        self.bounds: Tuple[float, ...] = tuple(float(b) for b in bounds)
        if list(self.bounds) != sorted(set(self.bounds)):
            raise ValueError("histogram bounds must be strictly increasing")
        self.buckets: List[int] = [0] * (len(self.bounds) + 1)
        self.total: float = 0.0
        self.count: int = 0

    def observe(self, value: float) -> None:
        if value < 0:
            raise ValueError("histogram observations cannot be negative")
        self.buckets[bisect_left(self.bounds, value)] += 1
        self.total += value
        self.count += 1

    def cumulative(self) -> Iterator[Tuple[float, int]]:
        """Yield ``(upper_bound, running_count)``; the last bound is inf."""
        running = 0
        for bound, n in zip(self.bounds, self.buckets):
            running += n
            yield bound, running
        yield float("inf"), self.count

    def quantile(self, q: float) -> float:
        """Estimate the q-quantile (0..1) by linear bucket attribution.

        Returns the upper bound of the bucket holding the q-th
        observation — a conservative (over-) estimate, which is the safe
        direction for latency SLOs.  Empty histograms estimate 0.
        """
        if not 0 <= q <= 1:
            raise ValueError("quantile must be in [0, 1]")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        running = 0
        for bound, n in zip(self.bounds, self.buckets):
            running += n
            if running >= rank:
                return bound
        return self.bounds[-1] if self.bounds else 0.0

    def dump(self) -> Dict[str, Any]:
        return {
            "kind": HISTOGRAM,
            "bounds": list(self.bounds),
            "buckets": list(self.buckets),
            "total": self.total,
            "count": self.count,
        }

    def load(self, blob: Mapping[str, Any]) -> None:
        self.bounds = tuple(float(b) for b in blob["bounds"])
        self.buckets = [int(n) for n in blob["buckets"]]
        self.total = blob["total"]
        self.count = int(blob["count"])


class _TimerContext:
    __slots__ = ("_timer", "_start")

    def __init__(self, timer: Timer) -> None:
        self._timer = timer
        self._start = 0.0

    def __enter__(self) -> "_TimerContext":
        # repro-lint: disable=DET003 -- wall clock is the quantity a Timer measures; values never feed estimator or sketch state
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        # repro-lint: disable=DET003 -- closing bracket of the timed interval; telemetry only
        self._timer.observe(time.perf_counter() - self._start)


_INSTRUMENTS = {COUNTER: Counter, GAUGE: Gauge, TIMER: Timer, HISTOGRAM: Histogram}


class MetricFamily:
    """All series of one metric name: a kind, help text, and label names."""

    def __init__(self, name: str, kind: str, help: str = "", labelnames: Tuple[str, ...] = ()):
        if kind not in _INSTRUMENTS:
            raise ValueError(f"unknown metric kind {kind!r} (choose from {KINDS})")
        self.name = name
        self.kind = kind
        self.help = help
        self.labelnames = tuple(labelnames)
        self._series: Dict[Tuple[str, ...], Any] = {}

    def labels(self, **labelvalues: str) -> Any:
        """The instrument for one label combination (created on first use)."""
        if set(labelvalues) != set(self.labelnames):
            raise ValueError(
                f"metric {self.name!r} takes labels {self.labelnames}, "
                f"got {tuple(sorted(labelvalues))}"
            )
        key = tuple(str(labelvalues[k]) for k in self.labelnames)
        instrument = self._series.get(key)
        if instrument is None:
            instrument = _INSTRUMENTS[self.kind]()
            self._series[key] = instrument
        return instrument

    def series(self) -> Iterator[Tuple[Dict[str, str], Any]]:
        """Yield ``(labels, instrument)`` for every live series, sorted."""
        for key in sorted(self._series):
            yield dict(zip(self.labelnames, key)), self._series[key]

    def __len__(self) -> int:
        return len(self._series)


class MetricRegistry:
    """A set of metric families, addressable by name."""

    def __init__(self) -> None:
        self._families: Dict[str, MetricFamily] = {}

    def _family(self, name: str, kind: str, help: str, labelnames: Tuple[str, ...]) -> MetricFamily:
        family = self._families.get(name)
        if family is None:
            family = MetricFamily(name, kind, help=help, labelnames=labelnames)
            self._families[name] = family
        elif family.kind != kind:
            raise ValueError(
                f"metric {name!r} already registered as a {family.kind}, not a {kind}"
            )
        return family

    def counter(self, name: str, help: str = "", labelnames: Tuple[str, ...] = ()) -> MetricFamily:
        return self._family(name, COUNTER, help, labelnames)

    def gauge(self, name: str, help: str = "", labelnames: Tuple[str, ...] = ()) -> MetricFamily:
        return self._family(name, GAUGE, help, labelnames)

    def timer(self, name: str, help: str = "", labelnames: Tuple[str, ...] = ()) -> MetricFamily:
        return self._family(name, TIMER, help, labelnames)

    def histogram(self, name: str, help: str = "", labelnames: Tuple[str, ...] = ()) -> MetricFamily:
        return self._family(name, HISTOGRAM, help, labelnames)

    def families(self) -> List[MetricFamily]:
        return [self._families[name] for name in sorted(self._families)]

    def __len__(self) -> int:
        return sum(len(f) for f in self._families.values())

    def snapshot(self) -> Snapshot:
        """Flat JSON-safe dump: ``{series_key: {kind, ...values}}``."""
        out: Snapshot = {}
        for family in self.families():
            for labels, instrument in family.series():
                out[format_series(family.name, labels)] = instrument.dump()
        return out

    def load_snapshot(self, snapshot: Snapshot, help_texts: Optional[Mapping[str, str]] = None) -> None:
        """Rebuild families/series from :meth:`snapshot` output (additive)."""
        for series_key in sorted(snapshot):
            blob = snapshot[series_key]
            name, labels = parse_series(series_key)
            help_text = (help_texts or {}).get(name, "")
            family = self._family(name, blob["kind"], help_text, tuple(sorted(labels)))
            family.labels(**labels).load(blob)


def merge_snapshots(snapshots: Iterable[Snapshot]) -> Snapshot:
    """Roll independent worker snapshots into one.

    Counters add; gauges keep the maximum value and high-water mark (the
    roll-up of per-worker peaks is the fleet peak); timers pool their
    observations (sums and counts add, max of max).  Mixing kinds under
    one series key is an error.
    """
    merged: Snapshot = {}
    for snapshot in snapshots:
        for series_key, blob in snapshot.items():
            slot = merged.get(series_key)
            if slot is None:
                merged[series_key] = dict(blob)
                continue
            if slot["kind"] != blob["kind"]:
                raise ValueError(
                    f"series {series_key!r} has conflicting kinds "
                    f"{slot['kind']!r} vs {blob['kind']!r}"
                )
            kind = blob["kind"]
            if kind == COUNTER:
                slot["value"] += blob["value"]
            elif kind == GAUGE:
                slot["value"] = max(slot["value"], blob["value"])
                slot["high_water"] = max(slot["high_water"], blob["high_water"])
            elif kind == HISTOGRAM:
                if list(slot["bounds"]) != list(blob["bounds"]):
                    raise ValueError(
                        f"series {series_key!r} has conflicting histogram "
                        "bucket bounds; all histograms must use the fixed "
                        "HISTOGRAM_BOUNDS layout"
                    )
                slot["buckets"] = [a + b for a, b in zip(slot["buckets"], blob["buckets"])]
                slot["total"] += blob["total"]
                slot["count"] += blob["count"]
            else:  # timer
                slot["total_seconds"] += blob["total_seconds"]
                slot["count"] += blob["count"]
                slot["max_seconds"] = max(slot["max_seconds"], blob["max_seconds"])
    return {key: merged[key] for key in sorted(merged)}


def label_snapshot(snapshot: Snapshot, **labels: str) -> Snapshot:
    """Re-key every series with extra labels (e.g. ``worker="3"``).

    The router tags each worker's shipped snapshot with its worker index
    before merging, so per-worker series stay distinguishable in the
    ``/metrics`` exposition while :func:`merge_snapshots` still pools
    identically-labelled series.
    """
    out: Snapshot = {}
    for series_key, blob in snapshot.items():
        name, existing = parse_series(series_key)
        existing.update({k: str(v) for k, v in labels.items()})
        out[format_series(name, existing)] = dict(blob)
    return out


def strip_timers(snapshot: Snapshot) -> Snapshot:
    """Drop wall-clock series (timers *and* histograms) from a snapshot.

    Counters and gauges emitted by the instrumented runner are pure
    functions of (stream, seed); timers and latency histograms are not.
    Determinism assertions (serial roll-up == parallel roll-up) compare
    stripped snapshots.
    """
    return {k: v for k, v in snapshot.items() if v["kind"] not in WALL_CLOCK_KINDS}


def histogram_quantile(blob: Mapping[str, Any], q: float) -> float:
    """Quantile estimate straight from a snapshot blob of kind histogram."""
    h = Histogram(blob["bounds"])
    h.load(blob)
    return h.quantile(q)
