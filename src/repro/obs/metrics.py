"""Labelled metric families: counters, gauges, and timers.

The model follows the Prometheus client shape without the dependency: a
:class:`MetricRegistry` holds :class:`MetricFamily` objects (one per
metric *name*), a family holds one instrument per distinct label
combination, and ``family.labels(pass_index="0")`` returns the live
instrument for that series.  Three instrument kinds exist:

* :class:`Counter` — monotonically increasing total (``inc``);
* :class:`Gauge` — instantaneous value plus its high-water mark (``set``);
* :class:`Timer` — accumulated wall-time observations (sum / count / max),
  with a context-manager ``time()`` helper.

Everything serialises through :meth:`MetricRegistry.snapshot`: a flat,
JSON-safe ``{series_key: {kind, ...values}}`` dict whose series keys look
like ``stream_pairs_total{pass=0}``.  Snapshots from independent workers
merge with :func:`merge_snapshots` (counters add, gauges keep the
high-water, timers pool their observations), which is what the
experiment harness's per-trial roll-up uses.
"""

from __future__ import annotations

import time
from typing import Any, Dict, Iterable, Iterator, List, Mapping, Optional, Tuple

Snapshot = Dict[str, Dict[str, Any]]

COUNTER = "counter"
GAUGE = "gauge"
TIMER = "timer"
KINDS = (COUNTER, GAUGE, TIMER)


def format_series(name: str, labels: Mapping[str, str]) -> str:
    """Canonical series key: ``name{k1=v1,k2=v2}`` with sorted labels."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


def parse_series(series: str) -> Tuple[str, Dict[str, str]]:
    """Invert :func:`format_series` (labels may not contain ``,{}=``)."""
    if "{" not in series:
        return series, {}
    name, _, rest = series.partition("{")
    body = rest.rstrip("}")
    labels: Dict[str, str] = {}
    if body:
        for part in body.split(","):
            key, _, value = part.partition("=")
            labels[key] = value
    return name, labels


class Counter:
    """A monotonically increasing total."""

    kind = COUNTER

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError("counters only increase; use a gauge")
        self.value += amount

    def dump(self) -> Dict[str, Any]:
        return {"kind": COUNTER, "value": self.value}

    def load(self, blob: Mapping[str, Any]) -> None:
        self.value = blob["value"]


class Gauge:
    """An instantaneous value plus its high-water mark."""

    kind = GAUGE

    __slots__ = ("value", "high_water")

    def __init__(self) -> None:
        self.value: float = 0
        self.high_water: float = 0

    def set(self, value: float) -> None:
        self.value = value
        if value > self.high_water:
            self.high_water = value

    def dump(self) -> Dict[str, Any]:
        return {"kind": GAUGE, "value": self.value, "high_water": self.high_water}

    def load(self, blob: Mapping[str, Any]) -> None:
        self.value = blob["value"]
        self.high_water = blob["high_water"]


class Timer:
    """Accumulated duration observations (sum, count, max), in seconds."""

    kind = TIMER

    __slots__ = ("total_seconds", "count", "max_seconds")

    def __init__(self) -> None:
        self.total_seconds: float = 0.0
        self.count: int = 0
        self.max_seconds: float = 0.0

    def observe(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("durations cannot be negative")
        self.total_seconds += seconds
        self.count += 1
        if seconds > self.max_seconds:
            self.max_seconds = seconds

    def time(self) -> "_TimerContext":
        """Context manager recording the wall time of its ``with`` block."""
        return _TimerContext(self)

    def dump(self) -> Dict[str, Any]:
        return {
            "kind": TIMER,
            "total_seconds": self.total_seconds,
            "count": self.count,
            "max_seconds": self.max_seconds,
        }

    def load(self, blob: Mapping[str, Any]) -> None:
        self.total_seconds = blob["total_seconds"]
        self.count = int(blob["count"])
        self.max_seconds = blob["max_seconds"]


class _TimerContext:
    __slots__ = ("_timer", "_start")

    def __init__(self, timer: Timer) -> None:
        self._timer = timer
        self._start = 0.0

    def __enter__(self) -> "_TimerContext":
        # repro-lint: disable=DET003 -- wall clock is the quantity a Timer measures; values never feed estimator or sketch state
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        # repro-lint: disable=DET003 -- closing bracket of the timed interval; telemetry only
        self._timer.observe(time.perf_counter() - self._start)


_INSTRUMENTS = {COUNTER: Counter, GAUGE: Gauge, TIMER: Timer}


class MetricFamily:
    """All series of one metric name: a kind, help text, and label names."""

    def __init__(self, name: str, kind: str, help: str = "", labelnames: Tuple[str, ...] = ()):
        if kind not in _INSTRUMENTS:
            raise ValueError(f"unknown metric kind {kind!r} (choose from {KINDS})")
        self.name = name
        self.kind = kind
        self.help = help
        self.labelnames = tuple(labelnames)
        self._series: Dict[Tuple[str, ...], Any] = {}

    def labels(self, **labelvalues: str) -> Any:
        """The instrument for one label combination (created on first use)."""
        if set(labelvalues) != set(self.labelnames):
            raise ValueError(
                f"metric {self.name!r} takes labels {self.labelnames}, "
                f"got {tuple(sorted(labelvalues))}"
            )
        key = tuple(str(labelvalues[k]) for k in self.labelnames)
        instrument = self._series.get(key)
        if instrument is None:
            instrument = _INSTRUMENTS[self.kind]()
            self._series[key] = instrument
        return instrument

    def series(self) -> Iterator[Tuple[Dict[str, str], Any]]:
        """Yield ``(labels, instrument)`` for every live series, sorted."""
        for key in sorted(self._series):
            yield dict(zip(self.labelnames, key)), self._series[key]

    def __len__(self) -> int:
        return len(self._series)


class MetricRegistry:
    """A set of metric families, addressable by name."""

    def __init__(self) -> None:
        self._families: Dict[str, MetricFamily] = {}

    def _family(self, name: str, kind: str, help: str, labelnames: Tuple[str, ...]) -> MetricFamily:
        family = self._families.get(name)
        if family is None:
            family = MetricFamily(name, kind, help=help, labelnames=labelnames)
            self._families[name] = family
        elif family.kind != kind:
            raise ValueError(
                f"metric {name!r} already registered as a {family.kind}, not a {kind}"
            )
        return family

    def counter(self, name: str, help: str = "", labelnames: Tuple[str, ...] = ()) -> MetricFamily:
        return self._family(name, COUNTER, help, labelnames)

    def gauge(self, name: str, help: str = "", labelnames: Tuple[str, ...] = ()) -> MetricFamily:
        return self._family(name, GAUGE, help, labelnames)

    def timer(self, name: str, help: str = "", labelnames: Tuple[str, ...] = ()) -> MetricFamily:
        return self._family(name, TIMER, help, labelnames)

    def families(self) -> List[MetricFamily]:
        return [self._families[name] for name in sorted(self._families)]

    def __len__(self) -> int:
        return sum(len(f) for f in self._families.values())

    def snapshot(self) -> Snapshot:
        """Flat JSON-safe dump: ``{series_key: {kind, ...values}}``."""
        out: Snapshot = {}
        for family in self.families():
            for labels, instrument in family.series():
                out[format_series(family.name, labels)] = instrument.dump()
        return out

    def load_snapshot(self, snapshot: Snapshot, help_texts: Optional[Mapping[str, str]] = None) -> None:
        """Rebuild families/series from :meth:`snapshot` output (additive)."""
        for series_key in sorted(snapshot):
            blob = snapshot[series_key]
            name, labels = parse_series(series_key)
            help_text = (help_texts or {}).get(name, "")
            family = self._family(name, blob["kind"], help_text, tuple(sorted(labels)))
            family.labels(**labels).load(blob)


def merge_snapshots(snapshots: Iterable[Snapshot]) -> Snapshot:
    """Roll independent worker snapshots into one.

    Counters add; gauges keep the maximum value and high-water mark (the
    roll-up of per-worker peaks is the fleet peak); timers pool their
    observations (sums and counts add, max of max).  Mixing kinds under
    one series key is an error.
    """
    merged: Snapshot = {}
    for snapshot in snapshots:
        for series_key, blob in snapshot.items():
            slot = merged.get(series_key)
            if slot is None:
                merged[series_key] = dict(blob)
                continue
            if slot["kind"] != blob["kind"]:
                raise ValueError(
                    f"series {series_key!r} has conflicting kinds "
                    f"{slot['kind']!r} vs {blob['kind']!r}"
                )
            kind = blob["kind"]
            if kind == COUNTER:
                slot["value"] += blob["value"]
            elif kind == GAUGE:
                slot["value"] = max(slot["value"], blob["value"])
                slot["high_water"] = max(slot["high_water"], blob["high_water"])
            else:  # timer
                slot["total_seconds"] += blob["total_seconds"]
                slot["count"] += blob["count"]
                slot["max_seconds"] = max(slot["max_seconds"], blob["max_seconds"])
    return {key: merged[key] for key in sorted(merged)}


def strip_timers(snapshot: Snapshot) -> Snapshot:
    """Drop timer series — the wall-clock part of a snapshot.

    Counters and gauges emitted by the instrumented runner are pure
    functions of (stream, seed); timers are not.  Determinism assertions
    (serial roll-up == parallel roll-up) compare stripped snapshots.
    """
    return {k: v for k, v in snapshot.items() if v["kind"] != TIMER}
