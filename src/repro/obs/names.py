"""The declared registry of telemetry metric names.

Every metric the instrumented runners emit (``telemetry.count(...)``,
``telemetry.set_gauge(...)``, ``telemetry.observe_seconds(...)``) must use
a name declared here.  The registry exists so that a typo'd metric name —
which would otherwise silently create a parallel, never-aggregated series
— is caught *statically*: lint rule OBS001 resolves every literal metric
name at telemetry call sites in ``src/repro`` against this table (see
``docs/LINTING.md``).

Names are lowercase dotted identifiers: ``[a-z][a-z0-9_]*`` segments
joined by dots (a single segment, underscore-separated, is the common
Prometheus-compatible form).  :func:`validate_registry` enforces the
pattern on the registry itself and is pinned by a test.
"""

from __future__ import annotations

import re
from typing import Dict, List

__all__ = [
    "METRIC_NAMES",
    "METRIC_NAME_PATTERN",
    "is_valid_metric_name",
    "registered_help",
    "unregistered_series",
    "validate_registry",
]

#: ``segment(.segment)*`` where a segment is a lowercase identifier.
METRIC_NAME_PATTERN = r"^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)*$"

_NAME_RE = re.compile(METRIC_NAME_PATTERN)

#: name -> canonical help text.  Instrumented call sites may repeat the
#: help inline (first registration wins at runtime); this table is the
#: authoritative vocabulary the linter checks against.
METRIC_NAMES: Dict[str, str] = {
    # streaming/runner.py
    "stream_space_words": "algorithm live state in machine words, polled per list batch",
    "stream_pairs_total": "adjacency pairs consumed",
    "stream_lists_total": "adjacency lists consumed",
    "stream_pass_space_words": "live state in machine words at the pass boundary",
    "stream_pass_seconds": "wall time of one stream pass",
    "stream_current_estimate": "anytime estimate polled at the space-poll cadence",
    "run_peak_space_words": "peak live state over the whole run",
    # sketch/driver.py
    "shard_pairs_total": "adjacency pairs consumed by shard workers",
    "shard_peak_space_words": "per-shard peak live state in machine words",
    "shard_merges_total": "pass-boundary shard merges",
    # serve/manager.py + serve/server.py
    "serve_sessions_open": "serve sessions currently open (high water = peak concurrency)",
    "serve_sessions_total": "serve sessions ever opened",
    "serve_session_pairs_total": "adjacency pairs ingested across all serve sessions",
    "serve_session_chunks_total": "feed chunks ingested across all serve sessions",
    "serve_polls_total": "anytime-estimate polls answered",
    "serve_poll_seconds": "server-side wall time answering one poll",
    "serve_feed_seconds": "server-side wall time ingesting one chunk",
    "serve_merges_total": "cross-session sketch merges performed",
    "serve_snapshots_total": "session snapshots taken (client-requested or shutdown)",
    "serve_errors_total": "requests rejected with a protocol error",
    "serve_bytes_total": "approximate request payload bytes accepted",
    "serve_requests_total": "protocol requests handled by the server",
    # live plane: serve/manager.py histograms + queue depth
    "serve_op_latency_seconds": "per-operation serve latency histogram (op=feed|poll|merge|snapshot, wire=json|binary)",
    "serve_feed_gate_depth": "feeds queued behind the ingest semaphore (high water = worst backlog)",
    "serve_loop_lag_seconds": "event-loop scheduling lag histogram (sleep overshoot)",
    # live plane: serve/router.py
    "router_relay_seconds": "router-side relay latency histogram per relayed op",
    "router_tenant_bytes_total": "accepted feed payload bytes per tenant (router-metered)",
    "router_workers": "worker processes behind the router",
    "router_scrapes_total": "/metrics scrapes served by the router",
    "router_slo_ok": "1 when the labelled SLO objective currently holds, else 0",
    "router_slo_poll_p99_seconds": "p99 poll latency estimated from the live histogram",
    "router_slo_feed_pairs_per_second": "ingest throughput over the last SLO evaluation window",
    "router_slo_verdict_age_seconds": "seconds since a convergence poll last refreshed a verdict",
    "router_slo_loop_lag_p99_seconds": "p99 event-loop lag estimated from the live histogram",
}


def registered_help(name: str) -> str:
    """Canonical help text for a registered name (empty if unknown)."""
    return METRIC_NAMES.get(name, "")


def unregistered_series(snapshot: "Dict[str, object]") -> List[str]:
    """Series keys in a snapshot whose metric *name* is not declared here.

    The router's ``/metrics`` endpoint refuses to expose unregistered
    names — the runtime counterpart of lint rule OBS001's static check.
    """
    out = []
    for series_key in snapshot:
        name = series_key.partition("{")[0]
        if name not in METRIC_NAMES:
            out.append(series_key)
    return sorted(out)


def is_valid_metric_name(name: str) -> bool:
    """Whether ``name`` is a lowercase dotted identifier."""
    return _NAME_RE.match(name) is not None


def validate_registry() -> List[str]:
    """Return the registry entries that violate the naming pattern."""
    return sorted(name for name in METRIC_NAMES if not is_valid_metric_name(name))
