"""Cross-worker metric roll-up for the experiment harness.

Trials executed in worker processes each carry their own metric snapshot
home inside :class:`~repro.experiments.parallel.TrialResult.metrics`;
this module folds those per-trial snapshots into one fleet view.  The
invariant the tests pin: because every counter and gauge the runner
emits is a pure function of (stream, seed), the roll-up of a parallel
execution equals the roll-up of the serial one *after stripping timers*
(:func:`deterministic_rollup`) — wall clock is the only thing allowed to
differ between schedules.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.obs.metrics import Snapshot, merge_snapshots, strip_timers

__all__ = ["rollup_metrics", "deterministic_rollup"]


def rollup_metrics(snapshots: Iterable[Optional[Snapshot]]) -> Snapshot:
    """Merge per-trial snapshots (``None`` entries — trials run without
    metric collection — are skipped)."""
    return merge_snapshots(s for s in snapshots if s is not None)


def deterministic_rollup(snapshots: Iterable[Optional[Snapshot]]) -> Snapshot:
    """Roll up, then drop timer series — the schedule-invariant part."""
    return strip_timers(rollup_metrics(snapshots))
