"""Typed telemetry events emitted by the instrumented runners.

Each event is a frozen dataclass registered in :data:`EVENT_TYPES`;
:func:`encode_event` / :func:`decode_event` round-trip them through the
JSON-safe wire form the JSONL sink writes (``{"event": <type name>,
...fields}``).  Field values are restricted to JSON scalars plus flat
``str -> number`` dicts so a decoded event compares equal to the
original.

The vocabulary covers the streaming runner (pass boundaries, per-pass
throughput, space high-water marks, sampler/reservoir occupancy), the
shard-and-merge driver (per-shard passes, merges), the experiment
harness (per-trial summaries), and a final :class:`MetricsReport`
carrying the run's full metric-registry snapshot.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields
from typing import Any, Dict, Mapping, Type

__all__ = [
    "TelemetryEvent",
    "RunStarted",
    "PassStarted",
    "PassFinished",
    "SpaceHighWater",
    "OccupancySample",
    "ShardPassFinished",
    "MergeCompleted",
    "TrialFinished",
    "RunFinished",
    "MetricsReport",
    "EstimateSample",
    "SessionOpened",
    "SessionClosed",
    "SessionsMerged",
    "ServeCheckpointed",
    "SpanFinished",
    "EVENT_TYPES",
    "encode_event",
    "decode_event",
]


@dataclass(frozen=True)
class TelemetryEvent:
    """Base class; exists so sinks can type against one thing."""


@dataclass(frozen=True)
class RunStarted(TelemetryEvent):
    """A runner began executing an algorithm over a stream."""

    algorithm: str
    passes: int
    pairs_per_pass: int


@dataclass(frozen=True)
class PassStarted(TelemetryEvent):
    """Pass ``pass_index`` (0-based) is about to consume the stream."""

    pass_index: int


@dataclass(frozen=True)
class PassFinished(TelemetryEvent):
    """Pass boundary: one full pass over the (shard's) stream completed."""

    pass_index: int
    lists: int
    pairs: int
    seconds: float
    pairs_per_second: float


@dataclass(frozen=True)
class SpaceHighWater(TelemetryEvent):
    """The algorithm's reported space exceeded every earlier reading."""

    pass_index: int
    lists_done: int
    words: int


@dataclass(frozen=True)
class OccupancySample(TelemetryEvent):
    """Periodic sampler/reservoir occupancy and churn readings.

    ``gauges`` is whatever the algorithm's ``observables()`` reports —
    e.g. ``edge_sampler_occupancy``, ``pair_reservoir_evictions``.
    """

    pass_index: int
    lists_done: int
    gauges: Dict[str, float]


@dataclass(frozen=True)
class ShardPassFinished(TelemetryEvent):
    """One shard finished one pass (emitted by the sharded driver)."""

    shard_index: int
    pass_index: int
    pairs: int
    peak_space_words: int


@dataclass(frozen=True)
class MergeCompleted(TelemetryEvent):
    """All shard states of one pass were folded into the merged state."""

    pass_index: int
    n_shards: int


@dataclass(frozen=True)
class TrialFinished(TelemetryEvent):
    """One independent experiment trial completed."""

    index: int
    budget: int
    estimate: float
    peak_space_words: int
    seconds: float


@dataclass(frozen=True)
class RunFinished(TelemetryEvent):
    """Terminal event: the run's result and resource summary."""

    estimate: float
    peak_space_words: int
    mean_space_words: float
    passes: int
    pairs: int
    seconds: float
    pairs_per_second: float


@dataclass(frozen=True)
class MetricsReport(TelemetryEvent):
    """Final dump of the run's metric registry (see ``metrics.Snapshot``)."""

    metrics: Dict[str, Dict[str, Any]]


@dataclass(frozen=True)
class EstimateSample(TelemetryEvent):
    """Anytime estimate, polled at the runner's space-poll cadence.

    Emitted only for algorithms exposing ``current_estimate()``; the
    sequence of samples over a run is the estimator's convergence
    trajectory (see :mod:`repro.obs.diagnostics`).
    """

    pass_index: int
    lists_done: int
    estimate: float


@dataclass(frozen=True)
class SessionOpened(TelemetryEvent):
    """A serve session was created (see :mod:`repro.serve`)."""

    session_id: str
    algorithm: str
    budget: int
    start_pass: int
    resumed: bool


@dataclass(frozen=True)
class SessionClosed(TelemetryEvent):
    """A serve session ended (client close, merge consumption, shutdown).

    ``estimate`` is the final result when the session completed all its
    passes, else the last anytime estimate, else ``None``.
    """

    session_id: str
    pairs: int
    chunks: int
    polls: int
    passes_completed: int
    estimate: "float | None"
    reason: str


@dataclass(frozen=True)
class SessionsMerged(TelemetryEvent):
    """Sketches of several sessions were merged into one state."""

    target_id: str
    source_ids: str  # comma-joined (event fields are flat scalars)
    n_sources: int


@dataclass(frozen=True)
class ServeCheckpointed(TelemetryEvent):
    """Graceful shutdown checkpointed the live sessions to a directory."""

    directory: str
    sessions: int


@dataclass(frozen=True)
class SpanFinished(TelemetryEvent):
    """One hierarchical trace span closed (see :mod:`repro.obs.trace`).

    ``span_id``/``parent_id`` are deterministic functions of the trace
    seed and the structural ``path`` (``run/pass:0/shard:2`` …), so the
    span *tree* is schedule-invariant; only ``start_s``/``end_s`` carry
    wall time.  ``attrs`` is restricted to schedule-invariant numbers
    (pair counts, budgets — never durations).
    """

    name: str
    category: str
    path: str
    span_id: str
    parent_id: str
    start_s: float
    end_s: float
    attrs: Dict[str, float]


EVENT_TYPES: Dict[str, Type[TelemetryEvent]] = {
    cls.__name__: cls
    for cls in (
        RunStarted,
        PassStarted,
        PassFinished,
        SpaceHighWater,
        OccupancySample,
        ShardPassFinished,
        MergeCompleted,
        TrialFinished,
        RunFinished,
        MetricsReport,
        EstimateSample,
        SessionOpened,
        SessionClosed,
        SessionsMerged,
        ServeCheckpointed,
        SpanFinished,
    )
}


def encode_event(event: TelemetryEvent) -> Dict[str, Any]:
    """JSON-safe wire form: ``{"event": <type name>, ...fields}``."""
    name = type(event).__name__
    if name not in EVENT_TYPES:
        raise TypeError(f"{name} is not a registered telemetry event type")
    blob = asdict(event)
    blob["event"] = name
    return blob


def decode_event(blob: Mapping[str, Any]) -> TelemetryEvent:
    """Invert :func:`encode_event`; unknown types raise ``ValueError``."""
    data = dict(blob)
    name = data.pop("event", None)
    cls = EVENT_TYPES.get(name or "")
    if cls is None:
        raise ValueError(f"unknown telemetry event type {name!r}")
    allowed = {f.name for f in fields(cls)}
    unexpected = set(data) - allowed
    if unexpected:
        raise ValueError(f"{name} does not take fields {sorted(unexpected)}")
    return cls(**data)
