"""``repro-cycles bench-report`` — the benchmark regression gate.

Loads pairs of benchmark artifacts (``BENCH_*.json`` as written by
``benchmarks/bench_parallel_scaling.py`` / ``bench_shard_merge.py``, or a
``.jsonl`` telemetry log from the JSONL sink), computes per-metric deltas
against a baseline, and renders a report.  Exit code 1 signals a
regression beyond threshold — the CI ``bench-regression`` job gates on
exactly that.

Metrics are classified by key so the gate stays meaningful across
machines:

* **invariants** — booleans (``bit_identical``, ``merge_identity.*``) and
  seeded ``estimate`` values.  These are machine-independent statements
  of correctness/determinism; any degradation is a regression regardless
  of threshold.
* **resources** — ``*space_words*``, ``*imbalance*``, ``*error*``,
  ``*stddev*`` (lower is better) and ``*rate*``/``*success*`` (higher is
  better).  Gated by the relative ``--threshold`` (override per metric
  with ``--threshold-for 'GLOB=VALUE'``).
* **timing** — ``*seconds*``, ``*per_second*``, ``*speedup*``.  Reported
  but NOT gated by default: wall time measured on different machines (a
  laptop baseline vs. a CI runner) is incomparable.  ``--gate-timing``
  promotes them to gated resources for same-machine comparisons.
* **context** — workload shape (``n``, ``m``, ``runs``, ``budgets``,
  ``cpu_count``, ...).  Compared for equality and surfaced as a warning
  on mismatch, because deltas between different workloads mean nothing.

Artifacts may additionally carry **self-declared gates**: a top-level
``"gates"`` list of ``{"metric": <flat key>, "min": <floor>}`` records
(``"max"`` for ceilings).  Unlike the baseline-relative thresholds
above, gates are *absolute* assertions evaluated against the current
artifact alone — e.g. "the columnar fast path is at least 5x the scalar
baseline at this workload".  A failed gate is a regression (exit 1)
even when the baseline shows the same value.  Gates marked
``"needs_parallelism": true`` are skipped — visibly, with a note, never
silently — when the artifact was produced on a single-core machine
(``cpu_count == 1``), where no parallel speedup is physically possible.
"""

from __future__ import annotations

import argparse
import fnmatch
import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.obs.metrics import COUNTER, GAUGE, Snapshot

__all__ = [
    "main",
    "build_parser",
    "compare_files",
    "evaluate_gates",
    "load_artifact",
    "load_flat_metrics",
    "FileComparison",
]

# -- classification -----------------------------------------------------------

INVARIANT = "invariant"
RESOURCE_LOW = "resource-lower-better"
RESOURCE_HIGH = "resource-higher-better"
TIMING_LOW = "timing-lower-better"
TIMING_HIGH = "timing-higher-better"
CONTEXT = "context"
INFO = "info"
GATE = "gate"

_CONTEXT_LEAVES = {
    "n", "m", "quick", "cpu_count", "runs", "workers", "budget", "budgets",
    "interval", "n_shards", "strategy", "passes", "pairs", "shards", "count",
}

_STATUS_OK = "ok"
_STATUS_REGRESSION = "regression"
_STATUS_IMPROVED = "improved"
_STATUS_INFO = "info"
_STATUS_MISMATCH = "context-mismatch"
_STATUS_MISSING = "missing"
_STATUS_SKIPPED = "skipped"


def classify(key: str, value: Any) -> str:
    """Assign a metric key to a gate class (see module docstring)."""
    leaf = key.rsplit(".", 1)[-1]
    leaf_base = leaf.rsplit(".", 1)[-1]
    if leaf_base.isdigit():  # list element: classify by its parent name
        leaf = key.split(".")[-2] if "." in key else leaf
    if isinstance(value, bool):
        return INVARIANT
    if leaf in _CONTEXT_LEAVES:
        return CONTEXT
    if "per_second" in leaf or "speedup" in leaf:
        return TIMING_HIGH
    if "seconds" in leaf or leaf.endswith("_time") or "wall_time" in leaf:
        return TIMING_LOW
    if "estimate" in leaf:
        return INVARIANT
    if "words" in leaf or "imbalance" in leaf or "error" in leaf or "stddev" in leaf:
        return RESOURCE_LOW
    if "rate" in leaf or "success" in leaf:
        return RESOURCE_HIGH
    if not isinstance(value, (int, float)):
        return CONTEXT
    return INFO


# -- loading ------------------------------------------------------------------

def _flatten(prefix: str, node: Any, out: Dict[str, Any]) -> None:
    if isinstance(node, dict):
        for key in node:
            _flatten(f"{prefix}.{key}" if prefix else str(key), node[key], out)
    elif isinstance(node, (list, tuple)):
        for index, item in enumerate(node):
            _flatten(f"{prefix}.{index}", item, out)
    else:
        out[prefix] = node


def _flatten_telemetry(snapshot: Snapshot) -> Dict[str, Any]:
    """Flatten a JSONL metric snapshot into comparable scalar leaves."""
    out: Dict[str, Any] = {}
    for series_key in sorted(snapshot):
        blob = snapshot[series_key]
        kind = blob["kind"]
        if kind == COUNTER:
            out[f"{series_key}.value"] = blob["value"]
        elif kind == GAUGE:
            out[f"{series_key}.value"] = blob["value"]
            out[f"{series_key}.high_water"] = blob["high_water"]
        else:
            out[f"{series_key}.total_seconds"] = blob["total_seconds"]
            out[f"{series_key}.count"] = blob["count"]
    return out


def load_artifact(path: str) -> Tuple[Dict[str, Any], List[Dict[str, Any]]]:
    """Load one artifact: ``(flat metrics, self-declared gates)``.

    The top-level ``"gates"`` list (absent from telemetry logs and most
    artifacts) is split out rather than flattened, so gate declarations
    never show up as metric deltas against baselines that predate them.
    """
    if path.endswith(".jsonl"):
        from repro.obs.sinks import InMemorySink, read_jsonl_events

        sink = InMemorySink()
        for event in read_jsonl_events(path):
            sink.emit(event)
        metrics = sink.metrics()
        if metrics is None:
            raise ValueError(
                f"{path}: no MetricsReport event found (was the telemetry "
                "closed cleanly?)"
            )
        return _flatten_telemetry(metrics), []
    with open(path) as fh:
        document = json.load(fh)
    if not isinstance(document, dict):
        raise ValueError(f"{path}: expected a JSON object at top level")
    gates = document.pop("gates", [])
    if not isinstance(gates, list):
        raise ValueError(f"{path}: 'gates' must be a list of gate records")
    flat: Dict[str, Any] = {}
    _flatten("", document, flat)
    return flat, gates


def load_flat_metrics(path: str) -> Dict[str, Any]:
    """Load one artifact (BENCH json or ``.jsonl`` telemetry log), flat."""
    return load_artifact(path)[0]


# -- self-declared gates ------------------------------------------------------

def evaluate_gates(
    flat: Dict[str, Any], gates: Sequence[Dict[str, Any]]
) -> List["MetricDelta"]:
    """Evaluate an artifact's self-declared gates against its own metrics.

    Each gate asserts an absolute floor (``"min"``) and/or ceiling
    (``"max"``) on one flat metric key of the *current* artifact — no
    baseline involved.  Results come back as :class:`MetricDelta` rows
    (kind :data:`GATE`) with ``baseline`` holding the bound so the
    renderers show ``floor -> measured``:

    * bound violated → ``regression`` (gates the exit code),
    * ``needs_parallelism`` on a single-core artifact → ``skipped`` with
      a visible note (a 1-core box cannot show a parallel speedup, and
      pretending it failed would just teach people to ignore the gate),
    * metric absent or malformed gate → ``missing`` warning.
    """
    deltas: List[MetricDelta] = []
    cpu_count = flat.get("cpu_count")
    if not isinstance(cpu_count, int) or isinstance(cpu_count, bool):
        cpu_count = os.cpu_count() or 1
    for gate in gates:
        metric = gate.get("metric") if isinstance(gate, dict) else None
        floor = gate.get("min") if isinstance(gate, dict) else None
        ceiling = gate.get("max") if isinstance(gate, dict) else None
        bound = floor if floor is not None else ceiling
        key = f"gate:{metric}"
        if metric is None or bound is None:
            deltas.append(
                MetricDelta(
                    key=key, kind=GATE, baseline=None, current=None,
                    relative_delta=None, threshold=None,
                    status=_STATUS_MISSING,
                    note=f"malformed gate record {gate!r} (need metric and min/max)",
                )
            )
            continue
        value = flat.get(metric)
        if gate.get("needs_parallelism") and cpu_count <= 1:
            deltas.append(
                MetricDelta(
                    key=key, kind=GATE, baseline=bound, current=value,
                    relative_delta=None, threshold=float(bound),
                    status=_STATUS_SKIPPED,
                    note=(
                        f"speedup gate skipped: cpu_count={cpu_count} — no "
                        "parallelism available on this machine"
                    ),
                )
            )
            continue
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            deltas.append(
                MetricDelta(
                    key=key, kind=GATE, baseline=bound, current=value,
                    relative_delta=None, threshold=float(bound),
                    status=_STATUS_MISSING,
                    note="gated metric absent from artifact",
                )
            )
            continue
        failures = []
        if floor is not None and value < floor:
            failures.append(f"{_fmt(value)} below floor {_fmt(float(floor))}")
        if ceiling is not None and value > ceiling:
            failures.append(f"{_fmt(value)} above ceiling {_fmt(float(ceiling))}")
        if failures:
            status, note = _STATUS_REGRESSION, "; ".join(failures)
        else:
            status = _STATUS_OK
            bounds = []
            if floor is not None:
                bounds.append(f">= {_fmt(float(floor))}")
            if ceiling is not None:
                bounds.append(f"<= {_fmt(float(ceiling))}")
            note = f"gate met ({', '.join(bounds)})"
        deltas.append(
            MetricDelta(
                key=key, kind=GATE, baseline=bound, current=value,
                relative_delta=None, threshold=float(bound),
                status=status, note=note,
            )
        )
    return deltas


# -- comparison ---------------------------------------------------------------

@dataclass(frozen=True)
class MetricDelta:
    """One metric's baseline-vs-current comparison."""

    key: str
    kind: str
    baseline: Any
    current: Any
    relative_delta: Optional[float]
    threshold: Optional[float]
    status: str
    note: str = ""


@dataclass
class FileComparison:
    """All deltas for one (current, baseline) artifact pair."""

    current_path: str
    baseline_path: str
    deltas: List[MetricDelta] = field(default_factory=list)

    @property
    def regressions(self) -> List[MetricDelta]:
        return [d for d in self.deltas if d.status == _STATUS_REGRESSION]

    @property
    def warnings(self) -> List[MetricDelta]:
        return [
            d for d in self.deltas
            if d.status in (_STATUS_MISMATCH, _STATUS_MISSING, _STATUS_SKIPPED)
        ]


def _relative_delta(baseline: float, current: float) -> Optional[float]:
    if baseline == 0:
        return None if current == 0 else float("inf") * (1 if current > 0 else -1)
    return (current - baseline) / abs(baseline)


def _threshold_for(key: str, default: float, overrides: Sequence[Tuple[str, float]]) -> float:
    for pattern, value in overrides:
        if fnmatch.fnmatch(key, pattern):
            return value
    return default


def compare_pair(
    current: Dict[str, Any],
    baseline: Dict[str, Any],
    *,
    threshold: float,
    overrides: Sequence[Tuple[str, float]] = (),
    gate_timing: bool = False,
) -> List[MetricDelta]:
    """Compare two flat metric dicts key by key."""
    deltas: List[MetricDelta] = []
    for key in sorted(set(baseline) | set(current)):
        if key not in current or key not in baseline:
            side = "current" if key not in current else "baseline"
            present = baseline.get(key, current.get(key))
            deltas.append(
                MetricDelta(
                    key=key,
                    kind=classify(key, present),
                    baseline=baseline.get(key),
                    current=current.get(key),
                    relative_delta=None,
                    threshold=None,
                    status=_STATUS_MISSING,
                    note=f"absent from {side} artifact",
                )
            )
            continue
        base, cur = baseline[key], current[key]
        kind = classify(key, base)
        if kind == CONTEXT:
            status = _STATUS_OK if base == cur else _STATUS_MISMATCH
            note = "" if base == cur else "workloads differ; deltas unreliable"
            deltas.append(MetricDelta(key, kind, base, cur, None, None, status, note))
            continue
        if kind == INVARIANT:
            if isinstance(base, bool) or isinstance(cur, bool):
                degraded = bool(base) and not bool(cur)
                improved = not bool(base) and bool(cur)
                status = (
                    _STATUS_REGRESSION if degraded
                    else _STATUS_IMPROVED if improved
                    else _STATUS_OK
                )
                note = "invariant flipped to false" if degraded else ""
            else:
                rel = _relative_delta(float(base), float(cur))
                equal = rel is None or abs(rel) <= 1e-9
                status = _STATUS_OK if equal else _STATUS_REGRESSION
                note = "" if equal else "seeded value changed: determinism broken"
            deltas.append(MetricDelta(key, kind, base, cur, None, None, status, note))
            continue
        # Numeric metric with a direction (or info).
        rel = _relative_delta(float(base), float(cur))
        gated = kind in (RESOURCE_LOW, RESOURCE_HIGH) or (
            gate_timing and kind in (TIMING_LOW, TIMING_HIGH)
        )
        limit = _threshold_for(key, threshold, overrides) if gated else None
        status = _STATUS_INFO
        note = ""
        if gated and rel is not None and limit is not None:
            lower_better = kind in (RESOURCE_LOW, TIMING_LOW)
            worse = rel > limit if lower_better else rel < -limit
            better = rel < -limit if lower_better else rel > limit
            status = (
                _STATUS_REGRESSION if worse
                else _STATUS_IMPROVED if better
                else _STATUS_OK
            )
            if worse:
                direction = "rose" if lower_better else "fell"
                note = f"{direction} {abs(rel):.1%} (limit {limit:.0%})"
        deltas.append(MetricDelta(key, kind, base, cur, rel, limit, status, note))
    return deltas


def _pair_files(current: Sequence[str], against: Sequence[str]) -> List[Tuple[str, str]]:
    """Match current artifacts to baselines by basename, else by position."""
    by_name = {os.path.basename(path): path for path in against}
    if len(by_name) == len(against) and all(
        os.path.basename(path) in by_name for path in current
    ):
        return [(path, by_name[os.path.basename(path)]) for path in current]
    if len(current) != len(against):
        raise ValueError(
            f"cannot pair {len(current)} current artifact(s) with "
            f"{len(against)} baseline(s); use matching basenames or counts"
        )
    return list(zip(current, against))


def compare_files(
    current: Sequence[str],
    against: Sequence[str],
    *,
    threshold: float,
    overrides: Sequence[Tuple[str, float]] = (),
    gate_timing: bool = False,
) -> List[FileComparison]:
    comparisons = []
    for current_path, baseline_path in _pair_files(current, against):
        current_flat, current_gates = load_artifact(current_path)
        deltas = compare_pair(
            current_flat,
            load_flat_metrics(baseline_path),
            threshold=threshold,
            overrides=overrides,
            gate_timing=gate_timing,
        )
        # Self-declared gates: absolute assertions on the current artifact.
        deltas.extend(evaluate_gates(current_flat, current_gates))
        comparisons.append(FileComparison(current_path, baseline_path, deltas))
    return comparisons


# -- rendering ----------------------------------------------------------------

def _fmt(value: Any) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def _fmt_rel(delta: MetricDelta) -> str:
    if delta.relative_delta is None:
        return "-"
    return f"{delta.relative_delta:+.1%}"


def _interesting(delta: MetricDelta) -> bool:
    if delta.kind == GATE:  # gates are assertions; always show the verdict
        return True
    return delta.status in (_STATUS_REGRESSION, _STATUS_IMPROVED, _STATUS_MISMATCH, _STATUS_MISSING)


def render_text(comparisons: Sequence[FileComparison], verbose: bool = False) -> str:
    lines: List[str] = []
    total_regressions = 0
    for comparison in comparisons:
        lines.append(f"{comparison.current_path} vs {comparison.baseline_path}")
        shown = [d for d in comparison.deltas if verbose or _interesting(d)]
        if not shown:
            lines.append("  all metrics within threshold")
        for delta in shown:
            marker = {
                _STATUS_REGRESSION: "REGRESSION",
                _STATUS_IMPROVED: "improved",
                _STATUS_MISMATCH: "warning",
                _STATUS_MISSING: "warning",
                _STATUS_SKIPPED: "skipped",
                _STATUS_OK: "ok",
                _STATUS_INFO: "info",
            }[delta.status]
            lines.append(
                f"  [{marker:>10}] {delta.key}: {_fmt(delta.baseline)} -> "
                f"{_fmt(delta.current)} ({_fmt_rel(delta)})"
                + (f"  {delta.note}" if delta.note else "")
            )
        total_regressions += len(comparison.regressions)
    lines.append(
        f"{len(comparisons)} artifact pair(s), {total_regressions} regression(s)"
    )
    return "\n".join(lines)


def render_markdown(comparisons: Sequence[FileComparison], verbose: bool = False) -> str:
    lines: List[str] = ["# Benchmark regression report", ""]
    total_regressions = 0
    for comparison in comparisons:
        total_regressions += len(comparison.regressions)
        lines.append(
            f"## `{os.path.basename(comparison.current_path)}` vs baseline"
        )
        lines.append("")
        lines.append("| metric | baseline | current | delta | status |")
        lines.append("|---|---:|---:|---:|---|")
        shown = [d for d in comparison.deltas if verbose or _interesting(d)]
        if not shown:
            lines.append("| _all metrics within threshold_ | | | | ok |")
        for delta in shown:
            status = delta.status + (f" — {delta.note}" if delta.note else "")
            lines.append(
                f"| `{delta.key}` | {_fmt(delta.baseline)} | {_fmt(delta.current)} "
                f"| {_fmt_rel(delta)} | {status} |"
            )
        lines.append("")
    verdict = "❌ regressions detected" if total_regressions else "✅ no regressions"
    lines.append(f"**{verdict}** ({len(comparisons)} artifact pair(s))")
    return "\n".join(lines)


def render_json(comparisons: Sequence[FileComparison]) -> str:
    document = {
        "pairs": [
            {
                "current": c.current_path,
                "baseline": c.baseline_path,
                "regressions": len(c.regressions),
                "deltas": [
                    {
                        "key": d.key,
                        "kind": d.kind,
                        "baseline": d.baseline,
                        "current": d.current,
                        "relative_delta": d.relative_delta,
                        "threshold": d.threshold,
                        "status": d.status,
                        "note": d.note,
                    }
                    for d in c.deltas
                ],
            }
            for c in comparisons
        ],
        "total_regressions": sum(len(c.regressions) for c in comparisons),
    }
    return json.dumps(document, indent=2)


def render_github(comparisons: Sequence[FileComparison], verbose: bool = False) -> str:
    """Markdown body plus ``::error``/``::warning`` workflow annotations."""
    lines = [render_markdown(comparisons, verbose=verbose)]
    for comparison in comparisons:
        for delta in comparison.regressions:
            lines.append(
                f"::error title=bench regression::{delta.key} "
                f"({os.path.basename(comparison.current_path)}): "
                f"{_fmt(delta.baseline)} -> {_fmt(delta.current)} {delta.note}"
            )
        for delta in comparison.warnings:
            lines.append(
                f"::warning title=bench report::{delta.key} "
                f"({os.path.basename(comparison.current_path)}): {delta.note or delta.status}"
            )
    return "\n".join(lines)


_RENDERERS = {
    "text": render_text,
    "markdown": render_markdown,
    "github": render_github,
}


# -- CLI ----------------------------------------------------------------------

def _parse_override(spec: str) -> Tuple[str, float]:
    pattern, sep, value = spec.partition("=")
    if not sep:
        raise argparse.ArgumentTypeError(
            f"expected GLOB=VALUE, got {spec!r} (e.g. '*.space_words=0.5')"
        )
    try:
        return pattern, float(value)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(f"bad threshold in {spec!r}: {exc}") from exc


def build_parser(parser: Optional[argparse.ArgumentParser] = None) -> argparse.ArgumentParser:
    if parser is None:
        parser = argparse.ArgumentParser(
            prog="repro-cycles bench-report",
            description="Compare benchmark artifacts and gate on regressions.",
        )
    parser.add_argument(
        "current",
        nargs="+",
        help="freshly produced BENCH_*.json artifacts (or .jsonl telemetry logs)",
    )
    parser.add_argument(
        "--against",
        nargs="+",
        required=True,
        metavar="BASELINE",
        help="baseline artifacts to compare against (matched by basename)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="relative degradation tolerated on gated metrics (default 0.25)",
    )
    parser.add_argument(
        "--threshold-for",
        type=_parse_override,
        action="append",
        default=[],
        metavar="GLOB=VALUE",
        help="per-metric threshold override (repeatable; fnmatch on the key)",
    )
    parser.add_argument(
        "--gate-timing",
        action="store_true",
        help="also gate wall-time metrics (same-machine comparisons only)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "markdown", "json", "github"),
        default="text",
    )
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="show every metric, not just regressions/warnings",
    )
    parser.add_argument("--out", default=None, help="also write the report to a file")
    return parser


def run_report(args: argparse.Namespace) -> int:
    try:
        comparisons = compare_files(
            args.current,
            args.against,
            threshold=args.threshold,
            overrides=args.threshold_for,
            gate_timing=args.gate_timing,
        )
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"bench-report: {exc}")
        return 2
    if args.format == "json":
        report = render_json(comparisons)
    else:
        report = _RENDERERS[args.format](comparisons, verbose=args.verbose)
    print(report)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(report + "\n")
    return 1 if any(c.regressions for c in comparisons) else 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return run_report(args)


if __name__ == "__main__":
    import sys

    sys.exit(main())
