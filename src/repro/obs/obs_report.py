"""``repro-cycles obs-report`` — a self-contained run report.

Consumes JSONL telemetry logs (``--telemetry`` output) and/or Chrome
trace files (``--trace`` output) and renders:

* a **run summary** (algorithm, passes, pairs, estimate, space peaks);
* a **phase timeline** built from trace spans (falling back to
  ``PassFinished`` events when only a log is given);
* **throughput** per pass;
* **sampler occupancy** (last reading of every ``observables()`` gauge);
* a **convergence curve** from :class:`~repro.obs.events.EstimateSample`
  events, with relative errors when ``--truth`` is given.

Both ``--log`` and ``--trace`` repeat: a routed serve run leaves one
telemetry/trace file per process (router + ``.worker-<i>`` siblings),
and passing them all merges the event streams and **stitches** the span
sets into one tree (span identity is a pure function of seed and
structural path, so the same logical span observed by several processes
deduplicates — see :func:`repro.obs.trace.stitch_spans`).

The ``stitch-trace`` mode skips the report entirely: it stitches the
``--trace`` files into one Chrome trace written to ``--out`` (the CI
artifact for routed gauntlet runs).

Formats: ``text`` (default), ``markdown``, and ``html`` — the HTML is a
single self-contained file (inline CSS + SVG, no external assets) so CI
can upload it as an artifact.  Exit code 0 on success, 2 on unreadable
inputs; pass at least one of the two input flags.
"""

from __future__ import annotations

import argparse
import html as html_module
import json
import os
import sys
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.obs.events import (
    OccupancySample,
    PassFinished,
    RunFinished,
    RunStarted,
    TelemetryEvent,
)
from repro.obs.diagnostics import EstimatePoint, estimate_trace
from repro.obs.sinks import read_jsonl_events
from repro.obs.trace import (
    SpanRecord,
    read_chrome_trace,
    spans_from_events,
    stitch_chrome_traces,
    stitch_spans,
)

__all__ = ["RunData", "load_run_data", "render_report", "build_parser", "run_obs_report", "main"]


@dataclass
class RunData:
    """Everything the report renders, from whichever inputs were given."""

    events: List[TelemetryEvent] = field(default_factory=list)
    spans: List[SpanRecord] = field(default_factory=list)
    log_path: Optional[str] = None
    trace_path: Optional[str] = None
    log_paths: List[str] = field(default_factory=list)
    trace_paths: List[str] = field(default_factory=list)


def _as_paths(value: Any) -> List[str]:
    if value is None:
        return []
    if isinstance(value, (str, os.PathLike)):
        return [str(value)]
    return [str(v) for v in value]


def load_run_data(
    log_path: Any = None, trace_path: Any = None
) -> RunData:
    """Load telemetry log(s) and/or trace file(s) into one :class:`RunData`.

    Either argument accepts a single path or a sequence of paths (a
    routed serve run leaves one file per process).  Event streams
    concatenate in the given order; multiple span sets **stitch** by
    deterministic span identity, so the router's and workers' views of
    the same session collapse into one tree.  A log alone still yields
    spans when the run traced into the same JSONL (``SpanFinished``
    events); a trace file alone yields only the timeline sections.
    """
    logs, traces = _as_paths(log_path), _as_paths(trace_path)
    if not logs and not traces:
        raise ValueError("obs-report needs a telemetry log, a trace file, or both")
    data = RunData(
        log_path=logs[0] if logs else None,
        trace_path=traces[0] if traces else None,
        log_paths=logs,
        trace_paths=traces,
    )
    for path in logs:
        data.events.extend(read_jsonl_events(path))
    if traces:
        # Trace files are authoritative for spans when both are given
        # (identical content, but already ordered by track).
        if len(traces) == 1:
            data.spans = read_chrome_trace(traces[0])
        else:
            data.spans = stitch_spans([read_chrome_trace(path) for path in traces])
    elif len(logs) == 1:
        data.spans = spans_from_events(data.events)
    elif logs:
        data.spans = stitch_spans(
            [spans_from_events(read_jsonl_events(path)) for path in logs]
        )
    return data


# -- section extraction -------------------------------------------------------

def _first(events: Sequence[TelemetryEvent], event_type: type) -> Optional[Any]:
    for event in events:
        if isinstance(event, event_type):
            return event
    return None


def _last(events: Sequence[TelemetryEvent], event_type: type) -> Optional[Any]:
    found = None
    for event in events:
        if isinstance(event, event_type):
            found = event
    return found


def _summary_rows(data: RunData) -> List[Tuple[str, str]]:
    rows: List[Tuple[str, str]] = []
    started = _first(data.events, RunStarted)
    finished = _last(data.events, RunFinished)
    if started is not None:
        rows.append(("algorithm", started.algorithm))
        rows.append(("passes", str(started.passes)))
        rows.append(("pairs per pass", str(started.pairs_per_pass)))
    if finished is not None:
        rows.append(("estimate", f"{finished.estimate:g}"))
        rows.append(("peak space (words)", str(finished.peak_space_words)))
        rows.append(("mean space (words)", f"{finished.mean_space_words:g}"))
        rows.append(("wall time (s)", f"{finished.seconds:.4g}"))
        rows.append(("pairs/s", f"{finished.pairs_per_second:,.0f}"))
    if not rows and data.spans:
        root = min(data.spans, key=lambda s: len(s.path))
        rows.append(("trace root", root.path))
        rows.append(("spans", str(len(data.spans))))
    return rows


@dataclass(frozen=True)
class TimelineRow:
    """One span prepared for rendering."""

    label: str
    category: str
    start_s: float
    duration_s: float
    depth: int


def _timeline_rows(data: RunData) -> List[TimelineRow]:
    rows: List[TimelineRow] = []
    if data.spans:
        base = min(span.start_s for span in data.spans)
        ordered = sorted(data.spans, key=lambda s: (s.start_s, s.path))
        for span in ordered:
            rows.append(
                TimelineRow(
                    label=span.path,
                    category=span.category,
                    start_s=span.start_s - base,
                    duration_s=max(0.0, span.end_s - span.start_s),
                    depth=span.path.count("/"),
                )
            )
        return rows
    # Log-only fallback: one row per finished pass, laid end to end.
    cursor = 0.0
    for event in data.events:
        if isinstance(event, PassFinished):
            rows.append(
                TimelineRow(
                    label=f"pass:{event.pass_index}",
                    category="pass",
                    start_s=cursor,
                    duration_s=event.seconds,
                    depth=1,
                )
            )
            cursor += event.seconds
    return rows


def _throughput_rows(data: RunData) -> List[Tuple[str, str, str, str]]:
    rows: List[Tuple[str, str, str, str]] = []
    for event in data.events:
        if isinstance(event, PassFinished):
            rows.append(
                (
                    f"pass:{event.pass_index}",
                    str(event.pairs),
                    f"{event.seconds:.4g}",
                    f"{event.pairs_per_second:,.0f}",
                )
            )
    return rows


def _occupancy_rows(data: RunData) -> List[Tuple[str, str]]:
    last = _last(data.events, OccupancySample)
    if last is None:
        return []
    return [(name, f"{last.gauges[name]:g}") for name in sorted(last.gauges)]


def _sparkline(values: Sequence[float]) -> str:
    """Eight-level unicode sparkline (empty string for no data)."""
    if not values:
        return ""
    blocks = "▁▂▃▄▅▆▇█"
    low, high = min(values), max(values)
    if high == low:
        return blocks[0] * len(values)
    scale = (len(blocks) - 1) / (high - low)
    return "".join(blocks[int(round((v - low) * scale))] for v in values)


def _downsample(points: Sequence[EstimatePoint], limit: int = 60) -> List[EstimatePoint]:
    if len(points) <= limit:
        return list(points)
    step = (len(points) - 1) / (limit - 1)
    picked = [points[int(round(i * step))] for i in range(limit - 1)]
    picked.append(points[-1])
    return picked


# -- renderers ----------------------------------------------------------------

_BAR_WIDTH = 40


def _timeline_text(rows: Sequence[TimelineRow]) -> List[str]:
    if not rows:
        return ["  (no span or pass data)"]
    total = max((row.start_s + row.duration_s) for row in rows) or 1.0
    lines = []
    width = max(len(row.label) for row in rows)
    for row in rows:
        begin = int(round(row.start_s / total * _BAR_WIDTH))
        length = max(1, int(round(row.duration_s / total * _BAR_WIDTH)))
        bar = " " * begin + "█" * min(length, _BAR_WIDTH - begin)
        lines.append(
            f"  {row.label:<{width}}  |{bar:<{_BAR_WIDTH}}| {row.duration_s * 1e3:8.2f} ms"
        )
    return lines


def render_text(data: RunData, truth: Optional[float] = None) -> str:
    lines: List[str] = ["run summary", "-----------"]
    rows = _summary_rows(data)
    if rows:
        width = max(len(k) for k, _ in rows)
        lines.extend(f"  {k:<{width}}  {v}" for k, v in rows)
    else:
        lines.append("  (no run events)")

    lines.extend(["", "phase timeline", "--------------"])
    lines.extend(_timeline_text(_timeline_rows(data)))

    throughput = _throughput_rows(data)
    if throughput:
        lines.extend(["", "throughput", "----------"])
        for label, pairs, seconds, rate in throughput:
            lines.append(f"  {label}: {pairs} pairs in {seconds}s ({rate} pairs/s)")

    occupancy = _occupancy_rows(data)
    if occupancy:
        lines.extend(["", "sampler occupancy (final)", "-------------------------"])
        width = max(len(k) for k, _ in occupancy)
        lines.extend(f"  {k:<{width}}  {v}" for k, v in occupancy)

    points = estimate_trace(data.events, truth)
    if points:
        sampled = _downsample(points)
        lines.extend(["", "convergence", "-----------"])
        lines.append(f"  samples: {len(points)}   final estimate: {points[-1].estimate:g}")
        lines.append(f"  estimate  {_sparkline([p.estimate for p in sampled])}")
        if truth is not None:
            errors = [p.relative_error for p in sampled if p.relative_error is not None]
            if errors:
                lines.append(f"  rel error {_sparkline(errors)}")
                final_err = points[-1].relative_error
                if final_err is not None:
                    lines.append(f"  final relative error: {final_err:.3g} (truth {truth:g})")
    return "\n".join(lines) + "\n"


def render_markdown(data: RunData, truth: Optional[float] = None) -> str:
    lines: List[str] = ["# Run report", ""]
    rows = _summary_rows(data)
    if rows:
        lines.extend(["| | |", "|---|---|"])
        lines.extend(f"| {k} | {v} |" for k, v in rows)
        lines.append("")

    lines.extend(["## Phase timeline", "", "```"])
    lines.extend(_timeline_text(_timeline_rows(data)))
    lines.extend(["```", ""])

    throughput = _throughput_rows(data)
    if throughput:
        lines.extend(
            ["## Throughput", "", "| pass | pairs | seconds | pairs/s |", "|---|---:|---:|---:|"]
        )
        lines.extend(f"| {a} | {b} | {c} | {d} |" for a, b, c, d in throughput)
        lines.append("")

    occupancy = _occupancy_rows(data)
    if occupancy:
        lines.extend(["## Sampler occupancy (final)", "", "| gauge | value |", "|---|---:|"])
        lines.extend(f"| {k} | {v} |" for k, v in occupancy)
        lines.append("")

    points = estimate_trace(data.events, truth)
    if points:
        sampled = _downsample(points)
        lines.extend(["## Convergence", ""])
        lines.append(f"{len(points)} samples, final estimate {points[-1].estimate:g}")
        lines.extend(["", "```", f"estimate  {_sparkline([p.estimate for p in sampled])}"])
        if truth is not None:
            errors = [p.relative_error for p in sampled if p.relative_error is not None]
            if errors:
                lines.append(f"rel error {_sparkline(errors)}")
        lines.extend(["```", ""])
    return "\n".join(lines) + "\n"


_CATEGORY_COLORS = {
    "run": "#5b7aa9",
    "pass": "#4c9f70",
    "shard": "#c78f3d",
    "trial": "#8f6fb5",
    "merge": "#b55454",
    "checkpoint": "#777777",
    "phase": "#5b9aa9",
}


def _svg_polyline(points: Sequence[EstimatePoint], width: int, height: int) -> str:
    values = [p.estimate for p in points]
    low, high = min(values), max(values)
    spread = (high - low) or 1.0
    coords = []
    for index, value in enumerate(values):
        x = index / max(1, len(values) - 1) * (width - 10) + 5
        y = height - 5 - (value - low) / spread * (height - 10)
        coords.append(f"{x:.1f},{y:.1f}")
    return (
        f'<svg viewBox="0 0 {width} {height}" class="curve">'
        f'<polyline fill="none" stroke="#4c9f70" stroke-width="1.5" '
        f'points="{" ".join(coords)}"/></svg>'
    )


def render_html(data: RunData, truth: Optional[float] = None) -> str:
    esc = html_module.escape
    parts: List[str] = [
        "<!DOCTYPE html><html><head><meta charset='utf-8'><title>Run report</title>",
        "<style>",
        "body{font:14px/1.5 system-ui,sans-serif;margin:2em auto;max-width:60em;color:#222}",
        "h1,h2{font-weight:600} table{border-collapse:collapse;margin:0.5em 0}",
        "td,th{border:1px solid #ccc;padding:0.25em 0.75em;text-align:left}",
        "td.num,th.num{text-align:right}",
        ".lane{position:relative;height:1.2em;background:#f2f2f2;margin:2px 0}",
        ".lane span{position:absolute;top:0;bottom:0;border-radius:2px;opacity:0.85}",
        ".lane .label{position:static;display:inline-block;padding-left:0.4em;"
        "font-size:11px;color:#333;white-space:nowrap}",
        ".curve{width:100%;height:120px;background:#fafafa;border:1px solid #ddd}",
        "</style></head><body>",
        "<h1>Run report</h1>",
    ]
    sources = list(data.log_paths) + list(data.trace_paths)
    if sources:
        parts.append(f"<p>sources: {esc(', '.join(sources))}</p>")

    rows = _summary_rows(data)
    if rows:
        parts.append("<h2>Summary</h2><table>")
        parts.extend(f"<tr><th>{esc(k)}</th><td>{esc(v)}</td></tr>" for k, v in rows)
        parts.append("</table>")

    timeline = _timeline_rows(data)
    if timeline:
        total = max((r.start_s + r.duration_s) for r in timeline) or 1.0
        parts.append("<h2>Phase timeline</h2>")
        for row in timeline:
            left = row.start_s / total * 100
            width = max(0.5, row.duration_s / total * 100)
            color = _CATEGORY_COLORS.get(row.category, "#5b9aa9")
            parts.append(
                f'<div class="lane"><span style="left:{left:.2f}%;width:{width:.2f}%;'
                f'background:{color}"></span><span class="label">{esc(row.label)} '
                f"&mdash; {row.duration_s * 1e3:.2f} ms</span></div>"
            )

    throughput = _throughput_rows(data)
    if throughput:
        parts.append(
            "<h2>Throughput</h2><table><tr><th>pass</th><th class='num'>pairs</th>"
            "<th class='num'>seconds</th><th class='num'>pairs/s</th></tr>"
        )
        parts.extend(
            f"<tr><td>{esc(a)}</td><td class='num'>{esc(b)}</td>"
            f"<td class='num'>{esc(c)}</td><td class='num'>{esc(d)}</td></tr>"
            for a, b, c, d in throughput
        )
        parts.append("</table>")

    occupancy = _occupancy_rows(data)
    if occupancy:
        parts.append("<h2>Sampler occupancy (final)</h2><table>")
        parts.extend(
            f"<tr><th>{esc(k)}</th><td class='num'>{esc(v)}</td></tr>" for k, v in occupancy
        )
        parts.append("</table>")

    points = estimate_trace(data.events, truth)
    if points:
        parts.append("<h2>Convergence</h2>")
        parts.append(
            f"<p>{len(points)} samples, final estimate {points[-1].estimate:g}"
            + (
                f", final relative error {points[-1].relative_error:.3g} (truth {truth:g})"
                if truth is not None and points[-1].relative_error is not None
                else ""
            )
            + "</p>"
        )
        parts.append(_svg_polyline(_downsample(points, 200), 600, 120))

    parts.append("</body></html>")
    return "\n".join(parts) + "\n"


_RENDERERS = {"text": render_text, "markdown": render_markdown, "html": render_html}


def render_report(data: RunData, fmt: str = "text", truth: Optional[float] = None) -> str:
    """Render ``data`` in one of ``text`` / ``markdown`` / ``html``."""
    try:
        renderer = _RENDERERS[fmt]
    except KeyError:
        raise ValueError(f"unknown obs-report format {fmt!r}") from None
    return renderer(data, truth)


# -- CLI ----------------------------------------------------------------------

def build_parser(parser: Optional[argparse.ArgumentParser] = None) -> argparse.ArgumentParser:
    if parser is None:
        parser = argparse.ArgumentParser(
            prog="repro-cycles obs-report",
            description="Render a run report from telemetry and/or trace files.",
        )
    parser.add_argument(
        "mode",
        nargs="?",
        choices=("report", "stitch-trace"),
        default="report",
        help="report (default) renders the run report; stitch-trace merges "
        "the --trace files into one Chrome trace written to --out",
    )
    parser.add_argument(
        "--log",
        action="append",
        default=None,
        help="JSONL telemetry log (--telemetry output); repeat to merge "
        "several processes' logs into one report",
    )
    parser.add_argument(
        "--trace",
        action="append",
        default=None,
        help="Chrome trace file (--trace output); repeat to stitch several "
        "processes' traces into one span tree",
    )
    parser.add_argument(
        "--truth",
        type=float,
        default=None,
        help="ground-truth count; adds relative errors to the convergence section",
    )
    parser.add_argument("--format", choices=sorted(_RENDERERS), default="text")
    parser.add_argument("--out", default=None, help="write the report to a file instead of stdout")
    return parser


def run_obs_report(args: argparse.Namespace) -> int:
    if getattr(args, "mode", "report") == "stitch-trace":
        traces = _as_paths(args.trace)
        if not traces:
            print("obs-report: stitch-trace needs at least one --trace", file=sys.stderr)
            return 2
        if not args.out:
            print("obs-report: stitch-trace needs --out TRACE_PATH", file=sys.stderr)
            return 2
        try:
            stitched = stitch_chrome_traces(traces, args.out)
        except (OSError, ValueError, json.JSONDecodeError, KeyError) as exc:
            print(f"obs-report: {exc}", file=sys.stderr)
            return 2
        print(
            f"obs-report: stitched {len(stitched)} span(s) from "
            f"{len(traces)} file(s) into {os.path.abspath(args.out)}",
            file=sys.stderr,
        )
        return 0
    if args.log is None and args.trace is None:
        print("obs-report: pass --log and/or --trace", file=sys.stderr)
        return 2
    try:
        data = load_run_data(args.log, args.trace)
    except (OSError, ValueError, json.JSONDecodeError, KeyError) as exc:
        print(f"obs-report: {exc}", file=sys.stderr)
        return 2
    report = render_report(data, args.format, args.truth)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(report)
        print(f"obs-report: wrote {os.path.abspath(args.out)}", file=sys.stderr)
    else:
        print(report, end="")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    return run_obs_report(build_parser().parse_args(argv))


if __name__ == "__main__":
    import sys

    sys.exit(main())
