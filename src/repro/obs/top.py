"""``repro-cycles top`` — a live terminal view of a routed serve fleet.

Polls the router's ``/metrics`` scrape endpoint (``serve --workers N
--metrics-port P``), parses the Prometheus text exposition back into a
metric snapshot (:func:`repro.obs.sinks.parse_textfile` — the same
round-trip the tests pin), and renders:

* the **fleet header** — worker count, scrape count, open sessions;
* the **SLO panel** — every ``router_slo_*`` gauge with its pass/fail
  flag from ``router_slo_ok{objective=...}``;
* the **per-worker table** — open/total sessions, ingested pairs and the
  pairs/s rate over the poll interval (computed from counter deltas
  between consecutive scrapes);
* **latency sparklines** — the live ``serve_op_latency_seconds``
  histograms pooled per op, rendered as bucket-count sparklines with
  p50/p99 (conservative upper-bound quantiles).

``--once`` prints a single frame and exits (the CI mode); otherwise the
screen refreshes every ``--interval`` seconds until Ctrl-C.  Exit code 0
on a clean exit, 2 when the endpoint cannot be scraped in ``--once``
mode (a live loop keeps retrying and shows the error inline).
"""

from __future__ import annotations

import argparse
import sys
import time
import urllib.error
import urllib.request
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.obs.metrics import Snapshot, histogram_quantile, parse_series
from repro.obs.sinks import parse_textfile
from repro.obs.slo import pooled_histogram

__all__ = ["fetch_metrics", "render_top", "build_parser", "run_top", "main"]

#: Ops worth a latency row, in display order.
_LATENCY_OPS = ("feed", "poll", "merge", "snapshot")

_CLEAR = "\x1b[2J\x1b[H"


def fetch_metrics(url: str, timeout: float = 5.0) -> Snapshot:
    """Scrape ``url`` and parse the exposition into a metric snapshot."""
    with urllib.request.urlopen(url, timeout=timeout) as response:
        text = response.read().decode("utf-8")
    snapshot, _ = parse_textfile(text)
    return snapshot


def _sparkline(values: Sequence[float]) -> str:
    """Eight-level unicode sparkline (empty string for no data)."""
    if not values:
        return ""
    blocks = "▁▂▃▄▅▆▇█"
    low, high = min(values), max(values)
    if high == low:
        return blocks[0] * len(values)
    scale = (len(blocks) - 1) / (high - low)
    return "".join(blocks[int(round((v - low) * scale))] for v in values)


def _series(snapshot: Snapshot, name: str) -> List[Tuple[Dict[str, str], Dict[str, Any]]]:
    out = []
    for series_key in sorted(snapshot):
        series_name, labels = parse_series(series_key)
        if series_name == name:
            out.append((labels, snapshot[series_key]))
    return out


def _value(snapshot: Snapshot, name: str, **where: str) -> Optional[float]:
    for labels, blob in _series(snapshot, name):
        if all(labels.get(k) == v for k, v in where.items()):
            return float(blob.get("value", 0.0))
    return None


def _worker_rows(
    snapshot: Snapshot, prev: Optional[Snapshot], interval_s: Optional[float]
) -> List[Tuple[str, str, str, str, str]]:
    workers: Dict[str, Dict[str, float]] = {}
    for name, column in (
        ("serve_sessions_open", "open"),
        ("serve_sessions_total", "total"),
        ("serve_session_pairs_total", "pairs"),
    ):
        for labels, blob in _series(snapshot, name):
            worker = labels.get("worker")
            if worker is None:
                continue
            slot = workers.setdefault(worker, {})
            slot[column] = slot.get(column, 0.0) + float(blob.get("value", 0.0))
    rows = []
    for worker in sorted(workers, key=lambda w: (len(w), w)):
        slot = workers[worker]
        rate = "-"
        if prev is not None and interval_s and interval_s > 0:
            before = _value(prev, "serve_session_pairs_total", worker=worker)
            if before is not None:
                rate = f"{max(0.0, (slot.get('pairs', 0.0) - before) / interval_s):,.0f}"
        rows.append(
            (
                worker,
                f"{slot.get('open', 0):g}",
                f"{slot.get('total', 0):g}",
                f"{slot.get('pairs', 0):,.0f}",
                rate,
            )
        )
    return rows


def _slo_rows(snapshot: Snapshot) -> List[Tuple[str, str, str]]:
    gauges = {
        "poll_p99_seconds": "router_slo_poll_p99_seconds",
        "feed_pairs_per_second": "router_slo_feed_pairs_per_second",
        "verdict_age_seconds": "router_slo_verdict_age_seconds",
        "loop_lag_p99_seconds": "router_slo_loop_lag_p99_seconds",
    }
    rows = []
    for labels, blob in _series(snapshot, "router_slo_ok"):
        objective = labels.get("objective", "?")
        ok = float(blob.get("value", 0.0)) >= 1.0
        value = _value(snapshot, gauges.get(objective, ""))
        rows.append(
            (
                objective,
                f"{value:g}" if value is not None else "-",
                "ok" if ok else "VIOLATED",
            )
        )
    return rows


def _latency_lines(snapshot: Snapshot) -> List[str]:
    lines = []
    for op in _LATENCY_OPS:
        blob = pooled_histogram(snapshot, "serve_op_latency_seconds", {"op": op})
        if blob is None or not blob.get("count"):
            continue
        p50 = histogram_quantile(blob, 0.50)
        p99 = histogram_quantile(blob, 0.99)
        spark = _sparkline([float(b) for b in blob["buckets"]])
        lines.append(
            f"  {op:<9} {spark}  n={blob['count']}  "
            f"p50<={p50 * 1e3:.3g}ms  p99<={p99 * 1e3:.3g}ms"
        )
    lag = pooled_histogram(snapshot, "serve_loop_lag_seconds")
    if lag is not None and lag.get("count"):
        lines.append(
            f"  loop lag  {_sparkline([float(b) for b in lag['buckets']])}  "
            f"n={lag['count']}  p99<={histogram_quantile(lag, 0.99) * 1e3:.3g}ms"
        )
    return lines


def render_top(
    snapshot: Snapshot,
    prev: Optional[Snapshot] = None,
    interval_s: Optional[float] = None,
    source: str = "",
) -> str:
    """Render one dashboard frame from a scraped snapshot."""
    lines: List[str] = []
    workers = _value(snapshot, "router_workers")
    scrapes = sum(
        float(blob.get("value", 0.0))
        for _, blob in _series(snapshot, "router_scrapes_total")
    )
    open_sessions = sum(
        float(blob.get("value", 0.0))
        for _, blob in _series(snapshot, "serve_sessions_open")
    )
    header = (
        f"repro-cycles top — {source}" if source else "repro-cycles top"
    )
    lines.append(header)
    lines.append("=" * len(header))
    lines.append(
        f"workers: {workers:g}  open sessions: {open_sessions:g}  scrapes: {scrapes:g}"
        if workers is not None
        else f"open sessions: {open_sessions:g}  scrapes: {scrapes:g}"
    )

    slo = _slo_rows(snapshot)
    if slo:
        lines.extend(["", "SLO objectives", "--------------"])
        width = max(len(o) for o, _, _ in slo)
        for objective, value, verdict in slo:
            lines.append(f"  {objective:<{width}}  {value:>12}  {verdict}")

    rows = _worker_rows(snapshot, prev, interval_s)
    if rows:
        lines.extend(["", "workers", "-------"])
        lines.append(f"  {'worker':<8}{'open':>6}{'total':>7}{'pairs':>14}{'pairs/s':>12}")
        for worker, open_count, total, pairs, rate in rows:
            lines.append(f"  {worker:<8}{open_count:>6}{total:>7}{pairs:>14}{rate:>12}")

    latency = _latency_lines(snapshot)
    if latency:
        lines.extend(["", "latency (live histograms)", "-------------------------"])
        lines.extend(latency)
    return "\n".join(lines) + "\n"


# -- CLI ----------------------------------------------------------------------


def build_parser(parser: Optional[argparse.ArgumentParser] = None) -> argparse.ArgumentParser:
    if parser is None:
        parser = argparse.ArgumentParser(
            prog="repro-cycles top",
            description="Live terminal view of a routed serve fleet's /metrics.",
        )
    parser.add_argument(
        "--url",
        default=None,
        help="full scrape URL (default http://HOST:PORT/metrics from --host/--port)",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=9640,
                        help="the router's --metrics-port (default 9640)")
    parser.add_argument("--interval", type=float, default=2.0,
                        help="seconds between refreshes (default 2)")
    parser.add_argument("--once", action="store_true",
                        help="print one frame and exit (CI mode; exit 2 if "
                        "the endpoint cannot be scraped)")
    return parser


def run_top(args: argparse.Namespace) -> int:
    url = args.url or f"http://{args.host}:{args.port}/metrics"
    prev: Optional[Snapshot] = None
    prev_at: Optional[float] = None
    while True:
        try:
            snapshot = fetch_metrics(url)
        except (urllib.error.URLError, OSError, ValueError) as exc:
            if args.once:
                print(f"top: cannot scrape {url}: {exc}", file=sys.stderr)
                return 2
            sys.stdout.write(_CLEAR)
            print(f"top: cannot scrape {url}: {exc} (retrying)")
            try:
                time.sleep(args.interval)
            except KeyboardInterrupt:
                return 0
            continue
        now = time.monotonic()  # repro-lint: disable=DET003 -- dashboard refresh rates are wall time by design; no estimator state depends on them
        interval = (now - prev_at) if prev_at is not None else None
        frame = render_top(snapshot, prev, interval, source=url)
        if args.once:
            sys.stdout.write(frame)
            return 0
        sys.stdout.write(_CLEAR + frame)
        sys.stdout.flush()
        prev, prev_at = snapshot, now
        try:
            time.sleep(args.interval)
        except KeyboardInterrupt:
            return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    try:
        return run_top(build_parser().parse_args(argv))
    except KeyboardInterrupt:
        return 0


if __name__ == "__main__":
    sys.exit(main())
