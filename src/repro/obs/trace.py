"""Hierarchical trace spans with deterministic, schedule-invariant identity.

A run decomposes into a span tree mirroring the execution hierarchy::

    run -> pass:<i> -> shard:<j>            (sharded driver)
    run -> trial:<k> -> pass:<i>            (experiment trial batches)
    run -> pass:<i> / merge:<i> / checkpoint:<...>

Span *identity* (``span_id``) is a pure function of the trace seed and
the span's structural ``path`` (e.g. ``run/pass:0/shard:2``) via the
repo's keyed :class:`~repro.util.hashing.MixHash64` — no wall clock, no
OS entropy (DET003-clean by construction).  Only ``start_s``/``end_s``
carry wall time, so two runs of the same spec — serial or parallel —
produce *identical* span trees once timers are stripped
(:func:`span_tree`); this is pinned by tests.

Cross-process propagation: a parent :class:`Tracer` hands workers a
picklable :class:`TraceContext` (seed + structural path).  The worker
builds a child tracer with :meth:`Tracer.from_context`, records spans,
and ships them home as JSON-safe dicts (:func:`encode_span`); the parent
:meth:`Tracer.adopt`\\ s them in deterministic (task) order.

Export: :func:`write_chrome_trace` renders spans as Chrome trace-event
JSON (``ph="X"`` complete events, microsecond ``ts``/``dur``) loadable
in Perfetto / ``chrome://tracing``.  Each worker unit (the innermost
``shard:``/``trial:`` ancestor) gets its own ``tid`` so timestamps stay
monotone per track even though worker clocks are unrelated.
:class:`TraceSink` adapts the export into a telemetry sink that collects
:class:`~repro.obs.events.SpanFinished` events and writes the trace file
on ``close()``; compose it with a JSONL sink via
:class:`~repro.obs.sinks.TeeSink` to get both artifacts from one run.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.obs.events import SpanFinished, TelemetryEvent
from repro.obs.sinks import TelemetrySink
from repro.util.hashing import MixHash64
from repro.util.rng import derive_seed

__all__ = [
    "SpanRecord",
    "TraceContext",
    "Tracer",
    "NULL_TRACER",
    "span_id_for",
    "encode_span",
    "decode_span",
    "spans_from_events",
    "span_tree",
    "chrome_trace_events",
    "write_chrome_trace",
    "read_chrome_trace",
    "stitch_spans",
    "stitch_chrome_traces",
    "TraceSink",
]

#: Substream index reserved for span-identity hashing (decorrelates the
#: span-id hash from every other consumer of the run seed).
_SPAN_ID_STREAM = 0x5AB5


@dataclass(frozen=True)
class SpanRecord:
    """One closed span.  Everything except ``start_s``/``end_s`` is a
    deterministic function of the trace seed and the execution structure;
    ``attrs`` must hold schedule-invariant numbers only (pair counts,
    budgets — never durations)."""

    name: str
    category: str
    path: str
    span_id: str
    parent_id: str
    start_s: float
    end_s: float
    attrs: Dict[str, float]


@dataclass(frozen=True)
class TraceContext:
    """Picklable handle a parent tracer ships to a worker process."""

    seed: int
    path: str


def span_id_for(seed: int, path: str) -> str:
    """16-hex-digit deterministic span id for ``path`` under ``seed``."""
    mix = MixHash64(key=derive_seed(int(seed), _SPAN_ID_STREAM))
    return f"{mix.hash_int(path):016x}"


def encode_span(record: SpanRecord) -> Dict[str, Any]:
    """JSON-safe wire form (what workers ship home and logs store)."""
    return {
        "name": record.name,
        "category": record.category,
        "path": record.path,
        "span_id": record.span_id,
        "parent_id": record.parent_id,
        "start_s": record.start_s,
        "end_s": record.end_s,
        "attrs": dict(record.attrs),
    }


def decode_span(blob: Mapping[str, Any]) -> SpanRecord:
    """Invert :func:`encode_span`."""
    return SpanRecord(
        name=blob["name"],
        category=blob["category"],
        path=blob["path"],
        span_id=blob["span_id"],
        parent_id=blob["parent_id"],
        start_s=float(blob["start_s"]),
        end_s=float(blob["end_s"]),
        attrs={str(k): v for k, v in dict(blob.get("attrs", {})).items()},
    )


def spans_from_events(events: Sequence[TelemetryEvent]) -> List[SpanRecord]:
    """Extract :class:`SpanRecord`\\ s from a telemetry event stream."""
    spans: List[SpanRecord] = []
    for event in events:
        if isinstance(event, SpanFinished):
            spans.append(
                SpanRecord(
                    name=event.name,
                    category=event.category,
                    path=event.path,
                    span_id=event.span_id,
                    parent_id=event.parent_id,
                    start_s=event.start_s,
                    end_s=event.end_s,
                    attrs=dict(event.attrs),
                )
            )
    return spans


class _SpanHandle:
    """Mutable attribute bag for a span that is still open."""

    __slots__ = ("attrs",)

    def __init__(self, attrs: Dict[str, float]):
        self.attrs = attrs

    def set(self, **attrs: float) -> None:
        """Attach schedule-invariant attributes to the span."""
        self.attrs.update(attrs)


class Tracer:
    """Records a tree of spans with deterministic ids.

    Used as a context manager it emits a root span (default name
    ``run``) covering its whole lifetime::

        tracer = Tracer(seed=7, telemetry=telemetry)
        with tracer:
            with tracer.span("pass:0", category="pass") as sp:
                ...
                sp.set(pairs=n)

    Worker processes reconstruct a child via :meth:`from_context`; child
    tracers never emit the root span (the parent owns it).
    """

    enabled = True

    def __init__(
        self,
        seed: int = 0,
        telemetry: Optional[Any] = None,
        root: str = "run",
        *,
        _root_path: Optional[str] = None,
        _emit_root: bool = True,
    ):
        self.seed = int(seed)
        self._telemetry = telemetry
        self._root_name = root
        self._root_path = _root_path if _root_path is not None else root
        self._emit_root = _emit_root
        self._path_stack: List[str] = [self._root_path]
        self._mix = MixHash64(key=derive_seed(self.seed, _SPAN_ID_STREAM))
        self._root_start: Optional[float] = None
        self.spans: List[SpanRecord] = []

    @classmethod
    def from_context(cls, ctx: TraceContext, telemetry: Optional[Any] = None) -> "Tracer":
        """Child tracer continuing ``ctx``'s path inside a worker."""
        root_name = ctx.path.rsplit("/", 1)[-1]
        return cls(
            seed=ctx.seed,
            telemetry=telemetry,
            root=root_name,
            _root_path=ctx.path,
            _emit_root=False,
        )

    # -- structural identity ------------------------------------------------

    def _span_id(self, path: str) -> str:
        return f"{self._mix.hash_int(path):016x}"

    def context(self) -> Optional[TraceContext]:
        """The picklable context for the *current* position in the tree."""
        return TraceContext(seed=self.seed, path=self._path_stack[-1])

    # -- recording ----------------------------------------------------------

    def _record(
        self,
        name: str,
        category: str,
        path: str,
        start_s: float,
        end_s: float,
        attrs: Dict[str, float],
    ) -> None:
        parent_path, _, _ = path.rpartition("/")
        record = SpanRecord(
            name=name,
            category=category,
            path=path,
            span_id=self._span_id(path),
            parent_id=self._span_id(parent_path) if parent_path else "",
            start_s=start_s,
            end_s=end_s,
            attrs=attrs,
        )
        self.spans.append(record)
        self._emit(record)

    def _emit(self, record: SpanRecord) -> None:
        if self._telemetry is not None and self._telemetry.enabled:
            self._telemetry.emit(
                SpanFinished(
                    name=record.name,
                    category=record.category,
                    path=record.path,
                    span_id=record.span_id,
                    parent_id=record.parent_id,
                    start_s=record.start_s,
                    end_s=record.end_s,
                    attrs=dict(record.attrs),
                )
            )

    @contextmanager
    def span(self, name: str, category: str = "phase", **attrs: float) -> Iterator[_SpanHandle]:
        """Open a child span; closes (and records) when the block exits.

        ``name`` must be unique among siblings (callers embed indices:
        ``pass:0``, ``shard:2``, ``trial:5``) — the structural path is
        the span's identity.
        """
        path = f"{self._path_stack[-1]}/{name}"
        self._path_stack.append(path)
        handle = _SpanHandle(dict(attrs))
        start = time.perf_counter()  # repro-lint: disable=DET003 -- span timestamps are wall time by design; identity never depends on them
        try:
            yield handle
        finally:
            end = time.perf_counter()  # repro-lint: disable=DET003 -- span timestamps are wall time by design; identity never depends on them
            self._path_stack.pop()
            self._record(name, category, path, start, end, handle.attrs)

    def record_span(
        self,
        name: str,
        category: str = "phase",
        *,
        parent: Optional[str] = None,
        start_s: float = 0.0,
        end_s: float = 0.0,
        **attrs: float,
    ) -> SpanRecord:
        """Record a completed span at an explicit position in the tree.

        The stack-based :meth:`span` context manager assumes spans nest
        with the call structure; concurrent *sessions* in the serve
        subsystem interleave arbitrarily, so their spans are recorded
        after the fact with explicit parent paths instead.  ``parent`` is
        the parent span's structural path (default: the tracer's root),
        and identity stays the same pure function of seed and path as
        everywhere else — a serial replay of the same sessions traces
        identically modulo timings.
        """
        parent_path = parent if parent is not None else self._root_path
        path = f"{parent_path}/{name}"
        self._record(name, category, path, start_s, end_s, dict(attrs))
        return self.spans[-1]

    def adopt(self, encoded_spans: Sequence[Mapping[str, Any]]) -> List[SpanRecord]:
        """Fold spans a worker shipped home into this tracer (in order)."""
        records = [decode_span(blob) for blob in encoded_spans]
        for record in records:
            self.spans.append(record)
            self._emit(record)
        return records

    def encoded_spans(self) -> List[Dict[str, Any]]:
        """All recorded spans in wire form (what workers return)."""
        return [encode_span(record) for record in self.spans]

    # -- root span lifecycle -------------------------------------------------

    def __enter__(self) -> "Tracer":
        self._root_start = time.perf_counter()  # repro-lint: disable=DET003 -- span timestamps are wall time by design; identity never depends on them
        return self

    def __exit__(self, *exc_info: Any) -> None:
        if not self._emit_root:
            return
        end = time.perf_counter()  # repro-lint: disable=DET003 -- span timestamps are wall time by design; identity never depends on them
        start = self._root_start if self._root_start is not None else end
        self._record(self._root_name, "run", self._root_path, start, end, {})


class _NullSpanHandle:
    __slots__ = ()

    def set(self, **attrs: float) -> None:
        pass


class _NullSpanContext:
    __slots__ = ()

    def __enter__(self) -> _NullSpanHandle:
        return _NULL_SPAN_HANDLE

    def __exit__(self, *exc_info: Any) -> None:
        pass


_NULL_SPAN_HANDLE = _NullSpanHandle()
_NULL_SPAN_CONTEXT = _NullSpanContext()


class _NullTracer(Tracer):
    """Tracing off: every span is a shared no-op context manager."""

    enabled = False

    def __init__(self) -> None:
        super().__init__(seed=0, telemetry=None, _emit_root=False)

    def span(self, name: str, category: str = "phase", **attrs: float) -> Any:
        return _NULL_SPAN_CONTEXT

    def record_span(
        self,
        name: str,
        category: str = "phase",
        *,
        parent: Optional[str] = None,
        start_s: float = 0.0,
        end_s: float = 0.0,
        **attrs: float,
    ) -> Optional[SpanRecord]:  # type: ignore[override]
        return None

    def context(self) -> Optional[TraceContext]:
        return None

    def adopt(self, encoded_spans: Sequence[Mapping[str, Any]]) -> List[SpanRecord]:
        return []

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        pass


#: The shared default — tracing off, hot paths pay one attribute lookup.
NULL_TRACER = _NullTracer()


# -- canonical (timer-stripped) form ------------------------------------------

def span_tree(spans: Sequence[SpanRecord]) -> Tuple[Tuple[Any, ...], ...]:
    """Canonical timer-stripped form of a span set.

    Drops ``start_s``/``end_s`` and sorts, so two runs of the same spec
    compare equal iff their *structure* (paths, ids, categories, attrs)
    matches — the serial-vs-parallel identity the tests pin.
    """
    return tuple(
        sorted(
            (
                record.path,
                record.name,
                record.category,
                record.span_id,
                record.parent_id,
                tuple(sorted(record.attrs.items())),
            )
            for record in spans
        )
    )


# -- Chrome trace-event export ------------------------------------------------

def _track_key(path: str) -> str:
    """The span's track: the innermost ``shard:``/``trial:`` ancestor.

    Each worker unit gets its own track (→ its own ``tid``) because
    worker-process clocks share no timebase; within a track timestamps
    come from one process and stay monotone.
    """
    segments = path.split("/")
    for i in range(len(segments) - 1, -1, -1):
        if segments[i].startswith(("shard:", "trial:")):
            return "/".join(segments[: i + 1])
    return segments[0]


def chrome_trace_events(spans: Sequence[SpanRecord]) -> List[Dict[str, Any]]:
    """Render spans as Chrome trace-event ``ph="X"`` complete events.

    Sorted by ``(tid, ts)`` so timestamps are monotone within each
    thread track; ``args`` carries the structural identity so
    :func:`read_chrome_trace` can reconstruct the span set.
    """
    tracks = sorted({_track_key(record.path) for record in spans})
    tid_of = {track: index + 1 for index, track in enumerate(tracks)}
    events: List[Dict[str, Any]] = []
    for record in spans:
        ts = int(round(record.start_s * 1e6))
        dur = max(0, int(round((record.end_s - record.start_s) * 1e6)))
        events.append(
            {
                "name": record.name,
                "cat": record.category,
                "ph": "X",
                "ts": ts,
                "dur": dur,
                "pid": 1,
                "tid": tid_of[_track_key(record.path)],
                "args": {
                    "path": record.path,
                    "span_id": record.span_id,
                    "parent_id": record.parent_id,
                    **record.attrs,
                },
            }
        )
    events.sort(key=lambda e: (e["tid"], e["ts"], -e["dur"], e["args"]["path"]))
    return events


def write_chrome_trace(path: str, spans: Sequence[SpanRecord]) -> None:
    """Write a Perfetto-loadable Chrome trace JSON file."""
    payload = {"traceEvents": chrome_trace_events(spans), "displayTimeUnit": "ms"}
    with open(path, "w") as fh:
        json.dump(payload, fh, sort_keys=True)
        fh.write("\n")


def read_chrome_trace(path: str) -> List[SpanRecord]:
    """Reconstruct spans from a file written by :func:`write_chrome_trace`."""
    with open(path) as fh:
        payload = json.load(fh)
    spans: List[SpanRecord] = []
    for event in payload.get("traceEvents", []):
        args = dict(event.get("args", {}))
        spans.append(
            SpanRecord(
                name=event["name"],
                category=event.get("cat", ""),
                path=args.pop("path", event["name"]),
                span_id=args.pop("span_id", ""),
                parent_id=args.pop("parent_id", ""),
                start_s=event["ts"] / 1e6,
                end_s=(event["ts"] + event.get("dur", 0)) / 1e6,
                attrs=args,
            )
        )
    return spans


def stitch_spans(span_sets: Sequence[Sequence[SpanRecord]]) -> List[SpanRecord]:
    """Merge per-process span sets into one trace, deduplicated by identity.

    Because span ids are pure functions of (seed, structural path), the
    same logical span observed by two processes — the router's relay
    view and the worker's session view share negotiated trace contexts —
    collapses to *one* record: identity keys the merge, and the copy
    with the longest duration wins (the process that owned the span
    encloses every observer's view of it).  Output order is sorted by
    (path, span_id), independent of input file order, so stitching is
    deterministic.
    """
    best: Dict[Tuple[str, str], SpanRecord] = {}
    for spans in span_sets:
        for record in spans:
            key = (record.path, record.span_id)
            held = best.get(key)
            if held is None or (record.end_s - record.start_s) > (held.end_s - held.start_s):
                best[key] = record
    return [best[key] for key in sorted(best)]


def stitch_chrome_traces(paths: Sequence[str], out_path: str) -> List[SpanRecord]:
    """Read several Chrome trace files, stitch them, write one trace.

    Returns the stitched span set (what was written) so callers can
    assert on ``span_tree`` determinism without re-reading the file.
    """
    stitched = stitch_spans([read_chrome_trace(path) for path in paths])
    write_chrome_trace(out_path, stitched)
    return stitched


class TraceSink(TelemetrySink):
    """Collect :class:`SpanFinished` events; write the trace on ``close()``.

    Ordinary telemetry events are dropped — compose with a
    :class:`~repro.obs.sinks.JsonlSink` via
    :class:`~repro.obs.sinks.TeeSink` to keep both.
    """

    def __init__(self, path: str):
        self.path = path
        self.spans: List[SpanRecord] = []
        self._closed = False

    def emit(self, event: TelemetryEvent) -> None:
        if self._closed:
            raise ValueError(f"TraceSink({self.path!r}) is closed")
        if isinstance(event, SpanFinished):
            self.spans.extend(spans_from_events([event]))

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        write_chrome_trace(self.path, self.spans)
