"""Service-level objectives evaluated over live metric snapshots.

An :class:`SLOPolicy` names the four objectives the serve fleet is
operated against (ISSUE/PAPER framing: the paper's space/accuracy
budgets become *latency/throughput/freshness* budgets once the
estimator runs as a service):

* ``poll_p99_seconds`` — ceiling on the p99 server-side poll latency,
  estimated from the live ``serve_op_latency_seconds{op=poll}``
  histogram (conservative upper-bound quantile, see
  :meth:`~repro.obs.metrics.Histogram.quantile`);
* ``feed_pairs_per_second`` — floor on ingest throughput over the last
  evaluation window (0 disables the floor while idle fleets warm up);
* ``verdict_age_seconds`` — ceiling on the time since *any* session's
  convergence verdict was refreshed by a poll — an anytime estimator
  whose verdicts go stale is not "live";
* ``loop_lag_p99_seconds`` — ceiling on p99 event-loop scheduling lag
  (``serve_loop_lag_seconds``), the canary for a starved router.

The router evaluates the policy periodically (`--slo-*` flags), exports
each objective as ``router_slo_*`` gauges plus a boolean
``router_slo_ok{objective=...}``, and ``bench_serve.py`` derives
absolute bench-report gates from the same policy so CI and the live
plane enforce one vocabulary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional

from repro.obs.metrics import HISTOGRAM, Snapshot, histogram_quantile, parse_series

__all__ = ["SLOPolicy", "SLOStatus", "pooled_histogram", "evaluate_slo"]


@dataclass(frozen=True)
class SLOPolicy:
    """Objective thresholds; ``None``/0 disables an objective."""

    poll_p99_seconds: float = 2.0
    feed_pairs_per_second: float = 0.0
    verdict_age_seconds: float = 300.0
    loop_lag_p99_seconds: float = 0.25

    def to_dict(self) -> Dict[str, float]:
        return {
            "poll_p99_seconds": self.poll_p99_seconds,
            "feed_pairs_per_second": self.feed_pairs_per_second,
            "verdict_age_seconds": self.verdict_age_seconds,
            "loop_lag_p99_seconds": self.loop_lag_p99_seconds,
        }


@dataclass(frozen=True)
class SLOStatus:
    """One evaluated objective: observed value vs its threshold."""

    objective: str
    value: float
    threshold: float
    #: ``"max"`` — value must stay at or below threshold; ``"min"`` — at
    #: or above.
    direction: str
    ok: bool


def pooled_histogram(
    snapshot: Snapshot, name: str, where: Optional[Mapping[str, str]] = None
) -> Optional[Dict[str, Any]]:
    """Merge every histogram series of ``name`` whose labels match ``where``.

    ``where`` is a label subset (e.g. ``{"op": "poll"}``); series keyed
    by extra labels (wire, worker) pool into one blob.  Returns ``None``
    when no series matches.
    """
    pooled: Optional[Dict[str, Any]] = None
    for series_key in sorted(snapshot):
        blob = snapshot[series_key]
        if blob.get("kind") != HISTOGRAM:
            continue
        series_name, labels = parse_series(series_key)
        if series_name != name:
            continue
        if where and any(labels.get(k) != v for k, v in where.items()):
            continue
        if pooled is None:
            pooled = {
                "kind": HISTOGRAM,
                "bounds": list(blob["bounds"]),
                "buckets": list(blob["buckets"]),
                "total": blob["total"],
                "count": blob["count"],
            }
        else:
            if list(pooled["bounds"]) != list(blob["bounds"]):
                raise ValueError(f"histogram {name!r} mixes bucket bounds across series")
            pooled["buckets"] = [a + b for a, b in zip(pooled["buckets"], blob["buckets"])]
            pooled["total"] += blob["total"]
            pooled["count"] += blob["count"]
    return pooled


def _status(objective: str, value: float, threshold: float, direction: str) -> SLOStatus:
    if direction == "max":
        ok = value <= threshold
    else:
        ok = value >= threshold
    return SLOStatus(objective=objective, value=value, threshold=threshold,
                     direction=direction, ok=ok)


def evaluate_slo(
    policy: SLOPolicy,
    snapshot: Snapshot,
    *,
    pairs_per_second: float,
    verdict_age_seconds: float,
) -> List[SLOStatus]:
    """Evaluate every enabled objective against a fleet-merged snapshot.

    ``pairs_per_second`` (windowed ingest rate) and
    ``verdict_age_seconds`` (time since the last verdict-refreshing
    poll) are rates/ages the caller tracks between snapshots — a single
    snapshot cannot express them.
    """
    statuses: List[SLOStatus] = []
    if policy.poll_p99_seconds > 0:
        poll = pooled_histogram(snapshot, "serve_op_latency_seconds", {"op": "poll"})
        p99 = histogram_quantile(poll, 0.99) if poll else 0.0
        statuses.append(_status("poll_p99_seconds", p99, policy.poll_p99_seconds, "max"))
    if policy.feed_pairs_per_second > 0:
        statuses.append(_status(
            "feed_pairs_per_second", pairs_per_second,
            policy.feed_pairs_per_second, "min",
        ))
    if policy.verdict_age_seconds > 0:
        statuses.append(_status(
            "verdict_age_seconds", verdict_age_seconds,
            policy.verdict_age_seconds, "max",
        ))
    if policy.loop_lag_p99_seconds > 0:
        lag = pooled_histogram(snapshot, "serve_loop_lag_seconds")
        lag_p99 = histogram_quantile(lag, 0.99) if lag else 0.0
        statuses.append(_status(
            "loop_lag_p99_seconds", lag_p99, policy.loop_lag_p99_seconds, "max",
        ))
    return statuses
