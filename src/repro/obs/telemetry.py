"""The telemetry facade the instrumented runners talk to.

A :class:`Telemetry` bundles a metric registry with one sink: events go
to the sink as they happen, metrics accumulate in the registry, and
``close()`` emits a terminal :class:`~repro.obs.events.MetricsReport`
(so JSONL logs and textfiles end with the full metric state) before
closing the sink.

The zero-overhead contract: :data:`NULL_TELEMETRY` (the default
everywhere) has ``enabled = False`` as a *class* attribute, so an
instrumented hot path guards its work with one attribute lookup::

    if telemetry.enabled:
        telemetry.emit(SpaceHighWater(...))

and pays nothing else when telemetry is off.  Instrumented code must
never call ``emit``/``count``/``set_gauge`` outside such a guard.

:func:`open_telemetry` maps a CLI ``--telemetry PATH`` to a sink by
extension: ``.jsonl`` gets the JSONL event log, ``.prom`` / ``.txt`` the
Prometheus-style textfile, ``.trace`` / ``.trace.json`` the Chrome
trace-event file.  Unrecognised extensions raise ``ValueError`` — a
typo'd path must not silently change the artifact format.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.obs.events import MetricsReport, TelemetryEvent
from repro.obs.metrics import MetricRegistry, Snapshot
from repro.obs.sinks import JsonlSink, TelemetrySink, TextfileSink

__all__ = ["Telemetry", "NULL_TELEMETRY", "open_telemetry"]


class Telemetry:
    """Metric registry + event sink, with convenience recorders."""

    enabled = True

    def __init__(
        self,
        sink: Optional[TelemetrySink] = None,
        registry: Optional[MetricRegistry] = None,
    ):
        # ``sink=None`` means metrics-only: events are dropped but the
        # registry still accumulates (the per-trial roll-up mode).
        self.sink = sink
        self.registry = registry if registry is not None else MetricRegistry()
        self._closed = False

    # -- events ---------------------------------------------------------------

    def emit(self, event: TelemetryEvent) -> None:
        if self.sink is not None:
            self.sink.emit(event)

    # -- metric conveniences --------------------------------------------------

    def count(self, name: str, amount: float = 1, help: str = "", **labels: str) -> None:
        """Increment counter ``name`` (creating the family on first use)."""
        family = self.registry.counter(name, help=help, labelnames=tuple(sorted(labels)))
        family.labels(**labels).inc(amount)

    def set_gauge(self, name: str, value: float, help: str = "", **labels: str) -> None:
        """Set gauge ``name`` (its high-water mark updates automatically)."""
        family = self.registry.gauge(name, help=help, labelnames=tuple(sorted(labels)))
        family.labels(**labels).set(value)

    def observe_seconds(self, name: str, seconds: float, help: str = "", **labels: str) -> None:
        """Record one duration observation on timer ``name``."""
        family = self.registry.timer(name, help=help, labelnames=tuple(sorted(labels)))
        family.labels(**labels).observe(seconds)

    def observe_histogram(self, name: str, value: float, help: str = "", **labels: str) -> None:
        """Record one observation on histogram ``name`` (fixed bounds)."""
        family = self.registry.histogram(name, help=help, labelnames=tuple(sorted(labels)))
        family.labels(**labels).observe(value)

    def metrics_snapshot(self) -> Snapshot:
        return self.registry.snapshot()

    # -- lifecycle ------------------------------------------------------------

    def flush(self) -> None:
        """Flush the sink's buffered output (no-op for buffer-less sinks).

        The serve subsystem calls this at request-loop quiet points so a
        cancelled or killed server still leaves a parseable event log up
        to the last flush — the asyncio extension of the CLI's
        context-manager guarantee.
        """
        if self.sink is not None and not self._closed:
            self.sink.flush()

    def close(self) -> None:
        """Emit the final :class:`MetricsReport` and close the sink."""
        if self._closed:
            return
        self._closed = True
        if self.sink is not None:
            if isinstance(self.sink, TextfileSink):
                self.sink.help_texts.update(
                    {f.name: f.help for f in self.registry.families() if f.help}
                )
            self.sink.emit(MetricsReport(metrics=self.registry.snapshot()))
            self.sink.close()

    def __enter__(self) -> "Telemetry":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class _NullTelemetry(Telemetry):
    """Telemetry that is off: every recorder is a no-op."""

    enabled = False

    def __init__(self) -> None:
        super().__init__(sink=None, registry=MetricRegistry())

    def emit(self, event: TelemetryEvent) -> None:
        pass

    def count(self, name: str, amount: float = 1, help: str = "", **labels: str) -> None:
        pass

    def set_gauge(self, name: str, value: float, help: str = "", **labels: str) -> None:
        pass

    def observe_seconds(self, name: str, seconds: float, help: str = "", **labels: str) -> None:
        pass

    def observe_histogram(self, name: str, value: float, help: str = "", **labels: str) -> None:
        pass

    def close(self) -> None:
        pass


#: The shared default: telemetry off, one attribute lookup on hot paths.
NULL_TELEMETRY = _NullTelemetry()

_TEXTFILE_SUFFIXES: Tuple[str, ...] = (".prom", ".txt")
_TRACE_SUFFIXES: Tuple[str, ...] = (".trace", ".trace.json")
_JSONL_SUFFIXES: Tuple[str, ...] = (".jsonl",)


def open_telemetry(path: str) -> Telemetry:
    """Build a :class:`Telemetry` writing to ``path`` (sink by extension).

    Raises ``ValueError`` for unrecognised extensions so a typo'd path
    fails loudly instead of silently picking a format.
    """
    # Local import: trace.py imports sinks from this package.
    from repro.obs.trace import TraceSink

    if any(path.endswith(suffix) for suffix in _TRACE_SUFFIXES):
        return Telemetry(sink=TraceSink(path))
    if any(path.endswith(suffix) for suffix in _TEXTFILE_SUFFIXES):
        return Telemetry(sink=TextfileSink(path))
    if any(path.endswith(suffix) for suffix in _JSONL_SUFFIXES):
        return Telemetry(sink=JsonlSink(path))
    known = _JSONL_SUFFIXES + _TEXTFILE_SUFFIXES + _TRACE_SUFFIXES
    raise ValueError(
        f"telemetry path {path!r} has an unrecognised extension; "
        f"expected one of {', '.join(known)}"
    )
