"""Pluggable telemetry sinks.

A sink is an event consumer with an ``enabled`` class attribute — the
hot-path contract is that when telemetry is off the runner pays exactly
one attribute lookup (``telemetry.enabled``) and no call.  Four sinks:

* :class:`NullSink` — the default; ``enabled = False``, every method a
  no-op.  :data:`NULL_SINK` is the shared instance.
* :class:`InMemorySink` — appends events to a list (tests, roll-ups).
* :class:`JsonlSink` — one JSON object per event per line, append-only;
  :func:`read_jsonl_events` parses a log back into typed events.
* :class:`TextfileSink` — Prometheus-style textfile exporter.  It keeps
  the last :class:`~repro.obs.events.MetricsReport` it sees and renders
  it on ``close()``; :func:`parse_textfile` inverts the format back into
  a metric snapshot (and help texts), so the in-memory model round-trips.

Textfile conventions (node-exporter textfile-collector compatible):
``# HELP``/``# TYPE`` headers per family, ``kind timer`` families expand
to ``<name>_total`` / ``<name>_count`` / ``<name>_max`` samples, gauges
also export their ``<name>_high_water`` mark, and histograms expand to
the standard cumulative ``<name>_bucket{le="..."}`` series (ending at
``le="+Inf"``) plus ``<name>_sum`` / ``<name>_count``.
"""

from __future__ import annotations

import json
import math
from typing import IO, Any, Dict, List, Mapping, Optional, Tuple

from repro.obs.events import MetricsReport, TelemetryEvent, decode_event, encode_event
from repro.obs.metrics import (
    COUNTER,
    GAUGE,
    HISTOGRAM,
    TIMER,
    Snapshot,
    format_series,
    parse_series,
)


class TelemetrySink:
    """Base sink: receives typed events; subclasses decide what to keep."""

    enabled = True

    def emit(self, event: TelemetryEvent) -> None:
        raise NotImplementedError

    def flush(self) -> None:
        """Push buffered output to durable storage without closing.

        Long-lived consumers (the serve subsystem) call this at quiet
        points so a later hard kill — ``SIGKILL``, a cancelled asyncio
        task that never reaches ``close()`` — loses at most the events
        since the last flush, never the whole log.
        """

    def close(self) -> None:
        """Flush and release resources (idempotent)."""


class NullSink(TelemetrySink):
    """Discard everything; ``enabled`` is False so hot paths skip work."""

    enabled = False

    def emit(self, event: TelemetryEvent) -> None:
        pass


#: Shared default sink — telemetry off.
NULL_SINK = NullSink()


class TeeSink(TelemetrySink):
    """Fan every event out to several child sinks (e.g. JSONL + trace).

    ``close()`` closes every child, continuing past failures and
    re-raising the first one, so a broken child can't leave siblings
    unflushed.
    """

    def __init__(self, *sinks: TelemetrySink):
        self.sinks: List[TelemetrySink] = list(sinks)

    def emit(self, event: TelemetryEvent) -> None:
        for sink in self.sinks:
            sink.emit(event)

    def flush(self) -> None:
        for sink in self.sinks:
            sink.flush()

    def close(self) -> None:
        first_error: Optional[BaseException] = None
        for sink in self.sinks:
            try:
                sink.close()
            except BaseException as exc:  # noqa: BLE001 - must close all
                if first_error is None:
                    first_error = exc
        if first_error is not None:
            raise first_error


class InMemorySink(TelemetrySink):
    """Keep every event in order; the reference model for round-trip tests."""

    def __init__(self) -> None:
        self.events: List[TelemetryEvent] = []

    def emit(self, event: TelemetryEvent) -> None:
        self.events.append(event)

    def of_type(self, event_type: type) -> List[TelemetryEvent]:
        """Events of one type, in emission order."""
        return [e for e in self.events if isinstance(e, event_type)]

    def metrics(self) -> Optional[Snapshot]:
        """The last :class:`MetricsReport` snapshot, if one was emitted."""
        reports = self.of_type(MetricsReport)
        return reports[-1].metrics if reports else None


class JsonlSink(TelemetrySink):
    """Append one JSON object per event to ``path`` (created eagerly).

    Each event is serialised to a complete line *first* and written with a
    single ``write`` call — never streamed piecewise into the file — so an
    asyncio cancellation (or any exception) landing between events can
    never leave a torn half-line behind: whatever made it to disk parses.
    ``flush_every`` bounds the tail a hard kill can lose; the default
    flushes after every event, which long-lived servers relax for
    throughput and supplement with explicit :meth:`flush` calls at quiet
    points.
    """

    def __init__(self, path: str, flush_every: int = 1):
        if flush_every < 1:
            raise ValueError("flush_every must be at least 1")
        self.path = path
        self.flush_every = flush_every
        self._since_flush = 0
        self._fh: Optional[IO[str]] = open(path, "w")

    def emit(self, event: TelemetryEvent) -> None:
        if self._fh is None:
            raise ValueError(f"JsonlSink({self.path!r}) is closed")
        line = json.dumps(encode_event(event), sort_keys=True)
        self._fh.write(line + "\n")
        self._since_flush += 1
        if self._since_flush >= self.flush_every:
            self._fh.flush()
            self._since_flush = 0

    def flush(self) -> None:
        if self._fh is not None:
            self._fh.flush()
            self._since_flush = 0

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


def read_jsonl_events(path: str) -> List[TelemetryEvent]:
    """Parse a :class:`JsonlSink` log back into typed events."""
    events: List[TelemetryEvent] = []
    with open(path) as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                events.append(decode_event(json.loads(line)))
            except (json.JSONDecodeError, ValueError) as exc:
                raise ValueError(f"{path}:{lineno}: bad telemetry line: {exc}") from exc
    return events


# -- Prometheus-style textfile ------------------------------------------------

def _escape_label(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _unescape_label(value: str) -> str:
    out: List[str] = []
    i = 0
    while i < len(value):
        ch = value[i]
        if ch == "\\" and i + 1 < len(value):
            nxt = value[i + 1]
            out.append({"n": "\n", "\\": "\\", '"': '"'}.get(nxt, "\\" + nxt))
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def _format_value(value: float) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(float(value))


def _sample_line(name: str, labels: Mapping[str, str], value: float) -> str:
    if labels:
        inner = ",".join(
            f'{k}="{_escape_label(str(labels[k]))}"' for k in sorted(labels)
        )
        return f"{name}{{{inner}}} {_format_value(value)}"
    return f"{name} {_format_value(value)}"


def render_textfile(snapshot: Snapshot, help_texts: Optional[Mapping[str, str]] = None) -> str:
    """Render a metric snapshot in Prometheus textfile exposition format."""
    by_family: Dict[str, List[Tuple[Dict[str, str], Dict[str, Any]]]] = {}
    kinds: Dict[str, str] = {}
    for series_key in sorted(snapshot):
        blob = snapshot[series_key]
        name, labels = parse_series(series_key)
        if kinds.setdefault(name, blob["kind"]) != blob["kind"]:
            raise ValueError(f"family {name!r} mixes kinds in snapshot")
        by_family.setdefault(name, []).append((labels, blob))
    lines: List[str] = []
    for name in sorted(by_family):
        help_text = (help_texts or {}).get(name, "")
        if help_text:
            lines.append(f"# HELP {name} {help_text}")
        kind = kinds[name]
        lines.append(f"# TYPE {name} {kind}")
        for labels, blob in by_family[name]:
            if kind == COUNTER:
                lines.append(_sample_line(name, labels, blob["value"]))
            elif kind == GAUGE:
                lines.append(_sample_line(name, labels, blob["value"]))
                lines.append(
                    _sample_line(f"{name}_high_water", labels, blob["high_water"])
                )
            elif kind == HISTOGRAM:
                running = 0
                for bound, n in zip(blob["bounds"], blob["buckets"]):
                    running += n
                    le = dict(labels, le=_format_value(float(bound)))
                    lines.append(_sample_line(f"{name}_bucket", le, running))
                inf = dict(labels, le="+Inf")
                lines.append(_sample_line(f"{name}_bucket", inf, blob["count"]))
                lines.append(_sample_line(f"{name}_sum", labels, blob["total"]))
                lines.append(_sample_line(f"{name}_count", labels, blob["count"]))
            else:  # timer
                lines.append(_sample_line(f"{name}_total", labels, blob["total_seconds"]))
                lines.append(_sample_line(f"{name}_count", labels, blob["count"]))
                lines.append(_sample_line(f"{name}_max", labels, blob["max_seconds"]))
    return "\n".join(lines) + ("\n" if lines else "")


def _parse_sample(line: str) -> Tuple[str, Dict[str, str], float]:
    """Split one exposition line into (series name, labels, value)."""
    if "{" in line:
        name, _, rest = line.partition("{")
        body, _, tail = rest.rpartition("}")
        labels: Dict[str, str] = {}
        if body:
            for part in body.split(","):
                key, _, raw = part.partition("=")
                labels[key.strip()] = _unescape_label(raw.strip().strip('"'))
        value_text = tail.strip()
    else:
        name, _, value_text = line.partition(" ")
        labels = {}
    value = float(value_text.replace("+Inf", "inf").replace("-Inf", "-inf"))
    if value.is_integer():
        # Counters/gauges written from ints must compare equal on reload.
        return name.strip(), labels, int(value)
    return name.strip(), labels, value


def parse_textfile(text: str) -> Tuple[Snapshot, Dict[str, str]]:
    """Invert :func:`render_textfile`: ``(snapshot, help_texts)``.

    Timer families reassemble from their ``_total``/``_count``/``_max``
    samples, gauges from their value + ``_high_water`` pair, and
    histograms from their cumulative ``_bucket{le=...}`` ladder plus
    ``_sum``/``_count``, guided by the ``# TYPE`` declarations.
    """
    kinds: Dict[str, str] = {}
    helps: Dict[str, str] = {}
    samples: List[Tuple[str, Dict[str, str], float]] = []
    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            kinds[name] = kind.strip()
        elif line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            name, _, help_text = rest.partition(" ")
            helps[name] = help_text
        elif line.startswith("#"):
            continue
        else:
            samples.append(_parse_sample(line))
    # Map each possible sample name to (family, slot in the blob).
    slots: Dict[str, Tuple[str, str]] = {}
    for name, kind in kinds.items():
        if kind == COUNTER:
            slots[name] = (name, "value")
        elif kind == GAUGE:
            slots[name] = (name, "value")
            slots[f"{name}_high_water"] = (name, "high_water")
        elif kind == TIMER:
            slots[f"{name}_total"] = (name, "total_seconds")
            slots[f"{name}_count"] = (name, "count")
            slots[f"{name}_max"] = (name, "max_seconds")
        elif kind == HISTOGRAM:
            slots[f"{name}_bucket"] = (name, "_bucket")
            slots[f"{name}_sum"] = (name, "total")
            slots[f"{name}_count"] = (name, "count")
        else:
            raise ValueError(f"unknown TYPE {kind!r} for family {name!r}")
    defaults = {
        COUNTER: lambda: {"kind": COUNTER, "value": 0},
        GAUGE: lambda: {"kind": GAUGE, "value": 0, "high_water": 0},
        TIMER: lambda: {"kind": TIMER, "total_seconds": 0.0, "count": 0, "max_seconds": 0.0},
        HISTOGRAM: lambda: {"kind": HISTOGRAM, "total": 0.0, "count": 0, "_cum": {}},
    }
    snapshot: Snapshot = {}
    for sample_name, labels, value in samples:
        if sample_name not in slots:
            raise ValueError(f"sample {sample_name!r} has no # TYPE declaration")
        family, slot = slots[sample_name]
        if slot == "_bucket":
            # The ``le`` bound is part of the sample, not of the series.
            le_text = labels.pop("le", None)
            if le_text is None:
                raise ValueError(f"histogram sample {sample_name!r} lacks an le label")
            bound = float(le_text.replace("+Inf", "inf"))
            series_key = format_series(family, labels)
            blob = snapshot.setdefault(series_key, defaults[HISTOGRAM]())
            blob["_cum"][bound] = int(value)
            continue
        series_key = format_series(family, labels)
        blob = snapshot.setdefault(series_key, defaults[kinds[family]]())
        blob[slot] = value
    # De-cumulate histogram bucket ladders back into per-bucket counts.
    for blob in snapshot.values():
        if blob["kind"] != HISTOGRAM:
            continue
        cum = blob.pop("_cum", {})
        bounds = sorted(b for b in cum if math.isfinite(b))
        running = 0
        buckets: List[int] = []
        for bound in bounds:
            if cum[bound] < running:
                raise ValueError("histogram bucket ladder is not cumulative")
            buckets.append(cum[bound] - running)
            running = cum[bound]
        buckets.append(int(blob["count"]) - running)
        if buckets[-1] < 0:
            raise ValueError("histogram _count is below the last finite bucket")
        blob["bounds"] = [float(b) for b in bounds]
        blob["buckets"] = buckets
    return snapshot, helps


class TextfileSink(TelemetrySink):
    """Write the final metric snapshot to ``path`` in textfile format.

    Ordinary events are dropped — this sink exports metrics, and the
    metric registry arrives as the terminal :class:`MetricsReport` that
    ``Telemetry.close()`` emits.  The file is (re)written atomically-ish
    on ``close()``: last report wins, matching node-exporter textfile
    collector semantics where each scrape sees one consistent snapshot.
    """

    def __init__(self, path: str, help_texts: Optional[Mapping[str, str]] = None):
        self.path = path
        self.help_texts = dict(help_texts or {})
        self._last: Optional[Snapshot] = None
        self._closed = False

    def emit(self, event: TelemetryEvent) -> None:
        if self._closed:
            raise ValueError(f"TextfileSink({self.path!r}) is closed")
        if isinstance(event, MetricsReport):
            self._last = event.metrics

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        with open(self.path, "w") as fh:
            fh.write(render_textfile(self._last or {}, self.help_texts))
