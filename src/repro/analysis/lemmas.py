"""Empirical verification of the paper's combinatorial lemmas.

The lemmas are theorems — these checks cannot fail on any graph if the
implementation is correct, so they double as deep consistency tests of
the counting machinery, and the measured ratios show how much slack the
constants have on concrete (including adversarial) inputs:

* **Lemma 3.2**: ``Σ_e T_e² = O(T^{4/3})`` for the ρ-assigned triangle
  loads (stream-order dependent).
* **Lemma 4.2**: at least ``T/50`` 4-cycles are good.
* **Lemma A.1**: at least ``(13/50)·T`` 4-cycles contain ≤ 1 heavy edge.
* **Lemma A.2**: at most ``(3/25)·T`` 4-cycles have all wedges overused.
* The triangle bound behind both: a graph with m edges has at most
  ``m^{3/2}`` triangles (and a graph with T triangles has ≥ ``T^{2/3}``
  triangle edges).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.analysis.heaviness import (
    classify,
    cycles_with_all_overused_wedges,
    cycles_with_at_most_one_heavy_edge,
)
from repro.analysis.lightest_edge import te_square_sum
from repro.graph.counting import count_four_cycles, count_triangles, triangles_per_edge
from repro.graph.graph import Graph
from repro.streaming.stream import AdjacencyListStream


@dataclass(frozen=True)
class LemmaCheck:
    """One verified inequality: ``lhs (cmp) rhs`` with measured slack."""

    name: str
    lhs: float
    rhs: float
    comparison: str  # "<=" or ">="

    @property
    def holds(self) -> bool:
        """Whether the inequality is satisfied."""
        if self.comparison == "<=":
            return self.lhs <= self.rhs
        return self.lhs >= self.rhs

    @property
    def slack(self) -> float:
        """``rhs / lhs`` for ≤, ``lhs / rhs`` for ≥ (∞ when trivial)."""
        num, den = (self.rhs, self.lhs) if self.comparison == "<=" else (self.lhs, self.rhs)
        if den == 0:
            return float("inf")
        return num / den


def check_lemma_3_2(stream: AdjacencyListStream, constant: float = 16.0) -> LemmaCheck:
    """``Σ_e T_e² ≤ C · T^{4/3}`` for the ρ assignment of this ordering.

    The paper's proof yields an absolute constant; ``constant`` is the
    budget this check grants it.
    """
    t = count_triangles(stream.graph)
    lhs = te_square_sum(stream)
    rhs = constant * t ** (4.0 / 3.0)
    return LemmaCheck(name="lemma_3_2", lhs=lhs, rhs=rhs, comparison="<=")


def check_lemma_4_2(graph: Graph, definition_constant: float = 40.0) -> LemmaCheck:
    """``|F_G| ≥ T / 50``: good 4-cycles are a constant fraction."""
    report = classify(graph, constant=definition_constant)
    return LemmaCheck(
        name="lemma_4_2",
        lhs=report.good_cycle_count,
        rhs=report.cycle_count / 50.0,
        comparison=">=",
    )


def check_lemma_a_1(graph: Graph, definition_constant: float = 40.0) -> LemmaCheck:
    """``≥ (13/50)·T`` 4-cycles contain at most one heavy edge."""
    t = count_four_cycles(graph)
    lhs = cycles_with_at_most_one_heavy_edge(graph, constant=definition_constant)
    return LemmaCheck(name="lemma_a_1", lhs=lhs, rhs=13.0 * t / 50.0, comparison=">=")


def check_lemma_a_2(graph: Graph, definition_constant: float = 40.0) -> LemmaCheck:
    """``≤ (3/25)·T`` 4-cycles have all four wedges overused."""
    t = count_four_cycles(graph)
    lhs = cycles_with_all_overused_wedges(graph, constant=definition_constant)
    return LemmaCheck(name="lemma_a_2", lhs=lhs, rhs=3.0 * t / 25.0, comparison="<=")


def check_triangle_edge_bound(graph: Graph) -> LemmaCheck:
    """Graphs with T triangles have ≥ T^{2/3} triangle edges ([15])."""
    t = count_triangles(graph)
    triangle_edges = sum(1 for _, load in triangles_per_edge(graph).items() if load > 0)
    return LemmaCheck(
        name="triangle_edge_bound",
        lhs=triangle_edges,
        rhs=t ** (2.0 / 3.0),
        comparison=">=",
    )


def check_max_triangles_bound(graph: Graph) -> LemmaCheck:
    """Graphs with m edges have at most m^{3/2} triangles ([15])."""
    return LemmaCheck(
        name="max_triangles_bound",
        lhs=count_triangles(graph),
        rhs=graph.m**1.5,
        comparison="<=",
    )


def run_all_checks(graph: Graph, stream_seed=0) -> List[LemmaCheck]:
    """Run every lemma check on ``graph`` (with a seeded stream order)."""
    stream = AdjacencyListStream(graph, seed=stream_seed)
    checks = [
        check_lemma_3_2(stream),
        check_lemma_4_2(graph),
        check_lemma_a_1(graph),
        check_lemma_a_2(graph),
        check_lemma_a_3(graph),
        check_triangle_edge_bound(graph),
        check_max_triangles_bound(graph),
    ]
    return checks


def check_lemma_a_3(graph: Graph, definition_constant: float = 40.0) -> LemmaCheck:
    """``≤ (3/25)·T`` 4-cycles have a heavy edge with both avoiding wedges
    overused (Lemma A.3)."""
    from repro.analysis.heaviness import (
        cycles_with_heavy_edge_and_opposite_wedges_overused,
    )

    t = count_four_cycles(graph)
    lhs = cycles_with_heavy_edge_and_opposite_wedges_overused(
        graph, constant=definition_constant
    )
    return LemmaCheck(name="lemma_a_3", lhs=lhs, rhs=3.0 * t / 25.0, comparison="<=")
