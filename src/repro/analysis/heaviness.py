"""Heavy/light classification of edges and wedges — Definition 4.1.

The 4-cycle algorithm's correctness rests on most cycles containing a
"good" wedge.  Quoting the paper (with the constant 40 parameterised):

* an edge is **heavy** if it lies in at least ``40·√T`` 4-cycles;
* a wedge is **overused** if it lies in at least ``40·T^{1/4}`` 4-cycles,
  **heavy** if it contains a heavy edge, **bad** if overused or heavy,
  and **good** otherwise;
* a 4-cycle is **good** if it contains at least one good wedge.

Lemma 4.2 asserts that at least a constant fraction (the proof yields
``T/50``) of 4-cycles are good; :mod:`repro.analysis.lemmas` checks this
empirically through the classification computed here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Set, Tuple

from repro.graph.counting import count_four_cycles, enumerate_four_cycles
from repro.graph.graph import Edge, Graph, canonical_edge
from repro.graph.wedges import Wedge, wedges_of_four_cycle

FourCycle = Tuple


@dataclass(frozen=True)
class HeavinessReport:
    """Classification summary of a graph's edges, wedges and 4-cycles."""

    cycle_count: int
    heavy_edge_threshold: float
    overused_wedge_threshold: float
    heavy_edges: FrozenSet[Edge]
    overused_wedges: FrozenSet[Wedge]
    bad_wedges: FrozenSet[Wedge]
    good_cycle_count: int

    @property
    def good_fraction(self) -> float:
        """Fraction of 4-cycles containing a good wedge (1.0 when T = 0)."""
        if self.cycle_count == 0:
            return 1.0
        return self.good_cycle_count / self.cycle_count


def cycle_edge_loads(graph: Graph) -> Dict[Edge, int]:
    """``T_e`` for every edge appearing in at least one 4-cycle."""
    loads: Dict[Edge, int] = {}
    for cycle in enumerate_four_cycles(graph):
        a, b, c, d = cycle
        for e in ((a, b), (b, c), (c, d), (d, a)):
            key = canonical_edge(*e)
            loads[key] = loads.get(key, 0) + 1
    return loads


def cycle_wedge_loads(graph: Graph) -> Dict[Wedge, int]:
    """``T_w`` for every wedge appearing in at least one 4-cycle."""
    loads: Dict[Wedge, int] = {}
    for cycle in enumerate_four_cycles(graph):
        for wedge in wedges_of_four_cycle(cycle):
            loads[wedge] = loads.get(wedge, 0) + 1
    return loads


def classify(graph: Graph, constant: float = 40.0) -> HeavinessReport:
    """Apply Definition 4.1 to ``graph`` (``constant`` defaults to 40).

    Returns the full classification; exponential only in the exact cycle
    enumeration, so intended for analysis-scale graphs.
    """
    cycles = list(enumerate_four_cycles(graph))
    t = len(cycles)
    heavy_edge_threshold = constant * t**0.5
    overused_threshold = constant * t**0.25

    edge_loads = cycle_edge_loads(graph)
    wedge_loads = cycle_wedge_loads(graph)
    heavy_edges = {e for e, load in edge_loads.items() if load >= heavy_edge_threshold}

    overused: Set[Wedge] = set()
    bad: Set[Wedge] = set()
    for wedge, load in wedge_loads.items():
        is_overused = load >= overused_threshold
        is_heavy = any(e in heavy_edges for e in wedge.edges)
        if is_overused:
            overused.add(wedge)
        if is_overused or is_heavy:
            bad.add(wedge)

    good_cycles = 0
    for cycle in cycles:
        if any(w not in bad for w in wedges_of_four_cycle(cycle)):
            good_cycles += 1

    return HeavinessReport(
        cycle_count=t,
        heavy_edge_threshold=heavy_edge_threshold,
        overused_wedge_threshold=overused_threshold,
        heavy_edges=frozenset(heavy_edges),
        overused_wedges=frozenset(overused),
        bad_wedges=frozenset(bad),
        good_cycle_count=good_cycles,
    )


def cycles_with_at_most_one_heavy_edge(graph: Graph, constant: float = 40.0) -> int:
    """Count 4-cycles containing at most one heavy edge (Lemma A.1's LHS)."""
    t = count_four_cycles(graph)
    threshold = constant * t**0.5
    edge_loads = cycle_edge_loads(graph)
    heavy = {e for e, load in edge_loads.items() if load >= threshold}
    count = 0
    for cycle in enumerate_four_cycles(graph):
        a, b, c, d = cycle
        edges = [canonical_edge(*e) for e in ((a, b), (b, c), (c, d), (d, a))]
        if sum(1 for e in edges if e in heavy) <= 1:
            count += 1
    return count


def cycles_with_all_overused_wedges(graph: Graph, constant: float = 40.0) -> int:
    """Count 4-cycles all of whose wedges are overused (Lemma A.2's LHS)."""
    t = count_four_cycles(graph)
    threshold = constant * t**0.25
    wedge_loads = cycle_wedge_loads(graph)
    count = 0
    for cycle in enumerate_four_cycles(graph):
        if all(wedge_loads.get(w, 0) >= threshold for w in wedges_of_four_cycle(cycle)):
            count += 1
    return count


def cycles_with_heavy_edge_and_opposite_wedges_overused(
    graph: Graph, constant: float = 40.0
) -> int:
    """Count 4-cycles with a heavy edge whose two avoiding wedges are overused.

    Lemma A.3's LHS: cycles containing a heavy edge ``e`` such that both
    wedges of the cycle *not* containing ``e`` are overused.  (Each edge of
    a 4-cycle lies in two of its four wedges and avoids the other two.)
    """
    t = count_four_cycles(graph)
    edge_threshold = constant * t**0.5
    wedge_threshold = constant * t**0.25
    edge_loads = cycle_edge_loads(graph)
    wedge_loads = cycle_wedge_loads(graph)
    heavy = {e for e, load in edge_loads.items() if load >= edge_threshold}
    count = 0
    for cycle in enumerate_four_cycles(graph):
        a, b, c, d = cycle
        edges = [canonical_edge(*e) for e in ((a, b), (b, c), (c, d), (d, a))]
        wedges = wedges_of_four_cycle(cycle)
        qualifying = False
        for e in edges:
            if e not in heavy:
                continue
            avoiding = [w for w in wedges if e not in w.edges]
            if all(wedge_loads.get(w, 0) >= wedge_threshold for w in avoiding):
                qualifying = True
                break
        if qualifying:
            count += 1
    return count
