"""Structural analysis: heaviness, lightest-edge oracles, lemma checks."""

from repro.analysis.heaviness import (
    HeavinessReport,
    classify,
    cycle_edge_loads,
    cycle_wedge_loads,
    cycles_with_all_overused_wedges,
    cycles_with_at_most_one_heavy_edge,
    cycles_with_heavy_edge_and_opposite_wedges_overused,
)
from repro.analysis.lemmas import (
    LemmaCheck,
    check_lemma_3_2,
    check_lemma_4_2,
    check_lemma_a_1,
    check_lemma_a_2,
    check_lemma_a_3,
    check_max_triangles_bound,
    check_triangle_edge_bound,
    run_all_checks,
)
from repro.analysis.lightest_edge import (
    h_statistics,
    rho_assignment,
    te_counts,
    te_square_sum,
)
from repro.analysis.variance import (
    TrialProfile,
    compare_estimators,
    predicted_naive_relative_sd,
    profile_estimator,
)

__all__ = [
    "HeavinessReport",
    "classify",
    "cycle_edge_loads",
    "cycle_wedge_loads",
    "cycles_with_at_most_one_heavy_edge",
    "cycles_with_all_overused_wedges",
    "cycles_with_heavy_edge_and_opposite_wedges_overused",
    "LemmaCheck",
    "check_lemma_3_2",
    "check_lemma_4_2",
    "check_lemma_a_1",
    "check_lemma_a_2",
    "check_lemma_a_3",
    "check_triangle_edge_bound",
    "check_max_triangles_bound",
    "run_all_checks",
    "h_statistics",
    "rho_assignment",
    "te_counts",
    "te_square_sum",
    "TrialProfile",
    "profile_estimator",
    "compare_estimators",
    "predicted_naive_relative_sd",
]
