"""Estimator variance profiling — the Section 2.1 ablation.

The paper motivates the lightest-edge rule by the variance blow-up of
naive edge sampling on heavy edges.  This module runs any streaming
estimator many times over a graph (fresh sampler randomness, optionally
fresh stream orders) and summarises the error distribution, enabling the
head-to-head comparison in ``benchmarks/bench_ablation_heavy_edges.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.graph.graph import Graph
from repro.streaming.algorithm import StreamingAlgorithm
from repro.streaming.runner import run_algorithm
from repro.streaming.stream import AdjacencyListStream
from repro.util.rng import SeedLike, resolve_rng, spawn_rng
from repro.util.stats import ErrorSummary, summarize_errors

AlgorithmFactory = Callable[[SeedLike], StreamingAlgorithm]


@dataclass(frozen=True)
class TrialProfile:
    """Repeated-run accuracy and space profile of one estimator."""

    errors: ErrorSummary
    estimates: List[float]
    mean_peak_space_words: float

    @property
    def relative_stddev(self) -> float:
        """Standard deviation of estimates relative to the truth."""
        if self.errors.truth == 0:
            return float("inf") if self.errors.stddev_estimate else 0.0
        return self.errors.stddev_estimate / abs(self.errors.truth)


def profile_estimator(
    factory: AlgorithmFactory,
    graph: Graph,
    truth: float,
    runs: int = 30,
    seed: SeedLike = None,
    fixed_stream: Optional[AdjacencyListStream] = None,
) -> TrialProfile:
    """Run ``factory``-built estimators ``runs`` times and summarise.

    Each run uses a fresh algorithm seed; the stream order is fresh per
    run unless ``fixed_stream`` pins it (isolating sampler randomness).
    """
    if runs < 1:
        raise ValueError("need at least one run")
    rng = resolve_rng(seed)
    estimates: List[float] = []
    peaks: List[int] = []
    for i in range(runs):
        algorithm = factory(spawn_rng(rng, stream=2 * i))
        stream = fixed_stream or AdjacencyListStream(graph, seed=spawn_rng(rng, stream=2 * i + 1))
        result = run_algorithm(algorithm, stream)
        estimates.append(result.estimate)
        peaks.append(result.peak_space_words)
    return TrialProfile(
        errors=summarize_errors(estimates, truth),
        estimates=estimates,
        mean_peak_space_words=sum(peaks) / len(peaks),
    )


def compare_estimators(
    factories: dict,
    graph: Graph,
    truth: float,
    runs: int = 30,
    seed: SeedLike = None,
) -> dict:
    """Profile several estimators (name → factory) on the same workload."""
    rng = resolve_rng(seed)
    return {
        name: profile_estimator(factory, graph, truth, runs=runs, seed=spawn_rng(rng))
        for name, factory in factories.items()
    }


def predicted_naive_relative_sd(graph: Graph, sample_size: int) -> float:
    """First-order predicted relative spread of the naive estimator (§2.1).

    The naive estimator scales ``X = Σ_{e∈S} T(e)`` by ``m/(3·m')``; with
    inclusion probability ``p = m'/m`` and covariances neglected,

        ``Var(T̂) ≈ (1-p)/(9p) · Σ_e T(e)²``

    so the relative spread is ``√Var / T``.  The formula makes §2.1's
    point quantitative: the spread is driven by ``Σ T(e)²``, which heavy
    edges inflate to ``Θ(T²)``.  Returns ∞ for triangle-free inputs with
    a zero count (no meaningful relative error).
    """
    from repro.graph.counting import count_triangles, triangles_per_edge

    if sample_size < 1:
        raise ValueError("sample_size must be positive")
    t = count_triangles(graph)
    if t == 0:
        return 0.0
    p = min(1.0, sample_size / graph.m)
    if p >= 1.0:
        return 0.0
    load_square_sum = sum(load * load for load in triangles_per_edge(graph).values())
    variance_estimate = (1.0 - p) / (9.0 * p) * load_square_sum
    return variance_estimate**0.5 / t
