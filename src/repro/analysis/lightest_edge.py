"""Offline oracles for the lightest-edge machinery of Section 3.

Given a concrete stream ordering, these compute — by brute force over the
whole graph — the exact quantities the streaming algorithm estimates
incrementally:

* ``H_{e,τ}``: the number of triangles on edge ``e`` whose opposite vertex
  arrives (as an adjacency list) after ``τ``'s opposite vertex;
* ``ρ(τ)``: the edge of ``τ`` minimising ``H_{e,τ}`` (ties by edge key —
  the same rule the streaming implementation uses);
* ``T_e``: the number of triangles assigned to ``e`` by ρ.

They exist to cross-validate the streaming counters in tests and to drive
the Lemma 3.2 checks (``Σ_e T_e² = O(T^{4/3})``).
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Dict, List

from repro.core.triangle_two_pass import Triangle, apex, triangle_edges
from repro.graph.counting import enumerate_triangles
from repro.graph.graph import Edge, Graph
from repro.streaming.stream import AdjacencyListStream


def h_statistics(stream: AdjacencyListStream) -> Dict[Triangle, Dict[Edge, int]]:
    """Return ``H_{e,τ}`` for every triangle ``τ`` and every edge ``e ∈ τ``."""
    graph: Graph = stream.graph
    triangles = list(enumerate_triangles(graph))
    # Apex positions per edge, sorted, for O(log) rank queries.
    apex_positions: Dict[Edge, List[int]] = {}
    for tri in triangles:
        for e in triangle_edges(tri):
            apex_positions.setdefault(e, []).append(stream.position(apex(tri, e)))
    for positions in apex_positions.values():
        positions.sort()

    result: Dict[Triangle, Dict[Edge, int]] = {}
    for tri in triangles:
        per_edge: Dict[Edge, int] = {}
        for e in triangle_edges(tri):
            positions = apex_positions[e]
            my_pos = stream.position(apex(tri, e))
            per_edge[e] = len(positions) - bisect_right(positions, my_pos)
        result[tri] = per_edge
    return result


def rho_assignment(stream: AdjacencyListStream) -> Dict[Triangle, Edge]:
    """Return ``ρ(τ)`` for every triangle of the stream's graph."""
    assignment: Dict[Triangle, Edge] = {}
    for tri, per_edge in h_statistics(stream).items():
        assignment[tri] = min(per_edge.items(), key=lambda item: (item[1], item[0]))[0]
    return assignment


def te_counts(stream: AdjacencyListStream) -> Dict[Edge, int]:
    """Return ``T_e = |{τ : ρ(τ) = e}|`` for every edge with a positive count."""
    counts: Dict[Edge, int] = {}
    for edge in rho_assignment(stream).values():
        counts[edge] = counts.get(edge, 0) + 1
    return counts


def te_square_sum(stream: AdjacencyListStream) -> int:
    """Return ``Σ_e T_e²`` — the quantity Lemma 3.2 bounds by O(T^{4/3})."""
    return sum(c * c for c in te_counts(stream).values())
