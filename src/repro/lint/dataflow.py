"""Lightweight intra-module dataflow for flow-aware rules.

The v1 rules pattern-match raw AST nodes; the v2 families (ASY/VEC/SRV/
DET004) need a little more context: *which names are bound to what*,
*which local functions call which*, and *which repro modules a file
imports*.  This module computes exactly that — nothing inter-procedural
beyond one file, nothing type-inferred beyond constructor calls — and
caches one :class:`ModuleFlow` per :class:`FileContext` so several rules
can share the pass.

Three layers:

* **name bindings** — for every function, local names assigned from a
  resolvable constructor call (``p = Path(x)`` binds ``p`` to
  ``pathlib.Path``), with propagation through ``/``-joins of bound names
  (``tmp = directory / "f"`` stays a Path);
* **call-graph edges** — for every function, the module-level functions
  it calls by bare name, as ``(caller, callee, call node)`` edges;
* **import graph** — for a whole scanned tree, which ``repro.*`` modules
  each file imports (project-wide rules use it to scope cross-module
  contracts without false edges through re-exports).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.lint.rules.base import FileContext, build_import_map, qualified_name

#: Constructors whose result binding we track, qualified name -> tag.
_TRACKED_CONSTRUCTORS = {
    "pathlib.Path": "path",
    "pathlib.PurePath": "path",
    "pathlib.PosixPath": "path",
    "pathlib.WindowsPath": "path",
}

#: Calls that build a mutable container at module level.
_MUTABLE_BUILDERS = {
    "list",
    "dict",
    "set",
    "collections.deque",
    "collections.Counter",
    "collections.defaultdict",
    "collections.OrderedDict",
}


def _constructor_tag(node: ast.expr, imports: Dict[str, str]) -> Optional[str]:
    """The binding tag of an expression, or None when untracked."""
    if isinstance(node, ast.Call):
        qual = qualified_name(node.func, imports)
        if qual in _TRACKED_CONSTRUCTORS:
            return _TRACKED_CONSTRUCTORS[qual]
    return None


@dataclass
class FunctionFlow:
    """Per-function facts a flow-aware rule can query."""

    node: ast.AST  # the FunctionDef / AsyncFunctionDef
    qualname: str
    is_async: bool
    #: All parameter names, positional and keyword.
    params: Tuple[str, ...]
    #: Local name -> binding tag ("path", ...) from constructor assignments.
    bindings: Dict[str, str] = field(default_factory=dict)
    #: Bare module-level function names this function calls, with sites.
    local_calls: List[Tuple[str, ast.Call]] = field(default_factory=list)


def _is_mutable_literal(node: ast.expr, imports: Dict[str, str]) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        qual = qualified_name(node.func, imports)
        return qual in _MUTABLE_BUILDERS
    return False


class ModuleFlow:
    """One file's dataflow facts (see the module docstring)."""

    def __init__(self, ctx: FileContext) -> None:
        self.ctx = ctx
        self.imports = build_import_map(ctx.tree)
        #: Module-level function definitions by bare name.
        self.module_functions: Dict[str, ast.AST] = {}
        #: Module-level names bound to mutable containers -> first line.
        self.module_mutables: Dict[str, int] = {}
        #: Qualname -> per-function flow facts.
        self.functions: Dict[str, FunctionFlow] = {}
        self._function_by_node: Dict[int, FunctionFlow] = {}
        self._collect_module_level()
        self._collect_functions()

    # -- construction --------------------------------------------------------

    def _collect_module_level(self) -> None:
        for stmt in self.ctx.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.module_functions[stmt.name] = stmt
            elif isinstance(stmt, ast.Assign):
                if _is_mutable_literal(stmt.value, self.imports):
                    for target in stmt.targets:
                        if isinstance(target, ast.Name):
                            self.module_mutables.setdefault(target.id, stmt.lineno)
            elif isinstance(stmt, ast.AnnAssign):
                if stmt.value is not None and _is_mutable_literal(
                    stmt.value, self.imports
                ) and isinstance(stmt.target, ast.Name):
                    self.module_mutables.setdefault(stmt.target.id, stmt.lineno)

    def _collect_functions(self) -> None:
        def visit(node: ast.AST, scope: str) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qualname = f"{scope}.{child.name}" if scope else child.name
                    info = self._build_function(child, qualname)
                    self.functions[qualname] = info
                    self._function_by_node[id(child)] = info
                    visit(child, qualname)
                elif isinstance(child, ast.ClassDef):
                    visit(child, f"{scope}.{child.name}" if scope else child.name)
                else:
                    visit(child, scope)

        visit(self.ctx.tree, "")

    def _build_function(self, func: ast.AST, qualname: str) -> FunctionFlow:
        args = func.args  # type: ignore[attr-defined]
        params = tuple(
            a.arg
            for a in (
                list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
            )
        )
        info = FunctionFlow(
            node=func,
            qualname=qualname,
            is_async=isinstance(func, ast.AsyncFunctionDef),
            params=params,
        )
        # Name bindings: constructor assignments, then propagate through
        # `/`-joins so `tmp = directory / "x"` keeps the path tag.  Two
        # passes over the (rare) binop assignments cover chains built in
        # either source order without full fixpoint iteration.
        own = self._own_statements(func)
        for _ in range(2):
            for node in own:
                if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                    continue
                target = node.targets[0]
                if not isinstance(target, ast.Name):
                    continue
                tag = _constructor_tag(node.value, self.imports)
                if tag is None and isinstance(node.value, ast.BinOp) and isinstance(
                    node.value.op, ast.Div
                ):
                    left = node.value.left
                    if isinstance(left, ast.Name):
                        tag = info.bindings.get(left.id)
                if tag is not None:
                    info.bindings[target.id] = tag
        for node in own:
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
                name = node.func.id
                if name in self.module_functions:
                    info.local_calls.append((name, node))
        return info

    @staticmethod
    def _own_statements(func: ast.AST) -> List[ast.AST]:
        """All nodes of ``func`` excluding nested function/class bodies."""
        out: List[ast.AST] = []

        def walk(node: ast.AST) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(
                    child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                ):
                    continue
                out.append(child)
                walk(child)

        walk(func)
        return out

    # -- queries -------------------------------------------------------------

    def function_at(self, func_node: ast.AST) -> Optional[FunctionFlow]:
        return self._function_by_node.get(id(func_node))

    def own_nodes(self, func_node: ast.AST) -> List[ast.AST]:
        """Nodes belonging to ``func_node`` itself (nested defs excluded)."""
        return self._own_statements(func_node)

    def binding_of(self, func_node: ast.AST, name: str) -> Optional[str]:
        info = self.function_at(func_node)
        if info is None:
            return None
        return info.bindings.get(name)


def module_flow(ctx: FileContext) -> ModuleFlow:
    """The (cached) :class:`ModuleFlow` of one parsed file."""
    cached = getattr(ctx, "_module_flow", None)
    if cached is None:
        cached = ModuleFlow(ctx)
        ctx._module_flow = cached  # type: ignore[attr-defined]
    return cached


def _file_module_name(ctx: FileContext) -> str:
    """Dotted module name of a scanned file, anchored at ``src`` when present."""
    parts = list(ctx.parts)
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if "src" in parts:
        anchor = len(parts) - 1 - parts[::-1].index("src")
        parts = parts[anchor + 1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def build_import_graph(files: Sequence[FileContext]) -> Dict[str, Set[str]]:
    """Module name -> set of ``repro.*`` modules it imports.

    Edges are resolved from both ``import repro.x.y`` and
    ``from repro.x import y`` forms; relative imports are resolved against
    the importing file's own package.  Only in-tree (``repro.``-prefixed)
    targets appear — the graph exists so project-wide rules can ask "who
    depends on this contract module" without scanning external imports.
    """
    graph: Dict[str, Set[str]] = {}
    for ctx in files:
        module = _file_module_name(ctx)
        edges: Set[str] = set()
        package_parts = module.split(".")[:-1]
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.startswith("repro"):
                        edges.add(alias.name)
            elif isinstance(node, ast.ImportFrom):
                if node.level:
                    base = package_parts[: len(package_parts) - (node.level - 1)]
                    target = ".".join(base + ([node.module] if node.module else []))
                elif node.module is not None:
                    target = node.module
                else:
                    continue
                if target.startswith("repro"):
                    edges.add(target)
        graph[module] = edges
    return graph


def find_file(
    files: Sequence[FileContext], suffix: str
) -> Optional[FileContext]:
    """The scanned file whose path ends with ``suffix`` (posix components)."""
    for ctx in files:
        if ctx.endswith(suffix):
            return ctx
    return None
