"""The ``repro-lint`` command line.

Usage::

    repro-lint src/repro                       # text report, exit 1 on findings
    repro-lint --format=json -o report.json src/repro
    repro-lint --format=github src/repro       # PR annotations in CI
    repro-lint --write-baseline src/repro      # grandfather current findings
    repro-lint --fix src/repro                 # apply the safe auto-rewrites
    repro-lint --list-rules

Also reachable as ``python -m repro.lint`` and ``repro-cycles lint``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.lint.baseline import Baseline
from repro.lint.engine import run_lint
from repro.lint.formats import FORMATTERS
from repro.lint.rules import ALL_RULE_CLASSES, Rule, build_rules
from repro.lint.violations import CODE_SUMMARIES

#: Default committed baseline, relative to the working directory.
DEFAULT_BASELINE = ".repro-lint-baseline.json"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "Static analysis for this repo's determinism and sketch-state "
            "contracts (rule catalogue: docs/LINTING.md)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=sorted(FORMATTERS),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "-o",
        "--output",
        metavar="PATH",
        default=None,
        help="also write the rendered report to PATH",
    )
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        default=None,
        help=f"baseline file (default: {DEFAULT_BASELINE} if it exists)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline; report and fail on every violation",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write current violations to the baseline file and exit 0",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        default=None,
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        metavar="CODES",
        default=None,
        help="comma-separated rule codes to skip",
    )
    parser.add_argument(
        "--fix",
        action="store_true",
        help=(
            "apply the safe mechanical rewrites in place (rule-attached "
            "fixes, pragma normalization, registry ordering), then re-lint"
        ),
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "--version",
        action="version",
        version=f"%(prog)s {_package_version()}",
        help="print the repro package version and exit",
    )
    return parser


def _package_version() -> str:
    from repro import __version__

    return __version__


def _split_codes(raw: Optional[str]) -> Optional[List[str]]:
    if raw is None:
        return None
    return [c.strip() for c in raw.split(",") if c.strip()]


def _run_fix(paths: List[str], rules: List[Rule]) -> None:
    """Apply the safe rewrites in place; the caller re-lints afterwards.

    The fix pass deliberately ignores the baseline — a grandfathered
    violation with a known mechanical fix is exactly the one worth
    burning down.
    """
    from repro.lint.engine import discover_files
    from repro.lint.fixer import fix_paths

    report = run_lint(paths, rules=rules, baseline=None)
    sources = {
        path.as_posix(): path.read_text(encoding="utf-8")
        for path in discover_files(paths)
    }
    for result in fix_paths(sources, report.violations):
        Path(result.path).write_text(result.new_source, encoding="utf-8")
        for description in result.applied:
            print(f"fixed {result.path}: {description}")


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.list_rules:
        for cls in ALL_RULE_CLASSES:
            print(f"{cls.code}  {cls.summary}")
        for code in ("LNT001", "LNT002"):
            print(f"{code}  {CODE_SUMMARIES[code]} (engine-emitted)")
        return 0

    try:
        rules = build_rules(_split_codes(args.select), _split_codes(args.ignore))
    except ValueError as exc:
        print(f"repro-lint: {exc}", file=sys.stderr)
        return 2

    baseline_path = Path(args.baseline) if args.baseline else Path(DEFAULT_BASELINE)
    baseline = None
    if not args.no_baseline and not args.write_baseline and baseline_path.exists():
        try:
            baseline = Baseline.load(baseline_path)
        except ValueError as exc:
            print(f"repro-lint: {exc}", file=sys.stderr)
            return 2

    if args.fix:
        try:
            _run_fix(args.paths, rules)
        except FileNotFoundError as exc:
            print(f"repro-lint: {exc}", file=sys.stderr)
            return 2

    try:
        report = run_lint(args.paths, rules=rules, baseline=baseline)
    except FileNotFoundError as exc:
        print(f"repro-lint: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline:
        Baseline.from_violations(report.violations).save(baseline_path)
        print(
            f"wrote {len(report.violations)} fingerprint(s) to {baseline_path}"
        )
        return 0

    rendered = FORMATTERS[args.format](report)
    if rendered:
        print(rendered)
    if args.output:
        Path(args.output).write_text(rendered + "\n", encoding="utf-8")
    return report.exit_code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
