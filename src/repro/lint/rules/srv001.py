"""SRV001 — serve error codes and the protocol's stable table must agree.

Clients program against the error-code table in
:mod:`repro.serve.protocol` (``ERROR_CODES``): retry policies key on
``BACKPRESSURE``/``SHUTTING_DOWN``, test harnesses assert exact codes,
and the wire format promises the set is stable.  The table is only
trustworthy while it is *complete* (every code a server can raise is in
it) and *live* (every code in it can actually be raised).  This rule
pins both directions statically.

Checks, anchored in ``serve/protocol.py`` when it is in the scanned set:

* every module-level code constant (an uppercase ``NAME = "NAME"``
  string assignment whose value equals its own name — the registry's
  self-naming convention) must appear in the ``ERROR_CODES`` tuple;
* every ``ERROR_CODES`` entry must be such a constant (no strays);
* every ``ServeError(code, ...)`` raised anywhere under ``repro/serve``
  must pass a registered constant — a string literal bypasses the table
  (typos ship silently), an unknown name is not part of the contract;
* a registered code never referenced outside the protocol module is
  dead contract surface and is reported at its definition.

Codes reserved for forward compatibility would carry a justified
suppression on their definition line.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.rules.base import FileContext, Rule, enclosing_symbols
from repro.lint.violations import Violation

_PROTOCOL_SUFFIX = "serve/protocol.py"
_TABLE_NAME = "ERROR_CODES"
_ERROR_CLASS = "ServeError"


def _code_constants(tree: ast.Module) -> Dict[str, ast.Assign]:
    """Self-named string constants: ``BAD_REQUEST = "BAD_REQUEST"``."""
    out: Dict[str, ast.Assign] = {}
    for node in tree.body:
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            continue
        target = node.targets[0]
        if not isinstance(target, ast.Name) or not target.id.isupper():
            continue
        value = node.value
        if (
            isinstance(value, ast.Constant)
            and isinstance(value.value, str)
            and value.value == target.id
        ):
            out[target.id] = node
    return out


def _table_entries(tree: ast.Module) -> Optional[Tuple[ast.Assign, List[ast.expr]]]:
    for node in tree.body:
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            continue
        target = node.targets[0]
        if isinstance(target, ast.Name) and target.id == _TABLE_NAME:
            if isinstance(node.value, (ast.Tuple, ast.List)):
                return node, list(node.value.elts)
            return node, []
    return None


def _first_arg_code(call: ast.Call) -> Optional[ast.expr]:
    if call.args:
        return call.args[0]
    for kw in call.keywords:
        if kw.arg == "code":
            return kw.value
    return None


class Srv001ErrorCodeTable(Rule):
    code = "SRV001"
    summary = "serve error code missing from the protocol's stable table"
    project_wide = True

    def check_project(self, files: List[FileContext]) -> Iterator[Violation]:
        from repro.lint.dataflow import find_file

        protocol = find_file(files, _PROTOCOL_SUFFIX)
        if protocol is None:
            return
        constants = _code_constants(protocol.tree)
        table = _table_entries(protocol.tree)
        if table is None:
            yield Violation(
                code=self.code,
                path=protocol.path,
                line=1,
                col=0,
                message=(
                    f"serve/protocol.py defines no {_TABLE_NAME} table; the "
                    "stable error-code contract has nothing to check against"
                ),
                symbol=_TABLE_NAME,
            )
            return
        table_assign, entries = table

        tabled: Set[str] = set()
        for entry in entries:
            if isinstance(entry, ast.Name):
                tabled.add(entry.id)
                if entry.id not in constants:
                    yield Violation(
                        code=self.code,
                        path=protocol.path,
                        line=table_assign.lineno,
                        col=table_assign.col_offset,
                        message=(
                            f"{_TABLE_NAME} lists {entry.id!r} but no "
                            "self-named code constant of that name exists"
                        ),
                        symbol=_TABLE_NAME,
                    )
            elif isinstance(entry, ast.Constant) and isinstance(entry.value, str):
                tabled.add(entry.value)
                yield Violation(
                    code=self.code,
                    path=protocol.path,
                    line=table_assign.lineno,
                    col=table_assign.col_offset,
                    message=(
                        f"{_TABLE_NAME} lists the literal {entry.value!r}; "
                        "table entries must reference the named constants so "
                        "raisers and table cannot drift"
                    ),
                    symbol=_TABLE_NAME,
                )

        for name, assign in constants.items():
            if name not in tabled:
                yield Violation(
                    code=self.code,
                    path=protocol.path,
                    line=assign.lineno,
                    col=assign.col_offset,
                    message=(
                        f"error code {name!r} is not listed in {_TABLE_NAME}; "
                        "clients keying retry policy on the table will never "
                        "see it"
                    ),
                    symbol=name,
                )

        referenced: Set[str] = set()
        for ctx in files:
            if not ctx.in_dirs("serve") or ctx is protocol:
                continue
            symbols = enclosing_symbols(ctx.tree)
            for node in ast.walk(ctx.tree):
                if isinstance(node, ast.Name) and node.id in constants:
                    referenced.add(node.id)
                elif isinstance(node, ast.Attribute) and node.attr in constants:
                    referenced.add(node.attr)
                if not isinstance(node, ast.Call):
                    continue
                callee = node.func
                callee_name = (
                    callee.id
                    if isinstance(callee, ast.Name)
                    else callee.attr if isinstance(callee, ast.Attribute) else None
                )
                if callee_name != _ERROR_CLASS:
                    continue
                arg = _first_arg_code(node)
                if arg is None:
                    continue
                yield from self._check_raise_site(
                    ctx, node, arg, constants, symbols
                )
        for name, assign in constants.items():
            if name not in referenced:
                yield Violation(
                    code=self.code,
                    path=protocol.path,
                    line=assign.lineno,
                    col=assign.col_offset,
                    message=(
                        f"error code {name!r} is registered but never "
                        "referenced anywhere under repro/serve; dead contract "
                        "surface — wire it up or retire it"
                    ),
                    symbol=name,
                )

    def _check_raise_site(
        self,
        ctx: FileContext,
        call: ast.Call,
        arg: ast.expr,
        constants: Dict[str, ast.Assign],
        symbols: Dict[int, str],
    ) -> Iterator[Violation]:
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            known = " (a registered code, but as a literal)" if arg.value in constants else ""
            yield self.violation(
                ctx,
                call,
                f"ServeError raised with string literal {arg.value!r}{known}; "
                "pass the named constant from repro.serve.protocol so the "
                "stable table check can see it",
                symbol=symbols.get(id(call), ""),
            )
            return
        name = None
        if isinstance(arg, ast.Name):
            name = arg.id
        elif isinstance(arg, ast.Attribute):
            name = arg.attr
        if name is not None and name.isupper() and name not in constants:
            yield self.violation(
                ctx,
                call,
                f"ServeError raised with {name!r}, which is not a code "
                "registered in the protocol's ERROR_CODES table",
                symbol=symbols.get(id(call), ""),
            )
