"""ASY001 — no blocking calls inside ``async def`` in ``repro/serve``.

The serve subsystem multiplexes thousands of sessions on one event loop;
a single synchronous ``time.sleep``, file read/write, socket call or
subprocess inside a coroutine stalls *every* session at once — feeds
queue behind it, poll latencies spike past their benchmark gates, and the
graceful-shutdown path can miss its cancellation window.  Blocking work
belongs either in a plain helper dispatched via ``asyncio.to_thread`` /
``run_in_executor`` or outside the async layer entirely.

Flagged inside the body of an ``async def`` (nested synchronous ``def``
bodies are excluded — they are not awaited code):

* ``time.sleep`` (use ``asyncio.sleep``), ``subprocess.run/call/
  check_call/check_output/Popen``, ``os.system``, ``socket.socket/
  create_connection``, ``urllib.request.urlopen``, ``requests.*`` calls;
* the builtin ``open(...)`` and the path I/O method family
  ``read_text/read_bytes/write_text/write_bytes`` on any receiver;
* any method of the blocking set ``mkdir/rmdir/unlink/touch/rename/
  replace/exists/glob/iterdir/open`` on a receiver the dataflow layer
  resolved to a ``pathlib.Path`` binding (``p = Path(x)``, including
  ``child = p / "name"`` joins).

The escape hatch for deliberate blocking (rare, e.g. a tiny config read
at startup) is the usual justified suppression.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.lint.rules.base import (
    FileContext,
    Rule,
    build_import_map,
    enclosing_symbols,
    qualified_name,
)
from repro.lint.violations import Violation

#: Qualified calls that always block (resolved through the import map).
_BANNED_QUALS = {
    "time.sleep",
    "subprocess.run",
    "subprocess.call",
    "subprocess.check_call",
    "subprocess.check_output",
    "subprocess.Popen",
    "os.system",
    "os.popen",
    "socket.socket",
    "socket.create_connection",
    "urllib.request.urlopen",
}

#: Method names that are path I/O wherever they appear (the names are
#: distinctive enough that any receiver is effectively a Path).
_BANNED_METHODS_ANY_RECEIVER = {
    "read_text",
    "read_bytes",
    "write_text",
    "write_bytes",
}

#: Additional blocking methods, flagged only on receivers the dataflow
#: layer has resolved to a Path binding (too generic otherwise).
_BANNED_METHODS_PATH_RECEIVER = {
    "mkdir",
    "rmdir",
    "unlink",
    "touch",
    "rename",
    "replace",
    "exists",
    "glob",
    "iterdir",
    "open",
    "stat",
}

_HINTS = {
    "time.sleep": "use await asyncio.sleep(...) instead",
}
_DEFAULT_HINT = (
    "dispatch it off the loop with await asyncio.to_thread(...) or move it "
    "out of the async layer"
)


def _requests_call(qual: str) -> bool:
    return qual == "requests" or qual.startswith("requests.")


class Asy001BlockingCall(Rule):
    code = "ASY001"
    summary = "blocking call inside an async def in repro/serve"

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if not ctx.in_dirs("serve"):
            return
        from repro.lint.dataflow import module_flow

        flow = module_flow(ctx)
        imports = build_import_map(ctx.tree)
        symbols = enclosing_symbols(ctx.tree)
        for func in ast.walk(ctx.tree):
            if not isinstance(func, ast.AsyncFunctionDef):
                continue
            for node in flow.own_nodes(func):
                if not isinstance(node, ast.Call):
                    continue
                reason = self._blocking_reason(node, imports, flow, func)
                if reason is None:
                    continue
                what, hint = reason
                yield self.violation(
                    ctx,
                    node,
                    f"{what} blocks the event loop inside async def "
                    f"{func.name!r}; {hint}",
                    symbol=symbols.get(id(node), ""),
                )

    def _blocking_reason(
        self,
        node: ast.Call,
        imports: dict,
        flow: object,
        func: ast.AST,
    ) -> Optional[tuple]:
        callee = node.func
        if isinstance(callee, ast.Name):
            if callee.id == "open" and callee.id not in imports:
                return ("builtin open()", _DEFAULT_HINT)
            qual = qualified_name(callee, imports)
            if qual is not None:
                if qual in _BANNED_QUALS:
                    return (f"call to {qual}()", _HINTS.get(qual, _DEFAULT_HINT))
                if _requests_call(qual):
                    return (f"call to {qual}()", _DEFAULT_HINT)
            return None
        if isinstance(callee, ast.Attribute):
            qual = qualified_name(callee, imports)
            if qual is not None:
                if qual in _BANNED_QUALS:
                    return (f"call to {qual}()", _HINTS.get(qual, _DEFAULT_HINT))
                if _requests_call(qual):
                    return (f"call to {qual}()", _DEFAULT_HINT)
            method = callee.attr
            if method in _BANNED_METHODS_ANY_RECEIVER:
                return (f"path I/O .{method}()", _DEFAULT_HINT)
            if method in _BANNED_METHODS_PATH_RECEIVER and isinstance(
                callee.value, ast.Name
            ):
                binding = flow.binding_of(func, callee.value.id)  # type: ignore[attr-defined]
                if binding == "path":
                    return (
                        f"Path.{method}() on {callee.value.id!r}",
                        _DEFAULT_HINT,
                    )
        return None
