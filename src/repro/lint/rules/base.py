"""Rule plumbing: the rule interface and shared AST utilities.

A rule is a small class with a ``code``, a ``summary``, and a ``check``
method yielding :class:`~repro.lint.violations.Violation` records.  Most
rules are *per-file* (``check`` sees one parsed module); rules that need
the whole tree (SKT002's registry cross-check) set ``project_wide`` and
implement ``check_project`` over every parsed file at once.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence

from repro.lint.violations import Fix, Violation


@dataclass
class FileContext:
    """One parsed source file as the rules see it."""

    path: str  # posix-style, as discovered
    source: str
    tree: ast.Module
    #: Path split into parts, for cheap "is this under core/?" checks.
    parts: Sequence[str] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.parts:
            self.parts = tuple(p for p in self.path.replace("\\", "/").split("/") if p)

    def in_dirs(self, *names: str) -> bool:
        """Whether any path component matches one of ``names``."""
        return any(part in names for part in self.parts)

    def endswith(self, suffix: str) -> bool:
        """Posix suffix match, component-aligned (``util/rng.py``)."""
        want = tuple(suffix.split("/"))
        return tuple(self.parts[-len(want):]) == want


class Rule:
    """Base class for all lint rules."""

    code: str = ""
    summary: str = ""
    project_wide: bool = False

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        """Yield violations for one file (per-file rules)."""
        return iter(())

    def check_project(self, files: List[FileContext]) -> Iterator[Violation]:
        """Yield violations needing the whole tree (project-wide rules)."""
        return iter(())

    # -- helpers shared by concrete rules -----------------------------------

    def violation(
        self,
        ctx: FileContext,
        node: ast.AST,
        message: str,
        symbol: str = "",
        fix: Optional[Fix] = None,
    ) -> Violation:
        return Violation(
            code=self.code,
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
            symbol=symbol,
            fix=fix,
        )


def build_import_map(tree: ast.Module) -> Dict[str, str]:
    """Map local names to the fully qualified module/object they denote.

    ``import random`` → ``{"random": "random"}``;
    ``import numpy as np`` → ``{"np": "numpy"}``;
    ``from numpy import random as nr`` → ``{"nr": "numpy.random"}``;
    ``from random import randrange`` → ``{"randrange": "random.randrange"}``.
    Only top-level and function/class-nested plain imports are recorded —
    enough for the determinism rules, which care about stdlib modules.
    """
    mapping: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    mapping[alias.asname] = alias.name
                else:
                    # ``import numpy.random`` binds the root name ``numpy``.
                    root = alias.name.split(".")[0]
                    mapping[root] = root
        elif isinstance(node, ast.ImportFrom):
            if node.level or node.module is None:
                continue  # relative imports never reach the stdlib targets
            for alias in node.names:
                mapping[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return mapping


def qualified_name(node: ast.expr, imports: Dict[str, str]) -> Optional[str]:
    """Resolve a Name/Attribute chain to a dotted qualified name.

    ``np.random.default_rng`` with ``{"np": "numpy"}`` resolves to
    ``numpy.random.default_rng``; unresolvable shapes return ``None``.
    """
    chain: List[str] = []
    cur = node
    while isinstance(cur, ast.Attribute):
        chain.append(cur.attr)
        cur = cur.value
    if not isinstance(cur, ast.Name):
        return None
    root = imports.get(cur.id)
    if root is None:
        return None
    chain.append(root)
    return ".".join(reversed(chain))


def enclosing_symbols(tree: ast.Module) -> Dict[int, str]:
    """Map every node id to its enclosing ``Class.method`` symbol string."""
    symbols: Dict[int, str] = {}

    def visit(node: ast.AST, scope: str) -> None:
        for child in ast.iter_child_nodes(node):
            child_scope = scope
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                child_scope = f"{scope}.{child.name}" if scope else child.name
            symbols[id(child)] = child_scope
            visit(child, child_scope)

    visit(tree, "")
    return symbols


def self_attr_target(node: ast.expr) -> Optional[str]:
    """Return ``X`` when ``node`` is the expression ``self.X``, else None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def assigned_self_attrs(func: ast.FunctionDef) -> Dict[str, int]:
    """Attributes assigned as ``self.X = ...`` in ``func`` → first line."""
    attrs: Dict[str, int] = {}

    def record(target: ast.expr, line: int) -> None:
        name = self_attr_target(target)
        if name is not None:
            attrs.setdefault(name, line)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                record(element, line)

    for node in ast.walk(func):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                record(target, node.lineno)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            record(node.target, node.lineno)
    return attrs
