"""DET001 — all randomness must thread through ``repro.util.rng``.

Any *call* into the stdlib ``random`` module (``random.random()``,
``random.randrange(...)``, bare ``random.Random(...)`` construction) or
into ``numpy.random`` outside ``util/rng.py`` bypasses the library's
seed-threading convention and silently breaks serial==parallel trial
identity, shard invariance, and checkpoint/resume replay.  Construct
generators with ``resolve_rng`` and derive children with ``spawn_rng`` /
``spawn_seed`` instead.

References to ``random.Random`` that are not calls (type annotations,
``isinstance`` checks) are fine and not flagged.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.rules.base import (
    FileContext,
    Rule,
    build_import_map,
    enclosing_symbols,
    qualified_name,
)
from repro.lint.violations import Violation

#: Files where direct stdlib-random use is the point.
_ALLOWED_FILES = ("util/rng.py",)


def _is_random_call(qual: str) -> bool:
    if qual == "random" or qual.startswith("random."):
        return True
    if qual.startswith("numpy.random.") or qual == "numpy.random":
        return True
    return False


class Det001RawRandomness(Rule):
    code = "DET001"
    summary = "call into random/numpy.random bypasses resolve_rng/spawn_rng"

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if any(ctx.endswith(allowed) for allowed in _ALLOWED_FILES):
            return
        imports = build_import_map(ctx.tree)
        if not any(
            target == "random" or target.startswith(("random.", "numpy"))
            for target in imports.values()
        ):
            return
        symbols = enclosing_symbols(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            qual = qualified_name(node.func, imports)
            if qual is None or not _is_random_call(qual):
                continue
            yield self.violation(
                ctx,
                node,
                f"call to {qual}() bypasses repro.util.rng; thread randomness "
                "through resolve_rng/spawn_rng so runs stay replayable",
                symbol=symbols.get(id(node), ""),
            )
