"""VEC001 — every public columnar kernel must have scalar-parity coverage.

The columnar layer (:mod:`repro.util.vectorized`) is *pure acceleration*:
Theorems 3.7/4.6 are proved for the scalar samplers, so the columnar
path inherits their guarantees only while it is bit-identical to the
scalar oracle.  That contract is enforced dynamically by the parity
tests in ``tests/util/test_vectorized.py`` — but only for kernels those
tests actually touch.  A kernel added to the module's ``__all__`` without
a registered parity test is exactly the hole this rule closes: it ships
on the hot path with no oracle pinning it.

Checks, all anchored in ``util/vectorized.py`` when it is in the scanned
set:

* the module must declare ``__all__`` (the public-kernel registry);
* every ``__all__`` entry must resolve to a module-level definition
  (stale exports break ``from ... import *`` consumers);
* every public module-level function/class must appear in ``__all__``
  (kernels must opt into the registry, not hide beside it);
* the scalar-oracle switch trio (``scalar_oracle``,
  ``set_columnar_enabled``, ``columnar_enabled``) must be exported —
  without it the equivalence tests cannot force the scalar path;
* every ``__all__`` entry must be referenced by the registered parity
  test file ``tests/util/test_vectorized.py`` (located by walking up
  from the module to the enclosing repo root).  An unexercised kernel is
  reported at the ``__all__`` assignment.

A kernel that is genuinely untestable in isolation (none currently)
would carry a justified suppression on the ``__all__`` line.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterator, List, Optional, Set, Tuple

from repro.lint.rules.base import FileContext, Rule
from repro.lint.violations import Violation

_MODULE_SUFFIX = "util/vectorized.py"
_PARITY_TEST = ("tests", "util", "test_vectorized.py")
_ORACLE_SWITCH = ("scalar_oracle", "set_columnar_enabled", "columnar_enabled")


def _extract_all(tree: ast.Module) -> Optional[Tuple[ast.Assign, List[str]]]:
    for node in tree.body:
        if not isinstance(node, ast.Assign):
            continue
        if not any(
            isinstance(t, ast.Name) and t.id == "__all__" for t in node.targets
        ):
            continue
        names: List[str] = []
        if isinstance(node.value, (ast.List, ast.Tuple)):
            for elt in node.value.elts:
                if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
                    names.append(elt.value)
        return node, names
    return None


def _module_definitions(tree: ast.Module) -> Set[str]:
    """Names defined (or bound) at module top level."""
    defined: Set[str] = set()
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            defined.add(node.name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    defined.add(target.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            defined.add(node.target.id)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                defined.add(alias.asname or alias.name.split(".")[0])
    return defined


def _public_definitions(tree: ast.Module) -> List[Tuple[str, ast.AST]]:
    out: List[Tuple[str, ast.AST]] = []
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            if not node.name.startswith("_"):
                out.append((node.name, node))
    return out


def _find_parity_test(module_path: str) -> Optional[Path]:
    """Walk up from the module file to the repo root holding ``tests/``."""
    here = Path(module_path).resolve()
    for parent in here.parents:
        candidate = parent.joinpath(*_PARITY_TEST)
        if candidate.is_file():
            return candidate
    return None


def _referenced_names(tree: ast.Module) -> Set[str]:
    """Every identifier a test file mentions, as Name or attribute access."""
    names: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Name):
            names.add(node.id)
        elif isinstance(node, ast.Attribute):
            names.add(node.attr)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                names.add(alias.name.split(".")[-1])
    return names


class Vec001ColumnarParity(Rule):
    code = "VEC001"
    summary = "columnar kernel without scalar-oracle parity coverage"
    project_wide = True

    def check_project(self, files: List[FileContext]) -> Iterator[Violation]:
        from repro.lint.dataflow import find_file

        module = find_file(files, _MODULE_SUFFIX)
        if module is None:
            return
        extracted = _extract_all(module.tree)
        if extracted is None:
            yield Violation(
                code=self.code,
                path=module.path,
                line=1,
                col=0,
                message=(
                    "util/vectorized.py declares no __all__; the public-kernel "
                    "registry is what the parity contract is checked against"
                ),
                symbol="__all__",
            )
            return
        assign, exported = extracted
        defined = _module_definitions(module.tree)

        for name in exported:
            if name not in defined:
                yield Violation(
                    code=self.code,
                    path=module.path,
                    line=assign.lineno,
                    col=assign.col_offset,
                    message=(
                        f"__all__ exports {name!r} but the module defines no "
                        "such name (stale export)"
                    ),
                    symbol="__all__",
                )

        exported_set = set(exported)
        for name, node in _public_definitions(module.tree):
            if name not in exported_set:
                yield Violation(
                    code=self.code,
                    path=module.path,
                    line=node.lineno,
                    col=node.col_offset,
                    message=(
                        f"public kernel {name!r} is not in __all__; every "
                        "public kernel must register for parity coverage "
                        "(or be made private)"
                    ),
                    symbol=name,
                )

        for name in _ORACLE_SWITCH:
            if name not in exported_set:
                yield Violation(
                    code=self.code,
                    path=module.path,
                    line=assign.lineno,
                    col=assign.col_offset,
                    message=(
                        f"__all__ must export the scalar-oracle switch "
                        f"{name!r}; without it equivalence tests cannot force "
                        "the scalar path"
                    ),
                    symbol="__all__",
                )

        parity_path = _find_parity_test(module.path)
        if parity_path is None:
            yield Violation(
                code=self.code,
                path=module.path,
                line=assign.lineno,
                col=assign.col_offset,
                message=(
                    "registered parity test tests/util/test_vectorized.py not "
                    "found above util/vectorized.py; the columnar layer has "
                    "no scalar-oracle coverage at all"
                ),
                symbol="__all__",
            )
            return
        try:
            parity_tree = ast.parse(
                parity_path.read_text(encoding="utf-8"), filename=str(parity_path)
            )
        except SyntaxError:
            yield Violation(
                code=self.code,
                path=module.path,
                line=assign.lineno,
                col=assign.col_offset,
                message=f"parity test file {parity_path} does not parse",
                symbol="__all__",
            )
            return
        referenced = _referenced_names(parity_tree)
        for name in exported:
            if name in defined and name not in referenced:
                yield Violation(
                    code=self.code,
                    path=module.path,
                    line=assign.lineno,
                    col=assign.col_offset,
                    message=(
                        f"public kernel {name!r} is never exercised by the "
                        "registered parity test tests/util/test_vectorized.py; "
                        "add a scalar-oracle parity test before shipping it on "
                        "the hot path"
                    ),
                    symbol=name,
                )
