"""SKT002 — the persistence registry must actually round-trip.

``experiments/persistence.py`` serialises result records by type name and
reconstructs them with ``cls(**data)`` after a JSON round trip.  Three
ways that silently breaks, each flagged here:

* a name registered in ``RECORD_TYPES`` that no dataclass in the tree
  defines (stale registration — loading such a file raises);
* a record-shaped dataclass (name ending ``Row``/``Result``/``Record``/
  ``Point``) under ``experiments/`` or ``sketch/`` that is *not*
  registered — saving it raises ``TypeError`` the first time someone
  tries, long after the experiment ran;
* a registered dataclass with a field whose annotation cannot survive
  JSON (``tuple``/``set``/``frozenset`` decay to lists, an unregistered
  nested dataclass loads back as a bare dict) — the loaded record would
  compare unequal to the saved one.

A record type that is intentionally in-memory-only (e.g. it carries a
``SketchState``) opts out with a justified
``# repro-lint: disable=SKT002`` on its class line.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Tuple

from repro.lint.rules.base import FileContext, Rule, build_import_map
from repro.lint.violations import Violation

_RECORD_SUFFIXES = ("Row", "Result", "Record", "Point")
_RECORD_DIRS = ("experiments", "sketch")
_JSON_UNSAFE = ("tuple", "Tuple", "set", "Set", "frozenset", "FrozenSet")


def _is_dataclass_def(node: ast.ClassDef) -> bool:
    for deco in node.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        if isinstance(target, ast.Attribute) and target.attr == "dataclass":
            return True
        if isinstance(target, ast.Name) and target.id == "dataclass":
            return True
    return False


def _registered_names(tree: ast.Module) -> Optional[Tuple[ast.AST, List[str], List[Tuple[str, str, ast.AST]]]]:
    """Extract the names registered in a ``RECORD_TYPES = ...`` assignment.

    Returns ``(assignment_node, names, mismatches)`` or ``None`` when the
    module has no such assignment.  Handles the canonical comprehension
    form ``{cls.__name__: cls for cls in (A, B, ...)}`` and literal dicts
    ``{"A": A}`` (where a key/value name mismatch is itself reported).
    """
    for node in ast.walk(tree):
        if not isinstance(node, ast.Assign):
            continue
        if not any(
            isinstance(t, ast.Name) and t.id == "RECORD_TYPES" for t in node.targets
        ):
            continue
        names: List[str] = []
        mismatches: List[Tuple[str, str, ast.AST]] = []
        value = node.value
        if isinstance(value, ast.DictComp):
            for gen in value.generators:
                if isinstance(gen.iter, (ast.Tuple, ast.List, ast.Set)):
                    names.extend(
                        elt.id for elt in gen.iter.elts if isinstance(elt, ast.Name)
                    )
        elif isinstance(value, ast.Dict):
            for key, val in zip(value.keys, value.values):
                if isinstance(key, ast.Constant) and isinstance(val, ast.Name):
                    names.append(val.id)
                    if key.value != val.id:
                        mismatches.append((str(key.value), val.id, key))
        return node, names, mismatches
    return None


def _module_name(ctx: FileContext) -> str:
    """Best-effort dotted module name of a scanned file.

    Anchored at the deepest ``src`` directory when present, else the whole
    relative path: ``src/repro/sketch/driver.py`` → ``repro.sketch.driver``.
    """
    parts = list(ctx.parts)
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if "src" in parts:
        anchor = len(parts) - 1 - parts[::-1].index("src")
        parts = parts[anchor + 1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def _annotation_names(annotation: ast.expr) -> Iterator[str]:
    """Yield every bare identifier appearing in an annotation expression."""
    for node in ast.walk(annotation):
        if isinstance(node, ast.Name):
            yield node.id
        elif isinstance(node, ast.Attribute):
            yield node.attr


class Skt002PersistenceRegistry(Rule):
    code = "SKT002"
    summary = "persistence RECORD_TYPES and record dataclasses disagree"
    project_wide = True

    def check_project(self, files: List[FileContext]) -> Iterator[Violation]:
        persistence = next(
            (f for f in files if f.endswith("experiments/persistence.py")), None
        )
        # All dataclasses in the scanned tree, name -> (ctx, node).
        dataclasses: Dict[str, Tuple[FileContext, ast.ClassDef]] = {}
        for ctx in files:
            for node in ast.walk(ctx.tree):
                if isinstance(node, ast.ClassDef) and _is_dataclass_def(node):
                    dataclasses.setdefault(node.name, (ctx, node))
        if persistence is None:
            return
        extracted = _registered_names(persistence.tree)
        if extracted is None:
            return
        assign, registered, mismatches = extracted
        for key, value_name, key_node in mismatches:
            yield Violation(
                code=self.code,
                path=persistence.path,
                line=getattr(key_node, "lineno", assign.lineno),
                col=getattr(key_node, "col_offset", 0),
                message=(
                    f"RECORD_TYPES registers {value_name} under key {key!r}; "
                    "round-tripping requires the key to equal the class name"
                ),
                symbol="RECORD_TYPES",
            )

        # Direction 1: every registered name must exist as a dataclass.
        # Under a partial scan, a name imported from a module *outside* the
        # scanned set cannot be verified and is given the benefit of the
        # doubt; one imported from a scanned module (or not imported at
        # all) must resolve.
        scanned_modules = {_module_name(ctx) for ctx in files}
        imports = build_import_map(persistence.tree)
        for name in registered:
            if name in dataclasses:
                continue
            qual = imports.get(name)
            if qual is not None:
                source_module = qual.rsplit(".", 1)[0]
                if source_module not in scanned_modules:
                    continue
            yield Violation(
                    code=self.code,
                    path=persistence.path,
                    line=assign.lineno,
                    col=assign.col_offset,
                    message=(
                        f"RECORD_TYPES registers {name!r} but no dataclass of "
                        "that name exists in the scanned tree"
                    ),
                    symbol="RECORD_TYPES",
                )

        # Direction 2: record-shaped dataclasses must be registered.
        for name, (ctx, node) in sorted(dataclasses.items()):
            if name in registered or name.startswith("_"):
                continue
            if not name.endswith(_RECORD_SUFFIXES):
                continue
            if not ctx.in_dirs(*_RECORD_DIRS):
                continue
            yield Violation(
                code=self.code,
                path=ctx.path,
                line=node.lineno,
                col=node.col_offset,
                message=(
                    f"record dataclass {name} is not registered in "
                    "experiments/persistence.py RECORD_TYPES; saving it will "
                    "raise TypeError (register it, or suppress with a reason)"
                ),
                symbol=name,
            )

        # Field-level round-trip safety of registered dataclasses.
        for name in registered:
            entry = dataclasses.get(name)
            if entry is None:
                continue
            ctx, node = entry
            for stmt in node.body:
                if not isinstance(stmt, ast.AnnAssign) or not isinstance(
                    stmt.target, ast.Name
                ):
                    continue
                idents = list(_annotation_names(stmt.annotation))
                bad = sorted(set(i for i in idents if i in _JSON_UNSAFE))
                if bad:
                    yield Violation(
                        code=self.code,
                        path=ctx.path,
                        line=stmt.lineno,
                        col=stmt.col_offset,
                        message=(
                            f"field {stmt.target.id!r} of registered record "
                            f"{name} is annotated {bad[0]}; JSON decays it to "
                            "a list so the loaded record compares unequal"
                        ),
                        symbol=f"{name}.{stmt.target.id}",
                    )
                    continue
                nested = [
                    i
                    for i in idents
                    if i in dataclasses and i not in registered and i != name
                ]
                if nested:
                    yield Violation(
                        code=self.code,
                        path=ctx.path,
                        line=stmt.lineno,
                        col=stmt.col_offset,
                        message=(
                            f"field {stmt.target.id!r} of registered record "
                            f"{name} nests dataclass {nested[0]} which is not "
                            "itself registered; it loads back as a plain dict"
                        ),
                        symbol=f"{name}.{stmt.target.id}",
                    )
