"""DET002 — no unordered iteration in determinism-critical packages.

Inside ``core/``, ``sketch/`` and ``baselines/`` (the sampler hot paths),
iterating a ``set``/``frozenset`` or a ``dict.keys()`` view feeds Python's
arbitrary (insertion-history-dependent) ordering into downstream state.
When that order reaches a reservoir's RNG or a serialised payload, resumed
and sharded runs silently diverge from uninterrupted ones — the exact bug
class PR 2 fixed by hand in the two-pass counters.  Wrap the iterable in
``sorted(...)`` (canonical order) before looping.

Detection is heuristic but high-precision; it flags iteration where the
iterable is

* a direct ``set(...)`` / ``frozenset(...)`` call, set literal, or set
  comprehension;
* a ``.keys()`` call;
* a local variable assigned one of the above in the same function;
* a ``self.X`` attribute declared as a set (``self.X: Set[...] = ...`` or
  ``self.X = set()``) anywhere in the class.

Membership tests (``x in s``) are order-free and never flagged; neither is
anything already wrapped in ``sorted(...)``, including a comprehension fed
straight into ``sorted``/``set``/``frozenset`` (the wrapper launders the
iteration order before it can reach anything stateful).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Set

from repro.lint.rules.base import (
    FileContext,
    Rule,
    enclosing_symbols,
    self_attr_target,
)
from repro.lint.violations import Fix, Violation


def _sorted_wrap_fix(ctx: FileContext, iterable: ast.expr) -> Optional[Fix]:
    """A mechanical ``sorted(...)`` wrap of the iterable expression.

    Only offered when the expression's exact source span is recoverable
    (it always is on trees the stdlib parser produced); wrapping is
    behaviour-preserving for the flagged shapes — sets, ``.keys()``
    views and set-typed names are all re-iterables whose elements
    ``sorted`` passes through unchanged, in canonical order.
    """
    end_line = getattr(iterable, "end_lineno", None)
    end_col = getattr(iterable, "end_col_offset", None)
    if end_line is None or end_col is None:
        return None
    segment = ast.get_source_segment(ctx.source, iterable)
    if segment is None:
        return None
    return Fix(
        start_line=iterable.lineno,
        start_col=iterable.col_offset,
        end_line=end_line,
        end_col=end_col,
        replacement=f"sorted({segment})",
        description="wrap iterable in sorted(...)",
    )

_HOT_DIRS = ("core", "sketch", "baselines")
_SET_ANNOTATIONS = ("set", "Set", "frozenset", "FrozenSet", "AbstractSet", "MutableSet")


def _is_set_annotation(annotation: ast.expr) -> bool:
    """Whether an annotation expression denotes a set type."""
    node = annotation
    if isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Attribute):  # typing.Set[...] spelled t.Set
        return node.attr in _SET_ANNOTATIONS
    return isinstance(node, ast.Name) and node.id in _SET_ANNOTATIONS


def _is_set_expr(node: ast.expr) -> bool:
    """Whether an expression *directly* builds a set."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


def _is_keys_call(node: ast.expr) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "keys"
    )


class _ClassSetAttrs(ast.NodeVisitor):
    """Collect ``self.X`` attributes declared as sets within a class."""

    def __init__(self) -> None:
        self.set_attrs: Set[str] = set()

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        name = self_attr_target(node.target)
        if name is not None and _is_set_annotation(node.annotation):
            self.set_attrs.add(name)
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        if _is_set_expr(node.value):
            for target in node.targets:
                name = self_attr_target(target)
                if name is not None:
                    self.set_attrs.add(name)
        self.generic_visit(node)


def _function_set_locals(func: ast.AST) -> Dict[str, int]:
    """Local names bound to set-building expressions inside ``func``."""
    names: Dict[str, int] = {}
    for node in ast.walk(func):
        if isinstance(node, ast.Assign) and _is_set_expr(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names[target.id] = node.lineno
        elif (
            isinstance(node, ast.AnnAssign)
            and isinstance(node.target, ast.Name)
            and _is_set_annotation(node.annotation)
        ):
            names[node.target.id] = node.lineno
    return names


class Det002UnorderedIteration(Rule):
    code = "DET002"
    summary = "set/dict.keys() iteration without sorted() in a hot path"

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if not ctx.in_dirs(*_HOT_DIRS):
            return
        symbols = enclosing_symbols(ctx.tree)

        # Class-level knowledge: which self attributes are sets.
        class_attrs: Dict[str, Set[str]] = {}
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                collector = _ClassSetAttrs()
                collector.visit(node)
                class_attrs[node.name] = collector.set_attrs

        for func in ast.walk(ctx.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            scope = symbols.get(id(func), func.name)
            owner = scope.rsplit(".", 2)[-2] if "." in scope else ""
            self_sets = class_attrs.get(owner, set())
            local_sets = _function_set_locals(func)

            def describe(iterable: ast.expr) -> Optional[str]:
                if _is_set_expr(iterable):
                    return "a set built inline"
                if _is_keys_call(iterable):
                    return "a dict.keys() view"
                if isinstance(iterable, ast.Name) and iterable.id in local_sets:
                    return f"set-typed local {iterable.id!r}"
                attr = self_attr_target(iterable)
                if attr is not None and attr in self_sets:
                    return f"set-typed attribute self.{attr}"
                return None

            # Comprehensions whose entire result feeds an order-laundering
            # call: ``sorted(f(x) for x in some_set)`` is deterministic.
            laundered = set()
            for node in ast.walk(func):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id in ("sorted", "set", "frozenset")
                    and node.args
                    and isinstance(
                        node.args[0],
                        (ast.ListComp, ast.SetComp, ast.GeneratorExp),
                    )
                ):
                    laundered.add(id(node.args[0]))

            for node in ast.walk(func):
                iterables = []
                if isinstance(node, (ast.For, ast.AsyncFor)):
                    iterables.append(node.iter)
                elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                    if id(node) in laundered:
                        continue
                    iterables.extend(gen.iter for gen in node.generators)
                for iterable in iterables:
                    reason = describe(iterable)
                    if reason is None:
                        continue
                    yield self.violation(
                        ctx,
                        iterable,
                        f"iteration over {reason} leaks arbitrary ordering "
                        "into a determinism-critical path; wrap in sorted(...)",
                        symbol=scope,
                        fix=_sorted_wrap_fix(ctx, iterable),
                    )
