"""SKT001 — ``restore`` must cover every attribute ``__init__`` sets.

A class opting into the sketch state protocol (defining both ``snapshot``
and ``restore``) promises that ``restore`` rebuilds the *complete* live
state: replaying the remaining stream after a restore must be
indistinguishable from never having stopped.  The cheap static proxy for
that contract: every ``self.X`` assigned in ``__init__`` (or in
``snapshot`` itself) must be *covered* in ``restore`` — either reassigned
(``self.X = ...``), mutated through a method call (``self.X.load_state_dict(...)``,
``self.X.setstate(...)``), or written through subscript
(``self.X[...] = ...``).  An attribute restore never touches is state the
snapshot silently drops.

The runtime oracle in ``tests/lint/test_snapshot_oracle.py`` checks the
same contract dynamically; this rule catches the miss at review time.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Set

from repro.lint.rules.base import (
    FileContext,
    Rule,
    assigned_self_attrs,
    self_attr_target,
)
from repro.lint.violations import Violation


def _covered_attrs(func: ast.FunctionDef) -> Set[str]:
    """Attributes restore() assigns, mutates via method call, or indexes."""
    covered: Set[str] = set(assigned_self_attrs(func))
    for node in ast.walk(func):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            name = self_attr_target(node.func.value)
            if name is not None:
                covered.add(name)
        elif isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                if isinstance(target, ast.Subscript):
                    name = self_attr_target(target.value)
                    if name is not None:
                        covered.add(name)
    return covered


def _find_method(cls: ast.ClassDef, name: str) -> Optional[ast.FunctionDef]:
    for node in cls.body:
        if isinstance(node, ast.FunctionDef) and node.name == name:
            return node
    return None


class Skt001RestoreCoverage(Rule):
    code = "SKT001"
    summary = "restore() misses attributes that __init__/snapshot assign"

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            snapshot = _find_method(node, "snapshot")
            restore = _find_method(node, "restore")
            if snapshot is None or restore is None:
                continue
            init = _find_method(node, "__init__")
            expected: Dict[str, int] = {}
            if init is not None:
                expected.update(assigned_self_attrs(init))
            for name, line in assigned_self_attrs(snapshot).items():
                expected.setdefault(name, line)
            covered = _covered_attrs(restore)
            for name in sorted(set(expected) - covered):
                yield Violation(
                    code=self.code,
                    path=ctx.path,
                    line=restore.lineno,
                    col=restore.col_offset,
                    message=(
                        f"restore() never assigns or mutates self.{name} "
                        f"(set in __init__/snapshot at line {expected[name]}); "
                        "a resumed run will keep stale state"
                    ),
                    symbol=f"{node.name}.restore",
                )
