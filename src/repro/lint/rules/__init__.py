"""Rule registry: every determinism/sketch-contract rule the linter runs."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Type

from repro.lint.rules.asy001 import Asy001BlockingCall
from repro.lint.rules.asy002 import Asy002SharedStateMutation
from repro.lint.rules.base import FileContext, Rule
from repro.lint.rules.det001 import Det001RawRandomness
from repro.lint.rules.det002 import Det002UnorderedIteration
from repro.lint.rules.det003 import Det003WallClock
from repro.lint.rules.det004 import Det004RngTaint
from repro.lint.rules.obs001 import Obs001MetricRegistry
from repro.lint.rules.skt001 import Skt001RestoreCoverage
from repro.lint.rules.skt002 import Skt002PersistenceRegistry
from repro.lint.rules.srv001 import Srv001ErrorCodeTable
from repro.lint.rules.vec001 import Vec001ColumnarParity

__all__ = [
    "FileContext",
    "Rule",
    "ALL_RULE_CLASSES",
    "build_rules",
]

ALL_RULE_CLASSES: List[Type[Rule]] = [
    Det001RawRandomness,
    Det002UnorderedIteration,
    Det003WallClock,
    Det004RngTaint,
    Asy001BlockingCall,
    Asy002SharedStateMutation,
    Vec001ColumnarParity,
    Srv001ErrorCodeTable,
    Obs001MetricRegistry,
    Skt001RestoreCoverage,
    Skt002PersistenceRegistry,
]


def build_rules(
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> List[Rule]:
    """Instantiate the rule set, honouring ``--select`` / ``--ignore``."""
    selected = {c.upper() for c in select} if select else None
    ignored = {c.upper() for c in ignore} if ignore else set()
    known: Dict[str, Type[Rule]] = {cls.code: cls for cls in ALL_RULE_CLASSES}
    unknown = (selected or set()) | ignored
    unknown -= set(known)
    if unknown:
        raise ValueError(f"unknown rule code(s): {', '.join(sorted(unknown))}")
    rules: List[Rule] = []
    for code, cls in known.items():
        if selected is not None and code not in selected:
            continue
        if code in ignored:
            continue
        rules.append(cls())
    return rules
