"""DET003 — no wall clock or OS entropy in estimator/sketch code.

``time.time()``, ``time.perf_counter()``, ``os.urandom()``, ``uuid``
generation and friends make state depend on *when* and *where* a run
executes.  Estimates, sketch payloads and merge decisions must be pure
functions of (stream, seed); wall-time telemetry belongs only in the
runner's timing fields (``streaming/runner.py``, which is allowlisted).
The ``benchmarks/`` directory is also exempt: measuring wall time is a
benchmark's whole purpose, and its timings never feed estimator state.
Anything else needs an explicit justified suppression.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.rules.base import (
    FileContext,
    Rule,
    build_import_map,
    enclosing_symbols,
    qualified_name,
)
from repro.lint.violations import Violation

#: The runner owns wall-time measurement for RunResult telemetry fields.
_ALLOWED_FILES = ("streaming/runner.py",)

#: Directories where wall-clock measurement is the point of the code.
_ALLOWED_DIRS = ("benchmarks",)

_BANNED = {
    "time.time",
    "time.time_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.process_time",
    "time.process_time_ns",
    "os.urandom",
    "os.getrandom",
    "secrets.token_bytes",
    "secrets.token_hex",
    "secrets.randbits",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
}


def _is_banned(qual: str) -> bool:
    return qual in _BANNED or qual == "uuid" or qual.startswith("uuid.")


class Det003WallClock(Rule):
    code = "DET003"
    summary = "wall clock / OS entropy call outside streaming/runner.py"

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if any(ctx.endswith(allowed) for allowed in _ALLOWED_FILES):
            return
        if ctx.in_dirs(*_ALLOWED_DIRS):
            return
        imports = build_import_map(ctx.tree)
        symbols = enclosing_symbols(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            qual = qualified_name(node.func, imports)
            if qual is None or not _is_banned(qual):
                continue
            yield self.violation(
                ctx,
                node,
                f"call to {qual}() injects wall-clock/OS entropy; estimator "
                "and sketch state must be a pure function of (stream, seed)",
                symbol=symbols.get(id(node), ""),
            )
