"""DET004 — a function that receives an RNG must not also construct one.

The seed-threading discipline (``resolve_rng`` at the boundary,
``spawn_rng``/``spawn_seed`` for children) gives every trial exactly one
ancestry tree of generators; serial==parallel identity and
checkpoint/resume replay are proved against that tree.  A function that
*receives* a generator and then *also* builds its own — a second
``resolve_rng(seed)`` from some constant, a stray ``random.Random(0)`` —
splits its randomness across two streams: half the draws replay under
the caller's seed, half do not, and the divergence only shows up as
flaky cross-shard mismatches.

Using the dataflow layer, this rule flags inside any function with an
RNG-like parameter (named ``rng``/``*_rng`` or annotated ``Random``):

* a call to ``resolve_rng``/``random.Random``/``random.SystemRandom``/
  ``numpy.random.default_rng``/``numpy.random.RandomState`` whose
  arguments do not reference the received RNG parameter (passthrough
  normalization like ``resolve_rng(rng)`` and derivation like
  ``spawn_rng(rng)`` are fine);
* a call to a same-module helper that takes no RNG parameter itself and
  unconditionally constructs its own generator (the one-level call-graph
  extension: the split stream hides one call away).

A deliberate second stream (e.g. seeding a noise source that must not
perturb the estimator's draw sequence) needs a justified suppression
naming why the streams are independent.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator, Optional, Sequence, Set, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lint.dataflow import ModuleFlow

from repro.lint.rules.base import (
    FileContext,
    Rule,
    build_import_map,
    enclosing_symbols,
    qualified_name,
)
from repro.lint.violations import Violation

#: Files where constructing generators is the point.
_ALLOWED_FILES = ("util/rng.py",)

#: Calls that mint a fresh generator / derive one from a seed.
_CONSTRUCTOR_QUALS = {
    "repro.util.rng.resolve_rng",
    "random.Random",
    "random.SystemRandom",
    "numpy.random.default_rng",
    "numpy.random.RandomState",
}

_RNG_ANNOTATIONS = {"Random", "random.Random"}


def _annotation_text(node: Optional[ast.expr]) -> str:
    if node is None:
        return ""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - unparse is total on valid trees
        return ""


def _rng_params(func: ast.AST) -> Tuple[str, ...]:
    """Parameter names of ``func`` that carry a generator."""
    args = func.args  # type: ignore[attr-defined]
    names = []
    for arg in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs):
        name = arg.arg
        if name == "rng" or name.endswith("_rng"):
            names.append(name)
        elif _annotation_text(arg.annotation) in _RNG_ANNOTATIONS:
            names.append(name)
    return tuple(names)


def _references_any(node: ast.expr, names: Sequence[str]) -> bool:
    wanted = set(names)
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and sub.id in wanted:
            return True
    return False


def _call_args(call: ast.Call) -> Iterator[ast.expr]:
    for arg in call.args:
        yield arg
    for kw in call.keywords:
        yield kw.value


class Det004RngTaint(Rule):
    code = "DET004"
    summary = "function that receives an RNG also constructs its own"

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if any(ctx.endswith(allowed) for allowed in _ALLOWED_FILES):
            return
        from repro.lint.dataflow import module_flow

        flow = module_flow(ctx)
        imports = build_import_map(ctx.tree)
        symbols = enclosing_symbols(ctx.tree)
        own_constructors = self._helpers_minting_rngs(flow, imports)
        for func in ast.walk(ctx.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            rng_params = _rng_params(func)
            if not rng_params:
                continue
            for node in flow.own_nodes(func):
                if not isinstance(node, ast.Call):
                    continue
                qual = qualified_name(node.func, imports)
                if qual in _CONSTRUCTOR_QUALS:
                    if any(
                        _references_any(arg, rng_params)
                        for arg in _call_args(node)
                    ):
                        continue  # passthrough / derivation from the param
                    yield self.violation(
                        ctx,
                        node,
                        f"{func.name!r} receives RNG parameter "
                        f"{rng_params[0]!r} but constructs its own via "
                        f"{qual.rsplit('.', 1)[-1]}(); derive children with "
                        "spawn_rng/spawn_seed from the received generator",
                        symbol=symbols.get(id(node), ""),
                    )
                elif (
                    isinstance(node.func, ast.Name)
                    and node.func.id in own_constructors
                    and not any(
                        _references_any(arg, rng_params)
                        for arg in _call_args(node)
                    )
                ):
                    yield self.violation(
                        ctx,
                        node,
                        f"{func.name!r} receives RNG parameter "
                        f"{rng_params[0]!r} but calls helper "
                        f"{node.func.id!r}, which constructs its own "
                        "generator; pass randomness down explicitly instead "
                        "of letting the helper mint a second stream",
                        symbol=symbols.get(id(node), ""),
                    )

    @staticmethod
    def _helpers_minting_rngs(
        flow: "ModuleFlow", imports: dict
    ) -> Set[str]:
        """Module-level helpers with no RNG param that mint a generator."""
        minting: Set[str] = set()
        for name, func in flow.module_functions.items():
            if _rng_params(func):
                continue
            params = set(
                flow.function_at(func).params
                if flow.function_at(func)
                else ()
            )
            for node in flow.own_nodes(func):
                if not isinstance(node, ast.Call):
                    continue
                qual = qualified_name(node.func, imports)
                if qual not in _CONSTRUCTOR_QUALS:
                    continue
                if any(
                    _references_any(arg, tuple(params))
                    for arg in _call_args(node)
                ):
                    continue  # seeded by an explicit caller-provided value
                minting.add(name)
                break
        return minting
