"""ASY002 — coroutines must not mutate module-level shared state.

Sessions are isolated by design: all cross-session state lives in the
:class:`~repro.serve.manager.SessionManager`, whose coroutines serialize
access per session (``asyncio.Lock``) and admit feeds through one gate
(the backpressure semaphore).  A coroutine that instead mutates a
*module-level* mutable — a cache dict, a list of live sessions, a global
counter — creates state the manager's locking discipline never covers:
two interleaved coroutines read-modify-write it unsynchronized, and the
interleaving (hence the stored value) depends on scheduling, which breaks
both correctness under concurrency and the serve benchmarks'
bit-identity audit.

Flagged inside the body of an ``async def`` in ``repro/serve``:

* a ``global NAME`` declaration followed by any assignment to ``NAME``
  (rebinding module state from a coroutine);
* a mutating method call (``append``/``add``/``update``/``pop``/
  ``setdefault``/``clear``/``extend``/``remove``/``discard``/``insert``/
  ``popitem``) on a name the dataflow layer identified as a module-level
  mutable container;
* subscript or augmented assignment targeting such a name.

Shared state that genuinely must be module-level (none currently exists
in the tree) needs a justified suppression explaining which lock guards
it.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set, Tuple

from repro.lint.rules.base import FileContext, Rule, enclosing_symbols
from repro.lint.violations import Violation

_MUTATING_METHODS = {
    "append",
    "extend",
    "insert",
    "add",
    "update",
    "setdefault",
    "pop",
    "popitem",
    "clear",
    "remove",
    "discard",
}


class Asy002SharedStateMutation(Rule):
    code = "ASY002"
    summary = "module-level mutable state mutated from a coroutine body"

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if not ctx.in_dirs("serve"):
            return
        from repro.lint.dataflow import module_flow

        flow = module_flow(ctx)
        symbols = enclosing_symbols(ctx.tree)
        module_mutables = set(flow.module_mutables)
        for func in ast.walk(ctx.tree):
            if not isinstance(func, ast.AsyncFunctionDef):
                continue
            own = flow.own_nodes(func)
            declared_global: Set[str] = set()
            for node in own:
                if isinstance(node, ast.Global):
                    declared_global.update(node.names)
            shadowed = self._locally_bound(own, declared_global)
            shared = (module_mutables - shadowed) | declared_global
            for node in own:
                violation = self._mutation(node, shared, declared_global)
                if violation is None:
                    continue
                target, how = violation
                yield self.violation(
                    ctx,
                    node,
                    f"coroutine {func.name!r} {how} module-level state "
                    f"{target!r}; route shared mutation through the session "
                    "manager's locked coroutines (feed-gate discipline)",
                    symbol=symbols.get(id(node), ""),
                )

    @staticmethod
    def _locally_bound(own: List[ast.AST], declared_global: Set[str]) -> Set[str]:
        """Names (re)bound locally in the coroutine — they shadow globals."""
        bound: Set[str] = set()
        for node in own:
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        bound.add(target.id)
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                if isinstance(node.target, ast.Name):
                    bound.add(node.target.id)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                if isinstance(node.target, ast.Name):
                    bound.add(node.target.id)
        return bound - declared_global

    @staticmethod
    def _mutation(
        node: ast.AST, shared: Set[str], declared_global: Set[str]
    ) -> Optional[Tuple[str, str]]:
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            receiver = node.func.value
            if (
                isinstance(receiver, ast.Name)
                and receiver.id in shared
                and node.func.attr in _MUTATING_METHODS
            ):
                return receiver.id, f"mutates (.{node.func.attr}())"
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.value, ast.Name)
                    and target.value.id in shared
                ):
                    return target.value.id, "writes an item of"
                if isinstance(target, ast.Name) and target.id in declared_global:
                    return target.id, "rebinds (via global)"
        if isinstance(node, ast.AugAssign):
            target = node.target
            if (
                isinstance(target, ast.Subscript)
                and isinstance(target.value, ast.Name)
                and target.value.id in shared
            ):
                return target.value.id, "writes an item of"
            if isinstance(target, ast.Name) and target.id in declared_global:
                return target.id, "rebinds (via global)"
        if isinstance(node, ast.Delete):
            for target in node.targets:
                if (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.value, ast.Name)
                    and target.value.id in shared
                ):
                    return target.value.id, "deletes an item of"
        return None
