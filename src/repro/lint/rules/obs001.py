"""OBS001 — telemetry metric names must come from the declared registry.

A typo'd metric name (``"stream_pair_total"`` for ``"stream_pairs_total"``)
silently creates a parallel series that no dashboard, roll-up or baseline
ever aggregates — the worst kind of observability bug, because nothing
crashes.  The vocabulary lives in :mod:`repro.obs.names`; this rule
resolves every *literal* metric name at a telemetry call site in
``src/repro`` against it.

A call site is ``<receiver>.count(...)``, ``<receiver>.set_gauge(...)``,
``<receiver>.observe_seconds(...)`` or ``<receiver>.observe_histogram(...)``
where the receiver's terminal identifier contains ``telemetry`` (``telemetry``, ``self._telemetry``,
``run_telemetry`` all match; ``path.count("/")`` does not).  Dynamic
names (f-strings, variables) are out of scope — the registry check is
for the static vocabulary, and every in-tree emission uses a literal.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.lint.rules.base import FileContext, Rule, enclosing_symbols
from repro.lint.violations import Violation

from repro.obs.names import METRIC_NAMES, is_valid_metric_name

#: Telemetry facade methods whose first argument is a metric name.
_METRIC_METHODS = frozenset(
    {"count", "set_gauge", "observe_seconds", "observe_histogram"}
)


def _telemetry_receiver(func: ast.expr) -> Optional[str]:
    """The method name when ``func`` is a telemetry metric call, else None."""
    if not isinstance(func, ast.Attribute) or func.attr not in _METRIC_METHODS:
        return None
    receiver = func.value
    # Terminal identifier of the receiver chain: ``telemetry`` for the
    # bare name, ``_telemetry`` for ``self._telemetry``.
    if isinstance(receiver, ast.Attribute):
        terminal = receiver.attr
    elif isinstance(receiver, ast.Name):
        terminal = receiver.id
    else:
        return None
    if "telemetry" not in terminal.lower():
        return None
    return func.attr


class Obs001MetricRegistry(Rule):
    code = "OBS001"
    summary = "telemetry metric name not in the declared registry"

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        symbols = enclosing_symbols(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            method = _telemetry_receiver(node.func)
            if method is None or not node.args:
                continue
            first = node.args[0]
            if not isinstance(first, ast.Constant) or not isinstance(first.value, str):
                continue  # dynamic names are out of scope
            name = first.value
            if not is_valid_metric_name(name):
                yield self.violation(
                    ctx,
                    node,
                    f"metric name {name!r} is not a lowercase dotted identifier "
                    "(segments [a-z][a-z0-9_]* joined by dots)",
                    symbol=symbols.get(id(node), ""),
                )
            elif name not in METRIC_NAMES:
                yield self.violation(
                    ctx,
                    node,
                    f"metric name {name!r} passed to .{method}() is not declared "
                    "in repro.obs.names.METRIC_NAMES; add it to the registry "
                    "or fix the typo",
                    symbol=symbols.get(id(node), ""),
                )
