"""The violation record and the rule-code vocabulary.

Every finding the linter can emit carries a stable rule code.  Codes are
grouped by family:

* ``DET***`` — determinism contract: all randomness threads through
  :mod:`repro.util.rng`, no iteration-order or wall-clock leakage into
  estimator state (`docs/LINTING.md` has the full catalogue).
* ``SKT***`` — sketch state contract: snapshot/restore completeness and
  persistence registration.
* ``LNT***`` — meta: malformed suppression comments.

Violations are plain data so the engine can sort, baseline, and render
them without knowing which rule produced them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

#: Every rule code the engine knows, with its one-line summary.  Rules in
#: ``repro.lint.rules`` register DET/SKT codes; LNT codes are emitted by
#: the engine itself while parsing suppression comments.
CODE_SUMMARIES: Dict[str, str] = {
    "DET001": "randomness bypasses repro.util.rng (resolve_rng/spawn_rng)",
    "DET002": "unordered set/dict-keys iteration in a determinism-critical path",
    "DET003": "wall clock / OS entropy in estimator or sketch code",
    "DET004": "function that receives an RNG also constructs its own",
    "ASY001": "blocking call inside an async def in repro/serve",
    "ASY002": "module-level mutable state mutated from a coroutine body",
    "VEC001": "columnar kernel without scalar-oracle parity coverage",
    "SRV001": "serve error code missing from the protocol's stable table",
    "SKT001": "restore() does not cover every attribute snapshot/__init__ sets",
    "SKT002": "persistence registry round-trip contract broken",
    "LNT001": "suppression comment lacks a justification",
    "LNT002": "suppression names an unknown rule code",
}


@dataclass(frozen=True)
class Fix:
    """A mechanical rewrite that resolves a violation.

    Spans are half-open source positions in the same coordinates ``ast``
    reports (1-based lines, 0-based columns); ``replacement`` is the full
    new text for the span.  Only rules whose rewrite is provably
    behaviour-preserving attach one — the fixer never guesses.
    """

    start_line: int
    start_col: int
    end_line: int
    end_col: int
    replacement: str
    description: str = ""


@dataclass(frozen=True)
class Violation:
    """One finding: a rule code anchored to a file position."""

    code: str
    path: str  # repo-relative (or as-given) posix path
    line: int  # 1-based
    col: int  # 0-based, matching ast
    message: str
    #: Best-effort symbol context ("ClassName.method" / function name).
    symbol: str = ""
    #: True when a committed baseline entry grandfathers this violation.
    baselined: bool = field(default=False, compare=False)
    #: Attached when the producing rule knows a safe mechanical rewrite.
    fix: Optional[Fix] = field(default=None, compare=False)

    def fingerprint(self) -> Dict[str, Any]:
        """The identity used for baseline matching.

        Line numbers are deliberately excluded so unrelated edits above a
        grandfathered violation do not un-baseline it; the (code, path,
        symbol, message) quadruple is stable under line drift.
        """
        return {
            "code": self.code,
            "path": self.path,
            "symbol": self.symbol,
            "message": self.message,
        }

    def sort_key(self) -> Any:
        return (self.path, self.line, self.col, self.code)

    def to_dict(self) -> Dict[str, Any]:
        """JSON form used by ``--format=json`` reports."""
        return {
            "code": self.code,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "symbol": self.symbol,
            "baselined": self.baselined,
            "fixable": self.fix is not None,
        }
