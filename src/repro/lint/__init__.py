"""repro-lint: static analysis for the determinism & sketch contracts.

The reproduction's headline guarantees — serial == pooled trials
bit-identically, bit-exact shard merges, checkpoint/resume replaying to
the identical estimate — all rest on code conventions (every RNG threaded
through :mod:`repro.util.rng`, no set-order leakage into reservoir RNG,
``restore`` covering all of ``__init__``'s state).  This package turns
those conventions into enforced rules:

======== =============================================================
DET001   randomness bypasses ``resolve_rng``/``spawn_rng``
DET002   unordered set/``dict.keys()`` iteration in hot paths
DET003   wall clock / OS entropy outside the runner's timing fields
SKT001   ``restore()`` misses attributes ``__init__``/``snapshot`` set
SKT002   persistence ``RECORD_TYPES`` round-trip contract broken
LNT001   suppression pragma without justification
LNT002   suppression pragma naming an unknown code
======== =============================================================

See ``docs/LINTING.md`` for the catalogue with bad/good examples.  Run as
``repro-lint``, ``python -m repro.lint``, or ``repro-cycles lint``; the
dynamic counterpart of SKT001 lives in ``tests/lint/test_snapshot_oracle.py``.
"""

from repro.lint.baseline import Baseline
from repro.lint.engine import LintReport, discover_files, run_lint
from repro.lint.rules import ALL_RULE_CLASSES, build_rules
from repro.lint.violations import CODE_SUMMARIES, Violation

__all__ = [
    "ALL_RULE_CLASSES",
    "Baseline",
    "CODE_SUMMARIES",
    "LintReport",
    "Violation",
    "build_rules",
    "discover_files",
    "run_lint",
]
