"""Report renderers: ``--format=text|json|github``."""

from __future__ import annotations

import json
from typing import Callable, Dict

from repro.lint.engine import LintReport


def render_text(report: LintReport) -> str:
    """Human-readable one-line-per-violation output."""
    lines = []
    for error in report.parse_errors:
        lines.append(f"PARSE ERROR: {error}")
    for violation in report.violations:
        mark = " [baselined]" if violation.baselined else ""
        where = f" ({violation.symbol})" if violation.symbol else ""
        lines.append(
            f"{violation.path}:{violation.line}:{violation.col + 1}: "
            f"{violation.code} {violation.message}{where}{mark}"
        )
    active, grandfathered = len(report.active), len(report.baselined)
    summary = (
        f"{report.files_checked} files checked: "
        f"{active} violation{'s' if active != 1 else ''}"
    )
    if grandfathered:
        summary += f", {grandfathered} baselined"
    lines.append(summary)
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    """Machine-readable report (the CI artifact format)."""
    document = {
        "files_checked": report.files_checked,
        "parse_errors": report.parse_errors,
        "violations": [v.to_dict() for v in report.violations],
        "summary": {
            "active": len(report.active),
            "baselined": len(report.baselined),
            "exit_code": report.exit_code,
        },
    }
    return json.dumps(document, indent=2, sort_keys=True)


def render_github(report: LintReport) -> str:
    """GitHub Actions workflow commands (inline PR annotations)."""
    lines = []
    for error in report.parse_errors:
        lines.append(f"::error::repro-lint parse error: {error}")
    for violation in report.violations:
        level = "warning" if violation.baselined else "error"
        lines.append(
            f"::{level} file={violation.path},line={violation.line},"
            f"col={violation.col + 1},title=repro-lint {violation.code}::"
            f"{violation.message}"
        )
    return "\n".join(lines)


FORMATTERS: Dict[str, Callable[[LintReport], str]] = {
    "text": render_text,
    "json": render_json,
    "github": render_github,
}
