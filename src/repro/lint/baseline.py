"""The committed violation baseline.

New code must be clean; pre-existing (grandfathered) violations are
tracked in a committed JSON baseline so the lint gate can be enabled
without a flag day.  A baselined violation is still *reported* (marked
``baselined``) but does not fail the run; fixing one and regenerating the
baseline shrinks the file — it can only ratchet downward in review.

Matching is by :meth:`Violation.fingerprint` (code, path, symbol,
message) with multiplicity, so line-number drift from unrelated edits does
not resurrect grandfathered findings, while a *new* identical violation in
the same file still fails (the multiset count is exceeded).
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Any, Dict, List, Sequence, Tuple, Union

from repro.lint.violations import Violation

PathLike = Union[str, Path]

_BASELINE_VERSION = 1


def _key(fingerprint: Dict[str, Any]) -> Tuple[str, str, str, str]:
    return (
        str(fingerprint.get("code", "")),
        str(fingerprint.get("path", "")),
        str(fingerprint.get("symbol", "")),
        str(fingerprint.get("message", "")),
    )


class Baseline:
    """A multiset of grandfathered violation fingerprints."""

    def __init__(self, entries: Sequence[Dict[str, Any]] = ()) -> None:
        self._counts: Counter = Counter(_key(e) for e in entries)
        self.entries = list(entries)

    def __len__(self) -> int:
        return sum(self._counts.values())

    def apply(self, violations: List[Violation]) -> List[Violation]:
        """Mark baselined violations; returns a new list."""
        budget = Counter(self._counts)
        out: List[Violation] = []
        for violation in sorted(violations, key=Violation.sort_key):
            key = _key(violation.fingerprint())
            if budget[key] > 0:
                budget[key] -= 1
                out.append(
                    Violation(
                        code=violation.code,
                        path=violation.path,
                        line=violation.line,
                        col=violation.col,
                        message=violation.message,
                        symbol=violation.symbol,
                        baselined=True,
                    )
                )
            else:
                out.append(violation)
        return out

    @classmethod
    def from_violations(cls, violations: Sequence[Violation]) -> "Baseline":
        return cls([v.fingerprint() for v in violations])

    # -- files --------------------------------------------------------------

    @classmethod
    def load(cls, path: PathLike) -> "Baseline":
        blob = json.loads(Path(path).read_text(encoding="utf-8"))
        if not isinstance(blob, dict) or blob.get("version") != _BASELINE_VERSION:
            raise ValueError(f"unsupported baseline file {path}")
        return cls(blob.get("entries", []))

    def save(self, path: PathLike) -> None:
        document = {
            "version": _BASELINE_VERSION,
            "entries": sorted(self.entries, key=_key),
        }
        Path(path).write_text(
            json.dumps(document, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
