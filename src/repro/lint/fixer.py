"""The ``repro-lint --fix`` engine: mechanical, idempotent rewrites.

Only the *safe subset* of findings is auto-fixed — rewrites that are
provably behaviour-preserving and whose output the linter itself accepts:

* **violation-attached fixes** — rules that know a mechanical rewrite
  attach a :class:`~repro.lint.violations.Fix` span (today: DET002's
  ``sorted(...)`` wrap of an unordered iterable);
* **pragma normalization** — justified suppression comments are
  rewritten to the one canonical spelling
  ``# repro-lint: disable=CODE1,CODE2 -- why`` (codes sorted and
  de-duplicated, single spacing), so pragma greps and reviews see one
  format;
* **registry ordering** — the ``RECORD_TYPES`` registry tuple in the
  persistence module is kept alphabetical, so registrations merge
  without conflicts and SKT002 diffs stay minimal.

Everything else (ASY/VEC/SRV findings, unjustified pragmas) requires a
human: the fixer never invents justifications and never restructures
control flow.  Fixing is idempotent by construction — every rewrite maps
canonical input to itself — and the CLI re-lints after applying so the
user sees exactly what remains.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.lint.suppress import _PRAGMA_RE, _iter_comments
from repro.lint.violations import Fix, Violation


@dataclass
class FileFixResult:
    """What the fixer did to one file."""

    path: str
    new_source: str
    changed: bool
    #: Human-readable descriptions of each rewrite applied.
    applied: List[str] = field(default_factory=list)


def _line_offsets(source: str) -> List[int]:
    """Start offset of each 1-based line (index 0 unused)."""
    offsets = [0, 0]
    for i, ch in enumerate(source):
        if ch == "\n":
            offsets.append(i + 1)
    return offsets


def _span_to_offsets(source: str, fix: Fix, offsets: List[int]) -> Optional[Tuple[int, int]]:
    if fix.start_line >= len(offsets) or fix.end_line >= len(offsets):
        return None
    start = offsets[fix.start_line] + fix.start_col
    end = offsets[fix.end_line] + fix.end_col
    if start > end or end > len(source):
        return None
    return start, end


def apply_fixes(source: str, fixes: Sequence[Fix]) -> Tuple[str, List[Fix]]:
    """Apply non-overlapping fixes to ``source``, rightmost-first.

    Overlapping spans keep only the first (in document order) — the
    dropped ones resurface on the post-fix re-lint, so nothing is lost,
    and no rewrite ever lands inside another rewrite's replacement text.
    Returns the new source and the fixes actually applied.
    """
    offsets = _line_offsets(source)
    resolved: List[Tuple[int, int, Fix]] = []
    for fix in fixes:
        span = _span_to_offsets(source, fix, offsets)
        if span is not None:
            resolved.append((span[0], span[1], fix))
    resolved.sort(key=lambda item: (item[0], item[1]))
    chosen: List[Tuple[int, int, Fix]] = []
    last_end = -1
    for start, end, fix in resolved:
        if start < last_end:
            continue
        chosen.append((start, end, fix))
        last_end = end
    out = source
    for start, end, fix in reversed(chosen):
        out = out[:start] + fix.replacement + out[end:]
    return out, [fix for _, _, fix in chosen]


# -- pragma normalization -----------------------------------------------------


def _canonical_pragma(codes: Sequence[str], why: str) -> str:
    unique = sorted({c.strip() for c in codes if c.strip()})
    head = f"# repro-lint: disable={','.join(unique)}"
    return f"{head} -- {why}" if why else head


def normalize_pragmas(source: str) -> Tuple[str, int]:
    """Rewrite every suppression pragma to the canonical spelling.

    Unjustified pragmas are normalized too (their LNT001 finding stays —
    the fixer never writes a justification for you).
    """
    lines = source.splitlines(keepends=True)
    changed = 0
    for line_no, col, text, _standalone in _iter_comments(source):
        match = _PRAGMA_RE.search(text)
        if match is None:
            continue
        codes = match.group("codes").split(",")
        why = (match.group("why") or "").strip()
        canonical = _canonical_pragma(codes, why)
        new_text = text[: match.start()] + canonical
        if new_text == text:
            continue
        raw = lines[line_no - 1]
        eol = raw[len(raw.rstrip("\r\n")):]
        lines[line_no - 1] = raw[:col] + new_text + eol
        changed += 1
    return "".join(lines), changed


# -- registry ordering --------------------------------------------------------

#: The persistence registry kept in canonical (alphabetical) order.
_REGISTRY_NAME = "RECORD_TYPES"


def _registry_tuple(tree: ast.Module) -> Optional[ast.expr]:
    """The ``for cls in (A, B, ...)`` tuple of the RECORD_TYPES dictcomp."""
    for node in tree.body:
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            continue
        target = node.targets[0]
        if not (isinstance(target, ast.Name) and target.id == _REGISTRY_NAME):
            continue
        if not isinstance(node.value, ast.DictComp):
            return None
        generators = node.value.generators
        if len(generators) != 1:
            return None
        return generators[0].iter
    return None


def order_record_types(source: str) -> Tuple[str, int]:
    """Alphabetize the RECORD_TYPES registry tuple, preserving layout.

    Each ``Name`` element's source span is replaced positionally with the
    sorted sequence, so a one-per-line tuple stays one-per-line.  Returns
    ``(new_source, number_of_names_moved)``; anything but a plain tuple
    of names (or an already-sorted one) is left untouched.
    """
    try:
        tree = ast.parse(source)
    except SyntaxError:
        return source, 0
    iterable = _registry_tuple(tree)
    if not isinstance(iterable, (ast.Tuple, ast.List)):
        return source, 0
    elements = iterable.elts
    if not all(isinstance(e, ast.Name) for e in elements):
        return source, 0
    names = [e.id for e in elements]  # type: ignore[attr-defined]
    ordered = sorted(names)
    if names == ordered:
        return source, 0
    fixes = [
        Fix(
            start_line=e.lineno,
            start_col=e.col_offset,
            end_line=e.end_lineno or e.lineno,
            end_col=e.end_col_offset or e.col_offset,
            replacement=new_name,
            description=f"registry order: {new_name}",
        )
        for e, new_name in zip(elements, ordered)
        if e.id != new_name  # type: ignore[attr-defined]
    ]
    new_source, applied = apply_fixes(source, fixes)
    return new_source, len(applied)


# -- orchestration ------------------------------------------------------------


def fix_source(path: str, source: str, violations: Sequence[Violation]) -> FileFixResult:
    """Run every fixer stage over one file's source."""
    applied: List[str] = []
    fixes = [v.fix for v in violations if v.path == path and v.fix is not None]
    out, done = apply_fixes(source, fixes)
    for fix in done:
        applied.append(fix.description or "rule-attached rewrite")
    out, n_pragmas = normalize_pragmas(out)
    if n_pragmas:
        applied.append(f"normalized {n_pragmas} suppression pragma(s)")
    out, n_moved = order_record_types(out)
    if n_moved:
        applied.append(f"alphabetized {_REGISTRY_NAME} ({n_moved} moved)")
    return FileFixResult(
        path=path, new_source=out, changed=out != source, applied=applied
    )


def fix_paths(
    file_sources: Dict[str, str], violations: Sequence[Violation]
) -> List[FileFixResult]:
    """Fix every file, returning only the results that changed."""
    results = []
    for path, source in file_sources.items():
        result = fix_source(path, source, violations)
        if result.changed:
            results.append(result)
    return results
