"""The lint engine: discover files, run rules, apply suppressions+baseline.

The engine is deliberately dependency-free (stdlib ``ast`` only) and pure:
``run_lint`` maps (paths, rules, baseline) to a :class:`LintReport`; all
I/O besides reading sources lives in the CLI layer.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, List, Optional, Sequence

from repro.lint.baseline import Baseline
from repro.lint.rules import Rule, build_rules
from repro.lint.rules.base import FileContext
from repro.lint.suppress import parse_suppressions
from repro.lint.violations import Violation

#: Directories never scanned: caches, VCS internals, build output, and
#: tool/virtualenv state that can shadow thousands of third-party files.
_SKIP_DIRS = {
    "__pycache__",
    ".git",
    ".hypothesis",
    ".venv",
    ".tox",
    ".mypy_cache",
    ".eggs",
    "build",
    "dist",
}


def discover_files(paths: Sequence[str]) -> List[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    found: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if not any(part in _SKIP_DIRS for part in candidate.parts):
                    found.append(candidate)
        elif path.suffix == ".py":
            found.append(path)
        elif not path.exists():
            raise FileNotFoundError(f"no such file or directory: {raw}")
    # De-duplicate while preserving order (a file named on the command
    # line and inside a scanned directory counts once).
    seen = set()
    unique = []
    for path in found:
        key = path.resolve()
        if key not in seen:
            seen.add(key)
            unique.append(path)
    return unique


@dataclass
class LintReport:
    """Everything one lint run produced."""

    violations: List[Violation] = field(default_factory=list)
    files_checked: int = 0
    parse_errors: List[str] = field(default_factory=list)

    @property
    def active(self) -> List[Violation]:
        """Violations that should fail the run (not baselined)."""
        return [v for v in self.violations if not v.baselined]

    @property
    def baselined(self) -> List[Violation]:
        return [v for v in self.violations if v.baselined]

    @property
    def exit_code(self) -> int:
        return 1 if self.active or self.parse_errors else 0


def _parse_file(path: Path) -> Optional[FileContext]:
    source = path.read_text(encoding="utf-8")
    tree = ast.parse(source, filename=str(path))
    return FileContext(path=path.as_posix(), source=source, tree=tree)


def run_lint(
    paths: Sequence[str],
    rules: Optional[Iterable[Rule]] = None,
    baseline: Optional[Baseline] = None,
) -> LintReport:
    """Lint ``paths`` with ``rules`` (all rules by default)."""
    rule_list = list(rules) if rules is not None else build_rules()
    report = LintReport()
    contexts: List[FileContext] = []
    for path in discover_files(paths):
        try:
            ctx = _parse_file(path)
        except SyntaxError as exc:
            report.parse_errors.append(f"{path.as_posix()}: {exc.msg} (line {exc.lineno})")
            continue
        contexts.append(ctx)
    report.files_checked = len(contexts)

    index_by_path = {
        ctx.path: parse_suppressions(ctx.path, ctx.source) for ctx in contexts
    }
    raw: List[Violation] = []
    for ctx in contexts:
        index = index_by_path[ctx.path]
        raw.extend(index.problems)
        for rule in rule_list:
            if not rule.project_wide:
                raw.extend(
                    v for v in rule.check(ctx) if not index.is_suppressed(v)
                )

    # Project-wide rules see every file; suppressions still apply at the
    # violation's own location.
    for rule in rule_list:
        if not rule.project_wide:
            continue
        for violation in rule.check_project(contexts):
            index = index_by_path.get(violation.path)
            if index is not None and index.is_suppressed(violation):
                continue
            raw.append(violation)

    if baseline is not None:
        raw = baseline.apply(raw)
    report.violations = sorted(raw, key=Violation.sort_key)
    return report
