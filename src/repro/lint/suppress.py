"""Inline suppression comments.

A violation is suppressed by a comment on the offending line (or on a
standalone comment line directly above it)::

    x = random.random()  # repro-lint: disable=DET001 -- calibration noise only

The justification after ``--`` is mandatory: a disable pragma without one
is itself reported (LNT001), as is a pragma naming an unknown rule code
(LNT002).  ``disable=all`` suppresses every rule for the line.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.lint.violations import CODE_SUMMARIES, Violation

_PRAGMA_RE = re.compile(
    r"#\s*repro-lint:\s*disable=(?P<codes>[A-Za-z0-9,\s]+?)"
    r"(?:\s*--\s*(?P<why>.*\S))?\s*$"
)


@dataclass
class Suppression:
    """One parsed pragma: the codes it disables and where it applies."""

    line: int  # line the pragma comment sits on
    codes: Set[str]
    justification: str
    #: Lines the pragma covers (its own line, plus the next code line for
    #: standalone comment pragmas).
    applies_to: Set[int] = field(default_factory=set)


def _iter_comments(source: str) -> List[Tuple[int, int, str, bool]]:
    """Yield ``(line, col, text, standalone)`` for each comment token."""
    comments = []
    last_code_line = -1
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError):  # pragma: no cover - defensive
        return []
    for tok in tokens:
        if tok.type == tokenize.COMMENT:
            standalone = tok.start[0] != last_code_line
            comments.append((tok.start[0], tok.start[1], tok.string, standalone))
        elif tok.type not in (
            tokenize.NL,
            tokenize.NEWLINE,
            tokenize.INDENT,
            tokenize.DEDENT,
            tokenize.ENCODING,
            tokenize.ENDMARKER,
        ):
            last_code_line = tok.end[0]
    return comments


class SuppressionIndex:
    """All pragmas of one file, queryable by (line, code)."""

    def __init__(self, suppressions: List[Suppression], problems: List[Violation]) -> None:
        self.suppressions = suppressions
        self.problems = problems  # LNT001/LNT002 findings from parsing
        self._by_line: Dict[int, List[Suppression]] = {}
        for sup in suppressions:
            for line in sup.applies_to:
                self._by_line.setdefault(line, []).append(sup)

    def is_suppressed(self, violation: Violation) -> bool:
        for sup in self._by_line.get(violation.line, []):
            if not sup.justification:
                continue  # an unjustified pragma suppresses nothing
            if "all" in sup.codes or violation.code in sup.codes:
                return True
        return False


def parse_suppressions(path: str, source: str) -> SuppressionIndex:
    """Extract every ``repro-lint: disable=`` pragma from ``source``."""
    n_lines = source.count("\n") + 1
    suppressions: List[Suppression] = []
    problems: List[Violation] = []
    for line, col, text, standalone in _iter_comments(source):
        match = _PRAGMA_RE.search(text)
        if match is None:
            continue
        codes = {c.strip() for c in match.group("codes").split(",") if c.strip()}
        why = (match.group("why") or "").strip()
        unknown = sorted(c for c in codes if c != "all" and c not in CODE_SUMMARIES)
        if unknown:
            problems.append(
                Violation(
                    code="LNT002",
                    path=path,
                    line=line,
                    col=col,
                    message=(
                        f"suppression names unknown rule code(s) "
                        f"{', '.join(unknown)}"
                    ),
                )
            )
        if not why:
            problems.append(
                Violation(
                    code="LNT001",
                    path=path,
                    line=line,
                    col=col,
                    message=(
                        "suppression has no justification; write "
                        "'# repro-lint: disable=CODE -- why this is safe'"
                    ),
                )
            )
        applies_to = {line}
        if standalone and line < n_lines:
            # A standalone comment pragma also covers the line directly
            # below it (the statement it annotates).
            applies_to.add(line + 1)
        suppressions.append(
            Suppression(
                line=line,
                codes=codes,
                justification=why,
                applies_to=applies_to,
            )
        )
    return SuppressionIndex(suppressions, problems)
