"""Shard-and-merge execution of snapshot-capable streaming algorithms.

One logical pass over the stream becomes ``n_shards`` independent passes
over disjoint slices of its adjacency lists (see
:mod:`repro.sketch.shard`), each run in its own process from the *same*
starting snapshot, then folded back into one state through the merge
layer (:mod:`repro.sketch.merge`):

    state = algorithm.snapshot()
    for each pass p:
        per-shard: restore(state); run pass p over the shard; snapshot()
        state = merge_states(shard states, base=state)
    algorithm.restore(state)

Because every shard starts each pass from the merged state of the
previous one, counters merge as deltas over a common base and the
bottom-k edge sample merges bit-exactly.  Parallel fan-out uses a
*persistent* :class:`ShardPool`: the pool's initializer ships every
shard's adjacency lists to each worker once, so per-pass tasks carry
only the (small) merged state — not the stream — and workers keep a
:class:`~repro.util.vectorized.ColumnMemo` of vertex-id columns warm
across passes for the counters' vectorized fast path.  ``workers=None``
runs shards serially in-process (with the same column memoisation),
which is bit-identical to the parallel schedule (merging is
order-deterministic).

Checkpoints are written at pass boundaries only — each shard pass is the
atomic unit of work — so resuming a sharded run replays at most one
logical pass.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.experiments.parallel import resolve_workers
from repro.obs.events import MergeCompleted, RunFinished, RunStarted, ShardPassFinished
from repro.obs.telemetry import NULL_TELEMETRY, Telemetry
from repro.obs.trace import NULL_TRACER, TraceContext, Tracer
from repro.sketch.checkpoint import Checkpoint, CheckpointConfig
from repro.sketch.merge import merge_states
from repro.sketch.shard import StreamShard, partition_stream
from repro.sketch.state import SketchState, SketchStateError
from repro.streaming.algorithm import StreamingAlgorithm, supports_snapshot
from repro.streaming.runner import run_single_pass
from repro.streaming.space import SpaceMeter
from repro.util.rng import derive_seed
from repro.util.vectorized import ColumnMemo

#: factory(state) -> restored algorithm instance.
AlgorithmFactory = Callable[[SketchState], StreamingAlgorithm]

_ALGORITHM_KINDS: Dict[str, AlgorithmFactory] = {}


def register_algorithm_kind(kind: str, factory: AlgorithmFactory) -> None:
    """Register a restorer for snapshot ``kind`` (used by shard workers)."""
    _ALGORITHM_KINDS[kind] = factory


def _ensure_default_kinds() -> None:
    # Imported lazily: the core counters import repro.sketch.state at module
    # load, so a top-level import here would be circular through the package
    # __init__.
    if "triangle-two-pass" not in _ALGORITHM_KINDS:
        from repro.core.triangle_two_pass import TwoPassTriangleCounter

        register_algorithm_kind("triangle-two-pass", TwoPassTriangleCounter.from_state)
    if "fourcycle-two-pass" not in _ALGORITHM_KINDS:
        from repro.core.fourcycle_two_pass import TwoPassFourCycleCounter

        register_algorithm_kind("fourcycle-two-pass", TwoPassFourCycleCounter.from_state)


def restore_algorithm(state: SketchState) -> StreamingAlgorithm:
    """Instantiate the algorithm a snapshot came from, fully restored."""
    _ensure_default_kinds()
    factory = _ALGORITHM_KINDS.get(state.kind)
    if factory is None:
        raise SketchStateError(
            f"no algorithm registered for state kind {state.kind!r} "
            f"(known: {sorted(_ALGORITHM_KINDS)})"
        )
    return factory(state)


@dataclass(frozen=True)
class ShardTask:
    """One shard's work for one pass, in picklable form.

    Self-contained (carries the shard's ``lists``): the serial path and
    one-shot fan-outs use it directly.  The persistent :class:`ShardPool`
    ships lists once via its initializer and sends the slimmer
    :class:`PooledShardTask` per pass instead.  ``trace`` carries the
    driver tracer's position (the enclosing ``pass:<i>`` span) into the
    worker so shard spans attach to the right parent; ``None`` means
    tracing is off.
    """

    shard_index: int
    pass_index: int
    state: SketchState
    lists: Tuple
    space_poll_interval: int = 1
    trace: Optional[TraceContext] = None


@dataclass(frozen=True)
class PooledShardTask:
    """Per-pass work order for a :class:`ShardPool` worker.

    Carries only what changes between passes — the merged state and the
    tracer position.  The shard's adjacency lists (the bulky, pass-
    invariant part) live in the worker process already, installed once
    by the pool initializer.
    """

    shard_index: int
    pass_index: int
    state: SketchState
    trace: Optional[TraceContext] = None


@dataclass(frozen=True)
# repro-lint: disable=SKT002 -- in-memory IPC record; carries a SketchState, which JSON persistence cannot round-trip
class ShardPassResult:
    """What one shard pass sends back to the driver.

    ``spans`` holds the worker's trace spans in wire form (see
    :func:`repro.obs.trace.encode_span`); the driver adopts them in
    shard order, keeping the span tree schedule-invariant.
    """

    shard_index: int
    state: SketchState
    peak_space_words: int
    pairs: int
    spans: Tuple = ()


def _execute_shard_pass(
    shard_index: int,
    pass_index: int,
    state: SketchState,
    lists: Tuple,
    space_poll_interval: int,
    trace: Optional[TraceContext],
    column_provider=None,
) -> ShardPassResult:
    """Restore, run one pass over the shard's lists, snapshot.

    ``column_provider`` (a :class:`~repro.util.vectorized.ColumnMemo`
    scoped to this shard) lets the counters' vectorized fast path reuse
    vertex-id columns across passes; it never changes results.
    """
    algorithm = restore_algorithm(state)
    tracer = Tracer.from_context(trace) if trace is not None else NULL_TRACER
    with tracer.span(f"shard:{shard_index}", category="shard") as span:
        meter = run_single_pass(
            algorithm,
            lists,
            pass_index,
            space_poll_interval=space_poll_interval,
            column_provider=column_provider,
        )
        pairs = sum(len(neighbors) for _, neighbors in lists)
        span.set(pairs=pairs, peak_space_words=meter.peak_words)
    return ShardPassResult(
        shard_index=shard_index,
        state=algorithm.snapshot(),
        peak_space_words=meter.peak_words,
        pairs=pairs,
        spans=tuple(tracer.encoded_spans()),
    )


def _run_shard_pass(task: ShardTask, column_provider=None) -> ShardPassResult:
    """Worker entry point for self-contained tasks (serial / one-shot)."""
    return _execute_shard_pass(
        task.shard_index,
        task.pass_index,
        task.state,
        task.lists,
        task.space_poll_interval,
        task.trace,
        column_provider=column_provider,
    )


# Per-worker state installed once by the ShardPool initializer: every
# shard's lists plus one ColumnMemo per shard, kept warm across passes.
_worker_shard_lists: Dict[int, Tuple] = {}
_worker_shard_memos: Dict[int, ColumnMemo] = {}
_worker_poll_interval: int = 1


def _init_shard_worker(lists_by_shard: Dict[int, Tuple], space_poll_interval: int) -> None:
    global _worker_shard_lists, _worker_shard_memos, _worker_poll_interval
    _worker_shard_lists = dict(lists_by_shard)
    _worker_shard_memos = {index: ColumnMemo() for index in _worker_shard_lists}
    _worker_poll_interval = space_poll_interval


def _run_shard_pass_pooled(task: PooledShardTask) -> ShardPassResult:
    """Worker entry point for pooled tasks: lists come from worker state."""
    return _execute_shard_pass(
        task.shard_index,
        task.pass_index,
        task.state,
        _worker_shard_lists[task.shard_index],
        _worker_poll_interval,
        task.trace,
        column_provider=_worker_shard_memos[task.shard_index],
    )


class ShardPool:
    """Persistent worker pool for a sharded run.

    Started once per :func:`run_sharded` call (when it resolves to more
    than one worker) and reused for every pass: the initializer ships the
    full ``{shard_index: lists}`` map to each worker a single time, so
    the per-pass IPC payload is one merged :class:`SketchState` per shard
    instead of the whole stream re-pickled every pass — the dominant
    fan-out cost for multi-pass algorithms on large streams.  Workers
    hold per-shard column memos across passes, matching the warm-cache
    behaviour of the serial path.
    """

    def __init__(
        self,
        shards: Sequence[StreamShard],
        workers: int,
        space_poll_interval: int = 1,
    ):
        self._pool = ProcessPoolExecutor(
            max_workers=workers,
            initializer=_init_shard_worker,
            initargs=(
                {shard.index: shard.lists for shard in shards},
                space_poll_interval,
            ),
        )

    def run_pass(self, tasks: Sequence[PooledShardTask]) -> List[ShardPassResult]:
        """Execute one pass's shard tasks; results in task (= shard) order."""
        return list(self._pool.map(_run_shard_pass_pooled, tasks))

    def close(self) -> None:
        self._pool.shutdown()

    def __enter__(self) -> "ShardPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


@dataclass(frozen=True)
class ShardRunResult:
    """Outcome of a sharded run (persistence-registered; flat JSON fields).

    ``peak_space_words`` is the largest per-shard peak — the worst-case
    footprint of any single worker, the number the paper's space bounds
    constrain.  ``mean_space_words`` averages the per-shard-pass peaks.

    ``workers`` is the *requested* worker count (resolved: ``0`` becomes
    ``os.cpu_count()``); ``effective_parallelism`` is how many shard
    passes could actually run concurrently — ``min(workers, n_shards)``
    — the honest denominator for any speedup claim.  A single-core box
    reports ``effective_parallelism == 1`` no matter what was requested,
    which is what lets the bench gate skip speedup assertions there.
    """

    estimate: float
    passes: int
    n_shards: int
    workers: int
    strategy: str
    pairs_per_pass: int
    shard_pairs: List[int]
    peak_space_words: int
    mean_space_words: float
    wall_time_seconds: float
    effective_parallelism: int = 1


def run_sharded(
    algorithm: StreamingAlgorithm,
    stream,
    n_shards: int,
    *,
    workers: Optional[int] = None,
    strategy: str = "balanced",
    space_poll_interval: int = 1,
    merge_seed: Optional[int] = None,
    checkpoint: Optional[CheckpointConfig] = None,
    resume_from: Optional[Checkpoint] = None,
    telemetry: Telemetry = NULL_TELEMETRY,
    tracer: Tracer = NULL_TRACER,
) -> ShardRunResult:
    """Run ``algorithm`` over ``stream`` shard-and-merge style.

    ``algorithm`` must implement the sketch state protocol and have a
    merger registered for its state kind.  The merged final state is
    restored into ``algorithm`` before returning, so the instance is
    inspectable exactly as after a conventional run.  ``merge_seed``
    drives the randomised parts of merging (per pass, statelessly derived,
    so a resumed run merges identically); the default is deterministic.

    With ``workers`` resolving above 1 (and more than one shard), the
    run starts one persistent :class:`ShardPool` and reuses it for every
    pass; otherwise shards run serially in-process with per-shard column
    memos.  Both schedules produce bit-identical results.

    ``telemetry`` records per-shard pass completions, merge boundaries and
    the fleet-wide space picture; shard *workers* run with the default
    null telemetry (their peaks come home in :class:`ShardPassResult`),
    so only the driver process emits events.  ``tracer`` records
    ``pass:<i>`` / ``merge:<i>`` / ``checkpoint`` spans and adopts the
    workers' ``shard:<j>`` spans in shard order, so the span tree is
    identical under serial and pool execution.
    """
    if not supports_snapshot(algorithm):
        raise SketchStateError(
            f"{type(algorithm).__name__} does not implement the sketch "
            "state protocol (snapshot/restore); cannot run sharded"
        )
    if getattr(algorithm, "sharded", True) is False:
        # Algorithms with an explicit sharded mode (e.g. the triangle
        # counter's hash-designated ρ) cannot be merged correctly in their
        # conventional mode — fail up front rather than deep in estimation.
        raise SketchStateError(
            f"{type(algorithm).__name__} was constructed in conventional "
            "mode; pass sharded=True to its constructor for run_sharded"
        )
    shards = partition_stream(stream, n_shards, strategy)
    meter = SpaceMeter()
    n_workers = min(resolve_workers(workers), max(len(shards), 1))
    effective = min(n_workers, os.cpu_count() or 1)

    state = algorithm.snapshot()
    start_pass = 0
    if resume_from is not None:
        if resume_from.lists_done != 0:
            raise SketchStateError(
                "sharded runs checkpoint at pass boundaries only; got a "
                f"mid-pass checkpoint (lists_done={resume_from.lists_done})"
            )
        with tracer.span("resume", category="checkpoint"):
            state = resume_from.algorithm_state
            start_pass = resume_from.pass_index
            if resume_from.meter_state:
                meter.load_state_dict(resume_from.meter_state)

    if telemetry.enabled:
        telemetry.emit(
            RunStarted(
                algorithm=type(algorithm).__name__,
                passes=algorithm.n_passes,
                pairs_per_pass=sum(len(shard) for shard in shards),
            )
        )

    base_seed = 0 if merge_seed is None else int(merge_seed)
    # Serial path: one column memo per shard, warm across passes (the
    # pooled path gets the same via the workers' initializer state).
    pool: Optional[ShardPool] = None
    serial_memos: Dict[int, ColumnMemo] = {}
    if n_workers > 1 and len(shards) > 1:
        pool = ShardPool(shards, workers=n_workers, space_poll_interval=space_poll_interval)
    else:
        serial_memos = {shard.index: ColumnMemo() for shard in shards}
    # repro-lint: disable=DET003 -- wall-time telemetry for ShardRunResult only; never touches sketch state
    start = time.perf_counter()
    try:
        for pass_index in range(start_pass, algorithm.n_passes):
            with tracer.span(f"pass:{pass_index}", category="pass") as pass_span:
                trace_ctx = tracer.context()
                if pool is not None:
                    tasks = [
                        PooledShardTask(
                            shard_index=shard.index,
                            pass_index=pass_index,
                            state=state,
                            trace=trace_ctx,
                        )
                        for shard in shards
                    ]
                    results = pool.run_pass(tasks)
                else:
                    results = [
                        _execute_shard_pass(
                            shard.index,
                            pass_index,
                            state,
                            shard.lists,
                            space_poll_interval,
                            trace_ctx,
                            column_provider=serial_memos[shard.index],
                        )
                        for shard in shards
                    ]
                pass_pairs = 0
                for result in results:
                    tracer.adopt(result.spans)
                    pass_pairs += result.pairs
                    if telemetry.enabled:
                        telemetry.emit(
                            ShardPassFinished(
                                shard_index=result.shard_index,
                                pass_index=pass_index,
                                pairs=result.pairs,
                                peak_space_words=result.peak_space_words,
                            )
                        )
                        telemetry.count(
                            "shard_pairs_total", result.pairs,
                            help="adjacency pairs consumed by shard workers",
                            shard=str(result.shard_index),
                        )
                        telemetry.set_gauge(
                            "shard_peak_space_words", result.peak_space_words,
                            help="per-shard peak live state in machine words",
                            shard=str(result.shard_index),
                        )
                    meter.observe(result.peak_space_words)
                with tracer.span(f"merge:{pass_index}", category="merge", n_shards=len(results)):
                    state = merge_states(
                        [result.state for result in results],
                        base=state,
                        seed=derive_seed(base_seed, pass_index),
                    )
                pass_span.set(pairs=pass_pairs, n_shards=len(results))
                if telemetry.enabled:
                    telemetry.emit(
                        MergeCompleted(pass_index=pass_index, n_shards=len(results))
                    )
                    telemetry.count("shard_merges_total", help="pass-boundary shard merges")
            if checkpoint is not None:
                with tracer.span(f"checkpoint:pass:{pass_index + 1}", category="checkpoint"):
                    checkpoint.write(state, pass_index + 1, 0, meter.state_dict())
    finally:
        if pool is not None:
            pool.close()
    elapsed = time.perf_counter() - start  # repro-lint: disable=DET003 -- telemetry field, mirrors streaming/runner.py

    algorithm.restore(state)
    shard_result = ShardRunResult(
        estimate=algorithm.result(),
        passes=algorithm.n_passes,
        n_shards=len(shards),
        workers=resolve_workers(workers),
        effective_parallelism=effective,
        strategy=strategy,
        pairs_per_pass=sum(len(shard) for shard in shards),
        shard_pairs=[len(shard) for shard in shards],
        peak_space_words=meter.peak_words,
        mean_space_words=meter.mean_words,
        wall_time_seconds=elapsed,
    )
    if telemetry.enabled:
        telemetry.set_gauge(
            "run_peak_space_words", shard_result.peak_space_words,
            help="largest per-shard peak, matching ShardRunResult",
        )
        telemetry.emit(
            RunFinished(
                estimate=shard_result.estimate,
                peak_space_words=shard_result.peak_space_words,
                mean_space_words=shard_result.mean_space_words,
                passes=shard_result.passes,
                pairs=shard_result.pairs_per_pass * shard_result.passes,
                seconds=elapsed,
                pairs_per_second=(
                    shard_result.pairs_per_pass * shard_result.passes / elapsed
                    if elapsed > 0 else 0.0
                ),
            )
        )
    return shard_result
