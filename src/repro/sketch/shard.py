"""Vertex-sharding of adjacency-list streams.

The adjacency-list model's promise is that each vertex's neighbour list
arrives contiguously.  Sharding at *list* granularity preserves that
promise inside every shard for free: a shard receives a subsequence of
the stream's lists, each one intact, in their original relative order.
What a shard does **not** see is the reverse direction of edges whose
other endpoint landed elsewhere — which is exactly why shard results must
be combined through the sketch merge layer rather than concatenated.

Three placement strategies are provided:

* ``"balanced"`` (default) — greedy least-loaded placement by pair count;
  near-equal work per shard regardless of degree skew.
* ``"contiguous"`` — consecutive blocks of the stream, split at list
  boundaries by cumulative pair count; preserves stream locality.
* ``"hash"`` — placement by vertex hash; deterministic for a fixed shard
  count independent of stream order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

from repro.graph.graph import Vertex
from repro.streaming.stream import AdjacencyListStream
from repro.util.hashing import _to_int_key

AdjacencyList = Tuple[Vertex, Tuple[Vertex, ...]]

STRATEGIES = ("balanced", "contiguous", "hash")


@dataclass(frozen=True)
class StreamShard:
    """One shard of an adjacency-list stream: whole lists, original order.

    Cheap to pickle (plain tuples), which is how the shard driver ships
    work to pool processes.
    """

    index: int
    lists: Tuple[AdjacencyList, ...]

    def iter_lists(self) -> Iterator[AdjacencyList]:
        """Yield ``(vertex, neighbours)`` per adjacency list, in order."""
        return iter(self.lists)

    def iter_pairs(self) -> Iterator[Tuple[Vertex, Vertex]]:
        """Yield the shard's raw ``(source, neighbour)`` pairs."""
        for vertex, neighbors in self.lists:
            for nbr in neighbors:
                yield (vertex, nbr)

    @property
    def n_lists(self) -> int:
        """Number of adjacency lists in this shard."""
        return len(self.lists)

    def __len__(self) -> int:
        """Number of pairs in this shard."""
        return sum(len(neighbors) for _, neighbors in self.lists)


def _materialize(stream) -> List[AdjacencyList]:
    if isinstance(stream, AdjacencyListStream) or hasattr(stream, "iter_lists"):
        return [(v, tuple(nbrs)) for v, nbrs in stream.iter_lists()]
    return [(v, tuple(nbrs)) for v, nbrs in stream]


def partition_stream(
    stream, n_shards: int, strategy: str = "balanced"
) -> List[StreamShard]:
    """Split a stream into ``n_shards`` shards of whole adjacency lists.

    Accepts an :class:`AdjacencyListStream` (or anything with
    ``iter_lists``) or a raw iterable of ``(vertex, neighbours)`` lists.
    Every list is assigned to exactly one shard and relative list order is
    preserved within each shard, so each shard is itself a valid
    adjacency-list stream over its slice of the vertices.  Shards may be
    empty (more shards than lists).
    """
    if n_shards < 1:
        raise ValueError("n_shards must be at least 1")
    if strategy not in STRATEGIES:
        raise ValueError(f"unknown strategy {strategy!r} (choose from {STRATEGIES})")
    lists = _materialize(stream)
    assignments: List[List[AdjacencyList]] = [[] for _ in range(n_shards)]

    if strategy == "hash":
        for entry in lists:
            assignments[_to_int_key(entry[0]) % n_shards].append(entry)
    elif strategy == "contiguous":
        total = sum(len(nbrs) for _, nbrs in lists)
        target = total / n_shards if n_shards else 0.0
        shard, consumed = 0, 0
        for entry in lists:
            # Advance to the next shard once this one's pair quota is met,
            # but never leave trailing shards more lists than remain.
            while (
                shard < n_shards - 1
                and consumed >= target * (shard + 1)
            ):
                shard += 1
            assignments[shard].append(entry)
            consumed += len(entry[1])
    else:  # balanced: greedy least-loaded by pair count
        loads = [0] * n_shards
        for entry in lists:
            shard = loads.index(min(loads))
            assignments[shard].append(entry)
            loads[shard] += len(entry[1])

    return [
        StreamShard(index=i, lists=tuple(listed))
        for i, listed in enumerate(assignments)
    ]


def shard_pair_counts(shards: Sequence[StreamShard]) -> List[int]:
    """Pairs per shard — the balance diagnostic the benchmark reports."""
    return [len(shard) for shard in shards]
