"""Sketch state subsystem: serialisable, mergeable sampler/algorithm state.

Layers (each usable on its own):

* :mod:`repro.sketch.state` — the versioned :class:`SketchState` container
  with JSON and binary codecs;
* :mod:`repro.sketch.samplers` — state capture/restore for the samplers in
  :mod:`repro.util.sampling`;
* :mod:`repro.sketch.merge` — combining per-shard states (bottom-k
  union-and-truncate, delta-additive counters, weighted reservoir merge);
* :mod:`repro.sketch.shard` — partitioning an adjacency-list stream into
  shards that keep every vertex's list contiguous;
* :mod:`repro.sketch.checkpoint` — durable snapshots for resumable runs;
* :mod:`repro.sketch.driver` — the shard-and-merge executor tying the
  layers together.
"""

from repro.sketch.state import (
    SketchState,
    SketchStateError,
    decode_value,
    encode_value,
)
from repro.sketch.samplers import (
    bottom_k_from_state,
    bottom_k_state,
    reservoir_from_state,
    reservoir_state,
)
from repro.sketch.merge import (
    MergeError,
    merge_bottom_k_payloads,
    merge_reservoir_payloads,
    merge_states,
    register_merger,
)
from repro.sketch.shard import StreamShard, partition_stream, shard_pair_counts
from repro.sketch.checkpoint import (
    Checkpoint,
    CheckpointConfig,
    CheckpointRecord,
    fingerprint_stream,
    load_checkpoint,
    load_checkpoint_if_exists,
    require_matching_stream,
)
from repro.sketch.driver import (
    ShardRunResult,
    register_algorithm_kind,
    restore_algorithm,
    run_sharded,
)

__all__ = [
    "SketchState",
    "SketchStateError",
    "encode_value",
    "decode_value",
    "bottom_k_state",
    "bottom_k_from_state",
    "reservoir_state",
    "reservoir_from_state",
    "MergeError",
    "merge_states",
    "register_merger",
    "merge_bottom_k_payloads",
    "merge_reservoir_payloads",
    "StreamShard",
    "partition_stream",
    "shard_pair_counts",
    "Checkpoint",
    "CheckpointConfig",
    "CheckpointRecord",
    "fingerprint_stream",
    "load_checkpoint",
    "load_checkpoint_if_exists",
    "require_matching_stream",
    "run_sharded",
    "restore_algorithm",
    "register_algorithm_kind",
    "ShardRunResult",
]
