"""Merging sketch states across stream shards.

Bottom-k sketches are mergeable *by construction*: membership is a pure
function of the offered key set (the ``k`` smallest fixed priorities), so
the union of per-shard member sets re-truncated to ``k`` is exactly the
bottom-k sample of the concatenated stream — bit-identical, not just
equal in distribution.  Around that anchor this module composes the other
state components the two-pass counters carry:

* **additive counters** (pair counts, candidate totals) merge by summing
  per-shard deltas over the common base state — exact;
* **set-valued state** (``seen`` edge sets, distinct-cycle keys) merges by
  union — exact;
* **reservoir samples** over *disjoint* shard streams merge by weighted
  draw (multivariate hypergeometric allocation over the shards' offered
  counts, then uniform picks within each shard's sample), which preserves
  uniformity over the union; reservoirs that evolved from a shared
  non-empty base merge by a documented *heuristic* (keep base items that
  survived everywhere, combine their counters, weighted-fill the rest).

``merge_states`` dispatches on ``SketchState.kind`` through a registry so
new algorithms can plug in their own mergers.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.sketch.samplers import BOTTOM_K_KIND, RESERVOIR_KIND
from repro.sketch.state import SketchState
from repro.util.rng import SeedLike, resolve_rng

TRIANGLE_KIND = "triangle-two-pass"
FOURCYCLE_KIND = "fourcycle-two-pass"

#: Merger signature: (shard payloads, base payload or None, rng) -> payload.
Merger = Callable[[Sequence[Dict], Optional[Dict], random.Random], Dict]

MERGERS: Dict[str, Merger] = {}


class MergeError(ValueError):
    """Raised when states cannot be merged soundly."""


def register_merger(kind: str) -> Callable[[Merger], Merger]:
    """Class of decorator registering a merger for a state ``kind``."""

    def decorate(fn: Merger) -> Merger:
        MERGERS[kind] = fn
        return fn

    return decorate


def merge_states(
    states: Sequence[SketchState],
    base: Optional[SketchState] = None,
    seed: SeedLike = 0,
) -> SketchState:
    """Merge per-shard states (all of one kind) into a single state.

    ``base`` is the common state every shard started from; mergers use it
    to turn per-shard counter values into deltas.  Passing the wrong base
    double-counts.  ``seed`` drives the randomised parts of the merge
    (reservoir slot allocation); the default is deterministic.
    """
    states = list(states)
    if not states:
        raise MergeError("nothing to merge")
    kind, version = states[0].kind, states[0].version
    for state in states[1:]:
        state.require(kind, version)
    if base is not None:
        base.require(kind, version)
    merger = MERGERS.get(kind)
    if merger is None:
        raise MergeError(f"no merger registered for state kind {kind!r}")
    rng = resolve_rng(seed)
    payload = merger(
        [state.payload for state in states],
        base.payload if base is not None else None,
        rng,
    )
    return SketchState(kind, version, payload)


# -- shared helpers ----------------------------------------------------------


def _as_key(key: Any) -> Any:
    return tuple(key) if isinstance(key, list) else key


def _delta_sum(values: Sequence[int], base: int) -> int:
    """Base plus the per-shard increments over it (exact for counters)."""
    return base + sum(v - base for v in values)


def _require_equal(payloads: Sequence[Dict], field: str) -> Any:
    value = payloads[0][field]
    for p in payloads[1:]:
        if p[field] != value:
            raise MergeError(
                f"shard states disagree on {field!r}: {value!r} vs {p[field]!r}"
            )
    return value


def merge_bottom_k_payloads(payloads: Sequence[Dict]) -> Dict:
    """Union-and-truncate merge of ``BottomKSampler.state_dict`` payloads.

    Exact: the result equals the state of one sampler fed every shard's
    keys, because membership depends only on the key set and the shared
    hash function (same ``hash_key`` required).
    """
    capacity = _require_equal(payloads, "capacity")
    hash_key = _require_equal(payloads, "hash_key")
    union: Dict[Any, int] = {}
    for payload in payloads:
        for key, priority in payload["members"]:
            union[_as_key(key)] = int(priority)
    members = sorted(union.items(), key=lambda e: (e[1], repr(e[0])))[:capacity]
    return {"capacity": capacity, "hash_key": hash_key, "members": members}


def _weighted_fill(
    pools: Sequence[Tuple[List[Any], int]], k: int, rng: random.Random
) -> List[Any]:
    """Draw up to ``k`` items uniformly from the union behind the pools.

    Each pool is ``(sample_items, population_count)`` where the items are a
    uniform sample of a population of that size.  Slots are allocated to
    pools in proportion to their remaining population (multivariate
    hypergeometric), then filled with uniform picks from the pool's sample
    — the standard distributed-reservoir merge.  Exact whenever no pool's
    sample is exhausted before its allocation (always true for saturated
    equal-capacity reservoirs); exhausted pools simply drop out.
    """
    samples = [list(items) for items, _ in pools]
    if sum(len(s) for s in samples) <= k:
        return [item for s in samples for item in s]
    weights = [max(int(n), len(s)) for (_, n), s in zip(pools, samples)]
    picked: List[Any] = []
    while len(picked) < k:
        total = sum(w for w, s in zip(weights, samples) if s)
        if total <= 0:
            break
        r = rng.randrange(total)
        for i, sample in enumerate(samples):
            if not sample:
                continue
            if r < weights[i]:
                picked.append(sample.pop(rng.randrange(len(sample))))
                weights[i] -= 1
                break
            r -= weights[i]
    return picked


def merge_reservoir_payloads(
    payloads: Sequence[Dict],
    base: Optional[Dict],
    rng: random.Random,
    item_key: Optional[Callable[[Any], Any]] = None,
    combine_matched: Optional[Callable[[Any, List[Any]], Any]] = None,
) -> Dict:
    """Merge ``ReservoirSampler.state_dict`` payloads.

    With an empty (or absent) base the shards' candidate streams are
    disjoint and the weighted merge is uniform over their union — the
    estimator-preserving case.  With a non-empty base the merge is a
    heuristic: a base item survives iff it survived in *every* shard
    (identified via ``item_key``), matched copies are combined with
    ``combine_matched`` (e.g. summing watcher counters), and the remaining
    capacity is weighted-filled from the shard-new items.
    """
    capacity = _require_equal(payloads, "capacity")
    key_of = item_key if item_key is not None else (lambda item: repr(item))
    base_items = list(base["items"]) if base is not None else []
    base_offered = int(base["offered"]) if base is not None else 0
    offered = _delta_sum([int(p["offered"]) for p in payloads], base_offered)

    kept: List[Any] = []
    if base_items:
        base_keys = [key_of(item) for item in base_items]
        shard_maps = [{key_of(it): it for it in p["items"]} for p in payloads]
        for key, item in zip(base_keys, base_items):
            copies = [m[key] for m in shard_maps if key in m]
            if len(copies) == len(shard_maps):
                kept.append(
                    combine_matched(item, copies) if combine_matched else item
                )
        base_key_set = set(base_keys)
        pools = [
            (
                [it for it in p["items"] if key_of(it) not in base_key_set],
                int(p["offered"]) - base_offered,
            )
            for p in payloads
        ]
    else:
        pools = [(list(p["items"]), int(p["offered"]) - base_offered) for p in payloads]

    items = kept + _weighted_fill(pools, capacity - len(kept), rng)
    return {
        "capacity": capacity,
        "offered": offered,
        "rng_state": payloads[0]["rng_state"],
        "items": items,
    }


# -- registered mergers ------------------------------------------------------


@register_merger(BOTTOM_K_KIND)
def _merge_bottom_k(payloads, base, rng):
    # Base is irrelevant: membership is a pure function of the key union.
    return merge_bottom_k_payloads(payloads)


@register_merger(RESERVOIR_KIND)
def _merge_reservoir(payloads, base, rng):
    return merge_reservoir_payloads(payloads, base, rng)


def _pair_identity(item: Dict) -> Tuple:
    return (item["edge"], item["triangle"])


def _combine_pair(base_item: Dict, copies: List[Dict]) -> Dict:
    """Combine the shard copies of one base reservoir pair.

    Watcher H-counters are summed as deltas over the base (each shard saw a
    disjoint slice of the closings); arrival flags OR together.  Watchers
    are matched by their (edge, apex) identity.
    """
    merged_watchers = []
    copy_maps = [
        {(w[0], w[1]): w for w in copy["watchers"]} for copy in copies
    ]
    for watcher in base_item["watchers"]:
        edge, x, arrived, h = watcher
        for copy_map in copy_maps:
            match = copy_map.get((edge, x))
            if match is None:
                continue
            arrived = arrived or match[2]
            h += match[3] - watcher[3]
        merged_watchers.append([edge, x, arrived, h])
    return {
        "edge": base_item["edge"],
        "triangle": base_item["triangle"],
        "watchers": merged_watchers,
    }


@register_merger(TRIANGLE_KIND)
def _merge_triangle(payloads, base, rng):
    """Merge two-pass triangle counter states.

    Exact components: the bottom-k edge sample, the pair/candidate
    counters, and the pass-2 ``seen`` set.  The candidate reservoir is the
    estimator-preserving weighted merge when shards collect disjoint
    candidate slices (the sharded collection mode), and the keep-if-
    everywhere heuristic otherwise.  Reservoir pairs whose edge fell out
    of the merged sample are dropped, mirroring the eviction callback of
    the single-stream algorithm.
    """
    for field in ("sample_size", "sharded", "rho_key", "pass"):
        _require_equal(payloads, field)
    first = payloads[0]
    sampler = merge_bottom_k_payloads([p["sampler"] for p in payloads])
    member_edges = {_as_key(k) for k, _ in sampler["members"]}

    def base_field(field: str) -> int:
        return int(base[field]) if base is not None else 0

    seen: set = set()
    for payload in payloads:
        seen.update(_as_key(e) for e in payload["seen_p2"])

    reservoir = merge_reservoir_payloads(
        [p["reservoir"] for p in payloads],
        base["reservoir"] if base is not None else None,
        rng,
        item_key=_pair_identity,
        combine_matched=_combine_pair,
    )
    reservoir["items"] = [
        item for item in reservoir["items"] if item["edge"] in member_edges
    ]

    return {
        "sample_size": first["sample_size"],
        "sharded": first["sharded"],
        "rho_key": first["rho_key"],
        "pass": first["pass"],
        "pair_count": _delta_sum(
            [int(p["pair_count"]) for p in payloads], base_field("pair_count")
        ),
        "candidate_total": _delta_sum(
            [int(p["candidate_total"]) for p in payloads],
            base_field("candidate_total"),
        ),
        "seen_p2": sorted(seen, key=repr),
        "sampler": sampler,
        "reservoir": reservoir,
    }


@register_merger(FOURCYCLE_KIND)
def _merge_fourcycle(payloads, base, rng):
    """Merge two-pass 4-cycle counter states — exact in every component.

    The edge sample merges by union-and-truncate; pair and multiplicity
    counters are delta-additive (each completion list lives in exactly one
    shard); distinct-cycle keys union.  The wedge set ``Q`` is rebuilt
    deterministically by every shard from the shared post-pass-1 state, so
    shards must agree on it exactly — disagreement means the states did
    not evolve from a common base and the merge refuses.
    """
    for field in ("sample_size", "mode", "wedge_cap", "pass"):
        _require_equal(payloads, field)
    first = payloads[0]
    sampler = merge_bottom_k_payloads([p["sampler"] for p in payloads])
    wedges = _require_equal(payloads, "wedges")
    wedge_population = _require_equal(payloads, "wedge_population")
    wedge_rng_state = _require_equal(payloads, "wedge_rng_state")

    def base_field(field: str) -> int:
        return int(base[field]) if base is not None else 0

    distinct: set = set()
    for payload in payloads:
        distinct.update(_as_key(c) for c in payload["distinct"])

    return {
        "sample_size": first["sample_size"],
        "mode": first["mode"],
        "wedge_cap": first["wedge_cap"],
        "pass": first["pass"],
        "pair_count": _delta_sum(
            [int(p["pair_count"]) for p in payloads], base_field("pair_count")
        ),
        "multiplicity_total": _delta_sum(
            [int(p["multiplicity_total"]) for p in payloads],
            base_field("multiplicity_total"),
        ),
        "wedge_population": wedge_population,
        "wedge_rng_state": wedge_rng_state,
        "sampler": sampler,
        "wedges": wedges,
        "distinct": sorted(distinct, key=repr),
    }
