"""Serializable sketch state: the container and its JSON/binary codecs.

A :class:`SketchState` is a versioned, typed bag of state captured from a
streaming algorithm or sampler: ``kind`` identifies the producer (and
selects a merger in :mod:`repro.sketch.merge`), ``version`` guards against
schema drift, and ``payload`` holds plain Python data — ints, floats,
strings, lists, dicts, tuples, sets and frozensets, arbitrarily nested.

Two codecs are provided:

* **JSON** (:meth:`SketchState.to_json` / :meth:`SketchState.from_json`) —
  human-inspectable.  Tuples, sets and frozensets do not survive plain
  JSON, so values are encoded with a small tag scheme (``{"$t": [...]}``
  for tuples, ``{"$s": [...]}`` / ``{"$f": [...]}`` for sets/frozensets,
  ``{"$d": [[k, v], ...]}`` for dicts with non-string keys) that the
  decoder reverses exactly.  RNG states (``random.Random.getstate()``
  tuples) round-trip through this unchanged.
* **binary** (:meth:`SketchState.to_bytes` / :meth:`SketchState.from_bytes`)
  — a magic-tagged, zlib-compressed framing of the JSON form, used for
  on-disk checkpoints where the 625-word Mersenne Twister states would
  bloat plain text.

States also pickle cheaply (payloads are plain data), which is how the
shard driver ships them to worker processes.
"""

from __future__ import annotations

import json
import struct
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional, Union

PathLike = Union[str, Path]

#: Binary codec framing: magic, format version, payload length.
_MAGIC = b"SKCH"
_BINARY_VERSION = 1
_HEADER = struct.Struct(">4sBI")

_TAGS = ("$t", "$s", "$f", "$d")


class SketchStateError(ValueError):
    """Raised when a serialised sketch state is malformed or mismatched."""


def encode_value(value: Any) -> Any:
    """Encode a payload value into JSON-representable form (tagged)."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, tuple):
        return {"$t": [encode_value(v) for v in value]}
    if isinstance(value, list):
        return [encode_value(v) for v in value]
    if isinstance(value, (set, frozenset)):
        tag = "$f" if isinstance(value, frozenset) else "$s"
        encoded = [encode_value(v) for v in value]
        # Canonical order: serialisations of equal sets must be equal.
        encoded.sort(key=lambda e: json.dumps(e, sort_keys=True))
        return {tag: encoded}
    if isinstance(value, dict):
        if all(isinstance(k, str) for k in value) and not (set(value) & set(_TAGS)):
            return {k: encode_value(v) for k, v in value.items()}
        return {"$d": [[encode_value(k), encode_value(v)] for k, v in value.items()]}
    raise SketchStateError(f"cannot encode {type(value).__name__} value {value!r}")


def decode_value(value: Any) -> Any:
    """Invert :func:`encode_value`."""
    if isinstance(value, list):
        return [decode_value(v) for v in value]
    if isinstance(value, dict):
        if len(value) == 1:
            tag, inner = next(iter(value.items()))
            if tag == "$t":
                return tuple(decode_value(v) for v in inner)
            if tag == "$s":
                return {decode_value(v) for v in inner}
            if tag == "$f":
                return frozenset(decode_value(v) for v in inner)
            if tag == "$d":
                return {decode_value(k): decode_value(v) for k, v in inner}
        return {k: decode_value(v) for k, v in value.items()}
    return value


@dataclass
class SketchState:
    """Versioned serialisable state captured from a sketch or algorithm."""

    kind: str
    version: int
    payload: Dict[str, Any] = field(default_factory=dict)

    def require(self, kind: str, version: int) -> None:
        """Assert this state matches the expected ``kind`` and ``version``."""
        if self.kind != kind:
            raise SketchStateError(
                f"expected state kind {kind!r}, got {self.kind!r}"
            )
        if self.version != version:
            raise SketchStateError(
                f"unsupported {kind!r} state version {self.version} "
                f"(this build reads version {version})"
            )

    # -- JSON codec ---------------------------------------------------------

    def to_json_dict(self) -> Dict[str, Any]:
        """The JSON-representable form of this state."""
        return {
            "kind": self.kind,
            "version": self.version,
            "payload": encode_value(self.payload),
        }

    @classmethod
    def from_json_dict(cls, blob: Dict[str, Any]) -> "SketchState":
        """Reconstruct a state from :meth:`to_json_dict` output."""
        if not isinstance(blob, dict) or not {"kind", "version", "payload"} <= set(blob):
            raise SketchStateError("malformed sketch state blob")
        payload = decode_value(blob["payload"])
        if not isinstance(payload, dict):
            raise SketchStateError("sketch state payload must decode to a dict")
        return cls(kind=str(blob["kind"]), version=int(blob["version"]), payload=payload)

    def to_json(self, indent: Optional[int] = None) -> str:
        """Serialise to a JSON string."""
        return json.dumps(self.to_json_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "SketchState":
        """Parse a state from :meth:`to_json` output."""
        return cls.from_json_dict(json.loads(text))

    # -- binary codec -------------------------------------------------------

    def to_bytes(self) -> bytes:
        """Serialise to the compact binary framing."""
        body = zlib.compress(self.to_json(indent=None).encode("utf-8"), level=6)
        return _HEADER.pack(_MAGIC, _BINARY_VERSION, len(body)) + body

    @classmethod
    def from_bytes(cls, data: bytes) -> "SketchState":
        """Parse a state from :meth:`to_bytes` output."""
        if len(data) < _HEADER.size:
            raise SketchStateError("truncated sketch state: missing header")
        magic, fmt_version, length = _HEADER.unpack_from(data)
        if magic != _MAGIC:
            raise SketchStateError(f"bad sketch state magic {magic!r}")
        if fmt_version != _BINARY_VERSION:
            raise SketchStateError(f"unsupported binary format version {fmt_version}")
        body = data[_HEADER.size:]
        if len(body) != length:
            raise SketchStateError(
                f"truncated sketch state: expected {length} payload bytes, "
                f"got {len(body)}"
            )
        return cls.from_json(zlib.decompress(body).decode("utf-8"))

    # -- files --------------------------------------------------------------

    def save(self, path: PathLike) -> None:
        """Write the binary form to ``path`` atomically (write-then-rename)."""
        path = Path(path)
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_bytes(self.to_bytes())
        tmp.replace(path)

    @classmethod
    def load(cls, path: PathLike) -> "SketchState":
        """Read a state written by :meth:`save`."""
        return cls.from_bytes(Path(path).read_bytes())
