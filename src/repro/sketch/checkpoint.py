"""Checkpoint/resume for long streaming runs.

A checkpoint is a :class:`~repro.sketch.state.SketchState` snapshot of the
algorithm wrapped with its position in the run (pass index, lists already
processed in that pass), the space meter's accumulated statistics, and a
fingerprint of the stream — enough for a resumed run with the same stream
to finish with *identical* results to one that was never interrupted.

The runner (:func:`repro.streaming.runner.run_algorithm`) drives the
writes through a :class:`CheckpointConfig`; loading and validation happen
here.  Files use the binary sketch codec and are written atomically
(write-then-rename), so a kill mid-write leaves the previous checkpoint
intact.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.sketch.state import SketchState, SketchStateError

PathLike = Union[str, Path]

CHECKPOINT_KIND = "checkpoint"
CHECKPOINT_VERSION = 1


@dataclass(frozen=True)
class CheckpointRecord:
    """Summary of one written checkpoint (persistence-registered)."""

    path: str
    algorithm_kind: str
    pass_index: int
    lists_done: int
    space_words: int


def fingerprint_stream(stream) -> Dict[str, Any]:
    """Digest a stream's identity: sizes plus a hash of the exact ordering.

    Costs one extra pass over the stream's lists (cheap relative to any
    run worth checkpointing); the digest changes if the list order, any
    neighbour order, or the graph itself changes.
    """
    digest = hashlib.sha256()
    lists = 0
    pairs = 0
    for vertex, neighbors in stream.iter_lists():
        digest.update(repr(vertex).encode("utf-8"))
        digest.update(b":")
        digest.update(repr(tuple(neighbors)).encode("utf-8"))
        digest.update(b"\n")
        lists += 1
        pairs += len(neighbors)
    return {"lists": lists, "pairs": pairs, "order_digest": digest.hexdigest()}


@dataclass
class Checkpoint:
    """A resumable position in a streaming run."""

    algorithm_state: SketchState
    pass_index: int
    lists_done: int
    meter_state: Dict[str, Any] = field(default_factory=dict)
    stream_fingerprint: Dict[str, Any] = field(default_factory=dict)

    def to_state(self) -> SketchState:
        return SketchState(
            CHECKPOINT_KIND,
            CHECKPOINT_VERSION,
            {
                "algorithm": {
                    "kind": self.algorithm_state.kind,
                    "version": self.algorithm_state.version,
                    "payload": self.algorithm_state.payload,
                },
                "pass_index": self.pass_index,
                "lists_done": self.lists_done,
                "meter": self.meter_state,
                "stream": self.stream_fingerprint,
            },
        )

    @classmethod
    def from_state(cls, state: SketchState) -> "Checkpoint":
        state.require(CHECKPOINT_KIND, CHECKPOINT_VERSION)
        algo = state.payload["algorithm"]
        return cls(
            algorithm_state=SketchState(
                kind=algo["kind"], version=int(algo["version"]), payload=algo["payload"]
            ),
            pass_index=int(state.payload["pass_index"]),
            lists_done=int(state.payload["lists_done"]),
            meter_state=dict(state.payload.get("meter", {})),
            stream_fingerprint=dict(state.payload.get("stream", {})),
        )

    def save(self, path: PathLike) -> CheckpointRecord:
        """Write atomically; return the persistence-friendly record."""
        self.to_state().save(path)
        return CheckpointRecord(
            path=str(path),
            algorithm_kind=self.algorithm_state.kind,
            pass_index=self.pass_index,
            lists_done=self.lists_done,
            space_words=int(self.meter_state.get("current_words", 0)),
        )

    def matches_stream(self, fingerprint: Dict[str, Any]) -> bool:
        """Whether this checkpoint was taken against ``fingerprint``'s stream."""
        if not self.stream_fingerprint:
            return True  # nothing recorded: accept (caller's risk)
        return self.stream_fingerprint == fingerprint


def load_checkpoint(path: PathLike) -> Checkpoint:
    """Load a checkpoint written by :meth:`Checkpoint.save`."""
    return Checkpoint.from_state(SketchState.load(path))


def load_checkpoint_if_exists(path: PathLike) -> Optional[Checkpoint]:
    """Load ``path`` if present, else None (the ``--resume`` CLI contract)."""
    return load_checkpoint(path) if Path(path).exists() else None


@dataclass
class CheckpointConfig:
    """How a run writes checkpoints.

    ``every_lists`` bounds the replay a crash can cost; each write
    overwrites ``path`` (the latest checkpoint is the only one needed —
    resume replays deterministically from it).  ``stream_fingerprint`` is
    stamped into every checkpoint when provided so a later ``--resume``
    can refuse a mismatched input.  ``history`` accumulates a record per
    write for reporting.
    """

    path: PathLike
    every_lists: int = 1000
    stream_fingerprint: Dict[str, Any] = field(default_factory=dict)
    history: List[CheckpointRecord] = field(default_factory=list)

    def __post_init__(self):
        if self.every_lists < 1:
            raise ValueError("every_lists must be at least 1")

    def write(
        self,
        algorithm_state: SketchState,
        pass_index: int,
        lists_done: int,
        meter_state: Optional[Dict[str, Any]] = None,
    ) -> CheckpointRecord:
        """Write one checkpoint; called by the runner at list boundaries."""
        checkpoint = Checkpoint(
            algorithm_state=algorithm_state,
            pass_index=pass_index,
            lists_done=lists_done,
            meter_state=meter_state or {},
            stream_fingerprint=dict(self.stream_fingerprint),
        )
        record = checkpoint.save(self.path)
        self.history.append(record)
        return record


def require_matching_stream(checkpoint: Checkpoint, stream) -> None:
    """Raise unless ``checkpoint`` was taken against ``stream``."""
    fingerprint = fingerprint_stream(stream)
    if not checkpoint.matches_stream(fingerprint):
        raise SketchStateError(
            "checkpoint was taken against a different stream "
            f"(recorded {checkpoint.stream_fingerprint.get('order_digest', '?')[:12]}..., "
            f"current {fingerprint['order_digest'][:12]}...); "
            "refusing to resume"
        )
