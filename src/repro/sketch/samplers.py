"""SketchState wrappers for the sampling primitives.

The samplers in :mod:`repro.util.sampling` expose raw ``state_dict`` /
``load_state_dict`` methods; this module wraps those dicts in typed,
versioned :class:`~repro.sketch.state.SketchState` envelopes so they can
go through the generic codecs and the merge registry.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.sketch.state import SketchState
from repro.util.sampling import BottomKSampler, ReservoirSampler

BOTTOM_K_KIND = "bottom-k-sampler"
BOTTOM_K_VERSION = 1
RESERVOIR_KIND = "reservoir-sampler"
RESERVOIR_VERSION = 1


def bottom_k_state(sampler: BottomKSampler) -> SketchState:
    """Capture a :class:`BottomKSampler` as a mergeable sketch state."""
    return SketchState(BOTTOM_K_KIND, BOTTOM_K_VERSION, sampler.state_dict())


def bottom_k_from_state(
    state: SketchState, on_evict: Optional[Callable] = None
) -> BottomKSampler:
    """Reconstruct a :class:`BottomKSampler` from its sketch state."""
    state.require(BOTTOM_K_KIND, BOTTOM_K_VERSION)
    return BottomKSampler.from_state_dict(state.payload, on_evict=on_evict)


def reservoir_state(sampler: ReservoirSampler) -> SketchState:
    """Capture a :class:`ReservoirSampler` (items must be JSON-safe data)."""
    return SketchState(RESERVOIR_KIND, RESERVOIR_VERSION, sampler.state_dict())


def reservoir_from_state(state: SketchState) -> ReservoirSampler:
    """Reconstruct a :class:`ReservoirSampler` from its sketch state."""
    state.require(RESERVOIR_KIND, RESERVOIR_VERSION)
    sampler: ReservoirSampler = ReservoirSampler(int(state.payload["capacity"]))
    sampler.load_state_dict(state.payload)
    return sampler
